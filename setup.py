"""Legacy setup shim.

The offline sandbox lacks the ``wheel`` package, so PEP 660 editable
installs fail; this file lets ``pip install -e .`` take the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.pretrained": ["data/*.npz", "data/*.json"]},
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={
        "console_scripts": ["repro-experiments=repro.experiments.cli:main"],
    },
)
