"""Benchmark: regenerate Fig 5(b) (outliers vs total bits + margin fix)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig5


def test_fig5b(benchmark):
    # The fast sweep includes the narrow widths where outliers live.
    result = run_and_report(benchmark, fig5.run_fig5b)
    outliers = result.series["outliers"]
    fixed = result.series["outliers_margin1"]
    # Shape: outliers decrease with width and the widest settings are
    # outlier-free; the narrowest width shows real outliers.
    assert outliers[0] > 0
    assert outliers[-1] == 0
    assert all(a >= b for a, b in zip(outliers, outliers[1:]))
    # Paper: "+1 integer bit mitigates ≈ half"; in our cleaner setup it
    # removes at least half wherever outliers exist.
    for base, margin in zip(outliers, fixed):
        if base:
            assert margin <= base / 2
