"""Library micro-benchmarks: inference throughput of the three engines.

Unlike the table/figure regenerations (measured once), these run multiple
rounds — they track the performance of the reproduction's own kernels:

* float U-Net forward (the numpy framework),
* fixed-point U-Net forward (the bit-accurate HLS twin),
* the graph-compiled fixed-point forward and control loop,
* the vectorised SoC latency sampler.
"""

import numpy as np
import pytest

from repro.experiments.common import bundle, converted, reference_configs
from repro.soc.board import AchillesBoard


@pytest.fixture(scope="module")
def frames():
    b = bundle()
    return b.dataset.unet_inputs(b.dataset.x_eval[:32])


@pytest.fixture(scope="module")
def compiled_unet():
    """Fresh conversion with the level-2 compiled plan installed — the
    shared ``converted`` cache must stay on the naive executor."""
    from repro.hls.converter import convert

    model = convert(bundle().unet,
                    reference_configs()["Layer-based Precision ac_fixed<16, x>"])
    model.compile(level=2)
    return model


def test_float_unet_forward(benchmark, frames):
    b = bundle()
    out = benchmark.pedantic(lambda: b.unet.forward(frames),
                             rounds=3, iterations=1)
    assert out.shape == (32, 520)


def test_fixed_unet_forward(benchmark, frames):
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    out = benchmark.pedantic(lambda: hls_model.predict(frames),
                             rounds=3, iterations=1)
    assert out.shape == (32, 520)


def test_fixed_unet_forward_per_frame(benchmark, frames):
    """Frame-at-a-time baseline for the batched forward above."""
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    out = benchmark.pedantic(
        lambda: np.concatenate([hls_model.predict(frames[i:i + 1])
                                for i in range(len(frames))]),
        rounds=3, iterations=1)
    assert out.shape == (32, 520)
    # The speedup is only reportable because the bits agree.
    assert np.array_equal(out, hls_model.predict(frames))


def test_compiled_unet_forward(benchmark, frames, compiled_unet):
    """Batched forward on the level-2 compiled plan."""
    out = benchmark.pedantic(lambda: compiled_unet.predict(frames),
                             rounds=3, iterations=1)
    assert out.shape == (32, 520)
    # The speedup is only reportable because the bits agree.
    assert np.array_equal(out, compiled_unet.predict(frames, compiled=False))


def test_runtime_batched_block(benchmark):
    """Fault-free control loop on the batched fast path (32 frames)."""
    from repro.soc.runtime import CentralNodeRuntime

    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    frames = bundle().dataset.x_eval[:32]

    def run_block():
        rt = CentralNodeRuntime(board=AchillesBoard(hls_model))
        return rt.run(frames, seed=7)

    records = benchmark.pedantic(run_block, rounds=3, iterations=1)
    assert len(records) == 32


def test_runtime_compiled_block(benchmark, compiled_unet):
    """Fault-free control loop on the compiled plan (32 frames)."""
    from repro.soc.runtime import CentralNodeRuntime

    frames = bundle().dataset.x_eval[:32]

    def run_block():
        rt = CentralNodeRuntime(board=AchillesBoard(compiled_unet))
        return rt.run(frames, seed=7)

    records = benchmark.pedantic(run_block, rounds=3, iterations=1)
    assert len(records) == 32


def test_latency_sampler(benchmark):
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    board = AchillesBoard(hls_model)
    lat = benchmark.pedantic(
        lambda: board.sample_latency_distribution(100_000, seed=0),
        rounds=3, iterations=1,
    )
    assert lat.shape == (100_000,)


def test_event_driven_frame(benchmark):
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    board = AchillesBoard(hls_model)
    b = bundle()
    frame = b.dataset.x_eval[0]
    timing = benchmark.pedantic(lambda: board.process_frame(frame),
                                rounds=3, iterations=1)
    assert timing.total > 0
