"""Benchmark: regenerate Table I (cross-platform latency comparison)."""

from benchmarks.conftest import run_and_report
from repro.experiments import table1


def test_table1(benchmark):
    result = run_and_report(benchmark, table1.run)
    # Shape assertions from the paper's Table I:
    rows = result.table.rows
    ours = [r for r in rows if r[0] == "This Work"]
    assert len(ours) == 2
    mlp_ms = float(ours[0][7])
    unet_ms = float(ours[1][7])
    # both meet the 3 ms budget; U-Net slower than MLP; both faster than
    # the DMA-based Arria 10 prior work ([7] at 3.8 ms)
    assert mlp_ms < unet_ms < 3.0 < 3.8
    assert ours[0][3] == "100,102" and ours[1][3] == "134,434"
