"""Benchmark: regenerate Table II (precision strategy trade-off)."""

from benchmarks.conftest import run_and_report
from repro.experiments import table2


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_table2(benchmark):
    result = run_and_report(benchmark, table2.run)
    rows = {r[0]: r for r in result.table.rows}
    u18 = rows["Uniform Precision ac_fixed<18, 10>"]
    u16 = rows["Uniform Precision ac_fixed<16, 7>"]
    lb = rows["Layer-based Precision ac_fixed<16, x>"]
    # Shape: 18-bit accurate but does not fit; 16-bit fits but collapses;
    # layer-based both accurate and small.
    assert _pct(u18[1]) > 95 and _pct(u18[2]) > 95
    assert _pct(u18[3]) > 100          # paper: 115 %
    assert _pct(u16[1]) < 70 and _pct(u16[2]) < 70   # paper: 16.7/36.5 %
    assert _pct(u16[3]) < 40           # paper: 22 %
    assert _pct(lb[1]) > 95 and _pct(lb[2]) > 95     # paper: 99.1/99.9 %
    assert _pct(lb[3]) < 50            # paper: 31 %
