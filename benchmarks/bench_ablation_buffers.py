"""Benchmark: on-chip stream-buffer sizing ablation."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_buffers(benchmark):
    result = run_and_report(benchmark, ablations.run_buffer_sizing)
    bits = result.series["memory_bits"]
    m20k = result.series["m20k"]
    # Bits grow with depth; the block count is granularity-dominated
    # (constant across depth multipliers at this design size).
    assert all(a < b for a, b in zip(bits, bits[1:]))
    assert m20k.max() == m20k.min()
