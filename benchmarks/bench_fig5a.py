"""Benchmark: regenerate Fig 5(a) (accuracy vs total bits)."""

import numpy as np

from benchmarks.conftest import run_and_report
from repro.experiments import fig5


def test_fig5a(benchmark):
    result = run_and_report(benchmark, fig5.run_fig5a)
    mi = result.series["MI"]
    rr = result.series["RR"]
    bits = result.series["bits"]
    # Shape: error decreases (weakly) as width grows; the widest setting
    # is far better than the narrowest for both machines.
    assert mi[-1] <= mi[0] and rr[-1] <= rr[0]
    assert rr[0] > 5 * rr[-1]
    # At 16 bits both machines are at least as accurate as the paper's
    # measured 0.025/0.005 (our quantized model is cleaner; EXPERIMENTS.md).
    at16 = int(np.where(bits == 16)[0][0]) if 16 in bits else -1
    assert mi[at16] <= 0.03 and rr[at16] <= 0.03
