"""Benchmark: PTQ vs QAT extension at narrow widths."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_qat(benchmark):
    result = run_and_report(benchmark, ablations.run_qat_comparison)
    ptq = result.series["ptq_min_acc"]
    qat = result.series["qat_min_acc"]
    # Honest finding: layer-based PTQ is already near-optimal for this
    # model, so QAT must match it within noise (and never collapse).
    assert (qat >= ptq - 0.01).all()
    assert qat.min() > 0.85
