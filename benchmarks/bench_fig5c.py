"""Benchmark: regenerate Fig 5(c) (system latency distribution)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig5


def test_fig5c(benchmark):
    result = run_and_report(benchmark, fig5.run_fig5c, fast=False)
    lat = result.series["latencies_s"]
    mean_ms = lat.mean() * 1e3
    # paper: mean 1.74 ms, range [1.73, 2.27], 99.97 % < 1.9 ms, 575 fps,
    # requirement 3 ms / 320 fps.
    assert 1.6 < mean_ms < 2.0
    assert lat.max() < 2.5e-3
    assert (lat < 1.9e-3).mean() > 0.995
    assert (lat < 3e-3).all()              # hard deadline never missed
    fps = 1.0 / lat.mean()
    assert fps > 320                        # deployment requirement
    # tail exists but is rare (the OS-jitter excursions above 2 ms)
    assert 0 < (lat > 2.0e-3).mean() < 0.01
