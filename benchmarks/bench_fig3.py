"""Benchmark: regenerate Fig 3 (platform comparison, batch size 1)."""

from benchmarks.conftest import run_and_report
from repro.experiments import fig3


def test_fig3(benchmark):
    result = run_and_report(benchmark, fig3.run)
    lat = {(r[0], r[1]): float(r[2]) for r in result.table.rows}
    fpga = "FPGA SoC (hls4ml)"
    # Shape: FPGA fastest for both models; only FPGA meets 3 ms for the
    # U-Net; GPU within ~2x of CPU at batch 1 ("similar to the CPU").
    for model in ("mlp", "unet"):
        assert lat[(model, fpga)] < lat[(model, "CPU (Keras)")]
        assert lat[(model, fpga)] < lat[(model, "GPU (Keras)")]
    assert lat[("unet", fpga)] <= 3.0
    assert lat[("unet", "CPU (Keras)")] > 3.0
    assert lat[("unet", "GPU (Keras)")] > 3.0
    ratio = lat[("unet", "GPU (Keras)")] / lat[("unet", "CPU (Keras)")]
    assert 0.3 < ratio < 3.0
    # Large-batch GPU amortization reaches the µs range.
    per_frame = result.series["unet/GPU per-frame vs batch"]
    assert per_frame[-1] < 100e-6
