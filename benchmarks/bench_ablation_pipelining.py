"""Benchmark: sequential vs double-buffered processing extension."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_pipelining(benchmark):
    result = run_and_report(benchmark, ablations.run_pipelining_comparison)
    seq = result.series["sequential_fps"]
    piped = result.series["pipelined_fps"]
    assert (piped >= seq).all()
    # the deployed sequential design already meets the 320 fps contract
    assert seq[0] >= 320
    # the MLP (transfer-bound) gains proportionally more than the U-Net
    assert piped[1] / seq[1] > piped[0] / seq[0]
