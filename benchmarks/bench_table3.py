"""Benchmark: regenerate Table III (deployed model/system summary)."""

from benchmarks.conftest import run_and_report
from repro.experiments import table3


def test_table3(benchmark):
    result = run_and_report(benchmark, table3.run)
    rows = {r[0]: r[1] for r in result.table.rows}
    assert rows["Trainable Parameters"] == "134,434"
    assert rows["Default Reuse Factor"] == "32"
    assert rows["Dense/Sigmoid Reuse Factor"] == "260"
    system_ms = float(rows["Average System Latency"].rstrip("ms"))
    ip_ms = float(rows["FPGA U-Net Latency"].rstrip("ms"))
    # paper: 1.74 / 1.57 ms; shape bands:
    assert 1.5 < system_ms < 2.1
    assert 1.3 < ip_ms < system_ms
    dsp = int(rows["Total DSP Blocks"].split()[0].replace(",", ""))
    assert dsp == 273
    regs = int(rows["Total Registers"].replace(",", ""))
    assert abs(regs - 406_123) / 406_123 < 0.05
