"""Benchmark: reuse-factor ablation (latency ↔ resources trade-off)."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_reuse(benchmark):
    result = run_and_report(benchmark, ablations.run_reuse_sweep)
    lat = result.series["latency_s"]
    alut = result.series["alut_fraction"]
    # Monotone trade-off: latency up, resources down.
    assert all(a <= b for a, b in zip(lat, lat[1:]))
    assert all(a >= b for a, b in zip(alut, alut[1:]))
    # The ends differ substantially (it is a real knob).
    assert lat[-1] > 1.3 * lat[0]
    assert alut[0] > 3 * alut[-1]
