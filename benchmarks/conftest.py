"""Benchmark-session fixtures.

The benchmarks regenerate paper tables/figures through pytest-benchmark.
Each harness is measured with ``rounds=1`` (they are deterministic
end-to-end regenerations, not microbenchmarks) and its paper-style table
is printed so a benchmark run doubles as a results report.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def warm_reference_artifacts():
    """Load the pre-trained bundle and the reference conversions once, so
    individual benchmarks measure experiment regeneration, not one-time
    model loading."""
    from repro.experiments.common import bundle, converted, unet_profiles

    bundle()
    unet_profiles()
    converted("Layer-based Precision ac_fixed<16, x>")
    converted("Uniform Precision ac_fixed<16, 7>")
    converted("Uniform Precision ac_fixed<18, 10>")


def run_and_report(benchmark, harness, fast: bool = True):
    """Benchmark one harness and print its rendered table."""
    result = benchmark.pedantic(harness, args=(fast,), rounds=1,
                                iterations=1)
    print()
    print(result.render())
    return result
