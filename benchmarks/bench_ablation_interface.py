"""Benchmark: MM bridge vs DMA ablation (the Table I transfer argument)."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_interface(benchmark):
    result = run_and_report(benchmark, ablations.run_interface_comparison)
    mm = result.series["mm_s"]
    dma = result.series["dma_s"]
    words = result.series["words"]
    # At the de-blending input size the MM bridge wins; at bulk sizes DMA
    # wins (its regime) — the crossover exists.
    assert mm[0] < dma[0]           # 260 words
    assert mm[-1] > dma[-1]         # 65,536 words
    # The frame-level row (last table row) must favour MM.
    frame_row = result.table.rows[-1]
    assert frame_row[-1] == "MM"
