"""Benchmark: interface-style ablation (streaming vs MM host)."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_interface_style(benchmark):
    result = run_and_report(benchmark, ablations.run_interface_style)
    mm = result.series["mm_s"]
    stream = result.series["stream_s"]
    # The customized MM host interface beats the stock streaming wrapper
    # for every model, and the penalty is proportionally worst for the
    # fast MLP (the wrapper overhead cannot amortize).
    assert (stream > mm).all()
    penalties = stream / mm
    assert penalties[-1] > penalties[0]  # mlp penalty > unet penalty
