"""Benchmark: standardization-placement ablation (Section IV-D)."""

from benchmarks.conftest import run_and_report
from repro.experiments import ablations


def test_ablation_standardization(benchmark):
    result = run_and_report(
        benchmark, ablations.run_standardization_comparison
    )
    acc_std = result.series["acc_std"]
    acc_bn = result.series["acc_bn"]
    # The deployed (pre-standardized) configuration must quantize well;
    # the in-model batch-norm attempt must be clearly degraded — the
    # paper's reason for abandoning it.
    assert acc_std.min() > 0.95
    assert acc_bn.max() < 0.85
    assert acc_bn.min() < 0.6
