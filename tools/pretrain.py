#!/usr/bin/env python
"""Train and persist the reference models (U-Net, MLP, batch-norm U-Net).

Deterministic: re-running reproduces the shipped weight files bit for bit.
Takes a few minutes of CPU time.
"""

import time

from repro.pretrained.bundle import reference_dataset, train_and_save_bundle


def main() -> None:
    t0 = time.time()
    print("synthesizing reference dataset ...", flush=True)
    dataset = reference_dataset()
    print(f"  raw range: [{dataset.raw_train.min():.0f}, "
          f"{dataset.raw_train.max():.0f}] counts")
    print("training reference models (U-Net 30 epochs, MLP 40, BN U-Net 10)",
          flush=True)
    bundle = train_and_save_bundle(dataset, include_bn=True, verbose=True)
    print(f"done in {time.time() - t0:.0f}s")
    print("metadata:", bundle.metadata)


if __name__ == "__main__":
    main()
