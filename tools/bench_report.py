"""Inference-throughput benchmark report.

Measures the simulation's frame throughput on the reference U-Net design
in four configurations — model-level ``HLSModel.predict`` (per-frame loop
vs one batched call) and the full ``CentralNodeRuntime`` control loop
(``batch_inference`` off vs on) — and writes the results to
``BENCH_inference.json``:

* ``fps`` — frames per second (wall clock, best of ``rounds``),
* ``latency_p50_ms`` / ``latency_p99_ms`` — per-frame wall-clock latency
  percentiles (individually timed frames for the sequential predict;
  per-round amortized block time elsewhere),
* ``peak_rss_kib`` — the process peak resident set,
* ``speedups`` — batched-over-sequential ratios.

The batched and sequential paths are asserted bit-identical before any
timing, so the report can never quote a speedup for a path that diverged.

Usage::

    PYTHONPATH=src python tools/bench_report.py [--quick]
        [--out BENCH_inference.json] [--baseline benchmarks/BENCH_baseline.json]

With ``--baseline`` the run exits non-zero if the fault-free batched
runtime fps regressed more than 20 % below the committed baseline (CI
uses this as a performance smoke test; absolute numbers are machine-
dependent, see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

#: Fractional fps floor relative to the baseline before the run fails.
REGRESSION_FLOOR = 0.8

#: The design every number in the report refers to.
STRATEGY = "Layer-based Precision ac_fixed<16, x>"


def _percentiles_ms(latencies_s: List[float]) -> Dict[str, float]:
    lat = np.asarray(latencies_s)
    return {
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def _bench(run_round: Callable[[], List[float]], rounds: int,
           n_frames: int) -> Dict[str, float]:
    """Time ``rounds`` repetitions; each returns per-frame latencies."""
    walls: List[float] = []
    samples: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        samples.extend(run_round())
        walls.append(time.perf_counter() - t0)
    best = min(walls)
    out = {"fps": n_frames / best, "wall_s": best, "frames": n_frames,
           "rounds": rounds}
    out.update(_percentiles_ms(samples))
    return out


def build_report(quick: bool = False) -> Dict[str, object]:
    from repro.experiments.common import bundle, converted
    from repro.soc.board import AchillesBoard
    from repro.soc.runtime import CentralNodeRuntime

    n_frames = 64 if quick else 256
    rounds = 2 if quick else 3

    b = bundle()
    model = converted(STRATEGY)
    frames = b.dataset.x_eval[:n_frames]
    if frames.shape[0] < n_frames:  # pragma: no cover - tiny eval splits
        n_frames = frames.shape[0]
    unet_in = b.dataset.unet_inputs(frames)

    # Correctness gate: the fast paths must be bit-identical before any
    # of their timings are worth reporting.
    batched = model.predict(unet_in)
    stacked = np.concatenate([model.predict(unet_in[i:i + 1])
                              for i in range(n_frames)])
    if not np.array_equal(batched, stacked):
        raise AssertionError("batched predict diverged from per-frame loop")

    def predict_sequential() -> List[float]:
        lats = []
        for i in range(n_frames):
            t0 = time.perf_counter()
            model.predict(unet_in[i:i + 1])
            lats.append(time.perf_counter() - t0)
        return lats

    def predict_batched() -> List[float]:
        # Same cache-friendly chunking the runtime fast path uses.
        from repro.soc.ip_core import BATCH_BLOCK_FRAMES
        t0 = time.perf_counter()
        for i in range(0, n_frames, BATCH_BLOCK_FRAMES):
            model.predict(unet_in[i:i + BATCH_BLOCK_FRAMES])
        return [(time.perf_counter() - t0) / n_frames]

    def runtime_round(batch: bool) -> List[float]:
        rt = CentralNodeRuntime(board=AchillesBoard(model),
                                batch_inference=batch)
        t0 = time.perf_counter()
        rt.run(frames, seed=7)
        return [(time.perf_counter() - t0) / n_frames]

    benchmarks = {
        "predict_sequential": _bench(predict_sequential, rounds, n_frames),
        "predict_batched": _bench(predict_batched, rounds, n_frames),
        "runtime_sequential": _bench(lambda: runtime_round(False), rounds,
                                     n_frames),
        "runtime_batched": _bench(lambda: runtime_round(True), rounds,
                                  n_frames),
    }
    return {
        "meta": {
            "strategy": STRATEGY,
            "quick": quick,
            "n_frames": n_frames,
            "rounds": rounds,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "benchmarks": benchmarks,
        "speedups": {
            "predict": (benchmarks["predict_batched"]["fps"]
                        / benchmarks["predict_sequential"]["fps"]),
            "runtime": (benchmarks["runtime_batched"]["fps"]
                        / benchmarks["runtime_sequential"]["fps"]),
        },
    }


def check_baseline(report: Dict[str, object], baseline_path: Path) -> bool:
    """True if the fault-free batched fps held within the floor."""
    baseline = json.loads(baseline_path.read_text())
    base_fps = baseline["benchmarks"]["runtime_batched"]["fps"]
    fps = report["benchmarks"]["runtime_batched"]["fps"]
    ratio = fps / base_fps
    print(f"runtime_batched fps: {fps:.1f} vs baseline {base_fps:.1f} "
          f"({ratio:.2f}x, floor {REGRESSION_FLOOR:.2f}x)")
    return ratio >= REGRESSION_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller frame block / fewer rounds (CI)")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_inference.json"))
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed report to compare against; exits "
                             "1 on a >20%% fps regression")
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    bm = report["benchmarks"]
    print(f"wrote {args.out}")
    for name in ("predict_sequential", "predict_batched",
                 "runtime_sequential", "runtime_batched"):
        r = bm[name]
        print(f"  {name:20s} {r['fps']:8.1f} fps  "
              f"p50 {r['latency_p50_ms']:.3f} ms  "
              f"p99 {r['latency_p99_ms']:.3f} ms")
    print(f"  speedups: predict {report['speedups']['predict']:.2f}x, "
          f"runtime {report['speedups']['runtime']:.2f}x; "
          f"peak RSS {report['peak_rss_kib']} KiB")

    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing", file=sys.stderr)
            return 1
        if not check_baseline(report, args.baseline):
            print("performance regression beyond the floor", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
