"""Inference-throughput benchmark report.

Measures the simulation's frame throughput on the reference U-Net design
across model-level ``HLSModel.predict`` configurations (per-frame loop,
one batched call on the naive executor, and the compiled graph plan) and
the full ``CentralNodeRuntime`` control loop (sequential, batched,
batched-on-compiled-plan, the compiled loop with the ``repro.obs``
tracing layer on, and the fault-active chaos pair) — and writes the
results to ``BENCH_inference.json``:

* ``fps`` — frames per second (wall clock, best of ``rounds``),
* ``latency_p50_ms`` / ``latency_p99_ms`` — per-frame wall-clock latency
  percentiles (individually timed frames for the sequential predict;
  per-round amortized block time elsewhere),
* ``peak_rss_kib`` — per benchmark, the process peak resident set
  sampled right after that benchmark finished (monotone: the delta over
  the previous benchmark is the growth it caused), plus the global peak,
* ``per_kernel`` — naive and compiled per-kernel milliseconds from a
  profiled batched pass, with compiled fused steps lined up against the
  sum of the naive kernels they absorbed,
* ``speedups`` — batched-over-sequential and compiled-over-batched
  ratios, plus the traced-over-untraced ``obs_overhead`` ratio (the run
  fails when tracing costs more than ``1 - OBS_OVERHEAD_FLOOR`` of fps),
* ``obs`` — the metrics/spans/recorder snapshot from the traced round,
* ``runtime_chaos_sequential`` / ``chaos_compiled`` — the control loop
  under an active fault schedule (every fault class at moderate rates),
  frame-at-a-time versus the speculative fault-aware fast path on the
  compiled plan.  The speculative run is asserted bit-identical to the
  sequential chaos reference before timing, and the run fails when the
  within-run ``chaos_speculation`` speedup drops below
  ``CHAOS_SPECULATION_FLOOR`` — the whole point of the taint model is
  that chaos no longer forfeits the fast path,
* ``serve_reference`` / ``serve_pool4`` — the sharded serving front-end
  (:mod:`repro.serve`, backlog arrivals) executed sequentially
  in-process and on a 4-worker spawn pool.  Pool wall time includes
  replica build and worker spawn, so it is a cold-start figure; the
  ``serve_pool`` speedup is reported but not baseline-gated,
* ``serve_warm4`` / ``daemon_steady`` — the same block on the farm's
  persistent warm pool (``start_pool``) and through the serving daemon
  over real TCP at ``DAEMON_STREAMS`` concurrent streams.  Both are
  bit-identity gated; the run additionally fails when the daemon's
  steady-state fps drops below the cold-start pool
  (``DAEMON_STEADY_FLOOR``) or its p99 simulated node latency breaks
  the ``DAEMON_SLO_P99_MS`` machine-protection SLO,
* ``serve_remote2`` — the same block served across two localhost host
  agents (``repro-hosts/1``, 2 workers each, zero local) from a warm
  :class:`~repro.serve.remote.HostPool`.  Bit-identity gated against
  the sequential farm reference shard by shard; the run fails when the
  steady-state remote fps drops below ``REMOTE_STEADY_FLOOR`` of the
  in-process warm pool at equal total workers,
* ``cartpole_closedloop`` — the closed-loop cartpole plant
  (:class:`repro.plants.CartpolePlant`) driven tick by tick on the
  compiled fast path.  Closed loops pay one 1-frame block per tick, so
  this is the small-batch figure the plant layer rides on.  The
  compiled episode is asserted bit-identical to the naive sequential
  executor, and the run fails if the quantized controller fails to
  stabilise the pole,
* ``replay_burst`` — 8 seeded bursty streams through a dedicated
  daemon (:mod:`repro.serve.replay`).  Shed decisions and batch
  boundaries are fixed offline by the deterministic admission
  simulation (asserted rerun-stable); the admitted frames must
  reproduce the sequential per-stream reference bit-exactly, and the
  worst per-stream p99 *simulated* node latency is gated against the
  same ``DAEMON_SLO_P99_MS`` budget.  Shed counts land in the meta.
* ``dse_pareto`` — the deterministic design-space-exploration
  autotuner (:mod:`repro.dse`) over the U-Net problem.  Three hard
  gates: non-empty Pareto front, recommended config fits the Arria-10
  resource model, and a seeded rerun reproduces the front byte for
  byte.  Search wall time and candidate counts land in the report.

All fast paths (batched, compiled, farm pool) are asserted bit-identical
to their reference before any timing, so the report can never quote a
speedup for a path that diverged — a farm pool run that diverges from
the sequential farm reference aborts the report.

Usage::

    PYTHONPATH=src python tools/bench_report.py [--quick]
        [--out BENCH_inference.json] [--baseline benchmarks/BENCH_baseline.json]

With ``--baseline`` the run exits non-zero if either the fault-free
batched runtime fps or the compiled runtime fps regressed more than 20 %
below the committed baseline (CI uses this as a performance smoke test;
absolute numbers are machine-dependent, see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

#: Fractional fps floor relative to the baseline before the run fails.
REGRESSION_FLOOR = 0.8

#: Traced compiled loop must keep at least this fraction of the untraced
#: fps (the obs layer's contract: near-zero overhead when on, zero when
#: off).  Checked on every run, no baseline file needed.
OBS_OVERHEAD_FLOOR = 0.9

#: Speculative chaos fast path must beat the sequential fault-path
#: baseline by at least this factor within the same run (no baseline
#: file needed — both sides are timed on the same machine).
CHAOS_SPECULATION_FLOOR = 1.5

#: The design every number in the report refers to.
STRATEGY = "Layer-based Precision ac_fixed<16, x>"

#: Benchmarks the baseline gate checks (both executors must hold).
#: The serve benchmarks stay ungated: pool fps includes spawn cold-start
#: and is far too machine-dependent for a committed floor.
GATED_BENCHMARKS = ("runtime_batched", "runtime_compiled")

#: Farm geometry for the serve benchmarks.
SERVE_SHARDS = 4
SERVE_MAX_BATCH = 16

#: Daemon steady-state serving: stream count and the hard SLO on the
#: p99 *simulated* node latency (the paper's machine-protection budget
#: is 3 ms end-to-end; the node share must stay under it with 4
#: concurrent streams live).  Deterministic — not machine-dependent —
#: so it is a hard gate with no baseline file.
DAEMON_STREAMS = 4
DAEMON_SLO_P99_MS = 3.0

#: Steady-state daemon throughput must at least match the cold-start
#: 4-worker pool within the same run (the daemon's reason to exist:
#: spawn + replica build amortised away).
DAEMON_STEADY_FLOOR = 1.0

#: Cross-host serving: two localhost agents, two workers each (equal
#: total workers to the warm in-process pool), and the fps floor the
#: warm remote pool must hold against ``serve_warm4`` — the transport
#: tax budget.
REMOTE_HOSTS = 2
REMOTE_WORKERS_PER_HOST = 2
REMOTE_STEADY_FLOOR = 0.9

#: Bursty replay load: stream count, the admission queue bound fed to
#: the deterministic simulation, and its service model (2 simulated
#: batch slots, 1.2 ms/frame) — tuned so every stream's bursts
#: overflow the bound and shed.
REPLAY_STREAMS = 8
REPLAY_QUEUE_LIMIT = 6
REPLAY_SIM_WORKERS = 2
REPLAY_SERVICE_PER_FRAME_S = 1.2e-3


def _rss_kib() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _percentiles_ms(latencies_s: List[float]) -> Dict[str, float]:
    lat = np.asarray(latencies_s)
    return {
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def _bench(run_round: Callable[[], List[float]], rounds: int,
           n_frames: int) -> Dict[str, float]:
    """Time ``rounds`` repetitions; each returns per-frame latencies.

    The peak RSS is sampled here, after the rounds, so each benchmark
    records the high-water mark as of its own completion instead of one
    end-of-process figure that hides which path allocated the memory.
    """
    walls: List[float] = []
    samples: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        samples.extend(run_round())
        walls.append(time.perf_counter() - t0)
    best = min(walls)
    out = {"fps": n_frames / best, "wall_s": best, "frames": n_frames,
           "rounds": rounds, "peak_rss_kib": _rss_kib()}
    out.update(_percentiles_ms(samples))
    return out


def _per_kernel(naive_model, compiled_model, unet_in) -> Dict[str, object]:
    """Per-kernel milliseconds of one profiled batched pass per executor.

    Compiled fused steps cover several naive kernels (a conv, its folded
    bias/BN and its activation run as one step); the ``compiled`` table
    keys them by step name and lists the absorbed kernels under
    ``covers`` so the two columns stay comparable.
    """
    naive_model.predict(unet_in, profile=True, executor="naive")
    naive_ms = {k: v * 1e3
                for k, v in naive_model.last_run_stats.step_times.items()}

    compiled_model.predict(unet_in, profile=True)
    stats = compiled_model.last_run_stats
    compiled_ms = {k: v * 1e3 for k, v in stats.step_times.items()}

    steps = {}
    for step in compiled_model.compiled_plan.steps:
        naive_sum = sum(naive_ms.get(name, 0.0) for name in step.covers)
        steps[step.name] = {
            "covers": list(step.covers),
            "naive_ms": round(naive_sum, 4),
            "compiled_ms": round(compiled_ms.get(step.name, 0.0), 4),
        }
    return {
        "naive_ms": {k: round(v, 4) for k, v in naive_ms.items()},
        "compiled_steps": steps,
    }


def build_report(quick: bool = False) -> Dict[str, object]:
    from repro.experiments.common import bundle, converted, reference_configs
    from repro.hls.converter import convert
    from repro.soc.board import AchillesBoard
    from repro.soc.runtime import CentralNodeRuntime

    n_frames = 64 if quick else 256
    rounds = 2 if quick else 3

    b = bundle()
    model = converted(STRATEGY)
    # The compiled twin is a fresh conversion: the shared ``converted``
    # cache stays on the naive executor for every other caller.
    compiled_model = convert(b.unet, reference_configs()[STRATEGY])
    compile_report = compiled_model.compile(level=2)
    frames = b.dataset.x_eval[:n_frames]
    if frames.shape[0] < n_frames:  # pragma: no cover - tiny eval splits
        n_frames = frames.shape[0]
    unet_in = b.dataset.unet_inputs(frames)

    # Correctness gate: every fast path must be bit-identical before any
    # of their timings are worth reporting.
    batched = model.predict(unet_in)
    stacked = np.concatenate([model.predict(unet_in[i:i + 1])
                              for i in range(n_frames)])
    if not np.array_equal(batched, stacked):
        raise AssertionError("batched predict diverged from per-frame loop")
    if not np.array_equal(compiled_model.predict(unet_in), batched):
        raise AssertionError("compiled predict diverged from naive executor")

    def predict_sequential() -> List[float]:
        lats = []
        for i in range(n_frames):
            t0 = time.perf_counter()
            model.predict(unet_in[i:i + 1])
            lats.append(time.perf_counter() - t0)
        return lats

    def predict_blocked(m) -> List[float]:
        # Same cache-friendly chunking the runtime fast path uses.
        from repro.soc.ip_core import BATCH_BLOCK_FRAMES
        t0 = time.perf_counter()
        for i in range(0, n_frames, BATCH_BLOCK_FRAMES):
            m.predict(unet_in[i:i + BATCH_BLOCK_FRAMES])
        return [(time.perf_counter() - t0) / n_frames]

    def runtime_round(m, batch: bool, traced: bool = False) -> List[float]:
        from repro.obs import ObsConfig, Observability
        obs = Observability.from_config(ObsConfig()) if traced else None
        rt = CentralNodeRuntime(board=AchillesBoard(m),
                                batch_inference=batch, obs=obs)
        t0 = time.perf_counter()
        rt.run(frames, seed=7)
        wall = time.perf_counter() - t0
        if traced:
            last_obs_snapshot["snapshot"] = obs.snapshot(runtime=rt)
        return [wall / n_frames]

    last_obs_snapshot: Dict[str, object] = {}

    # Chaos fast path: the speculative ladder keeps the compiled batch
    # engaged while a fault injector is live.  Moderate per-class rates —
    # representative chaos, not a worst-case soak.
    from repro.soc.faults import (ACNETFault, FaultInjector, HubDropFault,
                                  IPHangFault, LostIRQFault,
                                  NoisyMonitorFault, SEUFault)

    def chaos_injector() -> FaultInjector:
        return FaultInjector([
            HubDropFault(rate=0.02),
            NoisyMonitorFault(monitor=129, sigma=8.0, rate=0.03),
            IPHangFault(rate=0.02, extra_s=5e-3),
            LostIRQFault(rate=0.02),
            SEUFault(rate=0.02, ram="output"),
            ACNETFault(rate=0.03, failures=1),
        ], seed=2024)

    def chaos_round(m, batch: bool, sink: Dict[str, object] | None = None
                    ) -> List[float]:
        rt = CentralNodeRuntime(board=AchillesBoard(m),
                                injector=chaos_injector(),
                                batch_inference=batch)
        t0 = time.perf_counter()
        records = rt.run(frames, seed=7)
        wall = time.perf_counter() - t0
        if sink is not None:
            sink["records"] = records
            sink["health"] = rt.health_report()
        return [wall / n_frames]

    chaos_seq: Dict[str, object] = {}
    chaos_spec: Dict[str, object] = {}
    chaos_round(model, False, chaos_seq)
    chaos_round(compiled_model, True, chaos_spec)
    if chaos_spec["records"] != chaos_seq["records"]:
        raise AssertionError(
            "speculative chaos run diverged from the sequential fault-path "
            "reference — taint model correctness contract broken")
    chaos_health = chaos_spec["health"]
    if not chaos_health.frames_speculated:
        raise AssertionError(
            "speculation never engaged under the chaos schedule — the "
            "chaos_compiled benchmark would just re-time the slow path")

    # Sharded serving front-end: bit-identity gate first, timing after.
    from repro.core.api import RuntimeConfig, build_farm
    from repro.serve import BatchingPolicy

    farm = build_farm(model,
                      config=RuntimeConfig(batch_inference=True),
                      n_shards=SERVE_SHARDS,
                      batching=BatchingPolicy(max_batch=SERVE_MAX_BATCH),
                      seed=7, arrival_mode="backlog")
    serve_ref = farm.serve_reference(frames)
    serve_pool = farm.serve(frames, workers=4)
    if serve_pool.records != serve_ref.records or not np.array_equal(
            serve_pool.outputs, serve_ref.outputs):
        raise AssertionError(
            "4-worker farm pool diverged from the sequential farm "
            "reference — serving determinism contract broken")

    def serve_round(workers: int) -> List[float]:
        result = farm.serve(frames, workers=workers)
        if result.records != serve_ref.records:
            raise AssertionError(
                f"farm run (workers={workers}) diverged mid-benchmark")
        return [result.wall_s / n_frames]

    serve_rounds = 1 if quick else 2

    # Persistent daemon: 4 TCP streams fed round-robin slices of the
    # same frame block, so stream s reproduces farm shard s bit-exactly
    # (same shard_seed derivation, same backlog arrivals, same policy) —
    # a cross-layer identity gate between the one-shot farm and the
    # daemon.  One reference per (round, stream) because stream ids feed
    # seed derivation and every round uses fresh ids on the warm pool.
    from repro.core.api import start_daemon
    from repro.serve.daemon import serve_streams_reference
    from repro.serve.workers import OUTPUT_COLUMNS

    node_lat_col = OUTPUT_COLUMNS.index("node_latency_s")
    stream_frames = {s: frames[s::DAEMON_STREAMS]
                     for s in range(DAEMON_STREAMS)}
    daemon_rounds_total = serve_rounds + 1  # +1 warm-up
    daemon_refs = serve_streams_reference(
        farm.spec,
        {sid: stream_frames[sid % DAEMON_STREAMS]
         for sid in range(daemon_rounds_total * DAEMON_STREAMS)},
        batching=BatchingPolicy(max_batch=SERVE_MAX_BATCH),
        seed=7, arrival_mode="backlog")
    for s in range(DAEMON_STREAMS):
        if not np.array_equal(daemon_refs[s].rows,
                              serve_ref.outputs[s::DAEMON_STREAMS]):
            raise AssertionError(
                "per-stream daemon reference diverged from the farm "
                "shard reference — cross-layer determinism broken")

    daemon_meta: Dict[str, object] = {"next_sid": 0, "node_p99_ms": 0.0}

    def daemon_round(handle) -> List[float]:
        base = daemon_meta["next_sid"]
        daemon_meta["next_sid"] = base + DAEMON_STREAMS
        t0 = time.perf_counter()
        clients = {s: handle.client(stream_id=base + s)
                   for s in range(DAEMON_STREAMS)}
        lats: List[float] = []
        try:
            longest = max(f.shape[0] for f in stream_frames.values())
            for i in range(longest):
                for s, block in stream_frames.items():
                    if i < block.shape[0]:
                        clients[s].send(block[i])
                    clients[s].pump()
            for s, c in clients.items():
                c.finish(timeout_s=600.0)
                if c.shed:
                    raise AssertionError(
                        f"daemon shed {len(c.shed)} frames under the "
                        f"benchmark load (queue_limit too small)")
                n = stream_frames[s].shape[0]
                got = np.asarray([c.results[i] for i in range(n)])
                if not np.array_equal(got, daemon_refs[base + s].rows):
                    raise AssertionError(
                        f"daemon stream {base + s} diverged from the "
                        f"sequential per-stream reference")
                lats.extend(got[:, node_lat_col].tolist())
        finally:
            for c in clients.values():
                c.close()
        wall = time.perf_counter() - t0
        daemon_meta["node_p99_ms"] = max(
            daemon_meta["node_p99_ms"],
            float(np.percentile(lats, 99) * 1e3))
        return [wall / n_frames]

    benchmarks = {
        "predict_sequential": _bench(predict_sequential, rounds, n_frames),
        "predict_batched": _bench(lambda: predict_blocked(model), rounds,
                                  n_frames),
        "predict_compiled": _bench(lambda: predict_blocked(compiled_model),
                                   rounds, n_frames),
        "runtime_sequential": _bench(lambda: runtime_round(model, False),
                                     rounds, n_frames),
        "runtime_batched": _bench(lambda: runtime_round(model, True), rounds,
                                  n_frames),
        "runtime_compiled": _bench(lambda: runtime_round(compiled_model, True),
                                   rounds, n_frames),
        "runtime_compiled_traced": _bench(
            lambda: runtime_round(compiled_model, True, traced=True),
            rounds, n_frames),
        "runtime_chaos_sequential": _bench(
            lambda: chaos_round(model, False), rounds, n_frames),
        "chaos_compiled": _bench(
            lambda: chaos_round(compiled_model, True), rounds, n_frames),
        "serve_reference": _bench(lambda: serve_round(0), serve_rounds,
                                  n_frames),
        "serve_pool4": _bench(lambda: serve_round(4), serve_rounds,
                              n_frames),
    }

    # Warm pool: same farm, spawn + worker start paid once before the
    # timed rounds (replica builds still happen per task, from the warm
    # byte template).  Started only now so serve_pool4 above stays the
    # cold-start figure.
    with farm:
        farm.start_pool(4)
        serve_round(4)  # engage the live workers once, untimed
        benchmarks["serve_warm4"] = _bench(lambda: serve_round(4),
                                           serve_rounds, n_frames)

    # Daemon steady state: spawn + listener up before timing; the first
    # (untimed) round also pays the replica template cold build.
    handle = start_daemon(model, config=RuntimeConfig(batch_inference=True),
                          workers=DAEMON_STREAMS,
                          batching=BatchingPolicy(max_batch=SERVE_MAX_BATCH),
                          seed=7, arrival_mode="backlog",
                          queue_limit=max(64, n_frames))
    with handle:
        daemon_round(handle)  # warm-up round, untimed
        benchmarks["daemon_steady"] = _bench(
            lambda: daemon_round(handle), serve_rounds, n_frames)
        daemon_report = handle.drain()
    if daemon_report.worker_restarts:
        raise AssertionError(
            f"daemon workers crashed {daemon_report.worker_restarts} "
            f"time(s) during a fault-free benchmark")

    # Cross-host serving: two localhost agents take the farm's shards
    # over repro-hosts/1.  Identity is gated shard by shard against
    # the sequential reference (the remote pool scatters each shard's
    # rows back by global index, so any transport corruption shows).
    from repro.serve.farm import ShardedNodeFarm
    from repro.serve.remote import spawn_agent

    def remote_round(remote_farm) -> List[float]:
        result = remote_farm.serve(frames, workers=0)
        if result.records != serve_ref.records:
            raise AssertionError(
                "remote farm records diverged from the sequential farm "
                "reference — cross-host determinism contract broken")
        for s in range(SERVE_SHARDS):
            if not np.array_equal(result.outputs[s::SERVE_SHARDS],
                                  serve_ref.outputs[s::SERVE_SHARDS]):
                raise AssertionError(
                    f"remote shard {s} rows diverged from the in-process "
                    f"shard {s} rows")
        if result.health.host_failures:
            raise AssertionError(
                "host connections dropped during a fault-free benchmark")
        return [result.wall_s / n_frames]

    with spawn_agent(workers=REMOTE_WORKERS_PER_HOST) as a1, \
            spawn_agent(workers=REMOTE_WORKERS_PER_HOST) as a2:
        remote_farm = ShardedNodeFarm(
            farm.spec, n_shards=SERVE_SHARDS,
            batching=BatchingPolicy(max_batch=SERVE_MAX_BATCH),
            seed=7, arrival_mode="backlog",
            hosts=[a1.address, a2.address])
        with remote_farm:
            remote_farm.start_pool(workers=0)
            remote_round(remote_farm)   # untimed: connect + replica build
            benchmarks["serve_remote2"] = _bench(
                lambda: remote_round(remote_farm), serve_rounds, n_frames)

    # Closed-loop plant: identity + stabilisation gates first, then the
    # per-tick wall time of the compiled episode.
    from repro.core.api import build_runtime, run_control_loop
    from repro.plants import CartpolePlant, run_closed_loop

    cartpole = CartpolePlant()
    cartpole_frames = 64 if quick else 256
    cartpole_config = RuntimeConfig(batch_inference=True, compile_level=2)

    def cartpole_episode(config: RuntimeConfig):
        return run_control_loop(cartpole.default_model(),
                                n_frames=cartpole_frames, seed=3,
                                config=config, plant=cartpole)

    cartpole_ref = cartpole_episode(RuntimeConfig(batch_inference=False))
    cartpole_fast = cartpole_episode(cartpole_config)
    if cartpole_fast.records != cartpole_ref.records:
        raise AssertionError(
            "compiled closed-loop cartpole episode diverged from the "
            "naive sequential executor — plant determinism contract "
            "broken")
    if not cartpole_fast.control.stabilized:
        raise AssertionError(
            "the quantized cartpole controller failed to stabilise the "
            "pole — cartpole_closedloop would benchmark a broken loop")

    def cartpole_round() -> List[float]:
        rt = build_runtime(cartpole.default_model(),
                           config=cartpole_config, plant=cartpole)
        session = cartpole.session(3)
        t0 = time.perf_counter()
        run_closed_loop(rt, session, cartpole_frames, seed=3)
        return [(time.perf_counter() - t0) / cartpole_frames]

    benchmarks["cartpole_closedloop"] = _bench(cartpole_round, rounds,
                                               cartpole_frames)

    # Bursty traffic replay: seeded arrivals, deterministic admission.
    from repro.serve.replay import (BurstModel, accepted_frames,
                                    replay_streams, simulate_admission,
                                    synth_schedule)

    replay_per_stream = 24 if quick else 48
    replay_model = BurstModel(burst_mean=24.0, gap_mean_s=0.012)
    replay_policy = BatchingPolicy(max_batch=SERVE_MAX_BATCH)

    def replay_sim():
        return simulate_admission(
            synth_schedule(REPLAY_STREAMS, replay_per_stream, seed=11,
                           model=replay_model),
            batching=replay_policy, queue_limit=REPLAY_QUEUE_LIMIT,
            workers=REPLAY_SIM_WORKERS,
            service_per_frame_s=REPLAY_SERVICE_PER_FRAME_S)

    sim = replay_sim()
    if sim.signature() != replay_sim().signature():
        raise AssertionError(
            "replay admission simulation is not rerun-stable — seeded "
            "determinism contract broken")
    if sim.total_shed == 0:
        raise AssertionError(
            "bursty replay shed nothing — the load no longer exercises "
            "admission control (retune the burst model)")
    replay_frames = [b.dataset.x_eval[s * replay_per_stream:
                                      (s + 1) * replay_per_stream]
                     for s in range(REPLAY_STREAMS)]
    admitted = accepted_frames(sim, replay_frames)
    replay_refs = serve_streams_reference(
        farm.spec, admitted, batching=replay_policy, seed=7,
        arrival_mode="backlog")

    replay_handle = start_daemon(
        model, config=RuntimeConfig(batch_inference=True),
        workers=DAEMON_STREAMS, batching=replay_policy, seed=7,
        arrival_mode="backlog", queue_limit=4096)
    with replay_handle:
        replay_report = replay_streams(replay_handle, sim, replay_frames)
    node_lats: List[float] = []
    for s in range(REPLAY_STREAMS):
        n = len(admitted[s])
        got = np.asarray([replay_report.rows[s][i] for i in range(n)])
        if n and not np.array_equal(got, replay_refs[s].rows):
            raise AssertionError(
                f"replay stream {s} diverged from the sequential "
                f"per-stream reference")
        node_lats.extend(replay_report.node_latency_s[s].tolist())
    replay_bm = {
        "fps": replay_report.aggregate_fps,
        "wall_s": replay_report.wall_s,
        "frames": replay_report.frames_executed,
        "rounds": 1,
        "peak_rss_kib": _rss_kib(),
    }
    replay_bm.update(_percentiles_ms(node_lats))
    benchmarks["replay_burst"] = replay_bm
    # Deterministic DSE over the quantization/reuse/serving knob space.
    # Three hard gates, no baseline file: the Pareto front must be
    # non-empty, the recommended design must fit the Arria-10 resource
    # model, and a seeded rerun must reproduce the front byte for byte.
    from repro.dse import DSESettings, run_dse, unet_problem

    dse_settings = DSESettings(mode="adaptive",
                               budget=8 if quick else 12, seed=0)
    dse_problem = unet_problem(fast=quick, seed=0)
    t0 = time.perf_counter()
    dse_result = run_dse(dse_problem, settings=dse_settings)
    dse_wall = time.perf_counter() - t0
    dse_rerun = run_dse(dse_problem, settings=dse_settings)
    if not dse_result.front:
        raise AssertionError("DSE produced an empty Pareto front")
    if dse_result.front_json() != dse_rerun.front_json():
        raise AssertionError(
            "DSE seeded rerun diverged from the first front — "
            "determinism contract broken")
    dse_rec = dse_result.recommended
    if dse_rec is None or not dse_rec.fits:
        raise AssertionError(
            "DSE recommended config does not fit the Arria-10 "
            "resource model")
    benchmarks["dse_pareto"] = {
        "candidates_per_s": dse_result.n_simulated / dse_wall,
        "wall_s": dse_wall,
        "simulated": dse_result.n_simulated,
        "prefiltered": dse_result.n_prefiltered,
        "rounds": 1,
        "peak_rss_kib": _rss_kib(),
    }
    dse_meta = {
        "mode": dse_settings.mode,
        "budget": dse_settings.budget,
        "seed": dse_settings.seed,
        "front_size": len(dse_result.front),
        "rerun_identical": True,
        "recommended_strategy": dse_rec.candidate.strategy,
        "recommended_fits": dse_rec.fits,
        "recommended_accuracy": dse_rec.accuracy,
        "recommended_node_p99_ms": dse_rec.node_p99_ms,
        "recommended_fps_model": dse_rec.fps,
    }

    replay_meta = {
        "streams": REPLAY_STREAMS,
        "frames_per_stream": replay_per_stream,
        "queue_limit": REPLAY_QUEUE_LIMIT,
        "offered": sim.total_offered,
        "accepted": sim.total_accepted,
        "shed": sim.total_shed,
        "shed_per_stream": [len(s.shed) for s in sim.streams],
        "node_p99_ms_per_stream": [
            replay_report.node_p(s, 99) * 1e3
            for s in range(REPLAY_STREAMS)],
        "worst_node_p99_ms": replay_report.worst_node_p99_ms(),
        "slo_p99_ms": DAEMON_SLO_P99_MS,
    }

    return {
        "meta": {
            "strategy": STRATEGY,
            "quick": quick,
            "n_frames": n_frames,
            "rounds": rounds,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "compile": {
                "level": 2,
                "luts": len(compile_report.luts),
                "fused": len(compile_report.fused),
                "folded_bn": len(compile_report.folded),
                "arena_words": compile_report.arena_words,
            },
            "chaos": {
                "frames_speculated": chaos_health.frames_speculated,
                "frames_replayed": chaos_health.frames_replayed,
                "invalidation_counts": dict(
                    chaos_health.invalidation_counts),
            },
            "serve": {
                "n_shards": SERVE_SHARDS,
                "max_batch": SERVE_MAX_BATCH,
                "workers": 4,
                "rounds": serve_rounds,
                "arrival_mode": "backlog",
                "n_batches": serve_ref.plan.n_batches,
            },
            "daemon": {
                "streams": DAEMON_STREAMS,
                "rounds": serve_rounds,
                "arrival_mode": "backlog",
                "queue_limit": max(64, n_frames),
                "node_p99_ms": daemon_meta["node_p99_ms"],
                "slo_p99_ms": DAEMON_SLO_P99_MS,
                "frames_total": daemon_report.frames_total,
                "frames_shed": daemon_report.frames_shed,
                "batches": daemon_report.batches,
            },
            "remote": {
                "hosts": REMOTE_HOSTS,
                "workers_per_host": REMOTE_WORKERS_PER_HOST,
                "local_workers": 0,
                "rounds": serve_rounds,
                "floor_vs_warm": REMOTE_STEADY_FLOOR,
            },
            "plant": {
                "name": cartpole.name,
                "episode_frames": cartpole_frames,
                "seed": 3,
                "stabilized": cartpole_fast.control.stabilized,
                "stabilization_ms":
                    cartpole_fast.control.stabilization_time_s * 1e3,
                "trip_precision": cartpole_fast.control.trip_precision,
                "trip_recall": cartpole_fast.control.trip_recall,
                "rms_state_error": cartpole_fast.control.rms_state_error,
            },
            "replay": replay_meta,
            "dse": dse_meta,
        },
        "peak_rss_kib": _rss_kib(),
        "benchmarks": benchmarks,
        "per_kernel": _per_kernel(model, compiled_model, unet_in),
        "speedups": {
            "predict": (benchmarks["predict_batched"]["fps"]
                        / benchmarks["predict_sequential"]["fps"]),
            "predict_compile": (benchmarks["predict_compiled"]["fps"]
                                / benchmarks["predict_batched"]["fps"]),
            "runtime": (benchmarks["runtime_batched"]["fps"]
                        / benchmarks["runtime_sequential"]["fps"]),
            "runtime_compile": (benchmarks["runtime_compiled"]["fps"]
                                / benchmarks["runtime_batched"]["fps"]),
            "obs_overhead": (benchmarks["runtime_compiled_traced"]["fps"]
                             / benchmarks["runtime_compiled"]["fps"]),
            "chaos_speculation": (
                benchmarks["chaos_compiled"]["fps"]
                / benchmarks["runtime_chaos_sequential"]["fps"]),
            "serve_pool": (benchmarks["serve_pool4"]["fps"]
                           / benchmarks["serve_reference"]["fps"]),
            "serve_warm": (benchmarks["serve_warm4"]["fps"]
                           / benchmarks["serve_pool4"]["fps"]),
            "daemon_steady": (benchmarks["daemon_steady"]["fps"]
                              / benchmarks["serve_pool4"]["fps"]),
            "serve_remote": (benchmarks["serve_remote2"]["fps"]
                             / benchmarks["serve_warm4"]["fps"]),
        },
        "obs": last_obs_snapshot.get("snapshot"),
    }


def check_baseline(report: Dict[str, object], baseline_path: Path) -> bool:
    """True if every gated benchmark's fps held within the floor."""
    baseline = json.loads(baseline_path.read_text())
    ok = True
    for name in GATED_BENCHMARKS:
        base = baseline["benchmarks"].get(name)
        if base is None:  # pragma: no cover - pre-compiler baselines
            print(f"{name}: no baseline entry, skipping")
            continue
        fps = report["benchmarks"][name]["fps"]
        ratio = fps / base["fps"]
        print(f"{name} fps: {fps:.1f} vs baseline {base['fps']:.1f} "
              f"({ratio:.2f}x, floor {REGRESSION_FLOOR:.2f}x)")
        ok = ok and ratio >= REGRESSION_FLOOR
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller frame block / fewer rounds (CI)")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_inference.json"))
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed report to compare against; exits "
                             "1 on a >20%% fps regression")
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    bm = report["benchmarks"]
    print(f"wrote {args.out}")
    for name in ("predict_sequential", "predict_batched", "predict_compiled",
                 "runtime_sequential", "runtime_batched", "runtime_compiled",
                 "runtime_compiled_traced", "runtime_chaos_sequential",
                 "chaos_compiled", "serve_reference", "serve_pool4",
                 "serve_warm4", "daemon_steady", "serve_remote2",
                 "cartpole_closedloop", "replay_burst"):
        r = bm[name]
        print(f"  {name:20s} {r['fps']:8.1f} fps  "
              f"p50 {r['latency_p50_ms']:.3f} ms  "
              f"p99 {r['latency_p99_ms']:.3f} ms  "
              f"rss {r['peak_rss_kib']} KiB")
    sp = report["speedups"]
    print(f"  speedups: predict {sp['predict']:.2f}x "
          f"(compile {sp['predict_compile']:.2f}x), "
          f"runtime {sp['runtime']:.2f}x "
          f"(compile {sp['runtime_compile']:.2f}x); "
          f"peak RSS {report['peak_rss_kib']} KiB")
    print(f"  obs overhead: traced compiled loop at "
          f"{sp['obs_overhead']:.2f}x untraced fps "
          f"(floor {OBS_OVERHEAD_FLOOR:.2f}x)")
    chaos = report["meta"]["chaos"]
    print(f"  chaos: speculative compiled loop at "
          f"{sp['chaos_speculation']:.2f}x the sequential fault-path "
          f"baseline (floor {CHAOS_SPECULATION_FLOOR:.2f}x; "
          f"{chaos['frames_speculated']} speculated, "
          f"{chaos['frames_replayed']} replayed, bit-identity gated)")
    print(f"  serve: 4-worker pool at {sp['serve_pool']:.2f}x the "
          f"sequential farm reference (bit-identity gated, cold-start "
          f"wall, not baseline-gated)")
    daemon = report["meta"]["daemon"]
    print(f"  daemon: steady state at {sp['daemon_steady']:.2f}x the "
          f"cold-start pool (floor {DAEMON_STEADY_FLOOR:.2f}x; warm pool "
          f"at {sp['serve_warm']:.2f}x), p99 node latency "
          f"{daemon['node_p99_ms']:.3f} ms at {daemon['streams']} "
          f"concurrent streams (SLO {daemon['slo_p99_ms']:.1f} ms)")
    remote = report["meta"]["remote"]
    print(f"  remote: {remote['hosts']} host agents x "
          f"{remote['workers_per_host']} workers at "
          f"{sp['serve_remote']:.2f}x the in-process warm pool "
          f"(floor {REMOTE_STEADY_FLOOR:.2f}x, equal total workers, "
          f"bit-identity gated shard by shard)")
    plant = report["meta"]["plant"]
    print(f"  plant: closed-loop {plant['name']} stabilised in "
          f"{plant['stabilization_ms']:.0f} ms, trip precision/recall "
          f"{plant['trip_precision']:.2f}/{plant['trip_recall']:.2f} "
          f"(compiled tick loop, bit-identity gated against the naive "
          f"executor)")
    replay = report["meta"]["replay"]
    print(f"  replay: {replay['streams']} bursty streams, "
          f"{replay['accepted']}/{replay['offered']} admitted "
          f"({replay['shed']} shed, deterministic), worst per-stream "
          f"p99 node latency {replay['worst_node_p99_ms']:.3f} ms "
          f"(SLO {replay['slo_p99_ms']:.1f} ms)")
    dse = report["meta"]["dse"]
    dse_bm = bm["dse_pareto"]
    print(f"  dse: {dse['mode']} search (budget {dse['budget']}, seed "
          f"{dse['seed']}) simulated {dse_bm['simulated']} / pre-filtered "
          f"{dse_bm['prefiltered']} candidates in {dse_bm['wall_s']:.1f} s; "
          f"front size {dse['front_size']}, rerun byte-identical; "
          f"recommended {dse['recommended_strategy']} "
          f"(acc {dse['recommended_accuracy']:.1%}, fits, node p99 "
          f"{dse['recommended_node_p99_ms']:.3f} ms)")

    if sp["obs_overhead"] < OBS_OVERHEAD_FLOOR:
        print("observability overhead beyond the floor", file=sys.stderr)
        return 1
    if sp["chaos_speculation"] < CHAOS_SPECULATION_FLOOR:
        print("speculative chaos fast path below the floor", file=sys.stderr)
        return 1
    if daemon["node_p99_ms"] > DAEMON_SLO_P99_MS:
        print(f"daemon p99 node latency {daemon['node_p99_ms']:.3f} ms "
              f"breaks the {DAEMON_SLO_P99_MS:.1f} ms SLO", file=sys.stderr)
        return 1
    if sp["daemon_steady"] < DAEMON_STEADY_FLOOR:
        print("daemon steady-state throughput below the cold-start pool",
              file=sys.stderr)
        return 1
    if sp["serve_remote"] < REMOTE_STEADY_FLOOR:
        print(f"cross-host serving at {sp['serve_remote']:.2f}x the warm "
              f"pool is below the {REMOTE_STEADY_FLOOR:.2f}x floor",
              file=sys.stderr)
        return 1
    if replay["worst_node_p99_ms"] > DAEMON_SLO_P99_MS:
        print(f"bursty replay p99 node latency "
              f"{replay['worst_node_p99_ms']:.3f} ms breaks the "
              f"{DAEMON_SLO_P99_MS:.1f} ms SLO", file=sys.stderr)
        return 1
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing", file=sys.stderr)
            return 1
        if not check_baseline(report, args.baseline):
            print("performance regression beyond the floor", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
