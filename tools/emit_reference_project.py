#!/usr/bin/env python
"""Emit the deployed U-Net's C++ project to ``build/unet_hls_project/``.

Writes the full hls4ml-style artefact — parameters header, per-layer
quantized weight tables (raw ``ac_fixed`` words), the Avalon-MM-host
component and the co-simulation testbench — plus reference test vectors
for ten evaluation frames.
"""

import sys
from pathlib import Path

from repro.experiments.common import bundle, converted
from repro.hls.codegen import write_project
from repro.verify.testbench import write_test_vectors


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "build/unet_hls_project")
    print(f"emitting the deployed U-Net project to {out}/ ...")
    b = bundle()
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    write_project(hls_model, out, include_weights=True)
    frames = b.dataset.unet_inputs(b.dataset.x_eval[:10])
    inp, exp = write_test_vectors(hls_model, frames, out / "tb_data")
    n_files = sum(1 for _ in out.rglob("*") if _.is_file())
    total = sum(p.stat().st_size for p in out.rglob("*") if p.is_file())
    print(f"  {n_files} files, {total / 1e6:.1f} MB "
          f"(weights are the dominant part)")
    print(f"  test vectors: {inp.name}, {exp.name} (10 frames)")


if __name__ == "__main__":
    main()
