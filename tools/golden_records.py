"""Golden beam-loss run records for behavior-preservation tests.

The `repro.plants` refactor moved the beam-loss data substrate behind
the :class:`~repro.plants.BeamLossPlant` interface.  The refactor claims
to be a pure re-plumbing: every run record the facade produced before
must come out bit-identical after.  This tool captured the reference
records *on the pre-refactor tree* and wrote them to
``tests/data/golden_beamloss.json``; ``tests/test_plants.py`` replays
the same three scenarios through the current code and compares the
serialized streams byte for byte.

Floats are serialized with ``float.hex()`` so the comparison is exact
(no repr rounding, no JSON float round-trip ambiguity).

Usage (only needed to regenerate after an *intentional* behavior
change — never to paper over an accidental one)::

    PYTHONPATH=src python tools/golden_records.py
"""

from __future__ import annotations

import json
from pathlib import Path

#: Frame-block length.  Small enough to keep the fixture and the replay
#: test cheap, long enough to cross micro-batch boundaries on the farm.
N_FRAMES = 24

#: Farm geometry for the serve scenario.
FARM_SHARDS = 2
FARM_MAX_BATCH = 8

SEED = 7

OUT_PATH = Path(__file__).resolve().parent.parent / "tests" / "data" / \
    "golden_beamloss.json"


def _hex(x: float) -> str:
    return float(x).hex()


def record_to_jsonable(rec) -> dict:
    """Exact, stable serialization of one FrameRecord."""
    d = rec.decision
    return {
        "frame_index": int(rec.frame_index),
        "hub_delay_s": _hex(rec.hub_delay_s),
        "node_latency_s": _hex(rec.node_latency_s),
        "decision": {
            "frame_index": int(d.frame_index),
            "machine": d.machine,
            "score": _hex(d.score),
            "latency_s": _hex(d.latency_s),
            "deadline_met": bool(d.deadline_met),
        },
        "status": rec.status,
        "engine": rec.engine,
        "fault_kinds": list(rec.fault_kinds),
        "substituted_hubs": [int(h) for h in rec.substituted_hubs],
        "publish_attempts": int(rec.publish_attempts),
        "published": bool(rec.published),
    }


def serialize_records(records) -> list:
    return [record_to_jsonable(r) for r in records]


def capture() -> dict:
    """Run the three scenarios on the current tree and serialize them."""
    from repro.core.api import RuntimeConfig, build_farm, run_control_loop
    from repro.pretrained import load_reference_bundle
    from repro.serve import BatchingPolicy

    bundle = load_reference_bundle(train_if_missing=False)
    frames = bundle.dataset.x_eval[:N_FRAMES]

    sequential = run_control_loop(
        bundle.unet, frames, seed=SEED,
        config=RuntimeConfig(batch_inference=False))
    compiled = run_control_loop(
        bundle.unet, frames, seed=SEED,
        config=RuntimeConfig(batch_inference=True, compile_level=2))

    farm = build_farm(bundle.unet,
                      config=RuntimeConfig(batch_inference=True),
                      n_shards=FARM_SHARDS,
                      batching=BatchingPolicy(max_batch=FARM_MAX_BATCH),
                      seed=SEED, arrival_mode="backlog")
    served = farm.serve_reference(frames)

    return {
        "meta": {
            "n_frames": N_FRAMES,
            "seed": SEED,
            "farm_shards": FARM_SHARDS,
            "farm_max_batch": FARM_MAX_BATCH,
            "scenarios": {
                "sequential": "RuntimeConfig(batch_inference=False)",
                "compiled": ("RuntimeConfig(batch_inference=True, "
                             "compile_level=2)"),
                "farm": (f"build_farm(n_shards={FARM_SHARDS}, "
                         f"BatchingPolicy(max_batch={FARM_MAX_BATCH}), "
                         f"arrival_mode='backlog').serve_reference"),
            },
        },
        "sequential": serialize_records(sequential.records),
        "compiled": serialize_records(compiled.records),
        "farm": serialize_records(served.records),
        "farm_outputs": [[_hex(v) for v in row] for row in served.outputs],
    }


def main() -> int:
    golden = capture()
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(golden, indent=1) + "\n")
    print(f"wrote {OUT_PATH} "
          f"({len(golden['sequential'])} sequential records, "
          f"{len(golden['compiled'])} compiled, {len(golden['farm'])} farm)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
