#!/usr/bin/env python
"""Resource/latency model calibration report.

Compares the current model constants against every published anchor
(Table II ALUT percentages, Table III full-fit row, the measured IP and
system latencies) and prints relative errors.  Run after touching
``repro.hls.latency`` / ``repro.hls.resources`` constants or retraining
the reference models.
"""

from repro.experiments.common import bundle, converted
from repro.hls.latency import estimate_latency
from repro.hls.resources import estimate_resources
from repro.soc.board import AchillesBoard
from repro.utils.tables import Table

ANCHORS = [
    # (label, paper value, getter)
    ("uniform<16,7> ALUT %", 22.0,
     lambda a: a["u16"].alut_fraction * 100),
    ("layer-based ALUT %", 31.0,
     lambda a: a["lb"].alut_fraction * 100),
    ("uniform<18,10> ALUT %", 115.0,
     lambda a: a["u18"].alut_fraction * 100),
    ("ALMs (full fit)", 223_674.0, lambda a: a["lb"].alms),
    ("registers", 406_123.0, lambda a: a["lb"].registers),
    ("block memory bits", 25_275_808.0,
     lambda a: a["lb"].block_memory_bits),
    ("M20K blocks", 1_818.0, lambda a: a["lb"].m20k_blocks),
    ("DSP blocks", 273.0, lambda a: a["lb"].dsp_blocks),
    ("U-Net IP latency (ms)", 1.57, lambda a: a["ip_ms"]),
    ("system latency (ms)", 1.74, lambda a: a["sys_ms"]),
]


def main() -> None:
    bundle()  # ensure the trained reference exists
    artefacts = {
        "u16": estimate_resources(converted("Uniform Precision ac_fixed<16, 7>")),
        "u18": estimate_resources(converted("Uniform Precision ac_fixed<18, 10>")),
        "lb": estimate_resources(converted("Layer-based Precision ac_fixed<16, x>")),
    }
    lb_model = converted("Layer-based Precision ac_fixed<16, x>")
    artefacts["ip_ms"] = estimate_latency(lb_model).latency_s * 1e3
    board = AchillesBoard(lb_model)
    artefacts["sys_ms"] = (board.deterministic_latency_s()
                           + board.jitter.scale_s) * 1e3

    t = Table(["Anchor", "Paper", "Model", "Rel. error"],
              title="Calibration report (paper anchors vs current model)")
    worst = 0.0
    for label, target, getter in ANCHORS:
        value = float(getter(artefacts))
        rel = abs(value - target) / abs(target)
        worst = max(worst, rel)
        t.add_row([label, f"{target:,.10g}", f"{value:,.6g}", f"{rel:.1%}"])
    print(t.render())
    print(f"worst relative error: {worst:.1%}")


if __name__ == "__main__":
    main()
