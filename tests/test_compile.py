"""Bit-identity and API tests for the graph compiler (repro.hls.compile).

The compiled plan is only allowed to exist because every rewrite is
proven bit-identical at compile time; the tests here pin the proofs from
the outside:

* activation LUTs reproduce the naive kernel on **every** representable
  raw word of the producer format (exhaustive, U-Net and MLP),
* compiled ``predict`` equals the naive executor at levels 1 and 2 for
  several batch sizes,
* a full 260-frame ``CentralNodeRuntime`` stream produces identical
  :class:`FrameRecord` sequences on the compiled and naive boards, with
  and without an active fault injector,
* batch-norm folding engages on provably-exact wide formats and falls
  back (with a recorded reason) on the paper's 16-bit formats,
* the compile levels, the arena planner, ``RunStats`` telemetry and the
  CLI ``--compile-level`` plumbing behave as documented.
"""

import numpy as np
import pytest

from repro.fixed import FixedPointFormat, Overflow, Rounding
from repro.hls import HLSConfig, convert
from repro.hls.compile import _LUTStep, _build_lut, _lut_span_ok
from repro.nn import (
    BatchNormalization,
    Conv1D,
    Dense,
    Flatten,
    Input,
    Model,
    ReLU,
    Sigmoid,
)
from repro.soc.board import AchillesBoard
from repro.soc.faults import FaultInjector, HubDelayFault, NoisyMonitorFault
from repro.soc.runtime import CentralNodeRuntime

STRATEGY = "Layer-based Precision ac_fixed<16, x>"


# ----------------------------------------------------------------------
# Fixtures: fresh conversions (never the shared ``converted`` cache —
# other tests pin naive-path behaviour on that instance).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ref_bundle():
    from repro.experiments.common import bundle

    return bundle()


@pytest.fixture(scope="module")
def unet_naive(ref_bundle):
    from repro.experiments.common import reference_configs

    return convert(ref_bundle.unet, reference_configs()[STRATEGY])


@pytest.fixture(scope="module")
def unet_compiled(ref_bundle):
    from repro.experiments.common import reference_configs

    model = convert(ref_bundle.unet, reference_configs()[STRATEGY])
    model.compile(level=2)
    return model


@pytest.fixture(scope="module")
def mlp_compiled(ref_bundle):
    from repro.hls.precision import uniform_config

    model = convert(ref_bundle.mlp,
                    uniform_config(16, 7, model=ref_bundle.mlp))
    model.compile(level=2)
    return model


@pytest.fixture(scope="module")
def unet_frames(ref_bundle):
    ds = ref_bundle.dataset
    return ds.unet_inputs(ds.x_eval[:33])


def _lut_kernels(model):
    """(kernel, producer result format) pairs eligible for a LUT."""
    out = []
    for kernel in model.kernels:
        if not kernel.supports_lut:
            continue
        in_fmt = model.get_kernel(kernel.input_names[0]).config.result
        if _lut_span_ok(in_fmt):
            out.append((kernel, in_fmt))
    return out


# ----------------------------------------------------------------------
# Exhaustive LUT bit-identity
# ----------------------------------------------------------------------
class TestLUTExhaustive:
    def _check_all_raw_words(self, model):
        pairs = _lut_kernels(model)
        assert pairs, "model has no LUT-able activations"
        for kernel, in_fmt in pairs:
            raw = np.arange(in_fmt.raw_min, in_fmt.raw_max + 1,
                            dtype=np.int64)
            x = raw.astype(np.float64) * in_fmt.lsb
            x = np.broadcast_to(x, (1,) + x.shape).copy()
            step = _LUTStep(kernel, in_fmt, _build_lut(kernel, in_fmt))
            got = step.run([x], None)
            want = kernel.forward([x])
            assert np.array_equal(got, want), (
                f"{kernel.name}: LUT diverged on some raw word")

    def test_unet_every_activation_every_raw_word(self, unet_naive):
        self._check_all_raw_words(unet_naive)

    def test_mlp_every_activation_every_raw_word(self, mlp_compiled):
        self._check_all_raw_words(mlp_compiled)


# ----------------------------------------------------------------------
# Compiled predict == naive executor
# ----------------------------------------------------------------------
class TestCompiledPredict:
    @pytest.mark.parametrize("n", [1, 5, 33])
    def test_unet_level2_matches_naive(self, unet_compiled, unet_frames, n):
        x = unet_frames[:n]
        assert np.array_equal(unet_compiled.predict(x),
                              unet_compiled.predict(x, compiled=False))

    def test_unet_level1_matches_naive(self, unet_compiled, unet_frames):
        try:
            report = unet_compiled.compile(level=1)
            assert report.arena_words == 0
            assert np.array_equal(
                unet_compiled.predict(unet_frames),
                unet_compiled.predict(unet_frames, compiled=False))
        finally:
            unet_compiled.compile(level=2)

    def test_mlp_matches_naive(self, mlp_compiled, rng):
        x = rng.normal(0.0, 1.0,
                       size=(17,) + tuple(mlp_compiled.input_shape))
        assert np.array_equal(mlp_compiled.predict(x),
                              mlp_compiled.predict(x, compiled=False))

    def test_covers_partition_kernels(self, unet_compiled):
        """Every naive kernel is covered by exactly one compiled step."""
        covered = []
        for step in unet_compiled.compiled_plan.steps:
            covered.extend(step.covers)
        assert sorted(covered) == sorted(
            k.name for k in unet_compiled.kernels)

    def test_report_shape(self, unet_compiled):
        report = unet_compiled.compile(level=2).describe()
        assert "compile level 2" in report
        plan_report = unet_compiled.compiled_plan.report
        assert plan_report.luts, "U-Net should lower activation LUTs"
        assert plan_report.fused, "U-Net should fuse MAC pipelines"
        assert plan_report.arena_words > 0


# ----------------------------------------------------------------------
# Runtime streams (the acceptance pin: full control loop, 260 frames)
# ----------------------------------------------------------------------
class TestRuntimeStreams:
    N_FRAMES = 260

    def _run(self, model, frames, specs=None):
        rt = CentralNodeRuntime(
            board=AchillesBoard(model),
            injector=(FaultInjector(specs, seed=3)
                      if specs is not None else None),
            batch_inference=True,
        )
        return rt.run(frames, seed=7)

    def test_fault_free_records_identical(self, ref_bundle, unet_naive,
                                          unet_compiled):
        frames = ref_bundle.dataset.x_eval[: self.N_FRAMES]
        rec_naive = self._run(unet_naive, frames)
        rec_compiled = self._run(unet_compiled, frames)
        assert rec_naive == rec_compiled

    def test_injected_records_identical(self, ref_bundle, unet_naive,
                                        unet_compiled):
        specs = [NoisyMonitorFault(rate=0.3, sigma=0.5),
                 HubDelayFault(rate=0.2, delay_s=1e-4)]
        frames = ref_bundle.dataset.x_eval[: self.N_FRAMES]
        rec_naive = self._run(unet_naive, frames, specs=specs)
        rec_compiled = self._run(unet_compiled, frames, specs=specs)
        assert rec_naive == rec_compiled
        assert any(r.fault_kinds for r in rec_compiled)


# ----------------------------------------------------------------------
# Batch-norm folding
# ----------------------------------------------------------------------
def _bn_model():
    inp = Input((12, 1), name="in")
    x = Conv1D(3, 3, seed=0, name="c")(inp)
    x = BatchNormalization(name="bn")(x)
    x = ReLU(name="r")(x)
    x = Dense(2, seed=1, name="d")(x)
    x = Sigmoid(name="s")(x)
    out = Flatten(name="f")(x)
    m = Model(inp, out)
    xs = np.random.default_rng(0).normal(1.5, 2.0, size=(64, 12, 1))
    m.forward(xs, training=True)  # non-trivial batch-norm statistics
    return m


class TestBatchNormFolding:
    def _wide_config(self):
        """Formats under which the conv→BN fold is provably exact: the
        conv's result grid holds the full product precision, so the
        quantization between MAC and BN is the identity."""
        cfg = HLSConfig(strategy="fold-test")
        f16_8 = FixedPointFormat(16, 8, rounding=Rounding.RND,
                                 overflow=Overflow.SAT)
        wide = FixedPointFormat(44, 28, rounding=Rounding.TRN,
                                overflow=Overflow.SAT)  # 16 fraction bits
        cfg.set_layer("in", result=f16_8)
        cfg.set_layer("c", weight=f16_8, result=wide)
        cfg.set_layer("bn", weight=f16_8)
        return cfg

    def test_fold_engages_on_wide_formats(self, rng):
        model = convert(_bn_model(), self._wide_config())
        report = model.compile(level=2)
        assert report.folded == ["bn"]
        x = rng.normal(0.0, 2.0, size=(9, 12, 1))
        assert np.array_equal(model.predict(x),
                              model.predict(x, compiled=False))

    def test_fold_refused_at_16_bit(self):
        model = convert(_bn_model(), HLSConfig())
        report = model.compile(level=2)
        assert report.folded == []
        assert report.fallbacks.get("bn")  # reason recorded

    def test_level1_never_folds(self):
        model = convert(_bn_model(), self._wide_config())
        report = model.compile(level=1)
        assert report.folded == []


# ----------------------------------------------------------------------
# Compile API, telemetry, CLI plumbing
# ----------------------------------------------------------------------
class TestCompileAPI:
    def test_invalid_level_raises(self, mlp_compiled):
        with pytest.raises(ValueError):
            mlp_compiled.compile(level=3)
        assert mlp_compiled.compiled  # refused call left the plan alone

    def test_level0_uninstalls(self, ref_bundle, rng):
        from repro.hls.precision import uniform_config

        model = convert(ref_bundle.mlp,
                        uniform_config(16, 7, model=ref_bundle.mlp))
        model.compile(level=2)
        assert model.compiled
        report = model.compile(level=0)
        assert report.level == 0
        assert not model.compiled
        x = rng.normal(0.0, 1.0, size=(3,) + tuple(model.input_shape))
        model.predict(x)
        assert not model.last_run_stats.compiled

    def test_compiled_true_without_plan_raises(self, ref_bundle, rng):
        from repro.hls.precision import uniform_config

        model = convert(ref_bundle.mlp,
                        uniform_config(16, 7, model=ref_bundle.mlp))
        x = rng.normal(0.0, 1.0, size=(2,) + tuple(model.input_shape))
        with pytest.raises(ValueError):
            model.predict(x, compiled=True)

    def test_runstats_telemetry(self, mlp_compiled, rng):
        x = rng.normal(0.0, 1.0,
                       size=(4,) + tuple(mlp_compiled.input_shape))
        mlp_compiled.predict(x)
        stats = mlp_compiled.last_run_stats
        assert stats.compiled
        assert stats.kernel_times is None

        mlp_compiled.predict(x, profile=True)
        times = mlp_compiled.last_run_stats.kernel_times
        assert times is not None
        assert set(times) == {s.name
                              for s in mlp_compiled.compiled_plan.steps}
        assert all(t >= 0.0 for t in times.values())

        mlp_compiled.predict(x, compiled=False, profile=True)
        stats = mlp_compiled.last_run_stats
        assert not stats.compiled
        assert set(stats.kernel_times) == {k.name
                                           for k in mlp_compiled.kernels}

    def test_trace_stays_naive(self, mlp_compiled, rng):
        x = rng.normal(0.0, 1.0,
                       size=(2,) + tuple(mlp_compiled.input_shape))
        streams = mlp_compiled.trace(x)
        assert set(streams) == {k.name for k in mlp_compiled.kernels}
        assert not mlp_compiled.last_run_stats.compiled

    def test_set_compile_level_validates(self):
        from repro.experiments.common import (get_compile_level,
                                              set_compile_level)

        assert get_compile_level() == 0
        with pytest.raises(ValueError):
            set_compile_level(5)
        try:
            set_compile_level(2)
            assert get_compile_level() == 2
        finally:
            set_compile_level(0)

    def test_cli_accepts_compile_level(self, capsys):
        from repro.experiments.cli import main

        assert main(["--compile-level", "1", "--list"]) == 0
        assert "table1" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["--compile-level", "7", "--list"])
