"""Tests for auxiliary pieces: the Cyclone V bring-up stage, the
calibration tool, pretrained-bundle error handling, and full-model
codegen."""

import numpy as np
import pytest

from repro.verify import verify_cyclone_bringup


class TestCycloneBringup:
    def test_stage_passes(self):
        result = verify_cyclone_bringup()
        assert result.passed, result

    def test_reports_fit_fraction(self):
        result = verify_cyclone_bringup()
        assert 0.0 < result.details["alm_fraction"] < 1.0
        assert result.details["bit_exact"] is True


class TestCalibrationTool:
    def test_report_runs_and_is_tight(self, capsys, reference_bundle):
        import tools.calibrate as calibrate

        calibrate.main()
        out = capsys.readouterr().out
        assert "Calibration report" in out
        assert "worst relative error" in out
        # every anchor row present
        for anchor in ("ALUT", "registers", "DSP", "latency"):
            assert anchor in out
        worst = float(out.rsplit("worst relative error:", 1)[1]
                      .strip().rstrip("%"))
        assert worst < 50.0  # no anchor drifts past 50 %


class TestPretrainedErrors:
    def test_missing_weights_raise_helpfully(self, monkeypatch, tmp_path):
        import repro.pretrained.bundle as bundle_mod

        monkeypatch.setattr(bundle_mod, "DATA_DIR", tmp_path)
        with pytest.raises(FileNotFoundError, match="pretrain"):
            bundle_mod.load_reference_bundle(train_if_missing=False)

    def test_bundle_available_flag(self, monkeypatch, tmp_path):
        import repro.pretrained.bundle as bundle_mod

        monkeypatch.setattr(bundle_mod, "DATA_DIR", tmp_path)
        assert not bundle_mod.bundle_available()


class TestFullModelCodegen:
    def test_unet_project_emits(self, reference_hls_unet):
        from repro.hls.codegen import emit_project

        files = emit_project(reference_hls_unet, include_weights=False)
        # every weighted layer has a header
        names = {"enc1_conv", "enc2_conv", "bottleneck_conv", "dec2_conv",
                 "dec1_conv", "head_dense"}
        for name in names:
            assert f"firmware/weights/w_{name}.h" in files
        params = files["firmware/parameters.h"]
        assert "N_INPUTS  = 260" in params
        assert "N_OUTPUTS = 520" in params
        # layer-based formats visible in the typedefs
        assert "head_sigmoid_result_t" in params

    def test_unet_component_wires_skip_connections(self, reference_hls_unet):
        from repro.hls.codegen import emit_project

        files = emit_project(reference_hls_unet, include_weights=False)
        comp = files["firmware/unet_hls.cpp"]
        # the concat call receives both the upsample and the encoder path
        assert "dec1_up_out" in comp and "enc1_relu_out" in comp


class TestCLIFigures:
    def test_fig5c_prints_histogram(self, capsys):
        from repro.experiments.cli import main as cli_main

        assert cli_main(["fig5c", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "latency distribution" in out
        assert "#" in out
