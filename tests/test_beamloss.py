"""Tests for the beam-loss substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beamloss import (
    ACNETLog,
    BLMArray,
    BurstDynamics,
    HubNetwork,
    LossSite,
    Machine,
    TripController,
    TunnelGeometry,
    blend,
    default_mi,
    default_rr,
    make_dataset,
)
from repro.beamloss.controller import TripDecision
from repro.beamloss.dataset import Standardizer


class TestGeometry:
    geo = TunnelGeometry()

    def test_monitor_count(self):
        assert self.geo.monitor_positions.shape == (260,)

    def test_spacing(self):
        assert self.geo.monitor_spacing == pytest.approx(3319.0 / 260)

    def test_ring_distance_symmetric(self):
        assert self.geo.ring_distance(10.0, 3300.0) == pytest.approx(
            self.geo.ring_distance(3300.0, 10.0)
        )

    def test_ring_distance_wraps(self):
        # Going the short way around the ring.
        d = self.geo.ring_distance(0.0, 3319.0 - 5.0)
        assert d == pytest.approx(5.0)

    def test_index_distance_wraps(self):
        assert self.geo.monitor_index_distance(0, 259) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TunnelGeometry(n_monitors=0)
        with pytest.raises(ValueError):
            TunnelGeometry(circumference_m=-1)


class TestMachines:
    def test_footprint_shape(self):
        geo = TunnelGeometry()
        m = default_mi()
        fp = m.footprint(geo)
        assert fp.shape == (len(m.sites), 260)
        assert (fp >= 0).all()

    def test_footprint_peaks_at_centers(self):
        geo = TunnelGeometry()
        site = LossSite(center=100.0, width=3.0, strength=2.0)
        m = Machine("X", (site, site))
        fp = m.footprint(geo)
        assert np.argmax(fp[0]) == 100
        assert fp[0, 100] == pytest.approx(2.0)

    def test_footprint_periodic(self):
        geo = TunnelGeometry()
        site = LossSite(center=0.0, width=4.0)
        fp = Machine("X", (site, site)).footprint(geo)
        # Symmetric across the ring seam.
        assert fp[0, 1] == pytest.approx(fp[0, 259])

    def test_losses_shape_and_positivity(self):
        geo = TunnelGeometry()
        losses = default_rr().losses(geo, 50, seed=1)
        assert losses.shape == (50, 260)
        assert (losses >= 0).all()

    def test_losses_deterministic(self):
        geo = TunnelGeometry()
        a = default_mi().losses(geo, 20, seed=3)
        b = default_mi().losses(geo, 20, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_dynamics_burst_increases_mean(self):
        quiet = BurstDynamics(burst_rate=0.0)
        bursty = BurstDynamics(burst_rate=0.2, burst_scale=10.0)
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        q = quiet.sample(500, 4, rng1)
        b = bursty.sample(500, 4, rng2)
        assert b.mean() > q.mean() + 0.5

    def test_dynamics_nonnegative(self):
        d = BurstDynamics(ar_noise=0.5)
        out = d.sample(200, 3, np.random.default_rng(0))
        assert (out >= 0).all()

    def test_dynamics_validation(self):
        with pytest.raises(ValueError):
            BurstDynamics(ar_coeff=1.0)
        with pytest.raises(ValueError):
            BurstDynamics(burst_rate=1.5)
        with pytest.raises(ValueError):
            BurstDynamics(burst_decay=-0.1)

    def test_site_validation(self):
        with pytest.raises(ValueError):
            LossSite(center=0, width=0)

    def test_machine_needs_sites(self):
        with pytest.raises(ValueError):
            Machine("X", ())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 100), st.integers(1, 8))
    def test_dynamics_shape_property(self, n_frames, n_sites):
        d = BurstDynamics()
        out = d.sample(n_frames, n_sites, np.random.default_rng(0))
        assert out.shape == (n_frames, n_sites)
        assert (out >= 0).all()


class TestBlending:
    def test_total_is_sum(self):
        geo = TunnelGeometry()
        fr = blend([default_mi(), default_rr()], geo, 30, seed=0)
        np.testing.assert_allclose(fr.total, fr.per_machine.sum(axis=0))

    def test_targets_in_unit_interval(self):
        geo = TunnelGeometry()
        fr = blend([default_mi(), default_rr()], geo, 30, seed=0)
        assert (fr.targets >= 0).all() and (fr.targets <= 1).all()

    def test_targets_sum_below_one(self):
        # Fractions gated by significance never exceed 1 in total.
        geo = TunnelGeometry()
        fr = blend([default_mi(), default_rr()], geo, 30, seed=0)
        assert (fr.targets.sum(axis=-1) <= 1.0 + 1e-9).all()

    def test_rr_dominates_mi_on_average(self):
        # The calibrated asymmetry behind the paper's 0.17 vs 0.42.
        geo = TunnelGeometry()
        fr = blend([default_mi(), default_rr()], geo, 300, seed=0)
        assert fr.targets[..., 1].mean() > 1.5 * fr.targets[..., 0].mean()

    def test_flat_layout_monitor_major(self):
        geo = TunnelGeometry()
        fr = blend([default_mi(), default_rr()], geo, 5, seed=0)
        flat = fr.flat_targets()
        assert flat.shape == (5, 520)
        np.testing.assert_array_equal(flat[:, 0], fr.targets[:, 0, 0])
        np.testing.assert_array_equal(flat[:, 1], fr.targets[:, 0, 1])

    def test_quiet_monitors_zero_targets(self):
        geo = TunnelGeometry()
        fr = blend([default_mi(), default_rr()], geo, 100, seed=0)
        quiet = fr.total < np.quantile(fr.total, 0.28)
        assert fr.targets[quiet].max() == 0.0

    def test_needs_two_machines(self):
        with pytest.raises(ValueError):
            blend([default_mi()], TunnelGeometry(), 10)


class TestBLM:
    def test_counts_in_paper_range(self):
        blm = BLMArray()
        counts = blm.digitize(np.zeros((100, 260)), seed=0)
        assert counts.min() >= 104_000
        assert counts.max() <= 120_000

    def test_counts_saturate(self):
        blm = BLMArray()
        counts = blm.digitize(np.full((2, 260), 1e9), seed=0)
        assert counts.max() == blm.adc_max

    def test_counts_integer_valued(self):
        blm = BLMArray()
        counts = blm.digitize(np.ones((5, 260)), seed=0)
        np.testing.assert_array_equal(counts, np.rint(counts))

    def test_gain_monotone(self):
        blm = BLMArray(noise_counts=0.0)
        low = blm.digitize(np.ones((1, 260)), seed=0)
        high = blm.digitize(np.full((1, 260), 2.0), seed=0)
        assert (high >= low).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BLMArray().digitize(np.zeros((10, 99)))

    def test_deterministic_pedestals(self):
        a, b = BLMArray(seed=3), BLMArray(seed=3)
        np.testing.assert_array_equal(a.pedestal, b.pedestal)


class TestHubs:
    net = HubNetwork()

    def test_spans_cover_monitors(self):
        spans = self.net.spans()
        assert len(spans) == 7
        assert spans[0][0] == 0
        assert spans[-1][1] == 260
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 == b0  # contiguous

    def test_split_assemble_roundtrip(self):
        frame = np.arange(260.0)
        packets = self.net.split_frame(frame)
        np.testing.assert_array_equal(self.net.assemble(packets), frame)

    def test_split_checks_width(self):
        with pytest.raises(ValueError):
            self.net.split_frame(np.zeros(100))

    def test_arrival_times_positive(self):
        t = self.net.arrival_times(50, seed=0)
        assert t.shape == (50, 7)
        assert (t >= self.net.mean_latency_s).all()

    def test_frame_complete_is_max(self):
        t = self.net.arrival_times(10, seed=1)
        done = HubNetwork().frame_complete_times(10, seed=1)
        np.testing.assert_allclose(done, t.max(axis=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            HubNetwork(n_hubs=0)
        with pytest.raises(ValueError):
            HubNetwork(n_hubs=300, n_monitors=260)


class TestStandardizer:
    def test_transform_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(105_000, 120_000, size=(50, 10))
        s = Standardizer.fit(x)
        np.testing.assert_allclose(s.inverse_transform(s.transform(x)), x)

    def test_global_statistics(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(105_000, 120_000, size=(50, 10))
        s = Standardizer.fit(x)
        assert np.unique(s.mean).size == 1
        assert np.unique(s.std).size == 1

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            Standardizer.fit(np.zeros((1, 5)))

    def test_rejects_constant_data(self):
        with pytest.raises(ValueError):
            Standardizer.fit(np.full((10, 5), 7.0))


class TestDataset:
    def test_split_sizes(self, small_dataset):
        ds = small_dataset
        assert ds.raw_train.shape == (120, 260)
        assert ds.raw_val.shape == (30, 260)
        assert ds.raw_eval.shape == (60, 260)
        assert ds.y_train.shape == (120, 520)

    def test_raw_magnitudes(self, small_dataset):
        assert small_dataset.raw_train.min() >= 100_000
        assert small_dataset.raw_train.max() <= 131_071

    def test_standardized_values_span_wrap_threshold(self, small_dataset):
        # The Table II precondition: plenty of inputs beyond ±64 but
        # none beyond ±512.
        x = small_dataset.x_train
        assert (np.abs(x) > 64).mean() > 0.05
        assert np.abs(x).max() < 512

    def test_unet_inputs_shape(self, small_dataset):
        ds = small_dataset
        assert ds.unet_inputs(ds.x_train).shape == (120, 260, 1)

    def test_deterministic(self):
        a = make_dataset(n_train=20, n_val=5, n_eval=5, seed=3)
        b = make_dataset(n_train=20, n_val=5, n_eval=5, seed=3)
        np.testing.assert_array_equal(a.raw_train, b.raw_train)
        np.testing.assert_array_equal(a.y_eval, b.y_eval)

    def test_splits_differ(self, small_dataset):
        ds = small_dataset
        assert not np.array_equal(ds.raw_train[:30], ds.raw_eval[:30])


class TestTripController:
    def _output(self, mi=0.0, rr=0.0, monitors=260):
        out = np.zeros((monitors, 2))
        out[:, 0] = mi
        out[:, 1] = rr
        return out.ravel()

    def test_trips_dominant_machine(self):
        ctl = TripController()
        d = ctl.decide(self._output(mi=0.9, rr=0.1))
        assert d.machine == "MI"

    def test_healthy_frame_no_trip(self):
        ctl = TripController()
        d = ctl.decide(self._output(mi=0.1, rr=0.2))
        assert d.machine is None

    def test_min_votes_suppresses_single_monitor(self):
        ctl = TripController(min_votes=3)
        out = np.zeros((260, 2))
        out[5, 1] = 0.99  # one noisy monitor
        d = ctl.decide(out.ravel())
        assert d.machine is None

    def test_deadline_tracking(self):
        ctl = TripController()
        ctl.decide(self._output(mi=0.9), latency_s=1.7e-3)
        ctl.decide(self._output(mi=0.9), latency_s=3.5e-3)
        assert ctl.deadline_miss_rate() == pytest.approx(0.5)

    def test_batch_and_counts(self):
        ctl = TripController()
        outs = np.stack([self._output(mi=0.9), self._output(rr=0.9),
                         self._output()])
        ctl.decide_batch(outs)
        counts = ctl.trip_counts()
        assert counts["MI"] == 1 and counts["RR"] == 1 and counts[None] == 1

    def test_accuracy_against_truth(self):
        ctl = TripController()
        ctl.decide(self._output(mi=0.9))
        ctl.decide(self._output(rr=0.9))
        assert ctl.accuracy_against(["MI", "MI"]) == pytest.approx(0.5)

    def test_output_width_checked(self):
        with pytest.raises(ValueError):
            TripController().decide(np.zeros(521))

    def test_validation(self):
        with pytest.raises(ValueError):
            TripController(probability_threshold=0.0)
        with pytest.raises(ValueError):
            TripController(min_votes=0)


class TestACNET:
    def _decision(self, machine="MI"):
        return TripDecision(frame_index=0, machine=machine, score=1.0,
                            latency_s=1e-3, deadline_met=True)

    def test_delivery_time(self):
        log = ACNETLog(transport_latency_s=100e-6)
        rec = log.publish(self._decision(), sent_at_s=1.0)
        assert rec.delivered_at_s == pytest.approx(1.0001)

    def test_order_enforced(self):
        log = ACNETLog()
        log.publish(self._decision(), sent_at_s=1.0)
        with pytest.raises(ValueError):
            log.publish(self._decision(), sent_at_s=0.5)

    def test_trips_filter(self):
        log = ACNETLog()
        log.publish(self._decision("MI"), 0.0)
        log.publish(self._decision(None), 1.0)
        assert len(log.trips()) == 1
        assert len(log) == 2
