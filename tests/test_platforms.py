"""Tests for the CPU/GPU/FPGA platform models."""

import numpy as np
import pytest

from repro.nn.zoo import build_mlp, build_unet
from repro.platforms import (
    CPUPlatform,
    FPGAPlatform,
    GPUPlatform,
    compare_platforms,
    gpu_batch_sweep,
)
from repro.platforms.base import model_flops, model_layers
from repro.platforms.compare import comparison_table


@pytest.fixture(scope="module")
def unet():
    return build_unet()


@pytest.fixture(scope="module")
def mlp():
    return build_mlp()


class TestCosts:
    def test_mlp_flops(self, mlp):
        # 2 × (260·128 + 128·518) MACs
        assert model_flops(mlp) == 2 * (260 * 128 + 128 * 518)

    def test_unet_flops_dominated_by_decoder(self, unet):
        flops = model_flops(unet)
        assert flops > 2 * 130 * 66816  # dec2 conv alone

    def test_layer_count_positive(self, unet):
        assert model_layers(unet) >= 10


class TestCPU:
    def test_overhead_floor(self, mlp):
        cpu = CPUPlatform(framework_overhead_s=2e-3)
        r = cpu.latency(mlp)
        assert r.latency_s >= 2e-3

    def test_flops_term_grows_with_batch(self, unet):
        cpu = CPUPlatform()
        r1 = cpu.latency(unet, 1)
        r64 = cpu.latency(unet, 64)
        assert r64.latency_s > r1.latency_s * 5

    def test_unet_misses_deadline(self, unet):
        assert CPUPlatform().latency(unet).latency_s > 3e-3


class TestGPU:
    def test_batch1_launch_dominated(self, unet):
        gpu = GPUPlatform()
        r = gpu.latency(unet, 1)
        assert r.latency_s > model_layers(unet) * gpu.launch_overhead_s * 0.9

    def test_amortization(self, unet):
        gpu = GPUPlatform()
        per1 = gpu.latency(unet, 1).per_frame_s
        per4096 = gpu.latency(unet, 4096).per_frame_s
        assert per4096 < per1 / 50
        assert per4096 < 100e-6  # µs-range, per the paper

    def test_batch_sweep_monotone(self, unet):
        sweep = gpu_batch_sweep(unet, batch_sizes=(1, 16, 256, 4096))
        per_frame = [r.per_frame_s for r in sweep]
        assert all(a >= b for a, b in zip(per_frame, per_frame[1:]))


class TestFPGA:
    def test_close_to_cpu_gpu_shape(self, unet, mlp):
        results = compare_platforms([mlp, unet], batch_size=1)
        by_key = {(r.model_name, r.platform): r.latency_s for r in results}
        fpga = FPGAPlatform.name
        # FPGA beats both CPU and GPU for both models at batch 1.
        for model in ("mlp", "unet"):
            assert by_key[(model, fpga)] < by_key[(model, "CPU (Keras)")]
            assert by_key[(model, fpga)] < by_key[(model, "GPU (Keras)")]

    def test_unet_meets_requirement_only_on_fpga(self, unet):
        results = compare_platforms([unet], batch_size=1)
        ok = {r.platform: r.latency_s <= 3e-3 for r in results}
        assert ok[FPGAPlatform.name]
        assert not ok["CPU (Keras)"]

    def test_linear_in_batch(self, mlp):
        fpga = FPGAPlatform()
        r1 = fpga.latency(mlp, 1)
        r4 = fpga.latency(mlp, 4)
        assert r4.latency_s == pytest.approx(4 * r1.latency_s)

    def test_table_renders(self, mlp):
        results = compare_platforms([mlp], batch_size=1)
        text = comparison_table(results).render()
        assert "mlp" in text and "CPU" in text

    def test_invalid_batch(self, mlp):
        with pytest.raises(ValueError):
            CPUPlatform().latency(mlp, 0)
