"""Bit-identity tests for the batched-inference fast path, the planned
executor and the vectorized fixed-point casts.

The fast paths are only allowed to exist because they are provably
bit-identical to the historical frame-at-a-time code; every test here
pins some piece of that proof:

* ``HLSModel.predict`` on a batch equals the stacked per-frame loop,
* the liveness-planned executor frees intermediates without changing
  results (and ``trace`` still retains everything),
* skipped requantization on grid-preserving kernels changes nothing,
* the runtime's ``batch_inference`` path replays the sequential records
  exactly — fault-free, with a fallback board, and with an injector
  (speculatively: tainted frames replay in-line, clean frames ride the
  precomputed words; ``speculation=False`` restores the historical
  whole-block disengage),
* the vectorized round/saturate pipeline matches a scalar pure-Python
  reference on every rounding × overflow mode,
* ``derive_stream_seeds`` decorrelates successive ``run()`` calls while
  keeping replays reproducible,
* ``SignalTrace`` keeps a pre-trigger window only when asked.
"""

import numpy as np
import pytest

from repro.beamloss.controller import TripController
from repro.beamloss.hubs import HubNetwork
from repro.fixed import FixedPointFormat, from_raw, quantize, quantize_, to_raw
from repro.fixed.format import Overflow, Rounding
from repro.hls import HLSConfig, convert
from repro.soc.board import AchillesBoard
from repro.soc.faults import (
    ACNETFault,
    FaultInjector,
    HubDelayFault,
    IPHangFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
)
from repro.soc.runtime import (
    CentralNodeRuntime,
    DegradationPolicy,
    derive_stream_seeds,
)
from repro.soc.trace import SignalTrace

N_MONITORS = 16
N_HUBS = 4


@pytest.fixture(scope="module")
def tiny_hls(tiny_model):
    return convert(tiny_model, HLSConfig())


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(99)
    return rng.normal(0.0, 1.0, size=(64, N_MONITORS))


def make_runtime(hls_model, batch=True, specs=None, with_fallback=False,
                 speculation=True):
    return CentralNodeRuntime(
        board=AchillesBoard(hls_model),
        fallback_board=AchillesBoard(hls_model) if with_fallback else None,
        hubs=HubNetwork(n_monitors=N_MONITORS, n_hubs=N_HUBS),
        controller=TripController(min_votes=1),
        injector=(FaultInjector(specs, seed=3)
                  if specs is not None else None),
        policy=DegradationPolicy(),
        batch_inference=batch,
        speculation=speculation,
    )


# ----------------------------------------------------------------------
# Model-level batching
# ----------------------------------------------------------------------
class TestBatchedPredict:
    def test_tiny_model_batch_equals_loop(self, tiny_hls, rng):
        x = rng.normal(0.0, 1.0, size=(24,) + tuple(tiny_hls.input_shape))
        batched = tiny_hls.predict(x)
        stacked = np.concatenate([tiny_hls.predict(x[i:i + 1])
                                  for i in range(len(x))])
        assert np.array_equal(batched, stacked)

    def test_unet_batch_equals_loop(self, reference_bundle,
                                    reference_hls_unet):
        ds = reference_bundle.dataset
        x = ds.unet_inputs(ds.x_eval[:16])
        batched = reference_hls_unet.predict(x)
        stacked = np.concatenate([reference_hls_unet.predict(x[i:i + 1])
                                  for i in range(len(x))])
        assert np.array_equal(batched, stacked)

    def test_split_invariance(self, tiny_hls, rng):
        """Any chunking of a batch gives the same bits (the property the
        cache-sized blocks in ``precompute_raw_outputs`` rely on)."""
        x = rng.normal(0.0, 1.0, size=(10,) + tuple(tiny_hls.input_shape))
        whole = tiny_hls.predict(x)
        parts = np.concatenate([tiny_hls.predict(x[:3]),
                                tiny_hls.predict(x[3:7]),
                                tiny_hls.predict(x[7:])])
        assert np.array_equal(whole, parts)


# ----------------------------------------------------------------------
# Planned executor
# ----------------------------------------------------------------------
class TestLivenessPlan:
    def test_unet_peak_live_pinned(self, reference_bundle,
                                   reference_hls_unet):
        ds = reference_bundle.dataset
        x = ds.unet_inputs(ds.x_eval[:4])
        reference_hls_unet.predict(x)
        stats = reference_hls_unet.last_run_stats
        assert not stats.retained_all
        assert stats.peak_live == reference_hls_unet.planned_peak_live()
        # The U-Net's widest cut: the deepest stack of open skip
        # connections. Keep-everything would hold every stream instead.
        assert stats.peak_live == 4
        assert stats.peak_live < len(reference_hls_unet.kernels)
        # Every stream except the model output is freed during the pass.
        assert stats.freed == len(reference_hls_unet.kernels) - 1

    def test_trace_retains_every_stream(self, tiny_hls, rng):
        x = rng.normal(0.0, 1.0, size=(3,) + tuple(tiny_hls.input_shape))
        streams = tiny_hls.trace(x)
        assert set(streams) == {k.name for k in tiny_hls.kernels}
        stats = tiny_hls.last_run_stats
        assert stats.retained_all
        assert stats.freed == 0
        assert stats.peak_live == len(tiny_hls.kernels)

    def test_predict_frees_intermediates(self, tiny_hls, rng):
        x = rng.normal(0.0, 1.0, size=(3,) + tuple(tiny_hls.input_shape))
        tiny_hls.predict(x)
        stats = tiny_hls.last_run_stats
        assert stats.peak_live == tiny_hls.planned_peak_live()
        assert stats.peak_live < len(tiny_hls.kernels)
        assert stats.freed > 0

    def test_trace_and_predict_agree(self, tiny_hls, rng):
        x = rng.normal(0.0, 1.0, size=(5,) + tuple(tiny_hls.input_shape))
        out = tiny_hls.predict(x)
        assert np.array_equal(out,
                              tiny_hls.trace(x)[tiny_hls.kernels[-1].name])


class TestRequantizationPlan:
    def test_skips_are_bit_exact(self, reference_bundle, reference_hls_unet):
        """Forcing every skipped cast back on must change nothing."""
        ds = reference_bundle.dataset
        x = ds.unet_inputs(ds.x_eval[:8])
        planned = reference_hls_unet.predict(x)
        skipped = [k for k in reference_hls_unet.kernels if not k.requantize]
        assert skipped, "plan found no redundant requantization on the U-Net"
        try:
            for k in skipped:
                k.requantize = True
            defensive = reference_hls_unet.predict(x)
        finally:
            for k in skipped:
                k.requantize = False
        assert np.array_equal(planned, defensive)


# ----------------------------------------------------------------------
# Runtime fast path
# ----------------------------------------------------------------------
class TestRuntimeFastPath:
    def test_fault_free_records_identical(self, tiny_hls, frames):
        fast = make_runtime(tiny_hls, batch=True)
        slow = make_runtime(tiny_hls, batch=False)
        rec_fast = fast.run(frames, seed=11)
        rec_slow = slow.run(frames, seed=11)
        assert rec_fast == rec_slow
        assert fast.counters.count("frame.batched") == len(frames)
        assert slow.counters.count("frame.batched") == 0

    def test_fault_free_with_fallback_board(self, tiny_hls, frames):
        fast = make_runtime(tiny_hls, batch=True, with_fallback=True)
        slow = make_runtime(tiny_hls, batch=False, with_fallback=True)
        assert fast.run(frames, seed=4) == slow.run(frames, seed=4)

    def test_injector_disengages_without_speculation(self, tiny_hls, frames):
        """speculation=False pins the historical behaviour: any active
        schedule forces the whole block sequential."""
        specs = [NoisyMonitorFault(rate=0.4, sigma=0.5),
                 HubDelayFault(rate=0.3, delay_s=1e-4)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs,
                            with_fallback=True, speculation=False)
        slow = make_runtime(tiny_hls, batch=False, specs=specs,
                            with_fallback=True)
        rec_fast = fast.run(frames, seed=11)
        rec_slow = slow.run(frames, seed=11)
        assert rec_fast == rec_slow
        assert any(r.fault_kinds for r in rec_fast)
        assert fast.counters.count("frame.batched") == 0
        assert fast.counters.count("spec.speculated") == 0
        assert fast.counters.count("spec.replayed") == 0

    def test_successive_runs_identical(self, tiny_hls, frames):
        """The fast path composes across run() calls like the slow one."""
        fast = make_runtime(tiny_hls, batch=True)
        slow = make_runtime(tiny_hls, batch=False)
        for lo, hi in ((0, 20), (20, 50), (50, 64)):
            assert (fast.run(frames[lo:hi], seed=8)
                    == slow.run(frames[lo:hi], seed=8))

    def test_fault_free_run_has_no_spec_counters(self, tiny_hls, frames):
        """Without an injector the speculative ladder never engages —
        the plain batched path keeps its original counters only."""
        fast = make_runtime(tiny_hls, batch=True)
        fast.run(frames, seed=11)
        assert fast.counters.count("spec.speculated") == 0
        assert fast.counters.count("spec.replayed") == 0


# ----------------------------------------------------------------------
# Speculative fault-aware batching
# ----------------------------------------------------------------------
class TestSpeculativeLadder:
    def test_mixed_chaos_bit_identical_and_majority_batched(
            self, tiny_hls, frames):
        specs = [NoisyMonitorFault(rate=0.1, sigma=0.5),
                 HubDelayFault(rate=0.1, delay_s=1e-4),
                 ACNETFault(rate=0.1),
                 SEUFault(rate=0.05),
                 LostIRQFault(rate=0.05)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs,
                            with_fallback=True)
        slow = make_runtime(tiny_hls, batch=False, specs=specs,
                            with_fallback=True)
        rec_fast = fast.run(frames, seed=11)
        rec_slow = slow.run(frames, seed=11)
        assert rec_fast == rec_slow
        assert any(r.fault_kinds for r in rec_fast)
        spec = fast.counters.count("spec.speculated")
        replayed = fast.counters.count("spec.replayed")
        assert spec == fast.counters.count("frame.batched")
        assert spec + replayed == len(frames)
        # The point of the ladder: most of the block rides the fast path.
        assert spec > len(frames) // 2

    def test_timing_and_publish_faults_ride_speculation(self, tiny_hls,
                                                        frames):
        """TIMING/POST taint never invalidates raw words: every frame of
        a block under pure hang/IRQ/publish chaos stays batched."""
        specs = [IPHangFault(rate=0.2, extra_s=5e-3),
                 LostIRQFault(rate=0.1),
                 ACNETFault(rate=0.2)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs)
        slow = make_runtime(tiny_hls, batch=False, specs=specs)
        rec_fast = fast.run(frames, seed=11)
        rec_slow = slow.run(frames, seed=11)
        assert rec_fast == rec_slow
        assert any(r.fault_kinds for r in rec_fast)
        assert fast.counters.count("spec.speculated") == len(frames)
        assert fast.counters.count("spec.replayed") == 0

    def test_seu_taint_propagates_one_scrub_frame(self, tiny_hls, frames):
        """A RAM upset invalidates the hit frame and the next (the scrub
        pass); speculation re-engages right after."""
        hit = 10
        specs = [SEUFault(rate=1.0, start=hit, stop=hit + 1)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs)
        slow = make_runtime(tiny_hls, batch=False, specs=specs)
        rec_fast = fast.run(frames, seed=11)
        assert rec_fast == slow.run(frames, seed=11)
        assert rec_fast[hit].fault_kinds == ("seu",)
        assert fast.counters.count("spec.replayed") == 2
        assert fast.counters.count("spec.speculated") == len(frames) - 2
        inval = fast.health_report().invalidation_counts
        assert inval == {"model_state": 2}

    def test_input_taint_replays_only_touched_frames(self, tiny_hls,
                                                     frames):
        hit = 7
        specs = [NoisyMonitorFault(rate=1.0, sigma=0.5,
                                   start=hit, stop=hit + 3)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs)
        slow = make_runtime(tiny_hls, batch=False, specs=specs)
        assert fast.run(frames, seed=11) == slow.run(frames, seed=11)
        assert fast.counters.count("spec.replayed") == 3
        assert fast.counters.count("spec.speculated") == len(frames) - 3
        assert fast.health_report().invalidation_counts == {"input": 3}

    def test_health_report_surfaces_speculation_stats(self, tiny_hls,
                                                      frames):
        specs = [NoisyMonitorFault(rate=0.2, sigma=0.5)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs)
        fast.run(frames, seed=11)
        report = fast.health_report()
        assert report.frames_speculated == fast.counters.count(
            "spec.speculated")
        assert report.frames_replayed == fast.counters.count("spec.replayed")
        assert report.frames_speculated + report.frames_replayed == len(frames)
        assert sum(report.invalidation_counts.values()) == \
            report.frames_replayed
        assert "speculation:" in report.render()

    def test_taint_carries_across_run_calls(self, tiny_hls, frames):
        """An SEU on the last frame of a block leaves the model tainted;
        the next run() call's first frame replays in-line as the scrub."""
        specs = [SEUFault(rate=1.0, start=19, stop=20)]
        fast = make_runtime(tiny_hls, batch=True, specs=specs)
        slow = make_runtime(tiny_hls, batch=False, specs=specs)
        for lo, hi in ((0, 20), (20, 40)):
            assert (fast.run(frames[lo:hi], seed=8)
                    == slow.run(frames[lo:hi], seed=8))
        # frame 19 (the hit) and frame 20 (the cross-block scrub) replay.
        assert fast.counters.count("spec.replayed") == 2
        assert fast.health_report().invalidation_counts == {"model_state": 2}

    def test_precomputed_words_match_inline_run(self, tiny_hls, frames):
        board = AchillesBoard(tiny_hls)
        ip = board.ip
        pre = ip.precompute_raw_outputs(frames[:8])
        for i in range(8):
            ip.input_ram.write(0, ip.quantize_input(frames[i]))
            ip.run()
            inline = ip.output_ram.read(0, ip.n_outputs)
            assert np.array_equal(pre[i], inline)


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestSeedDerivation:
    def test_successive_runs_decorrelated(self, tiny_hls, frames):
        """Regression: back-to-back run() calls used to replay the very
        same hub/jitter streams for different frame ranges."""
        runtime = make_runtime(tiny_hls)
        first = runtime.run(frames[:20], seed=6)
        second = runtime.run(frames[:20], seed=6)  # same inputs, frames 20-39
        delays_a = [r.hub_delay_s for r in first]
        delays_b = [r.hub_delay_s for r in second]
        assert delays_a != delays_b

    def test_replay_is_reproducible(self, tiny_hls, frames):
        a = make_runtime(tiny_hls).run(frames, seed=6)
        b = make_runtime(tiny_hls).run(frames, seed=6)
        assert a == b

    def test_derivation_depends_on_start_and_seed(self):
        assert derive_stream_seeds(6, 0) == derive_stream_seeds(6, 0)
        assert derive_stream_seeds(6, 0) != derive_stream_seeds(6, 20)
        assert derive_stream_seeds(6, 0) != derive_stream_seeds(7, 0)

    def test_generator_is_consumed_directly(self):
        g1 = np.random.default_rng(5)
        first = derive_stream_seeds(g1, 0)
        # caller-managed state: a second derivation advances the stream
        assert derive_stream_seeds(g1, 0) != first
        # the start index is ignored for generators
        assert derive_stream_seeds(np.random.default_rng(5), 123) == first


# ----------------------------------------------------------------------
# Vectorized fixed-point casts vs a scalar reference
# ----------------------------------------------------------------------
def scalar_quantize(value: float, fmt: FixedPointFormat) -> float:
    """Straight-line scalar reference of the round/saturate pipeline."""
    import math

    scaled = value / fmt.lsb
    if fmt.overflow is Overflow.WRAP:
        if abs(scaled) >= 2.0**62:
            scaled = math.fmod(scaled, float(2**fmt.width))
    else:
        scaled = min(max(scaled, -(2.0**62)), 2.0**62)
    if fmt.rounding is Rounding.TRN:
        r = math.floor(scaled)
    elif fmt.rounding is Rounding.RND:
        r = math.floor(scaled + 0.5)
    elif fmt.rounding is Rounding.RND_CONV:
        r = float(np.rint(scaled))
    else:  # RND_ZERO
        r = (math.ceil(scaled - 0.5) if scaled >= 0
             else math.floor(scaled + 0.5))
    raw = int(r)
    if fmt.overflow in (Overflow.SAT, Overflow.SAT_SYM):
        raw = min(max(raw, fmt.raw_min), fmt.raw_max)
    else:
        raw = (raw - fmt.raw_min) % (2**fmt.width) + fmt.raw_min
    return raw * fmt.lsb


def golden_formats():
    for width, integer in [(16, 7), (18, 10), (16, 2), (8, 9), (12, -2),
                           (54, 20), (1, 1)]:
        for signed in (True, False):
            for rounding in Rounding:
                for overflow in Overflow:
                    try:
                        yield FixedPointFormat(width=width, integer=integer,
                                               signed=signed,
                                               rounding=rounding,
                                               overflow=overflow)
                    except ValueError:
                        continue


class TestGoldenVectors:
    def test_quantize_matches_scalar_reference(self):
        for fmt in golden_formats():
            lsb = fmt.lsb
            vals = np.array([0.0, -0.0, 0.5 * lsb, -0.5 * lsb, 1.5 * lsb,
                             -1.5 * lsb, fmt.max_value, fmt.min_value,
                             fmt.max_value + lsb, fmt.min_value - lsb,
                             fmt.max_value * 3, fmt.min_value * 3,
                             0.1, -0.1, 123.456, -123.456, 1e30, -1e30])
            rng = np.random.default_rng(7)
            span = 2.0 * abs(fmt.max_value) + 1.0
            vals = np.concatenate([vals,
                                   rng.uniform(-span, span, 200)])
            with np.errstate(all="ignore"):
                got = quantize(vals, fmt)
                want = np.array([scalar_quantize(float(v), fmt)
                                 for v in vals])
            assert np.array_equal(got, want), fmt

    def test_quantize_inplace_variant(self):
        fmt = FixedPointFormat(width=16, integer=7)
        rng = np.random.default_rng(8)
        vals = rng.uniform(-300.0, 300.0, 500)
        expected = quantize(vals, fmt)
        buf = vals.copy()
        out = quantize_(buf, fmt)
        assert out is buf                       # mutated in place
        assert np.array_equal(out, expected)
        assert not np.array_equal(vals, buf)    # original untouched

    def test_quantize_never_mutates_caller(self):
        fmt = FixedPointFormat(width=16, integer=7)
        vals = np.array([0.1, 1.7, -2.3])
        kept = vals.copy()
        quantize(vals, fmt)
        assert np.array_equal(vals, kept)

    def test_quantize_inplace_rejects_non_float64(self):
        fmt = FixedPointFormat(width=16, integer=7)
        with pytest.raises(TypeError):
            quantize_(np.array([1, 2, 3]), fmt)
        with pytest.raises(TypeError):
            quantize_([1.0, 2.0], fmt)

    def test_to_raw_out_parameter(self):
        fmt = FixedPointFormat(width=16, integer=7)
        rng = np.random.default_rng(9)
        vals = rng.uniform(-300.0, 300.0, 64)
        expected = to_raw(vals, fmt)
        out = np.empty(64, dtype=np.int64)
        got = to_raw(vals, fmt, out=out)
        assert got is out
        assert np.array_equal(out, expected)
        assert np.array_equal(from_raw(out, fmt), quantize(vals, fmt))
        with pytest.raises(ValueError):
            to_raw(vals, fmt, out=np.empty(63, dtype=np.int64))

    def test_scalar_and_zero_d_inputs(self):
        fmt = FixedPointFormat(width=16, integer=7)
        assert quantize(1.23456, fmt) == scalar_quantize(1.23456, fmt)
        assert quantize(np.float64(-7.7), fmt) == scalar_quantize(-7.7, fmt)


# ----------------------------------------------------------------------
# SignalTrace pre-trigger window
# ----------------------------------------------------------------------
class TestPreTrigger:
    @staticmethod
    def _fire_on(signal_name):
        return lambda sig, val: sig == signal_name

    def test_default_discards_pre_trigger(self):
        trace = SignalTrace(trigger=self._fire_on("go"))
        trace.record(0.0, "warmup", 1)
        trace.record(1.0, "go", 1)
        trace.record(2.0, "after", 1)
        assert [s.signal for s in trace.samples()] == ["go", "after"]

    def test_window_keeps_last_samples(self):
        trace = SignalTrace(trigger=self._fire_on("go"), pre_trigger=2)
        for t in range(5):
            trace.record(float(t), f"pre{t}", t)
        trace.record(5.0, "go", 1)
        trace.record(6.0, "after", 1)
        assert ([s.signal for s in trace.samples()]
                == ["pre3", "pre4", "go", "after"])
        assert trace.assert_order("pre3", "pre4", "go", "after")

    def test_window_shorter_than_history(self):
        trace = SignalTrace(trigger=self._fire_on("go"), pre_trigger=8)
        trace.record(0.0, "only", 1)
        trace.record(1.0, "go", 1)
        assert [s.signal for s in trace.samples()] == ["only", "go"]

    def test_clear_rearms_and_clears_window(self):
        trace = SignalTrace(trigger=self._fire_on("go"), pre_trigger=2)
        trace.record(0.0, "stale", 1)
        trace.clear()
        trace.record(1.0, "fresh", 1)
        trace.record(2.0, "go", 1)
        assert [s.signal for s in trace.samples()] == ["fresh", "go"]

    def test_no_trigger_ignores_window(self):
        trace = SignalTrace(pre_trigger=4)
        trace.record(0.0, "a", 1)
        assert len(trace) == 1

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            SignalTrace(pre_trigger=-1)
