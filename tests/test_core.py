"""Tests for the co-design optimizer and deployment API."""

import numpy as np
import pytest

from repro.core import (
    CodesignOptimizer,
    DesignConstraints,
    codesign_and_deploy,
    deploy,
)
from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.hls.device import CYCLONE_V
from repro.hls.precision import layer_based_config, uniform_config
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU, Sigmoid


def make_trained_like_model(scale=100.0):
    """A small conv model with input magnitudes like the real substrate
    (values beyond ±64 so uniform<16,7> fails)."""
    inp = Input((16, 1), name="in")
    x = Conv1D(4, 3, seed=3, name="c1")(inp)
    x = ReLU(name="r1")(x)
    x = Dense(2, seed=4, name="d")(x)
    x = Sigmoid(name="s")(x)
    out = Flatten(name="f")(x)
    return Model(inp, out, name="toy")


@pytest.fixture(scope="module")
def optimizer():
    model = make_trained_like_model()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(60, 16, 1)) * 40  # values up to ~±150
    return CodesignOptimizer(model, x, eval_frames=40)


class TestCodesignOptimizer:
    def test_evaluate_records_history(self, optimizer):
        n0 = len(optimizer.history)
        res = optimizer.evaluate(uniform_config(16, 7, model=optimizer.model))
        assert len(optimizer.history) == n0 + 1
        assert set(res.accuracy) == {"MI", "RR"}

    def test_uniform16_fails_accuracy(self, optimizer):
        res = optimizer.evaluate(uniform_config(16, 7, model=optimizer.model))
        assert not res.accuracy_ok  # wrap on ±150 inputs

    def test_layer_based_feasible(self, optimizer):
        cfg = layer_based_config(optimizer.model, optimizer.x_profile,
                                 profiles=optimizer.profiles)
        res = optimizer.evaluate(cfg)
        assert res.accuracy_ok
        assert res.feasible, res.describe()

    def test_optimize_returns_feasible(self, optimizer):
        res = optimizer.optimize()
        assert res.feasible
        # For a toy model the 18-bit uniform design already fits, so the
        # ladder legitimately stops there; on the full U-Net it proceeds
        # to layer-based (covered by the integration tests).
        assert res.config.strategy in ("uniform<18,10>", "layer-based<16,x>")

    def test_describe_mentions_verdict(self, optimizer):
        res = optimizer.optimize()
        assert "FEASIBLE" in res.describe()

    def test_impossible_constraints_raise(self):
        model = make_trained_like_model()
        x = np.random.default_rng(0).normal(size=(40, 16, 1)) * 40
        constraints = DesignConstraints(latency_budget_s=1e-9)
        opt = CodesignOptimizer(model, x, constraints, eval_frames=20)
        with pytest.raises(RuntimeError):
            opt.optimize()

    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            DesignConstraints(latency_budget_s=0)
        with pytest.raises(ValueError):
            DesignConstraints(accuracy_floor=0.0)


class TestDeploy:
    def test_deploy_verified(self):
        model = make_trained_like_model()
        hm = convert(model, HLSConfig())
        x = np.random.default_rng(0).normal(size=(6, 16))
        deployment = deploy(model, hm, x, min_accuracy=0.5)
        assert deployment.verified, [str(r) for r in deployment.verification]
        assert deployment.system_latency_s > 0
        assert deployment.throughput_fps > 0

    def test_meets_requirement_contract(self):
        model = make_trained_like_model()
        hm = convert(model, HLSConfig())
        x = np.random.default_rng(0).normal(size=(4, 16))
        deployment = deploy(model, hm, x, min_accuracy=0.5)
        # a 16-input toy easily meets 3 ms / 320 fps
        assert deployment.meets_requirement()
        assert not deployment.meets_requirement(deadline_s=1e-9)


class TestOneCall:
    def test_codesign_and_deploy(self):
        model = make_trained_like_model()
        x = np.random.default_rng(0).normal(size=(40, 16, 1)) * 40
        design, deployment = codesign_and_deploy(model, x, eval_frames=30,
                                                 verify_frames=4)
        assert design.feasible
        assert deployment.verified
