"""Tests for ``repro.plants`` — the pluggable-workload interface.

The load-bearing guarantees pinned here:

* **golden behavior preservation** — the plant refactor replays the
  pre-refactor run records (sequential, compiled, farm) bit for bit
  (``tests/data/golden_beamloss.json``, captured by
  ``tools/golden_records.py`` on the pre-plant tree),
* **plant conformance** — both shipped plants honor the session
  contract: seeded determinism, 1-D float64 frames, picklable specs,
* **closed-loop bit-identity** — a cartpole run is identical across
  every executor tier (naive / batched / compiled 0–2, speculation
  on and off) under fault injection, and on the worker-pool farm
  (including worker-crash chaos),
* the redesigned facade validates its inputs (ready runtime + build
  keywords now raises, closed-loop plants are rejected by the
  frame-shipping entry points) and the deprecation shims warn while
  still honoring the old knobs.
"""

import json
import math
import pickle
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.api import (
    RuntimeConfig,
    build_farm,
    build_runtime,
    run_control_loop,
    serve_frames,
    start_daemon,
)
from repro.hls import HLSConfig, convert
from repro.nn import Dense, Input, Model, Sigmoid
from repro.obs import ObsConfig
from repro.plants import (
    BeamLossPlant,
    CartpolePlant,
    ControlQuality,
    Plant,
    merge_control_dicts,
    run_closed_loop,
)
from repro.serve import FarmSpec
from repro.soc.board import FRAME_PERIOD_S, AchillesBoard
from repro.soc.faults import (
    FaultInjector,
    HubDelayFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
)

from tools.golden_records import OUT_PATH as GOLDEN_PATH
from tools.golden_records import capture, serialize_records

#: A small beam-loss geometry (16 monitors, matching the conftest
#: ``tiny_model``) so conformance tests never touch the big reference
#: dataset.
SMALL_BEAMLOSS = dict(n_train=24, n_val=6, n_eval=12, dataset_seed=7)


@pytest.fixture(scope="module")
def beamloss_tiny_model():
    """A minimal model reading the substrate's 260 monitors."""
    inp = Input((260,), name="in")
    out = Sigmoid(name="s1")(Dense(2, seed=5, name="d1")(inp))
    return Model(inp, out, name="plants-tiny")


@pytest.fixture(scope="module")
def cartpole():
    return CartpolePlant()


@pytest.fixture(scope="module")
def cartpole_model(cartpole):
    return cartpole.default_model()


@pytest.fixture(scope="module")
def cartpole_hls(cartpole_model):
    return convert(cartpole_model, HLSConfig())


def chaos_injector(seed=5):
    """Faults sized for the cartpole's 8-monitor / 2-hub layout."""
    return FaultInjector([
        HubDelayFault(rate=0.05, delay_s=4e-3),
        NoisyMonitorFault(monitor=3, sigma=2.0, rate=0.05),
        SEUFault(rate=0.05, ram="output", bit=12),
        LostIRQFault(rate=0.03),
    ], seed=seed)


# ----------------------------------------------------------------------
# Golden records: the refactor is a pure re-plumbing
# ----------------------------------------------------------------------
class TestGoldenBeamLoss:
    """Replay the pre-refactor scenarios and compare byte for byte."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.fixture(scope="class")
    def current(self, reference_bundle):
        del reference_bundle  # ensure the shipped weights exist first
        return capture()

    @pytest.mark.parametrize("scenario", ["sequential", "compiled", "farm"])
    def test_records_bit_identical(self, golden, current, scenario):
        assert current[scenario] == golden[scenario], (
            f"golden {scenario} records diverged — the plant layer must "
            f"not change beam-loss behavior")

    def test_farm_outputs_bit_identical(self, golden, current):
        assert current["farm_outputs"] == golden["farm_outputs"]


# ----------------------------------------------------------------------
# Plant conformance: both shipped plants honor the session contract
# ----------------------------------------------------------------------
PLANTS = [
    pytest.param(BeamLossPlant(min_votes=1, **SMALL_BEAMLOSS),
                 id="beamloss"),
    pytest.param(CartpolePlant(), id="cartpole"),
]


@pytest.mark.parametrize("plant", PLANTS)
class TestPlantConformance:
    def test_frame_contract(self, plant):
        session = plant.session(3)
        frame = np.asarray(session.next_frame())
        assert frame.ndim == 1
        assert frame.dtype == np.float64
        if plant.expected_monitors is not None:
            assert frame.shape == (plant.expected_monitors,)

    def test_seeded_determinism(self, plant):
        def roll(seed):
            session = plant.session(seed)
            frames = []
            for _ in range(6):
                frames.append(session.next_frame().copy())
                session.apply(None)
            return np.stack(frames)

        assert np.array_equal(roll(11), roll(11))

    def test_hub_and_controller_wiring(self, plant):
        n = plant.expected_monitors or 16
        hubs = plant.hubs(n)
        assert hubs.n_monitors == n
        controller = plant.controller()
        assert tuple(controller.machine_names) == plant.machine_names

    def test_action_from_output_names_a_machine(self, plant):
        n_out = len(plant.machine_names) * (4 if plant.closed_loop else 1)
        action = plant.action_from_output(np.full(n_out, 0.99))
        assert action is None or action in plant.machine_names

    def test_plant_pickles(self, plant):
        assert pickle.loads(pickle.dumps(plant)) == plant

    def test_farm_spec_rides_plant(self, plant, cartpole_hls):
        spec = FarmSpec(model=cartpole_hls, config=RuntimeConfig(),
                        plant=plant)
        assert pickle.loads(pickle.dumps(spec)).plant == plant


class TestCartpoleSessionPhysics:
    def test_distinct_seeds_diverge(self, cartpole):
        a, b = cartpole.session(1), cartpole.session(2)
        assert not np.array_equal(a.next_frame(), b.next_frame())

    def test_failure_resets_are_counted(self, cartpole):
        session = cartpole.session(0)
        for _ in range(400):  # uncontrolled pole falls quickly
            session.next_frame()
            session.apply(None)
        assert session.failures > 0

    def test_ideal_action_deadband(self, cartpole):
        assert cartpole.ideal_action((0.0, 0.0, 0.0, 0.0)) is None
        assert cartpole.ideal_action((0.0, 0.0, 0.15, 0.0)) == "RIGHT"
        assert cartpole.ideal_action((0.0, 0.0, -0.15, 0.0)) == "LEFT"


# ----------------------------------------------------------------------
# Closed loop through the facade: control quality + executor identity
# ----------------------------------------------------------------------
def cartpole_loop(model, *, n_frames=60, seed=11, injector=None,
                  **config_kwargs):
    return run_control_loop(
        model, n_frames=n_frames, seed=seed,
        config=RuntimeConfig(**config_kwargs),
        injector=injector, plant=CartpolePlant())


class TestCartpoleClosedLoop:
    def test_stabilizes_under_compiled_fast_path(self, cartpole_model):
        result = cartpole_loop(cartpole_model, n_frames=200, seed=3,
                               batch_inference=True, compile_level=2)
        c = result.control
        assert isinstance(c, ControlQuality)
        assert c.stabilized
        assert c.stabilization_time_s < 0.5
        assert c.trip_precision > 0.9
        assert c.trip_recall > 0.8
        assert c.rms_state_error < 0.05
        assert result.health.control is c
        assert "control quality" in result.health.render()
        assert result.runtime.plant.name == "cartpole"

    def test_session_zero_state_abstains(self, cartpole, cartpole_hls):
        # At the upright rest state every monitor probability sits at
        # sigmoid(-vote_bias) < 0.5, so the controller abstains.
        board = AchillesBoard(cartpole_hls)
        board.process_frame(np.zeros(8))
        probs = board.last_output()
        assert np.all(probs < 0.5)
        assert cartpole.action_from_output(probs) is None

    #: (batch_inference, speculation, compile_level) executor matrix.
    EXECUTORS = [
        (False, False, 0),
        (False, True, 0),
        (True, False, 0),
        (True, True, 0),
        (True, True, 1),
        (True, False, 2),
        (True, True, 2),
    ]

    def test_bit_identical_across_executors_under_chaos(self,
                                                        cartpole_model):
        runs = {}
        for batch, spec, level in self.EXECUTORS:
            result = cartpole_loop(cartpole_model,
                                   injector=chaos_injector(),
                                   batch_inference=batch,
                                   speculation=spec,
                                   compile_level=level)
            runs[(batch, spec, level)] = serialize_records(result.records)
        reference = runs[(False, False, 0)]
        for key, records in runs.items():
            assert records == reference, (
                f"executor {key} diverged from the naive reference")

    def test_fault_injection_perturbs_the_trajectory(self, cartpole_model):
        clean = cartpole_loop(cartpole_model)
        chaotic = cartpole_loop(cartpole_model, injector=chaos_injector())
        assert sum(chaotic.health.fault_counts.values()) > 0
        assert (serialize_records(chaotic.records)
                != serialize_records(clean.records))

    def test_closed_loop_rejects_frames(self, cartpole_model):
        with pytest.raises(ValueError, match="closed-loop"):
            run_control_loop(cartpole_model, np.zeros((4, 8)),
                             plant=CartpolePlant())
        with pytest.raises(ValueError, match="n_frames"):
            run_control_loop(cartpole_model, plant=CartpolePlant())

    def test_board_level_session_run(self, cartpole, cartpole_hls):
        board = AchillesBoard(cartpole_hls)
        result = board.run(session=cartpole.session(4), n_frames=5)
        assert result.outputs.shape == (5, 8)
        with pytest.raises(ValueError, match="not both"):
            board.run(np.zeros((2, 8)), session=cartpole.session(4))
        with pytest.raises(ValueError, match="n_frames"):
            board.run(session=cartpole.session(4))

    def test_open_loop_plant_synthesises_frames(self, beamloss_tiny_model):
        plant = BeamLossPlant(min_votes=1, **SMALL_BEAMLOSS)
        result = run_control_loop(beamloss_tiny_model, n_frames=5,
                                  plant=plant)
        assert len(result.records) == 5
        assert result.control.frames == 5
        assert not result.control.stabilized  # open loop never claims it


# ----------------------------------------------------------------------
# Closed loop on the farm: per-shard sessions, crash recovery
# ----------------------------------------------------------------------
class TestCartpoleFarm:
    N_FRAMES = 40

    def farm_for(self, model, **kwargs):
        return build_farm(
            model,
            config=RuntimeConfig(batch_inference=True, compile_level=1),
            plant=CartpolePlant(),
            n_shards=2,
            seed=5,
            **kwargs)

    def test_pool_matches_reference_and_survives_crash(self,
                                                       cartpole_hls):
        farm = self.farm_for(cartpole_hls)
        reference = farm.serve_plant_reference(self.N_FRAMES)
        inline = farm.serve_plant(self.N_FRAMES, workers=0)
        pooled = farm.serve_plant(self.N_FRAMES, workers=2)
        chaos = farm.serve_plant(self.N_FRAMES, workers=2,
                                 chaos_crash_shards=[1])

        golden = serialize_records(reference.records)
        assert serialize_records(inline.records) == golden
        assert serialize_records(pooled.records) == golden
        assert serialize_records(chaos.records) == golden
        assert chaos.health.worker_restarts == 1
        assert chaos.health.requeued_tasks >= 1

    def test_control_quality_merges_across_shards(self, cartpole_hls):
        farm = self.farm_for(cartpole_hls)
        health = farm.serve_plant_reference(self.N_FRAMES).health
        control = health.control
        assert control is not None
        assert control["frames"] == self.N_FRAMES
        assert "stabilized" in control
        assert "control:" in health.render()

    def test_frame_serving_rejects_closed_loop_plants(self, cartpole_hls):
        farm = self.farm_for(cartpole_hls)
        frames = np.zeros((4, 8))
        with pytest.raises(ValueError, match="serve_plant"):
            farm.serve(frames)
        with pytest.raises(ValueError, match="serve_plant"):
            farm.serve_reference(frames)
        with pytest.raises(ValueError, match="serve_plant"):
            serve_frames(cartpole_hls, frames, plant=CartpolePlant())
        with pytest.raises(ValueError, match="serve_plant"):
            start_daemon(cartpole_hls, plant=CartpolePlant())

    def test_closed_loop_serving_is_single_machine(self, cartpole_hls):
        farm = self.farm_for(cartpole_hls, hosts=("localhost:1",))
        with pytest.raises(ValueError, match="single-machine"):
            farm.serve_plant(self.N_FRAMES)


# ----------------------------------------------------------------------
# ControlQuality plumbing
# ----------------------------------------------------------------------
class TestControlQuality:
    def test_from_records_open_loop(self, beamloss_tiny_model):
        plant = BeamLossPlant(min_votes=1, **SMALL_BEAMLOSS)
        session = plant.session(0)
        frames = np.stack([session.next_frame() for _ in range(6)])
        runtime = build_runtime(beamloss_tiny_model, plant=plant)
        records = runtime.run(frames)
        c = ControlQuality.from_records(records, runtime.period_s)
        assert c.frames == 6
        assert 0.0 <= c.trip_rate <= 1.0
        assert math.isnan(c.rms_state_error)

    def test_merge_control_dicts(self):
        a = {"frames": 10, "trips": 2, "trip_rate": 0.2,
             "time_to_first_trip_s": 0.006, "stabilization_time_s": 0.03,
             "stabilized": True, "trip_precision": 1.0,
             "trip_recall": 0.5, "rms_state_error": 0.01,
             "mean_latency_s": 1e-3, "deadline_miss_rate": 0.0}
        b = dict(a, frames=30, trips=3, trip_rate=0.1,
                 time_to_first_trip_s=0.003, stabilization_time_s=0.06,
                 trip_recall=1.0, rms_state_error=0.03)
        merged = merge_control_dicts([a, b])
        assert merged["frames"] == 40
        assert merged["trips"] == 5
        assert merged["time_to_first_trip_s"] == pytest.approx(0.003)
        assert merged["stabilization_time_s"] == pytest.approx(0.06)
        assert merged["stabilized"] is True
        # frames-weighted: (0.5*10 + 1.0*30) / 40
        assert merged["trip_recall"] == pytest.approx(0.875)
        assert merge_control_dicts([None, None]) is None
        assert merge_control_dicts([a, None])["frames"] == 10

    def test_obs_gauges_folded(self, cartpole_model):
        result = run_control_loop(cartpole_model, n_frames=20, seed=3,
                                  obs=ObsConfig(), plant=CartpolePlant())
        gauges = result.obs.metrics.snapshot()["gauges"]
        assert gauges["control.frames"] == 20.0
        assert "control.trip_rate" in gauges


# ----------------------------------------------------------------------
# Facade redesign: validation + deprecation shims
# ----------------------------------------------------------------------
class TestFacadeRedesign:
    def test_ready_runtime_plus_build_kwargs_raises(self, tiny_model):
        runtime = build_runtime(tiny_model,
                                plant=BeamLossPlant(min_votes=1,
                                                    **SMALL_BEAMLOSS))
        frames = np.zeros((2, 16))
        with pytest.raises(ValueError, match=r"build keywords.*config"):
            run_control_loop(runtime, frames, config=RuntimeConfig())
        with pytest.raises(ValueError, match=r"build keywords.*plant"):
            run_control_loop(runtime, frames, plant=CartpolePlant())

    def test_ready_runtime_still_accepts_obs(self, tiny_model):
        runtime = build_runtime(tiny_model,
                                plant=BeamLossPlant(min_votes=1,
                                                    **SMALL_BEAMLOSS))
        result = run_control_loop(runtime, np.zeros((2, 16)),
                                  obs=ObsConfig())
        assert result.obs is runtime.obs is not None

    def test_monitor_mismatch_raises(self, tiny_model):
        with pytest.raises(ValueError, match="8-monitor"):
            build_runtime(tiny_model, plant=CartpolePlant())

    def test_n_hubs_min_votes_deprecated_but_honored(self, tiny_model):
        with pytest.deprecated_call(match="n_hubs"):
            config = RuntimeConfig(n_hubs=2)
        runtime = build_runtime(
            tiny_model, config=config,
            plant=BeamLossPlant(min_votes=1, **SMALL_BEAMLOSS))
        assert runtime.plant.n_hubs == 2
        assert runtime.hubs.n_hubs == 2

        with pytest.deprecated_call(match="min_votes"):
            config = RuntimeConfig(min_votes=1)
        runtime = build_runtime(tiny_model, config=config,
                                plant=BeamLossPlant(**SMALL_BEAMLOSS))
        assert runtime.plant.min_votes == 1

    def test_deprecated_overrides_need_beamloss(self, cartpole_model):
        with pytest.deprecated_call():
            config = RuntimeConfig(min_votes=1)
        with pytest.raises(ValueError, match="BeamLossPlant"):
            build_runtime(cartpole_model, config=config,
                          plant=CartpolePlant())

    def test_latencies_s_deprecated_alias(self, cartpole_model):
        result = run_control_loop(cartpole_model, n_frames=4,
                                  plant=CartpolePlant())
        with pytest.deprecated_call(match="total_latencies_s"):
            legacy = result.latencies_s
        assert np.array_equal(legacy, result.total_latencies_s)
        assert result.total_latencies_s.shape == (4,)

    def test_load_pretrained_include_bn_deprecated(self, reference_bundle):
        del reference_bundle  # shipped weights must exist
        with pytest.deprecated_call(match="include_bn"):
            bundle = repro.load_pretrained(include_bn=False,
                                           train_if_missing=False)
        assert bundle.unet is not None

    def test_plants_exported_at_top_level(self):
        assert issubclass(repro.BeamLossPlant, repro.Plant)
        assert issubclass(repro.CartpolePlant, repro.Plant)
        assert repro.ControlQuality is ControlQuality

    def test_run_closed_loop_validates(self, cartpole, cartpole_hls):
        runtime = build_runtime(cartpole_hls, plant=cartpole)
        with pytest.raises(ValueError, match="n_frames"):
            run_closed_loop(runtime, cartpole.session(0), -1)
