"""Tests for the streaming-interface comparison model."""

import pytest

from repro.hls import HLSConfig, convert
from repro.hls.latency import estimate_latency
from repro.soc.streaming import StreamingInterfaceModel


class TestStreamingInterface:
    def test_latency_structure(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        lat = estimate_latency(hm)
        model = StreamingInterfaceModel()
        total = model.system_latency_s(lat, 16, 32)
        compute = lat.compute_cycles / lat.clock_hz
        assert total > compute  # wrapper always adds cost
        assert total == pytest.approx(
            model.preprocess_s + 16 * model.word_push_s + compute
            + model.poll_interval_s / 2 + 32 * model.word_pop_s
            + model.postprocess_s
        )

    def test_word_count_scaling(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        lat = estimate_latency(hm)
        model = StreamingInterfaceModel()
        small = model.system_latency_s(lat, 16, 32)
        big = model.system_latency_s(lat, 160, 320)
        assert big - small == pytest.approx(
            144 * model.word_push_s + 288 * model.word_pop_s
        )

    def test_validation(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        lat = estimate_latency(hm)
        with pytest.raises(ValueError):
            StreamingInterfaceModel().system_latency_s(lat, 0, 32)
        with pytest.raises(ValueError):
            StreamingInterfaceModel(word_push_s=-1.0)
