"""Tests for the verification flow and its comparators."""

import numpy as np
import pytest

from repro.fixed import FixedPointFormat, Overflow
from repro.hls.config import HLSConfig, LayerConfig, WIDE_ACCUM
from repro.hls.converter import convert
from repro.soc.board import AchillesBoard
from repro.soc.trace import SignalTrace
from repro.verify import (
    VerificationFlow,
    close_enough_accuracy,
    mean_abs_diff_per_machine,
    outlier_count,
    split_machine_channels,
    verify_bridge_with_adder,
    verify_control_ip,
    verify_hls_against_float,
    verify_interrupt_path,
    verify_soc_subsystem,
)


class TestComparators:
    def test_split_layout(self):
        flat = np.array([[0.1, 0.9, 0.2, 0.8]])
        split = split_machine_channels(flat)
        assert split.shape == (1, 2, 2)
        np.testing.assert_allclose(split[0, :, 0], [0.1, 0.2])  # MI
        np.testing.assert_allclose(split[0, :, 1], [0.9, 0.8])  # RR

    def test_split_width_check(self):
        with pytest.raises(ValueError):
            split_machine_channels(np.zeros((2, 5)))

    def test_accuracy_within_threshold(self):
        ref = np.zeros((1, 4))
        test = np.array([[0.1, 0.3, 0.19, 0.21]])
        acc = close_enough_accuracy(ref, test)
        assert acc["MI"] == pytest.approx(1.0)  # 0.1 and 0.19 both ≤ 0.20
        assert acc["RR"] == pytest.approx(0.0)  # 0.3 and 0.21 both > 0.20

    def test_accuracy_perfect(self):
        y = np.random.default_rng(0).uniform(size=(5, 520))
        acc = close_enough_accuracy(y, y)
        assert acc == {"MI": 1.0, "RR": 1.0}

    def test_mean_abs_diff(self):
        ref = np.zeros((1, 4))
        test = np.array([[0.1, 0.2, 0.3, 0.4]])
        mad = mean_abs_diff_per_machine(ref, test)
        assert mad["MI"] == pytest.approx(0.2)
        assert mad["RR"] == pytest.approx(0.3)

    def test_outlier_count(self):
        ref = np.zeros((1, 4))
        test = np.array([[0.05, 0.25, 0.19, 0.5]])
        assert outlier_count(ref, test) == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            close_enough_accuracy(np.zeros((1, 4)), np.zeros((2, 4)))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            close_enough_accuracy(np.zeros((1, 4)), np.zeros((1, 4)),
                                  threshold=0.0)


class TestStages:
    def test_control_ip_stage_passes(self):
        result = verify_control_ip()
        assert result.passed, result

    def test_bridge_adder_stage_passes(self):
        result = verify_bridge_with_adder()
        assert result.passed
        assert result.details["sum"] == 10_000

    def test_hls_vs_float_passes_high_precision(self, tiny_model):
        wide = FixedPointFormat(40, 20, overflow=Overflow.SAT)
        config = HLSConfig(default=LayerConfig(
            weight=wide, result=wide, accum=WIDE_ACCUM, reuse_factor=32))
        hm = convert(tiny_model, config)
        x = np.random.default_rng(0).normal(size=(10, 16, 1))
        result = verify_hls_against_float(tiny_model, hm, x)
        assert result.passed, result

    def test_hls_vs_float_fails_disastrous_precision(self, tiny_model):
        # 4-bit weights destroy the model — the stage must notice.
        awful = FixedPointFormat(4, 2, overflow=Overflow.WRAP)
        config = HLSConfig(default=LayerConfig(
            weight=awful, result=awful, accum=WIDE_ACCUM, reuse_factor=32))
        hm = convert(tiny_model, config)
        x = np.random.default_rng(0).normal(size=(10, 16, 1)) * 10
        result = verify_hls_against_float(tiny_model, hm, x,
                                          min_accuracy=0.999)
        assert not result.passed

    def test_soc_subsystem_bit_exact(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        frames = np.random.default_rng(1).normal(size=(3, 16))
        result = verify_soc_subsystem(board, hm, frames)
        assert result.passed, result

    def test_interrupt_path(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm, trace=SignalTrace())
        result = verify_interrupt_path(board)
        assert result.passed


class TestFlow:
    def test_run_all_passes(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        flow = VerificationFlow(tiny_model, hm)
        x = np.random.default_rng(0).normal(size=(10, 16))
        results = flow.run_all(x, min_accuracy=0.5)
        assert len(results) == 6  # incl. the Cyclone V bring-up stage
        assert flow.passed, flow.report()

    def test_incremental_flow(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        flow = VerificationFlow(tiny_model, hm)
        x = np.random.default_rng(0).normal(size=(6, 16))
        results = flow.verify_ip_update(x, min_accuracy=0.5)
        assert len(results) == 2

    def test_report_before_run(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        flow = VerificationFlow(tiny_model, hm)
        assert not flow.passed
        assert "no stages" in flow.report()
