"""Tests for extension features: Dropout, ASCII figures."""

import numpy as np
import pytest

from repro.experiments.figures import ascii_histogram, ascii_series
from repro.hls import HLSConfig, convert
from repro.nn import Adam, Dense, Dropout, Input, MeanSquaredError, Model, fit


class TestDropout:
    def _model(self, rate=0.5):
        inp = Input((8,))
        drop = Dropout(rate, seed=1)
        x = drop(inp)
        out = Dense(3, seed=0)(x)
        return Model(inp, out), drop

    def test_training_masks_and_scales(self):
        m, drop = self._model()
        m.forward(np.ones((6, 8)), training=True)
        out = m._last_outputs[drop]
        assert (out == 0.0).any()
        assert np.isclose(out, 2.0).any()  # 1 / (1 - 0.5)

    def test_inference_identity(self):
        m, drop = self._model()
        x = np.random.default_rng(0).normal(size=(4, 8))
        m.forward(x, training=False)
        np.testing.assert_array_equal(m._last_outputs[drop], x)

    def test_zero_rate_identity_in_training(self):
        m, drop = self._model(rate=0.0)
        x = np.ones((3, 8))
        m.forward(x, training=True)
        np.testing.assert_array_equal(m._last_outputs[drop], x)

    def test_expected_scale_preserved(self):
        m, drop = self._model(rate=0.3)
        x = np.ones((2000, 8))
        m.forward(x, training=True)
        out = m._last_outputs[drop]
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_routes_through_mask(self):
        m, drop = self._model()
        x = np.ones((4, 8))
        pred = m.forward(x, training=True)
        mask = m._last_outputs[drop]
        (dx,) = m.backward(np.ones_like(pred))
        # zeroed activations must receive zero gradient
        assert (dx[mask == 0] == 0).all()

    def test_trains_without_diverging(self):
        m, _ = self._model(rate=0.2)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 8))
        y = rng.normal(size=(64, 3))
        h = fit(m, x, y, MeanSquaredError(), Adam(0.01), epochs=5,
                batch_size=16)
        assert np.isfinite(h.loss[-1])

    def test_converter_maps_to_identity_kernel(self):
        m, _ = self._model()
        hm = convert(m, HLSConfig())
        assert [k.kind for k in hm.kernels] == ["input", "linear", "dense"]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestAsciiFigures:
    def test_series_renders_all_points(self):
        out = ascii_series([1, 2, 3], [10.0, 5.0, 0.0], title="t")
        assert out.count("|") >= 4
        assert "10" in out

    def test_series_scaling_monotone(self):
        out = ascii_series([0, 1], [1.0, 2.0], width=10)
        lines = out.splitlines()[-2:]
        assert lines[0].count("#") < lines[1].count("#")

    def test_series_validation(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1.0])
        with pytest.raises(ValueError):
            ascii_series([], [])

    def test_histogram_counts_sum(self):
        values = np.random.default_rng(0).normal(size=500)
        out = ascii_histogram(values, bins=8)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 500

    def test_histogram_unit_scaling(self):
        out = ascii_histogram([1e-3, 2e-3], bins=2, unit_scale=1e3,
                              unit_label="ms")
        assert "ms" in out

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)
