"""Additional coverage: build reports, figures edge cases, CLI paths,
and the reference U-Net's optimized-conversion equivalence."""

import numpy as np
import pytest

from repro.experiments.figures import ascii_histogram, ascii_series
from repro.hls import HLSConfig, build_report, convert, convert_optimized
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU


def toy():
    inp = Input((10, 1), name="in")
    x = Conv1D(2, 3, seed=0, name="c")(inp)
    x = ReLU(name="r")(x)
    x = Dense(2, seed=1, name="d")(x)
    out = Flatten(name="f")(x)
    return Model(inp, out)


class TestBuildReport:
    def test_latency_resources_consistent(self):
        hm = convert(toy(), HLSConfig())
        rep = build_report(hm)
        assert rep.latency.total_cycles == sum(
            rep.latency.per_layer_cycles.values()
        ) + rep.latency.transfer_cycles
        assert rep.resources.device.name.startswith("Arria")

    def test_table_has_all_rows(self):
        hm = convert(toy(), HLSConfig())
        text = build_report(hm).summary_table().render()
        for row in ("Strategy", "FPGA IP Latency", "Total Registers",
                    "Total RAM Blocks", "Device"):
            assert row in text

    def test_ip_latency_positive_ms(self):
        hm = convert(toy(), HLSConfig())
        assert 0 < build_report(hm).ip_latency_ms < 10


class TestOptimizedConversionOnToy:
    def test_no_op_when_nothing_to_fuse(self):
        m = toy()
        plain = convert(m, HLSConfig())
        opt, log = convert_optimized(m, HLSConfig())
        assert log == []
        assert len(opt.kernels) == len(plain.kernels)
        x = np.random.default_rng(0).normal(size=(3, 10, 1))
        np.testing.assert_array_equal(plain.predict(x), opt.predict(x))


class TestFiguresEdgeCases:
    def test_series_all_zero(self):
        out = ascii_series([1, 2], [0.0, 0.0])
        assert "0" in out  # renders without dividing by zero

    def test_series_single_point(self):
        out = ascii_series([5], [3.0])
        assert "3" in out

    def test_histogram_single_value(self):
        out = ascii_histogram([1.0, 1.0, 1.0], bins=4)
        counts = [int(l.rsplit(" ", 1)[1]) for l in out.splitlines()]
        assert sum(counts) == 3

    def test_histogram_title(self):
        out = ascii_histogram([1.0, 2.0], bins=2, title="T")
        assert out.splitlines()[0] == "T"


class TestCLIExtra:
    def test_multiple_experiments_in_one_call(self, capsys):
        from repro.experiments.cli import main as cli_main

        assert cli_main(["ablation-interface", "ablation-buffers",
                         "--fast"]) == 0
        out = capsys.readouterr().out
        assert out.count("regenerated") == 2


class TestLayerTable:
    def test_layer_table_contents(self):
        hm = convert(toy(), HLSConfig())
        rep = build_report(hm)
        text = rep.layer_table().render()
        for name in ("in", "c", "r", "d", "f"):
            assert name in text
        assert "conv1d" in text and "dense" in text
        assert "ac_fixed<16, 7, true>" in text

    def test_layer_table_without_model(self):
        from repro.hls.report import BuildReport

        hm = convert(toy(), HLSConfig())
        rep = build_report(hm)
        bare = BuildReport(model_name=rep.model_name, strategy=rep.strategy,
                           latency=rep.latency, resources=rep.resources)
        text = bare.layer_table().render()  # degrades gracefully
        assert "c" in text
