"""Generality tests: the substrate and controller are not hard-wired to
two machines (the paper's facility has MI and RR, but the de-blending
formulation generalizes — three accelerators sharing a tunnel would
produce three probabilities per monitor)."""

import numpy as np
import pytest

from repro.beamloss import (
    BurstDynamics,
    LossSite,
    Machine,
    TripController,
    TunnelGeometry,
    blend,
    ground_truth_machines,
    score_decisions,
)


def three_machines():
    geo = TunnelGeometry(n_monitors=64, circumference_m=800.0)
    def mk(name, seed, width):
        rng = np.random.default_rng(seed)
        sites = tuple(
            LossSite(float(c), width, 1.0)
            for c in rng.uniform(0, 64, size=4)
        )
        return Machine(name, sites, BurstDynamics(baseline_level=1.0))
    return geo, [mk("A", 1, 2.0), mk("B", 2, 5.0), mk("C", 3, 9.0)]


class TestThreeMachineBlend:
    def test_target_shape(self):
        geo, machines = three_machines()
        fr = blend(machines, geo, 20, seed=0)
        assert fr.targets.shape == (20, 64, 3)
        assert fr.machine_names == ("A", "B", "C")

    def test_total_is_sum_of_three(self):
        geo, machines = three_machines()
        fr = blend(machines, geo, 10, seed=0)
        np.testing.assert_allclose(fr.total, fr.per_machine.sum(axis=0))

    def test_targets_partition_significant_loss(self):
        geo, machines = three_machines()
        fr = blend(machines, geo, 30, seed=0)
        sums = fr.targets.sum(axis=-1)
        assert (sums <= 1.0 + 1e-9).all()
        assert sums.max() > 0.5  # some monitors strongly attributed

    def test_flat_layout_width(self):
        geo, machines = three_machines()
        fr = blend(machines, geo, 5, seed=0)
        assert fr.flat_targets().shape == (5, 64 * 3)


class TestThreeMachineController:
    def test_controller_handles_three(self):
        ctl = TripController(machine_names=("A", "B", "C"), min_votes=1)
        out = np.zeros((64, 3))
        out[10:20, 2] = 0.9  # machine C misbehaving
        d = ctl.decide(out.ravel())
        assert d.machine == "C"

    def test_ground_truth_three(self):
        t = np.zeros((2, 64, 3))
        t[0, 5:12, 1] = 0.9          # frame 0: machine B
        truth = ground_truth_machines(t, machine_names=("A", "B", "C"))
        assert truth == ["B", None]

    def test_scoring_three(self):
        from repro.beamloss.controller import TripDecision

        def d(m):
            return TripDecision(0, m, 1.0, 1e-3, True)

        score = score_decisions([d("A"), d("C"), d(None)],
                                ["A", "B", None])
        assert score.accuracy == pytest.approx(2 / 3)
        assert score.recall["B"] == 0.0
