"""Tests for the experiment harnesses (fast mode) and the CLI."""

import numpy as np
import pytest

from repro.experiments import REGISTRY, get_experiment
from repro.experiments.cli import main as cli_main
from repro.experiments.common import ExperimentResult, bundle, eval_inputs
from repro.utils.tables import Table


class TestRegistry:
    def test_all_names_present(self):
        expected = {"table1", "table2", "table3", "fig3", "fig5a", "fig5b",
                    "fig5c", "ablation-reuse", "ablation-interface",
                    "ablation-buffers", "ablation-standardization",
                    "ablation-interface-style", "ablation-qat",
                    "ablation-pipelining", "robustness", "obs-report",
                    "serve-bench", "daemon-bench", "remote-bench",
                    "replay-bench", "plant-bench", "dse"}
        assert expected == set(REGISTRY)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestCommon:
    def test_bundle_cached(self):
        assert bundle() is bundle()

    def test_eval_inputs_sizes(self):
        assert eval_inputs(fast=True).shape == (150, 260, 1)
        assert eval_inputs(fast=False).shape == (1000, 260, 1)

    def test_result_render(self):
        t = Table(["a"])
        t.add_row(["v"])
        res = ExperimentResult("x", t, notes=["hello"])
        out = res.render()
        assert "hello" in out and "v" in out


class TestHarnesses:
    """Each harness must run in fast mode and carry paper-vs-measured
    notes.  (Numerical shape assertions live in benchmarks/.)"""

    def test_table1(self):
        res = get_experiment("table1")(True)
        assert len(res.table.rows) == 6  # 4 literature + 2 ours
        assert any("paper" in n for n in res.notes)

    def test_table3(self):
        res = get_experiment("table3")(True)
        props = {r[0] for r in res.table.rows}
        assert "Trainable Parameters" in props
        assert "Total DSP Blocks" in props

    def test_fig3_series(self):
        res = get_experiment("fig3")(True)
        assert "batch sizes" in res.series
        assert len(res.table.rows) == 6

    def test_fig5c_series(self):
        res = get_experiment("fig5c")(True)
        assert res.series["latencies_s"].shape == (2000,)
        assert res.series["hist"].sum() == 2000

    def test_ablation_reuse_series_lengths_match(self):
        res = get_experiment("ablation-reuse")(True)
        n = len(res.series["reuse"])
        assert len(res.series["latency_s"]) == n
        assert len(res.table.rows) == n


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert cli_main(["definitely-not-real"]) == 2

    def test_single_fast_run(self, capsys):
        assert cli_main(["ablation-interface", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "DMA" in out and "regenerated" in out
