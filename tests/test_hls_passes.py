"""Tests for graph passes (batch-norm fusion) and accumulator inference."""

import numpy as np
import pytest

from repro.hls import HLSConfig, convert
from repro.hls.accum import apply_accum_inference, infer_accum_format
from repro.hls.passes import LayerGraph, apply_default_passes, fuse_batchnorm
from repro.hls.passes.fuse import convert_optimized, strip_linear
from repro.nn import (
    BatchNormalization,
    Concatenate,
    Conv1D,
    Dense,
    Flatten,
    Input,
    Linear,
    Model,
    ReLU,
    Sigmoid,
)


def bn_model(after="conv", fanout=False):
    inp = Input((12, 1), name="in")
    if after == "input":
        x = BatchNormalization(name="bn")(inp)
        x = Conv1D(3, 3, seed=0, name="c")(x)
    else:
        c = Conv1D(3, 3, seed=0, name="c")(inp)
        x = BatchNormalization(name="bn")(c)
        if fanout:
            # the conv output also feeds a skip concat → fusion illegal
            x = Concatenate(name="cat")(x, c)
    x = ReLU(name="r")(x)
    x = Dense(2, seed=1, name="d")(x)
    x = Sigmoid(name="s")(x)
    out = Flatten(name="f")(x)
    m = Model(inp, out)
    # non-trivial batch-norm statistics
    xs = np.random.default_rng(0).normal(1.5, 2.0, size=(64, 12, 1))
    m.forward(xs, training=True)
    return m


class TestLayerGraph:
    def test_snapshot_structure(self):
        m = bn_model()
        g = LayerGraph.from_model(m)
        assert len(g) == len(m.layers)
        assert g.node("bn").parents == ["c"]
        assert g.node("in").parents == ["__input__"]

    def test_params_are_copies(self):
        m = bn_model()
        g = LayerGraph.from_model(m)
        g.node("c").params["kernel"][:] = 0.0
        assert m.get_layer("c").params["kernel"].any()

    def test_remove_rewires(self):
        m = bn_model()
        g = LayerGraph.from_model(m)
        g.remove_node("bn")
        assert g.node("r").parents == ["c"]

    def test_remove_multi_parent_rejected(self):
        m = bn_model(fanout=True)
        g = LayerGraph.from_model(m)
        with pytest.raises(ValueError):
            g.remove_node("cat")

    def test_consumers(self):
        m = bn_model(fanout=True)
        g = LayerGraph.from_model(m)
        names = {n.name for n in g.consumers("c")}
        assert names == {"bn", "cat"}


class TestFusion:
    def test_fuses_conv_bn(self):
        g = LayerGraph.from_model(bn_model())
        removed = fuse_batchnorm(g)
        assert removed == ["bn"]
        assert "fused batchnorm bn" in g.node("c").notes[0]

    def test_does_not_fuse_input_bn(self):
        g = LayerGraph.from_model(bn_model(after="input"))
        assert fuse_batchnorm(g) == []

    def test_does_not_fuse_across_fanout(self):
        g = LayerGraph.from_model(bn_model(fanout=True))
        assert fuse_batchnorm(g) == []

    def test_fused_math_matches_float(self):
        m = bn_model()
        g = LayerGraph.from_model(m)
        fuse_batchnorm(g)
        x = np.random.default_rng(1).normal(1.5, 2.0, size=(4, 12, 1))
        # manual fused conv == conv→bn in inference mode
        node = g.node("c")
        from numpy.lib.stride_tricks import sliding_window_view

        xp = np.pad(x, ((0, 0), (1, 1), (0, 0)))
        win = sliding_window_view(xp, 3, axis=1)
        fused = np.einsum("ntck,kcf->ntf", win, node.params["kernel"]) \
            + node.params["bias"]
        ref_conv = m.get_layer("c")
        ref_bn = m.get_layer("bn")
        y = ref_conv.forward([x])
        y = ref_bn.forward([y], training=False)
        np.testing.assert_allclose(fused, y, atol=1e-10)

    def test_strip_linear(self):
        inp = Input((4,), name="in")
        x = Linear(name="lin")(inp)
        x = Dense(2, seed=0, name="d")(x)
        m = Model(inp, x)
        g = LayerGraph.from_model(m)
        assert strip_linear(g) == ["lin"]
        assert g.node("d").parents == ["in"]

    def test_terminal_linear_kept(self):
        inp = Input((4,), name="in")
        x = Dense(2, seed=0, name="d")(inp)
        out = Linear(name="lin")(x)
        m = Model(inp, out)
        g = LayerGraph.from_model(m)
        assert strip_linear(g) == []


class TestConvertOptimized:
    def test_fewer_kernels(self):
        m = bn_model()
        plain = convert(m, HLSConfig())
        opt, log = convert_optimized(m, HLSConfig())
        assert len(opt.kernels) == len(plain.kernels) - 1
        assert any("fuse_batchnorm" in entry for entry in log)

    def test_outputs_close_to_plain(self):
        m = bn_model()
        plain = convert(m, HLSConfig())
        opt, _ = convert_optimized(m, HLSConfig())
        x = np.random.default_rng(2).normal(1.5, 2.0, size=(6, 12, 1))
        # same datapath up to one quantization of the fused constants
        assert np.abs(plain.predict(x) - opt.predict(x)).max() < 0.02

    def test_model_params_untouched(self):
        m = bn_model()
        before = m.get_layer("c").params["kernel"].copy()
        convert_optimized(m, HLSConfig())
        np.testing.assert_array_equal(m.get_layer("c").params["kernel"],
                                      before)

    def test_saves_resources(self):
        from repro.hls.resources import estimate_resources

        m = bn_model()
        plain = estimate_resources(convert(m, HLSConfig()))
        opt, _ = convert_optimized(m, HLSConfig())
        opt_res = estimate_resources(opt)
        # the standalone batch-norm kernel's multipliers are gone
        assert sum(opt_res.per_layer_units.values()) < sum(
            plain.per_layer_units.values()
        )


class TestAccumInference:
    def test_width_grows_with_terms(self):
        m = bn_model()
        hm = convert(m, HLSConfig())
        conv_fmt = infer_accum_format(hm.get_kernel("c"))
        dense_fmt = infer_accum_format(hm.get_kernel("d"))
        # conv accumulates 3 terms, dense only 3 as well (3 chans × …)
        assert conv_fmt.integer > hm.get_kernel("c").config.weight.integer

    def test_parameter_free_unchanged(self):
        m = bn_model()
        hm = convert(m, HLSConfig())
        relu = hm.get_kernel("r")
        assert infer_accum_format(relu) == relu.config.accum

    def test_apply_preserves_numerics(self):
        m = bn_model()
        x = np.random.default_rng(3).normal(1.5, 2.0, size=(5, 12, 1))
        hm = convert(m, HLSConfig())
        before = hm.predict(x)
        apply_accum_inference(hm)
        np.testing.assert_array_equal(hm.predict(x), before)

    def test_width_capped_at_simulation_limit(self):
        # a dense with a huge fan-in must not exceed 62 bits
        inp = Input((5000,), name="in")
        d = Dense(2, seed=0, name="d")(inp)
        m = Model(inp, d)
        hm = convert(m, HLSConfig())
        fmt = infer_accum_format(hm.get_kernel("d"))
        assert fmt.width <= 62
