"""Tests for HLS configuration and precision strategies."""

import numpy as np
import pytest

from repro.fixed import FixedPointFormat, Overflow
from repro.hls.config import (
    DEFAULT_PRECISION,
    DEFAULT_REUSE_FACTOR,
    HLSConfig,
    LayerConfig,
)
from repro.hls.precision import (
    DENSE_SIGMOID_REUSE,
    apply_reference_reuse,
    layer_based_config,
    uniform_config,
)
from repro.hls.profiling import LayerProfile, profile_model
from repro.nn import Dense, Input, Model, ReLU, Sigmoid


def small_model():
    inp = Input((8,), name="x")
    h = Dense(4, seed=0, name="h")(inp)
    r = ReLU(name="r")(h)
    o = Dense(3, seed=1, name="o")(r)
    s = Sigmoid(name="s")(o)
    return Model(inp, s, name="small")


class TestHLSConfig:
    def test_defaults_match_paper(self):
        cfg = HLSConfig()
        assert cfg.default.result == DEFAULT_PRECISION
        assert cfg.default.reuse_factor == DEFAULT_REUSE_FACTOR == 32
        assert cfg.clock_hz == 100e6

    def test_layer_override_merging(self):
        cfg = HLSConfig()
        special = FixedPointFormat(16, 10)
        cfg.set_layer("conv", result=special)
        resolved = cfg.for_layer("conv")
        assert resolved.result == special
        assert resolved.weight == cfg.default.weight  # fell through
        assert resolved.reuse_factor == 32

    def test_set_layer_merges_incrementally(self):
        cfg = HLSConfig()
        cfg.set_layer("a", reuse_factor=64)
        cfg.set_layer("a", result=FixedPointFormat(16, 3))
        resolved = cfg.for_layer("a")
        assert resolved.reuse_factor == 64
        assert resolved.result.integer == 3

    def test_with_reuse_factor_global(self):
        cfg = HLSConfig().with_reuse_factor(128)
        assert cfg.for_layer("anything").reuse_factor == 128

    def test_with_reuse_factor_selected_layers(self):
        cfg = HLSConfig().with_reuse_factor(260, layer_names=["d"])
        assert cfg.for_layer("d").reuse_factor == 260
        assert cfg.for_layer("other").reuse_factor == 32

    def test_invalid_reuse(self):
        with pytest.raises(ValueError):
            HLSConfig().with_reuse_factor(0)

    def test_describe_lists_overrides(self):
        cfg = HLSConfig()
        cfg.set_layer("lay", reuse_factor=7)
        assert "lay" in cfg.describe()

    def test_incomplete_default_rejected(self):
        with pytest.raises(ValueError):
            HLSConfig(default=LayerConfig(weight=None))


class TestUniformConfig:
    def test_formats(self):
        cfg = uniform_config(18, 10)
        assert cfg.default.result.spec() == "ac_fixed<18, 10, true>"
        assert cfg.default.weight.spec() == "ac_fixed<18, 10, true>"
        assert cfg.default.result.overflow is Overflow.WRAP

    def test_reference_reuse_applied(self):
        m = small_model()
        cfg = uniform_config(16, 7, model=m)
        assert cfg.for_layer("h").reuse_factor == DENSE_SIGMOID_REUSE
        assert cfg.for_layer("s").reuse_factor == DENSE_SIGMOID_REUSE
        assert cfg.for_layer("r").reuse_factor == 32

    def test_strategy_label(self):
        assert uniform_config(16, 7).strategy == "uniform<16,7>"


class TestProfiling:
    def test_profiles_every_layer(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(20, 8))
        profiles = profile_model(m, x)
        assert set(profiles) == {l.name for l in m.layers}

    def test_max_abs_correct_for_input(self):
        m = small_model()
        x = np.zeros((4, 8))
        x[2, 5] = -9.5
        profiles = profile_model(m, x)
        assert profiles["x"].max_abs_output == pytest.approx(9.5)

    def test_weight_maxima(self):
        m = small_model()
        layer = m.get_layer("h")
        layer.params["kernel"][0, 0] = 123.0
        profiles = profile_model(m, np.zeros((2, 8)))
        assert profiles["h"].max_abs_weight == pytest.approx(123.0)

    def test_batched_profiling_consistent(self):
        m = small_model()
        x = np.random.default_rng(1).normal(size=(30, 8))
        a = profile_model(m, x, batch_size=7)
        b = profile_model(m, x, batch_size=30)
        for name in a:
            assert a[name].max_abs_output == pytest.approx(
                b[name].max_abs_output
            )

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            profile_model(small_model(), np.zeros((0, 8)))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LayerProfile(max_abs_output=-1, max_abs_weight=0,
                         output_percentile_99=0)


class TestLayerBasedConfig:
    def test_integer_bits_track_profile(self):
        m = small_model()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 8)) * 40  # inputs up to ~±150
        cfg = layer_based_config(m, x)
        input_fmt = cfg.for_layer("x").result
        # needs ~8-9 integer bits for |x| ≈ 150
        assert input_fmt.integer >= 8
        assert input_fmt.width == 16
        sig_fmt = cfg.for_layer("s").result
        assert sig_fmt.integer <= 2  # sigmoid outputs ≤ 1

    def test_margin_bits_add_headroom(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(20, 8))
        base = layer_based_config(m, x)
        plus = layer_based_config(m, x, margin_bits=1)
        assert (plus.for_layer("x").result.integer
                == base.for_layer("x").result.integer + 1)

    def test_width_sweep(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(20, 8))
        for width in (10, 12, 16, 18):
            cfg = layer_based_config(m, x, width=width)
            assert cfg.for_layer("h").result.width == width

    def test_precomputed_profiles_used(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(20, 8))
        profiles = profile_model(m, x)
        cfg = layer_based_config(m, None, profiles=profiles)
        assert cfg.for_layer("x").result.width == 16

    def test_reference_reuse_applied(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(20, 8))
        cfg = layer_based_config(m, x)
        assert cfg.for_layer("o").reuse_factor == DENSE_SIGMOID_REUSE

    def test_strategy_label(self):
        m = small_model()
        x = np.zeros((5, 8))
        assert "layer-based" in layer_based_config(m, x).strategy
        assert "+1" in layer_based_config(m, x, margin_bits=1).strategy
