"""Tests for repro.utils (rng, units, tables)."""

import numpy as np
import pytest

from repro.utils import (
    MHZ,
    Table,
    cycles_to_seconds,
    default_rng,
    fps_from_latency,
    ms,
    seconds_to_cycles,
    spawn_rngs,
    us,
)


class TestRng:
    def test_same_seed_same_stream(self):
        a = default_rng(42).normal(size=10)
        b = default_rng(42).normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = default_rng(1).normal(size=10)
        b = default_rng(2).normal(size=10)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_spawn_independence(self):
        g1, g2 = spawn_rngs(0, 2)
        a = g1.normal(size=100)
        b = g2.normal(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_spawn_deterministic(self):
        a = spawn_rngs(5, 3)[2].normal(size=5)
        b = spawn_rngs(5, 3)[2].normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 4)
        assert len(children) == 4

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero_ok(self):
        assert spawn_rngs(0, 0) == []


class TestUnits:
    def test_cycles_roundtrip(self):
        cycles = seconds_to_cycles(1.74e-3, 100 * MHZ)
        assert cycles == 174_000
        assert cycles_to_seconds(cycles, 100 * MHZ) == pytest.approx(1.74e-3)

    def test_seconds_to_cycles_ceils(self):
        assert seconds_to_cycles(1.5e-8, 100 * MHZ) == 2

    def test_fps_from_latency(self):
        assert fps_from_latency(1.74e-3) == pytest.approx(574.7, abs=0.1)

    def test_helpers(self):
        assert us(250) == pytest.approx(250e-6)
        assert ms(3) == pytest.approx(3e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0)
        with pytest.raises(ValueError):
            seconds_to_cycles(-1.0)
        with pytest.raises(ValueError):
            fps_from_latency(0.0)


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["A", "B"], title="T")
        t.add_row(["x", 1])
        out = t.render()
        assert "T" in out and "A" in out and "x" in out and "1" in out

    def test_row_length_checked(self):
        t = Table(["A", "B"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_rows_copy(self):
        t = Table(["A"])
        t.add_row(["v"])
        rows = t.rows
        rows[0][0] = "mutated"
        assert t.rows[0][0] == "v"

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_alignment_width(self):
        t = Table(["col"])
        t.add_row(["a-very-long-cell-value"])
        lines = t.render().splitlines()
        widths = {len(l) for l in lines if l.startswith(("|", "+"))}
        assert len(widths) == 1  # all box lines equal width
