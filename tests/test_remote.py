"""Tests for ``repro.serve.remote`` + ``repro.serve.replay``.

The cross-host guarantees pinned here:

* shipping a shard task to a host agent changes *nothing* about its
  output: remote runs are bit-identical to the sequential in-process
  reference for mixed local/remote topologies and every compile level,
* SIGKILLing an agent mid-run is survivable: the pool requeues the
  dead host's in-flight shards under the restart budget and the
  results are still bit-identical (partition-aware recovery),
* the ``repro-hosts/1`` handshake refuses unknown protocol versions
  with a clean application-level error, never a framing poison,
* the bursty traffic-replay generator is seeded-deterministic: same
  seed, same arrival schedule, same shed decisions, bit for bit.
"""

import socket
import time

import numpy as np
import pytest

from repro.core.api import RuntimeConfig, build_farm
from repro.plants import BeamLossPlant
from repro.hls import HLSConfig, convert
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU, Sigmoid
from repro.serve import BatchingPolicy, FarmSpec, ShardedNodeFarm
from repro.serve.protocol import (
    HOSTS_PROTO_VERSION,
    MessageDecoder,
    MsgKind,
    pack_host_hello,
    unpack_host_welcome,
)
from repro.serve.remote import HostPool, parse_host, spawn_agent
from repro.serve.replay import (
    BurstModel,
    accepted_frames,
    simulate_admission,
    synth_schedule,
)
from repro.serve.sharding import ShardPlan
from repro.serve.workers import (
    ShardTask,
    WorkerCrashError,
    localize_shard_task,
)

N_MONITORS = 16


@pytest.fixture(scope="module")
def tiny_hls():
    inp = Input((N_MONITORS, 1), name="in")
    x = Conv1D(4, 3, seed=21, name="c1")(inp)
    x = ReLU(name="r1")(x)
    x = Dense(2, seed=23, name="d1")(x)
    x = Sigmoid(name="s1")(x)
    model = Model(inp, Flatten(name="f1")(x), name="remote-tiny")
    return convert(model, HLSConfig())


def frames_for(n, seed=77):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(n, N_MONITORS))


def farm_for(hls, *, level=0, n_shards=3, hosts=(), seed=3):
    return build_farm(
        hls,
        config=RuntimeConfig(compile_level=level, batch_inference=True),
        plant=BeamLossPlant(min_votes=1),
        n_shards=n_shards,
        batching=BatchingPolicy(max_batch=4),
        seed=seed,
        hosts=hosts,
    )


# ----------------------------------------------------------------------
# Pure helpers
# ----------------------------------------------------------------------
class TestHelpers:
    def test_parse_host(self):
        assert parse_host("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_host(("10.0.0.2", 80)) == ("10.0.0.2", 80)
        assert parse_host("[::1]:80") == ("[::1]", 80)
        with pytest.raises(ValueError, match="host:port"):
            parse_host("no-port-here")

    def test_localize_shard_task_rewrites_indices_only(self):
        frames = frames_for(12)
        plan = ShardPlan(n_frames=12, n_shards=3)
        gidx = plan.shard_globals(1)               # (1, 4, 7, 10)
        task = ShardTask(task_id=7, shard=1, seed_entropy=3,
                         global_indices=gidx,
                         batches=((0, 2), (2, 4)))
        local, sliced = localize_shard_task(task, frames)
        assert local.global_indices == (0, 1, 2, 3)
        assert local.shard == task.shard           # seed unchanged
        assert local.seed_entropy == task.seed_entropy
        assert local.batches == task.batches       # already local
        assert np.array_equal(sliced, frames[list(gidx)])
        # bit-identity of the slice matters, not just value equality
        assert sliced.dtype == np.float64 and sliced.flags["C_CONTIGUOUS"]

    def test_host_pool_validates_inputs(self, tiny_hls):
        spec = FarmSpec(model=tiny_hls, config=RuntimeConfig())
        with pytest.raises(ValueError, match="at least one host"):
            HostPool(spec, ())
        with pytest.raises(ValueError, match="local_workers"):
            HostPool(spec, ["127.0.0.1:1"], local_workers=-1)
        pool = HostPool(spec, ["127.0.0.1:1"])
        with pytest.raises(RuntimeError, match="not started"):
            pool.submit(frames_for(3), [object()])


# ----------------------------------------------------------------------
# Cross-host bit-identity + partition recovery (real agent processes)
# ----------------------------------------------------------------------
class TestCrossHost:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_remote_topologies_bit_identical(self, tiny_hls, level):
        frames = frames_for(24)
        farm = farm_for(tiny_hls, level=level)
        ref = farm.serve_reference(frames)
        with spawn_agent(workers=1) as a1, spawn_agent(workers=1) as a2:
            # both topologies reuse one spec object so the agents see
            # one FarmSpec each (one spec per agent by contract)
            two_remote = ShardedNodeFarm(
                farm.spec, n_shards=3, batching=farm.batching,
                seed=farm.seed, hosts=[a1.address, a2.address])
            res = two_remote.serve(frames, workers=0)
            assert np.array_equal(res.outputs, ref.outputs), \
                f"2-remote diverged at level {level}"
            assert res.health.host_failures == 0

            mixed = ShardedNodeFarm(
                farm.spec, n_shards=3, batching=farm.batching,
                seed=farm.seed, hosts=[a1.address])
            res2 = mixed.serve(frames, workers=1)
            assert np.array_equal(res2.outputs, ref.outputs), \
                f"1-local+1-remote diverged at level {level}"

    def test_sigkill_partition_requeues_and_stays_identical(
            self, tiny_hls):
        frames = frames_for(30)
        farm = farm_for(tiny_hls, n_shards=4)
        ref = farm.serve_reference(frames)
        with spawn_agent(workers=1) as a1, spawn_agent(workers=1) as a2:
            hosted = ShardedNodeFarm(
                farm.spec, n_shards=4, batching=farm.batching,
                seed=farm.seed, hosts=[a1.address, a2.address])
            pool = hosted.start_pool(workers=0)
            try:
                handle = pool.submit(
                    np.ascontiguousarray(frames, dtype=np.float64),
                    list(hosted.plan(len(frames)).tasks))
                a2.kill()                        # hard partition
                pool.wait(handle, timeout_s=300)
                assert np.array_equal(handle.outputs, ref.outputs)
                assert pool.stats.host_failures == 1
                assert pool.stats.requeued_tasks >= 1
                assert handle.stats.host_failures == 1
                # the pool keeps serving on the surviving host
                handle2 = pool.submit(
                    np.ascontiguousarray(frames, dtype=np.float64),
                    list(hosted.plan(len(frames)).tasks))
                pool.wait(handle2, timeout_s=300)
                assert np.array_equal(handle2.outputs, ref.outputs)
            finally:
                pool.close()

    def test_partition_budget_exhausts_into_crash_error(self, tiny_hls):
        # One host, no local workers, budget 0: losing the only link
        # must surface as WorkerCrashError, not a hang.
        frames = frames_for(12)
        farm = farm_for(tiny_hls, n_shards=2)
        with spawn_agent(workers=1) as a1:
            hosted = ShardedNodeFarm(
                farm.spec, n_shards=2, batching=farm.batching,
                seed=farm.seed, hosts=[a1.address])
            pool = hosted.start_pool(workers=0, max_restarts=0)
            try:
                # a started pool still refuses non-shard work
                with pytest.raises(TypeError, match="ShardTask"):
                    pool.submit(frames_for(2), [object()])
                pool.submit(
                    np.ascontiguousarray(frames, dtype=np.float64),
                    list(hosted.plan(len(frames)).tasks))
                a1.kill()
                with pytest.raises(WorkerCrashError):
                    deadline = time.monotonic() + 120
                    while time.monotonic() < deadline:
                        pool.pump()
            finally:
                pool.close()

    def test_hosts_version_mismatch_refused_cleanly(self):
        with spawn_agent(workers=1) as agent:
            raw = socket.create_connection(agent.address, timeout=30)
            try:
                raw.sendall(pack_host_hello(version=99))
                dec = MessageDecoder()
                msg = None
                deadline = time.monotonic() + 30
                while msg is None and time.monotonic() < deadline:
                    data = raw.recv(1 << 16)
                    if not data:
                        break
                    dec.feed(data)
                    msg = dec.next_message()
                assert msg is not None and msg[0] == MsgKind.ERROR
                assert b"version" in msg[1] and b"99" in msg[1]
            finally:
                raw.close()
            # the agent still welcomes a properly-versioned peer
            raw2 = socket.create_connection(agent.address, timeout=30)
            try:
                raw2.sendall(pack_host_hello())
                dec = MessageDecoder()
                msg = None
                deadline = time.monotonic() + 30
                while msg is None and time.monotonic() < deadline:
                    data = raw2.recv(1 << 16)
                    if not data:
                        break
                    dec.feed(data)
                    msg = dec.next_message()
                assert msg is not None and msg[0] == MsgKind.HOST_WELCOME
                version, slots = unpack_host_welcome(msg[1])
                assert version == HOSTS_PROTO_VERSION and slots == 1
            finally:
                raw2.close()


# ----------------------------------------------------------------------
# Bursty replay: seeded determinism of arrivals + shed decisions
# ----------------------------------------------------------------------
class TestReplay:
    MODEL = BurstModel(burst_mean=24.0, gap_mean_s=0.012)

    def test_schedule_is_seeded_deterministic(self):
        a = synth_schedule(6, 20, seed=9, model=self.MODEL)
        b = synth_schedule(6, 20, seed=9, model=self.MODEL)
        assert a.signature() == b.signature()
        c = synth_schedule(6, 20, seed=10, model=self.MODEL)
        assert a.signature() != c.signature()
        for arrivals in a.arrivals:
            assert len(arrivals) == 20
            assert all(t2 >= t1 for t1, t2 in zip(arrivals, arrivals[1:]))

    def test_streams_draw_independent_arrival_processes(self):
        sched = synth_schedule(4, 16, seed=9, model=self.MODEL)
        assert len(set(sched.arrivals)) == 4       # pairwise distinct

    def test_admission_simulation_deterministic_and_conserving(self):
        sched = synth_schedule(8, 24, seed=11, model=self.MODEL)
        kw = dict(batching=BatchingPolicy(max_batch=8), queue_limit=6,
                  workers=2, service_per_frame_s=1.2e-3)
        sim = simulate_admission(sched, **kw)
        again = simulate_admission(sched, **kw)
        assert sim.signature() == again.signature()
        assert sim.total_shed > 0                  # bursts overflow
        for s in sim.streams:
            # conservation: every offered frame is accepted xor shed,
            # in offered order, disjointly
            assert sorted(s.accepted + s.shed) == list(range(s.offered))
            assert len(s.sim_latency_s) == len(s.accepted)
            assert all(lat >= 0 for lat in s.sim_latency_s)
            assert s.n_batches >= 1

    def test_wider_queue_sheds_less(self):
        sched = synth_schedule(8, 24, seed=11, model=self.MODEL)
        tight = simulate_admission(sched, queue_limit=4, workers=2,
                                   service_per_frame_s=1.2e-3)
        wide = simulate_admission(sched, queue_limit=64, workers=2,
                                  service_per_frame_s=1.2e-3)
        assert wide.total_shed < tight.total_shed
        assert wide.total_accepted > tight.total_accepted

    def test_accepted_frames_selects_admitted_subsequence(self):
        sched = synth_schedule(2, 10, seed=11, model=self.MODEL)
        sim = simulate_admission(sched, queue_limit=2, workers=1,
                                 service_per_frame_s=5e-3)
        stream_frames = [frames_for(10, seed=s) for s in range(2)]
        admitted = accepted_frames(sim, stream_frames)
        for s, ssim in enumerate(sim.streams):
            assert np.array_equal(
                admitted[s], stream_frames[s][list(ssim.accepted)])
        with pytest.raises(ValueError, match="frame blocks"):
            accepted_frames(sim, stream_frames[:1])

    def test_burst_model_validation(self):
        with pytest.raises(ValueError, match="period_s"):
            BurstModel(period_s=0)
        with pytest.raises(ValueError, match="burst_mean"):
            BurstModel(burst_mean=0.5)
        with pytest.raises(ValueError, match="gap_mean_s"):
            BurstModel(gap_mean_s=-1.0)
        with pytest.raises(ValueError, match="n_streams"):
            synth_schedule(0, 5)
        with pytest.raises(ValueError, match="frames_per_stream"):
            synth_schedule(1, 0)
