"""Tests for the fixed-point kernels and the converter."""

import numpy as np
import pytest

from repro.fixed import FixedPointFormat, Overflow, quantize
from repro.hls.config import HLSConfig, LayerConfig, WIDE_ACCUM
from repro.hls.converter import convert
from repro.hls.kernels import (
    BatchNormKernel,
    ConcatKernel,
    Conv1DKernel,
    DenseKernel,
    InputKernel,
    MaxPoolKernel,
    ReLUKernel,
    SigmoidKernel,
    SoftmaxKernel,
    UpSampleKernel,
)
from repro.nn import (
    BatchNormalization,
    Conv1D,
    Dense,
    Flatten,
    Input,
    Model,
    ReLU,
    Sigmoid,
)

PRECISE = FixedPointFormat(32, 16, overflow=Overflow.SAT)


def cfg(result=None, weight=None, reuse=32):
    return LayerConfig(
        weight=weight or PRECISE,
        result=result or PRECISE,
        accum=WIDE_ACCUM,
        reuse_factor=reuse,
    )


class TestDenseKernel:
    def test_matches_float_at_high_precision(self):
        rng = np.random.default_rng(0)
        W = rng.normal(size=(6, 4))
        b = rng.normal(size=4)
        k = DenseKernel("d", cfg(), ["__input__"], [(6,)], W, b)
        x = quantize(rng.normal(size=(3, 6)), PRECISE)
        np.testing.assert_allclose(k.forward([x]), x @ k.weights["kernel"]
                                   + k.weights["bias"], atol=1e-4)

    def test_weights_quantized(self):
        W = np.array([[0.123456789]])
        narrow = FixedPointFormat(8, 2)
        k = DenseKernel("d", cfg(weight=narrow), ["__input__"], [(1,)], W)
        assert k.weights["kernel"][0, 0] == quantize(W, narrow)[0, 0]

    def test_result_wraps_on_overflow(self):
        W = np.array([[1.0]])
        wrap = FixedPointFormat(16, 7, overflow=Overflow.WRAP)
        k = DenseKernel("d", cfg(result=wrap), ["__input__"], [(1,)], W)
        out = k.forward([np.array([[70.0]])])
        assert out[0, 0] == pytest.approx(-58.0)

    def test_pointwise_shape(self):
        W = np.zeros((3, 2))
        k = DenseKernel("d", cfg(), ["__input__"], [(10, 3)], W)
        assert k.output_shape == (10, 2)
        assert not k.streams_weights

    def test_flat_dense_streams_weights(self):
        W = np.zeros((3, 2))
        k = DenseKernel("d", cfg(), ["__input__"], [(3,)], W)
        assert k.streams_weights
        assert k.weight_words == 6

    def test_fan_in_mismatch(self):
        with pytest.raises(ValueError):
            DenseKernel("d", cfg(), ["__input__"], [(5,)], np.zeros((3, 2)))


class TestConvKernel:
    def test_matches_nn_conv_at_high_precision(self):
        rng = np.random.default_rng(1)
        inp = Input((12, 2))
        layer = Conv1D(3, 3, seed=5)
        model = Model(inp, layer(inp))
        x = quantize(rng.normal(size=(2, 12, 2)), PRECISE)
        expected = model.forward(x)
        k = Conv1DKernel("c", cfg(), ["__input__"], [(12, 2)],
                         layer.params["kernel"], layer.params["bias"])
        np.testing.assert_allclose(k.forward([x]), expected, atol=1e-3)

    def test_valid_padding_shape(self):
        k = Conv1DKernel("c", cfg(), ["__input__"], [(10, 1)],
                         np.zeros((3, 1, 4)), padding="valid")
        assert k.output_shape == (8, 4)

    def test_mult_count(self):
        k = Conv1DKernel("c", cfg(reuse=32), ["__input__"], [(10, 2)],
                         np.zeros((3, 2, 4)))
        assert k.n_mult_per_position == 24
        assert k.n_mult_total == 240

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            Conv1DKernel("c", cfg(), ["__input__"], [(10, 3)],
                         np.zeros((3, 2, 4)))


class TestBatchNormKernel:
    def test_affine(self):
        scale = np.array([2.0, 0.5])
        shift = np.array([1.0, -1.0])
        k = BatchNormKernel("b", cfg(), ["__input__"], [(4, 2)], scale, shift)
        x = np.ones((1, 4, 2))
        out = k.forward([x])
        np.testing.assert_allclose(out[0, 0], [3.0, -0.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BatchNormKernel("b", cfg(), ["__input__"], [(4, 2)],
                            np.zeros(3), np.zeros(3))


class TestActivationKernels:
    def test_relu_exact(self):
        k = ReLUKernel("r", cfg(), ["__input__"], [(5,)])
        x = np.array([[-1.0, 0.0, 2.5, -0.25, 7.0]])
        np.testing.assert_allclose(k.forward([x]).ravel(),
                                   [0, 0, 2.5, 0, 7.0])

    def test_sigmoid_lut_close_to_real(self):
        k = SigmoidKernel("s", cfg(), ["__input__"], [(1,)])
        x = np.linspace(-6, 6, 201).reshape(1, -1)
        k2 = SigmoidKernel("s2", cfg(), ["__input__"], [(201,)])
        out = k2.forward([x])
        err = np.abs(out - 1 / (1 + np.exp(-x)))
        assert err.max() < 0.01  # LUT resolution bound

    def test_sigmoid_saturates_outside_range(self):
        k = SigmoidKernel("s", cfg(), ["__input__"], [(2,)])
        out = k.forward([np.array([[-100.0, 100.0]])])
        assert out[0, 0] == pytest.approx(k.table[0])
        assert out[0, 1] == pytest.approx(k.table[-1])

    def test_sigmoid_monotone(self):
        k = SigmoidKernel("s", cfg(), ["__input__"], [(100,)])
        x = np.linspace(-10, 10, 100).reshape(1, -1)
        out = k.forward([x]).ravel()
        assert (np.diff(out) >= 0).all()

    def test_sigmoid_table_quantized_to_result(self):
        narrow = FixedPointFormat(8, 1)
        k = SigmoidKernel("s", cfg(result=narrow), ["__input__"], [(1,)])
        grid = k.table / narrow.lsb
        np.testing.assert_allclose(grid, np.round(grid), atol=1e-9)

    def test_table_bits(self):
        k = SigmoidKernel("s", cfg(result=FixedPointFormat(16, 2)),
                          ["__input__"], [(1,)])
        assert k.table_bits == 1024 * 16

    def test_softmax_normalized(self):
        k = SoftmaxKernel("sm", cfg(), ["__input__"], [(4, 3)])
        x = np.random.default_rng(0).normal(size=(2, 4, 3)) * 3
        out = k.forward([x])
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=2e-3)


class TestShapeKernels:
    def test_input_quantizes(self):
        narrow = FixedPointFormat(16, 7, overflow=Overflow.WRAP)
        k = InputKernel("in", cfg(result=narrow), (4,))
        out = k.forward([np.array([[70.0, 1.0, -2.0, 0.5]])])
        assert out[0, 0] == pytest.approx(-58.0)  # wrapped at the buffer

    def test_maxpool(self):
        k = MaxPoolKernel("p", cfg(), ["__input__"], [(6, 1)], 2)
        x = np.array([[1, 9, 2, 3, 5, 4]], dtype=float).reshape(1, 6, 1)
        np.testing.assert_allclose(k.forward([x]).ravel(), [9, 3, 5])

    def test_upsample(self):
        k = UpSampleKernel("u", cfg(), ["__input__"], [(2, 1)], 2)
        x = np.array([[1.0, 2.0]]).reshape(1, 2, 1)
        np.testing.assert_allclose(k.forward([x]).ravel(), [1, 1, 2, 2])

    def test_concat_aligns_formats(self):
        narrow = FixedPointFormat(8, 4)
        k = ConcatKernel("cat", cfg(result=narrow), ["a", "b"],
                         [(2, 1), (2, 1)])
        a = np.full((1, 2, 1), 1.0 + 2**-9)  # finer grid than result
        b = np.zeros((1, 2, 1))
        out = k.forward([a, b])
        grid = out / narrow.lsb
        np.testing.assert_allclose(grid, np.round(grid), atol=1e-9)


class TestConverter:
    def _model(self):
        inp = Input((12, 1), name="in")
        x = Conv1D(3, 3, seed=0, name="c")(inp)
        x = BatchNormalization(name="bn")(x)
        x = ReLU(name="r")(x)
        x = Dense(2, seed=1, name="d")(x)
        x = Sigmoid(name="s")(x)
        out = Flatten(name="f")(x)
        return Model(inp, out, name="m")

    def test_kernel_per_layer(self):
        m = self._model()
        hm = convert(m, HLSConfig())
        assert [k.name for k in hm.kernels] == [l.name for l in m.layers]

    def test_batchnorm_fused(self):
        m = self._model()
        # give batch-norm nontrivial statistics
        bn = m.get_layer("bn")
        bn.state["moving_mean"] = np.array([1.0, -2.0, 0.5])
        bn.state["moving_var"] = np.array([4.0, 1.0, 9.0])
        hm = convert(m, HLSConfig())
        k = hm.get_kernel("bn")
        assert isinstance(k, BatchNormKernel)
        scale, shift = bn.inference_scale_shift()
        np.testing.assert_allclose(k.weights["scale"], scale, atol=1e-3)

    def test_high_precision_matches_float(self):
        m = self._model()
        wide = FixedPointFormat(40, 20, overflow=Overflow.SAT)
        config = HLSConfig(default=LayerConfig(
            weight=wide, result=wide, accum=WIDE_ACCUM, reuse_factor=32))
        hm = convert(m, config)
        x = np.random.default_rng(0).normal(size=(4, 12, 1))
        # sigmoid LUT is the only remaining error source (~1e-2)
        np.testing.assert_allclose(hm.predict(x), m.forward(x), atol=2e-2)

    def test_trace_returns_all_layers(self):
        m = self._model()
        hm = convert(m, HLSConfig())
        tr = hm.trace(np.zeros((1, 12, 1)))
        assert set(tr) == {l.name for l in m.layers}

    def test_input_shape_validated(self):
        hm = convert(self._model(), HLSConfig())
        with pytest.raises(ValueError):
            hm.predict(np.zeros((1, 13, 1)))

    def test_count_weights(self):
        m = self._model()
        hm = convert(m, HLSConfig())
        # conv (3*1*3+3) + bn fused (3+3) + dense (3*2+2) = 12+6+8 = 26
        assert hm.count_weights() == 26

    def test_summary_renders(self):
        hm = convert(self._model(), HLSConfig())
        s = hm.summary()
        assert "conv1d" in s and "MACs" in s

    def test_multi_output_rejected(self):
        inp = Input((4,))
        a = Dense(2, seed=0)(inp)
        b = Dense(2, seed=1)(inp)
        m = Model(inp, [a, b])
        with pytest.raises(ValueError):
            convert(m, HLSConfig())
