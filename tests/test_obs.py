"""Tests for the ``repro.obs`` observability layer and the redesigned
``repro.core.api`` facade.

The load-bearing guarantees pinned here:

* the tracer is a pure observer — every executor path (naive,
  batched, compiled level 1/2) is bit-identical with obs on vs off,
* the 260-frame span tree has the documented shape (one ``frame`` root
  per tick, every board stage + decide/publish nested under it),
* fixed-bucket histogram percentiles are deterministic upper-edge
  values a test can pin exactly,
* the flight recorder is a true ring and freezes a post-mortem the
  moment a watchdog trip lands,
* the deprecation shims (``predict(compiled=...)``,
  ``RunStats.kernel_times``, positional ``codesign_and_deploy``) warn
  but keep old call sites working.
"""

import json

import numpy as np
import pytest

import repro
from repro.core.api import RuntimeConfig, build_runtime, run_control_loop
from repro.plants import BeamLossPlant
from repro.hls import HLSConfig, convert, uniform_config
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU, Sigmoid
from repro.obs import (
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    ObsConfig,
    Observability,
    Tracer,
)
from repro.obs.report import BOARD_STAGES, node_latencies_s, stage_summary
from repro.soc.faults import FaultInjector, IPHangFault
from repro.soc.runtime import STATUS_WATCHDOG

N_MONITORS = 16


@pytest.fixture(scope="module")
def obs_model():
    inp = Input((N_MONITORS, 1), name="in")
    x = Conv1D(4, 3, seed=11, name="c1")(inp)
    x = ReLU(name="r1")(x)
    x = Dense(2, seed=13, name="d1")(x)
    x = Sigmoid(name="s1")(x)
    return Model(inp, Flatten(name="f1")(x), name="obs-tiny")


@pytest.fixture(scope="module")
def obs_hls(obs_model):
    return convert(obs_model, HLSConfig())


def frames_for(n, seed=99):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(n, N_MONITORS))


def loop(hls, frames, *, obs=None, seed=5, level=0, batch=True,
         injector=None):
    """One control-loop run through the facade on a fresh conversion."""
    cfg = RuntimeConfig(compile_level=level, batch_inference=batch)
    runtime = build_runtime(hls, config=cfg, obs=obs, injector=injector,
                            plant=BeamLossPlant(min_votes=1))
    return run_control_loop(runtime, frames, seed=seed)


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
class TestTracer:
    def test_live_span_nesting_and_frame_inheritance(self):
        tr = Tracer()
        with tr.span("frame", frame=7, sim_t0=0.0) as root:
            with tr.span("inner") as child:
                pass
            root.sim_t1 = 1.0
        spans = tr.spans()
        assert [s.name for s in spans] == ["inner", "frame"]
        inner, frame = spans
        assert inner.parent_id == frame.span_id
        assert inner.frame == 7          # inherited from the open stack
        assert frame.sim_duration_s == 1.0
        assert tr.open_depth() == 0

    def test_record_is_retroactive_and_nests(self):
        tr = Tracer()
        with tr.span("frame", frame=3):
            tr.record("ip_compute", sim_t0=1.0, sim_t1=2.5, words=4)
        ip = tr.spans("ip_compute")[0]
        assert ip.frame == 3
        assert ip.sim_duration_s == 1.5
        assert ip.attrs["words"] == 4
        assert ip.parent_id == tr.spans("frame")[0].span_id

    def test_ring_eviction_counts_drops(self):
        tr = Tracer(max_spans=4)
        for i in range(10):
            tr.record("s", frame=i, sim_t0=0.0, sim_t1=1.0)
        assert len(tr.spans()) == 4
        assert tr.dropped == 6
        assert [s.frame for s in tr.spans()] == [6, 7, 8, 9]

    def test_out_of_order_close_raises(self):
        tr = Tracer()
        a = tr.span("a")
        b = tr.span("b")
        with pytest.raises(RuntimeError):
            a.__exit__(None, None, None)
        b.__exit__(None, None, None)
        a.__exit__(None, None, None)

    def test_to_dict_is_json_safe(self):
        tr = Tracer()
        tr.record("s", frame=1, sim_t0=0.0, sim_t1=1e-3,
                  arr=np.float64(2.0))
        json.dumps(tr.spans()[0].to_dict())


# ----------------------------------------------------------------------
# Histograms: deterministic, pinnable percentiles
# ----------------------------------------------------------------------
class TestHistogram:
    def test_percentiles_pin_to_bucket_upper_edges(self):
        h = Histogram("lat", buckets_s=(1e-3, 1e-2, 1e-1))
        for v in [0.4e-3] * 50 + [5e-3] * 40 + [50e-3] * 10:
            h.observe(v)
        assert h.count == 100
        assert h.percentile(50) == 1e-3
        assert h.percentile(90) == 1e-2
        assert h.percentile(99) == 1e-1
        assert h.percentile(100) == 1e-1

    def test_overflow_bucket_reports_exact_max(self):
        h = Histogram("lat", buckets_s=(1e-3,))
        h.observe(0.5)
        h.observe(2.0)
        assert h.percentile(99) == 2.0   # overflow → exact max, not an edge
        assert h.max_value == 2.0

    def test_empty_and_invalid_q(self):
        h = Histogram("lat")
        assert h.percentile(50) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_registry_snapshot_round_trips_json(self):
        m = MetricsRegistry()
        m.inc("a", 3)
        m.set_gauge("g", 1.5)
        m.observe("h", 2e-3)
        snap = json.loads(json.dumps(m.snapshot()))
        assert snap["counters"]["a"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_existing_histogram_bucket_mismatch_raises(self):
        # Regression: re-requesting a histogram with different buckets
        # used to silently return the old one — the caller would then
        # read percentiles quantised to edges it never asked for.
        m = MetricsRegistry()
        h = m.histogram("lat", buckets_s=(1e-3, 2e-3))
        assert m.histogram("lat") is h                       # no buckets
        assert m.histogram("lat", buckets_s=(1e-3, 2e-3)) is h  # same
        assert m.histogram("lat", buckets_s=[1e-3, 2e-3]) is h  # any seq
        with pytest.raises(ValueError, match="already exists"):
            m.histogram("lat", buckets_s=(1e-3, 4e-3))


# ----------------------------------------------------------------------
# The 260-frame span tree
# ----------------------------------------------------------------------
class TestSpanTree:
    N = 260

    @pytest.fixture(scope="class")
    def run260(self, obs_hls):
        obs = Observability.from_config(ObsConfig(flight_frames=64))
        result = loop(obs_hls, frames_for(self.N), obs=obs)
        return result, obs

    def test_one_frame_root_per_tick(self, run260):
        result, obs = run260
        frames = obs.tracer.spans("frame")
        assert len(frames) == self.N
        assert [s.frame for s in frames] == list(range(self.N))
        assert all(s.parent_id is None for s in frames)

    def test_every_stage_nested_under_its_frame(self, run260):
        _, obs = run260
        for fi in (0, 1, 137, self.N - 1):
            tree = obs.tracer.frame_tree(fi)
            assert tree["name"] == "frame"
            children = {c["name"] for c in tree["children"]}
            expected = {"hub_readout", "decide", "publish", *BOARD_STAGES}
            assert expected <= children

    def test_span_sums_match_frame_records(self, run260):
        result, obs = run260
        node = node_latencies_s(obs.tracer)
        recorded = np.array([r.node_latency_s for r in result.records])
        np.testing.assert_allclose(node, recorded, rtol=0, atol=1e-12)

    def test_frame_span_covers_hub_plus_node(self, run260):
        result, obs = run260
        for s, r in zip(obs.tracer.spans("frame"), result.records):
            assert s.sim_duration_s == pytest.approx(r.total_latency_s)

    def test_metrics_folded_per_frame(self, run260):
        result, obs = run260
        snap = obs.metrics.snapshot()
        assert snap["counters"]["frames.total"] == self.N
        assert snap["histograms"]["latency.total_s"]["count"] == self.N
        assert snap["counters"]["frames.status.ok"] == sum(
            1 for r in result.records if r.status == "ok")

    def test_stage_summary_has_exact_stats(self, run260):
        _, obs = run260
        summary = stage_summary(obs.tracer, names=["ip_compute"])
        s = summary["ip_compute"]
        assert s["count"] == self.N
        assert 0 < s["p50_s"] <= s["p99_s"] <= s["max_s"]

    def test_export_snapshot_json_safe(self, run260, tmp_path):
        result, obs = run260
        snap = obs.snapshot(runtime=result.runtime)
        payload = json.loads(json.dumps(snap))
        assert payload["meta"]["format"] == "repro-obs/1"
        assert payload["health"]["frames_total"] == self.N
        path = tmp_path / "obs.json"
        obs.export(path, runtime=result.runtime)
        assert json.loads(path.read_text())["spans"]["count"] > 0


# ----------------------------------------------------------------------
# Flight recorder ring + post-mortem on an injected hang
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_keeps_last_n(self, obs_hls):
        obs = Observability.from_config(ObsConfig(flight_frames=8))
        loop(obs_hls, frames_for(40), obs=obs)
        entries = obs.recorder.entries()
        assert obs.recorder.frames_seen == 40
        assert [e["frame"] for e in entries] == list(range(32, 40))

    def test_hang_trips_postmortem(self, obs_hls, tmp_path):
        dump = tmp_path / "postmortem.jsonl"
        obs = Observability.from_config(
            ObsConfig(flight_frames=8, dump_path=str(dump)))
        injector = FaultInjector(
            [IPHangFault(rate=1.0, start=12, stop=13, extra_s=5e-3)],
            seed=3)
        result = loop(obs_hls, frames_for(20), obs=obs, injector=injector,
                      batch=False)
        hung = [r for r in result.records if r.status == STATUS_WATCHDOG]
        assert [r.frame_index for r in hung] == [12]
        assert obs.recorder.trips == 1
        pm = obs.recorder.postmortems[0]
        assert pm["reason"] == STATUS_WATCHDOG
        assert pm["frame_index"] == 12
        assert pm["entries"][-1]["frame"] == 12
        assert pm["entries"][-1]["status"] == STATUS_WATCHDOG

        lines = [json.loads(l) for l in dump.read_text().splitlines()]
        assert lines[0]["record"] == "header"
        assert lines[0]["reason"] == STATUS_WATCHDOG
        assert lines[-1]["frame"] == 12

    def test_recorder_unit_ring_and_trip_cap(self):
        rec = FlightRecorder(capacity=4, max_postmortems=2)
        for i in range(10):
            rec.append({"frame": i})
        assert [e["frame"] for e in rec.entries()] == [6, 7, 8, 9]
        for t in range(3):
            rec.mark_trip("watchdog_timeout", frame_index=t)
        assert rec.trips == 3
        assert len(rec.postmortems) == 2   # bounded, oldest evicted

    def test_jsonl_headers_carry_frames_seen(self):
        # Regression: the post-mortem header used to drop frames_seen,
        # so a dump could not say how much history the ring had lost.
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.append({"frame": i})

        lines = rec.to_jsonl().splitlines()
        header = json.loads(lines[0])
        assert header["record"] == "header"
        assert header["reason"] == "snapshot"
        assert header["frames_seen"] == 10
        assert header["n_entries"] == 4 == len(lines) - 1
        assert header["capacity"] == 4

        pm = rec.mark_trip("watchdog_timeout", frame_index=9)
        rec.append({"frame": 10})          # post-trip frames keep flowing
        lines = rec.to_jsonl(pm).splitlines()
        header = json.loads(lines[0])
        assert header["reason"] == "watchdog_timeout"
        assert header["frame_index"] == 9
        assert header["trip_number"] == 1
        assert header["frames_seen"] == 11   # total ever seen, not ring
        assert header["n_entries"] == 4 == len(lines) - 1
        assert [json.loads(l)["frame"] for l in lines[1:]] == [6, 7, 8, 9]


# ----------------------------------------------------------------------
# Bit-identity: obs is a pure observer on every executor path
# ----------------------------------------------------------------------
class TestBitIdentity:
    PATHS = [
        pytest.param(dict(level=0, batch=False), id="naive-sequential"),
        pytest.param(dict(level=0, batch=True), id="batched"),
        pytest.param(dict(level=1, batch=True), id="compiled-l1"),
        pytest.param(dict(level=2, batch=True), id="compiled-l2"),
    ]

    @staticmethod
    def signature(result):
        return (
            [r.total_latency_s for r in result.records],
            [r.decision.machine for r in result.records],
            [r.decision.score for r in result.records],
            [r.status for r in result.records],
        )

    @pytest.mark.parametrize("path", PATHS)
    def test_obs_on_equals_obs_off(self, obs_model, path):
        frames = frames_for(32)
        on = loop(convert(obs_model, HLSConfig()), frames,
                  obs=Observability.from_config(ObsConfig()), **path)
        off = loop(convert(obs_model, HLSConfig()), frames, **path)
        assert self.signature(on) == self.signature(off)

    def test_traced_kernels_do_not_perturb(self, obs_model):
        frames = frames_for(16)
        obs = Observability.from_config(ObsConfig(trace_kernels=True))
        on = loop(convert(obs_model, HLSConfig()), frames, obs=obs,
                  batch=False)
        off = loop(convert(obs_model, HLSConfig()), frames, batch=False)
        assert self.signature(on) == self.signature(off)
        assert any(n.startswith("kernel.") for n in obs.tracer.names())


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_predict_compiled_false_maps_to_naive(self, obs_hls):
        x = frames_for(4).reshape(4, N_MONITORS, 1)
        with pytest.warns(DeprecationWarning, match="executor="):
            old = obs_hls.predict(x, compiled=False)
        assert np.array_equal(old, obs_hls.predict(x, executor="naive"))

    def test_predict_compiled_true_maps_to_plan(self, obs_model):
        hls = convert(obs_model, HLSConfig())
        hls.compile(level=1)
        x = frames_for(4).reshape(4, N_MONITORS, 1)
        with pytest.warns(DeprecationWarning, match="executor="):
            old = hls.predict(x, compiled=True)
        assert np.array_equal(old, hls.predict(x, executor="plan"))

    def test_run_stats_kernel_times_alias(self, obs_hls):
        x = frames_for(2).reshape(2, N_MONITORS, 1)
        obs_hls.predict(x, profile=True)
        stats = obs_hls.last_run_stats
        with pytest.warns(DeprecationWarning, match="step_times"):
            old = stats.kernel_times
        assert old == stats.step_times

    def test_codesign_positional_legacy_warns(self):
        inp = Input((8, 1), name="in")
        x = Dense(2, seed=4, name="d")(inp)
        x = Sigmoid(name="s")(x)
        model = Model(inp, Flatten(name="f")(x), name="toy")
        profile = np.random.default_rng(0).normal(size=(24, 8, 1)) * 40
        with pytest.warns(DeprecationWarning, match="keyword"):
            design, deployment = repro.codesign_and_deploy(
                model, profile, None, 16, 4)
        assert deployment.verification


# ----------------------------------------------------------------------
# The facade itself
# ----------------------------------------------------------------------
class TestFacade:
    def test_top_level_exports(self):
        for name in ("load_pretrained", "build_runtime", "run_control_loop",
                     "codesign_and_deploy", "RuntimeConfig", "ObsConfig"):
            assert hasattr(repro, name)

    def test_build_runtime_from_float_model(self, obs_model):
        rt = build_runtime(obs_model,
                           config=RuntimeConfig(compile_level=1),
                           plant=BeamLossPlant(min_votes=1))
        assert rt.board.ip.hls_model.compile_level == 1
        assert rt.hubs.n_monitors == N_MONITORS
        assert rt.obs is None            # zero-cost default: no tracer
        assert rt.board.tracer is None

    def test_build_runtime_obs_config_builds_bundle(self, obs_hls):
        rt = build_runtime(obs_hls, obs=ObsConfig(flight_frames=4))
        assert rt.obs is not None
        assert rt.board.tracer is rt.obs.tracer
        assert rt.obs.recorder.capacity == 4

    def test_run_control_loop_accepts_runtime_and_attaches_obs(self,
                                                               obs_hls):
        rt = build_runtime(obs_hls, plant=BeamLossPlant(min_votes=1))
        result = run_control_loop(rt, frames_for(6), seed=2,
                                  obs=ObsConfig())
        assert result.runtime is rt
        assert result.obs is rt.obs
        assert len(result.records) == 6
        assert result.health.frames_total == 6
        assert result.total_latencies_s.shape == (6,)

    def test_config_validation(self, obs_hls):
        with pytest.raises(ValueError):
            RuntimeConfig(compile_level=5)
        with pytest.raises(ValueError):
            RuntimeConfig(period_s=0.0)
        with pytest.raises(ValueError):
            ObsConfig(flight_frames=0)
        with pytest.raises(TypeError):
            build_runtime(object())
        with pytest.raises(TypeError):
            build_runtime(obs_hls, obs=object())  # type: ignore[arg-type]

    def test_fallback_model_converted_and_installed(self, obs_model,
                                                    obs_hls):
        rt = build_runtime(obs_hls, fallback=obs_model,
                           plant=BeamLossPlant(min_votes=1))
        assert rt.fallback_board is not None
        assert rt.fallback_board.ip.hls_model is not obs_hls


# ----------------------------------------------------------------------
# Observability re-attach: no stale kernel tracer
# ----------------------------------------------------------------------
class TestObsReattach:
    """Regression: re-attaching with ``trace_kernels=False`` (or
    detaching entirely) used to leave the previous bundle's tracer on
    ``board.ip.hls_model`` — kernel spans kept flowing into a tracer
    the runtime no longer owned."""

    @staticmethod
    def _assert_wired(rt, obs, trace_kernels):
        tracer = obs.tracer if obs is not None else None
        kernel = tracer if (obs is not None and trace_kernels) else None
        for board in (rt.board, rt.fallback_board):
            assert board.tracer is tracer
            assert board.ip.hls_model.tracer is kernel

    def test_reattach_matrix_clears_stale_kernel_tracer(self, obs_model,
                                                        obs_hls):
        rt = build_runtime(obs_hls, fallback=obs_model,
                           plant=BeamLossPlant(min_votes=1))
        # Every transition of trace_kernels on/off/detached, twice over,
        # so each state is reached both from "on" and from "off".
        for trace_kernels in (True, False, None, True, None, False, True):
            if trace_kernels is None:
                obs = None
            else:
                obs = Observability.from_config(
                    ObsConfig(trace_kernels=trace_kernels))
            rt.attach_observability(obs)
            assert rt.obs is obs
            self._assert_wired(rt, obs, trace_kernels)

    def test_reattach_off_stops_kernel_spans(self, obs_hls):
        traced = Observability.from_config(ObsConfig(trace_kernels=True))
        rt = build_runtime(obs_hls, plant=BeamLossPlant(min_votes=1),
                           obs=traced)
        rt.run(frames_for(2), seed=1)
        assert any(n.startswith("kernel.") for n in traced.tracer.names())

        untraced = Observability.from_config(ObsConfig(trace_kernels=False))
        rt.attach_observability(untraced)
        rt.run(frames_for(2), seed=1)
        assert not any(n.startswith("kernel.")
                       for n in untraced.tracer.names())
        # And the old bundle stopped receiving spans entirely.
        before = len(traced.tracer.names())
        rt.run(frames_for(2), seed=1)
        assert len(traced.tracer.names()) == before
