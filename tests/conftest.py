"""Shared fixtures.

Session-scoped fixtures hold the expensive artefacts (synthetic dataset,
the pre-trained bundle, converted HLS models) so the whole suite pays
for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beamloss import make_dataset
from repro.nn import (
    Conv1D,
    Dense,
    Flatten,
    Input,
    MaxPooling1D,
    Model,
    ReLU,
    Sigmoid,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """A small but fully-featured de-blending dataset."""
    return make_dataset(n_train=120, n_val=30, n_eval=60, seed=7)


@pytest.fixture(scope="session")
def tiny_model():
    """A tiny trained-ish conv model exercising every HLS-relevant layer
    type except batch-norm/up-sampling (those have dedicated tests)."""
    inp = Input((16, 1), name="in")
    x = Conv1D(4, 3, seed=11, name="c1")(inp)
    x = ReLU(name="r1")(x)
    x = MaxPooling1D(2, name="p1")(x)
    x = Conv1D(6, 3, seed=12, name="c2")(x)
    x = ReLU(name="r2")(x)
    x = Dense(2, seed=13, name="d1")(x)
    x = Sigmoid(name="s1")(x)
    out = Flatten(name="f1")(x)
    return Model(inp, out, name="tiny")


@pytest.fixture(scope="session")
def reference_bundle():
    """The pre-trained reference bundle (requires shipped weights)."""
    from repro.pretrained import load_reference_bundle

    return load_reference_bundle(train_if_missing=False)


@pytest.fixture(scope="session")
def reference_hls_unet(reference_bundle):
    """The deployed layer-based U-Net design (cached conversion)."""
    from repro.experiments.common import converted

    return converted("Layer-based Precision ac_fixed<16, x>")
