"""Layer-level tests: shapes, forward semantics, gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    Add,
    AveragePooling1D,
    BatchNormalization,
    Concatenate,
    Conv1D,
    Dense,
    Flatten,
    Input,
    Linear,
    MaxPooling1D,
    Model,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    UpSampling1D,
)
from repro.nn.losses import MeanSquaredError


def numeric_grad_check(build, x_shape, seed=0, eps=1e-6, tol=1e-5,
                       n_checks=3):
    """Generic central-difference gradient check for a single-layer model."""
    rng = np.random.default_rng(seed)
    inp = Input(x_shape[1:])
    out_ref = build(inp)
    model = Model(inp, out_ref)
    x = rng.normal(size=x_shape)
    y = rng.normal(size=(x_shape[0],) + model.outputs[0].shape)
    loss = MeanSquaredError()

    pred = model.forward(x, training=True)
    model.backward(loss.grad(y, pred))
    for layer in model.trainable_layers():
        for key, p in layer.params.items():
            g = layer.grads[key]
            for _ in range(n_checks):
                idx = tuple(rng.integers(0, s) for s in p.shape)
                orig = p[idx]
                p[idx] = orig + eps
                lp = loss.value(y, model.forward(x, training=True))
                p[idx] = orig - eps
                lm = loss.value(y, model.forward(x, training=True))
                p[idx] = orig
                num = (lp - lm) / (2 * eps)
                denom = max(1e-6, abs(num) + abs(g[idx]))
                assert abs(num - g[idx]) / denom < tol, (
                    f"{layer.name}/{key}{idx}: {num} vs {g[idx]}"
                )


def input_grad_check(build, x_shape, seed=0, eps=1e-6, tol=1e-5):
    """Central-difference check of dL/dx."""
    rng = np.random.default_rng(seed)
    inp = Input(x_shape[1:])
    model = Model(inp, build(inp))
    x = rng.normal(size=x_shape)
    y = rng.normal(size=(x_shape[0],) + model.outputs[0].shape)
    loss = MeanSquaredError()
    pred = model.forward(x, training=True)
    (dx,) = model.backward(loss.grad(y, pred))
    for _ in range(4):
        idx = tuple(rng.integers(0, s) for s in x.shape)
        orig = x[idx]
        x[idx] = orig + eps
        lp = loss.value(y, model.forward(x, training=True))
        x[idx] = orig - eps
        lm = loss.value(y, model.forward(x, training=True))
        x[idx] = orig
        num = (lp - lm) / (2 * eps)
        denom = max(1e-6, abs(num) + abs(dx[idx]))
        assert abs(num - dx[idx]) / denom < tol


class TestDense:
    def test_output_shape_flat(self):
        inp = Input((10,))
        ref = Dense(4, seed=0)(inp)
        assert ref.shape == (4,)

    def test_output_shape_sequence(self):
        inp = Input((20, 3))
        ref = Dense(4, seed=0)(inp)
        assert ref.shape == (20, 4)

    def test_forward_matches_matmul(self):
        inp = Input((5,))
        layer = Dense(3, seed=1)
        model = Model(inp, layer(inp))
        x = np.random.default_rng(0).normal(size=(4, 5))
        expected = x @ layer.params["kernel"] + layer.params["bias"]
        np.testing.assert_allclose(model.forward(x), expected)

    def test_no_bias_param_absent(self):
        inp = Input((5,))
        layer = Dense(3, use_bias=False, seed=1)
        layer(inp)
        assert "bias" not in layer.params
        assert layer.count_params() == 15

    def test_gradients(self):
        numeric_grad_check(lambda t: Dense(3, seed=2)(t), (4, 6))

    def test_gradients_sequence(self):
        numeric_grad_check(lambda t: Dense(3, seed=2)(t), (2, 7, 4))

    def test_input_gradients(self):
        input_grad_check(lambda t: Dense(3, seed=2)(t), (4, 6))

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestConv1D:
    def test_same_padding_shape(self):
        inp = Input((20, 3))
        assert Conv1D(5, 3, seed=0)(inp).shape == (20, 5)

    def test_valid_padding_shape(self):
        inp = Input((20, 3))
        assert Conv1D(5, 5, padding="valid", seed=0)(inp).shape == (16, 5)

    def test_identity_kernel(self):
        inp = Input((8, 1))
        layer = Conv1D(1, 3, use_bias=False, seed=0)
        model = Model(inp, layer(inp))
        k = np.zeros((3, 1, 1))
        k[1, 0, 0] = 1.0  # center tap = identity
        layer.params["kernel"] = k
        x = np.random.default_rng(0).normal(size=(2, 8, 1))
        np.testing.assert_allclose(model.forward(x), x)

    def test_shift_kernel(self):
        # A kernel with only the left tap set shifts the sequence.
        inp = Input((8, 1))
        layer = Conv1D(1, 3, use_bias=False, seed=0)
        model = Model(inp, layer(inp))
        k = np.zeros((3, 1, 1))
        k[0, 0, 0] = 1.0
        layer.params["kernel"] = k
        x = np.arange(8, dtype=float).reshape(1, 8, 1)
        out = model.forward(x)
        np.testing.assert_allclose(out[0, 1:, 0], x[0, :-1, 0])
        assert out[0, 0, 0] == 0.0  # zero padding

    def test_matches_manual_correlation(self):
        rng = np.random.default_rng(3)
        inp = Input((10, 2))
        layer = Conv1D(3, 3, padding="valid", seed=4)
        model = Model(inp, layer(inp))
        x = rng.normal(size=(1, 10, 2))
        out = model.forward(x)
        W, b = layer.params["kernel"], layer.params["bias"]
        for t in range(8):
            expected = np.einsum("kc,kcf->f", x[0, t:t + 3], W) + b
            np.testing.assert_allclose(out[0, t], expected, atol=1e-12)

    def test_gradients(self):
        numeric_grad_check(lambda t: Conv1D(3, 3, seed=5)(t), (2, 10, 2))

    def test_gradients_valid(self):
        numeric_grad_check(
            lambda t: Conv1D(2, 5, padding="valid", seed=5)(t), (2, 12, 3)
        )

    def test_input_gradients(self):
        input_grad_check(lambda t: Conv1D(3, 3, seed=5)(t), (2, 10, 2))

    def test_even_kernel_same_padding(self):
        inp = Input((10, 1))
        assert Conv1D(2, 4, seed=0)(inp).shape == (10, 2)

    def test_bad_padding(self):
        with pytest.raises(ValueError):
            Conv1D(2, 3, padding="full")

    def test_kernel_too_large(self):
        inp = Input((4, 1))
        with pytest.raises(ValueError):
            Conv1D(2, 9, padding="valid", seed=0)(inp)


class TestPooling:
    def test_max_forward(self):
        inp = Input((6, 1))
        model = Model(inp, MaxPooling1D(2)(inp))
        x = np.array([[1, 5, 2, 2, 9, 0]], dtype=float).reshape(1, 6, 1)
        np.testing.assert_allclose(model.forward(x).ravel(), [5, 2, 9])

    def test_avg_forward(self):
        inp = Input((6, 1))
        model = Model(inp, AveragePooling1D(2)(inp))
        x = np.array([[1, 5, 2, 2, 9, 0]], dtype=float).reshape(1, 6, 1)
        np.testing.assert_allclose(model.forward(x).ravel(), [3, 2, 4.5])

    def test_odd_length_truncates(self):
        inp = Input((7, 2))
        assert MaxPooling1D(2)(inp).shape == (3, 2)

    def test_max_backward_routes_to_argmax(self):
        inp = Input((4, 1))
        model = Model(inp, MaxPooling1D(2)(inp))
        x = np.array([[1.0, 3.0, 2.0, 0.5]]).reshape(1, 4, 1)
        model.forward(x, training=True)
        (dx,) = model.backward(np.ones((1, 2, 1)))
        np.testing.assert_allclose(dx.ravel(), [0, 1, 1, 0])

    def test_avg_backward_uniform(self):
        inp = Input((4, 1))
        model = Model(inp, AveragePooling1D(2)(inp))
        x = np.zeros((1, 4, 1))
        model.forward(x, training=True)
        (dx,) = model.backward(np.ones((1, 2, 1)))
        np.testing.assert_allclose(dx.ravel(), [0.5, 0.5, 0.5, 0.5])

    def test_max_grad_check_via_input(self):
        input_grad_check(lambda t: MaxPooling1D(2)(t), (2, 8, 2), seed=9)

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            MaxPooling1D(1)

    def test_260_chain(self):
        # The reference chain 260 → 130 → 65.
        inp = Input((260, 1))
        p1 = MaxPooling1D(2)(inp)
        p2 = MaxPooling1D(2)(p1)
        assert p1.shape == (130, 1)
        assert p2.shape == (65, 1)


class TestUpSampling:
    def test_forward_repeats(self):
        inp = Input((3, 1))
        model = Model(inp, UpSampling1D(2)(inp))
        x = np.array([[1.0, 2.0, 3.0]]).reshape(1, 3, 1)
        np.testing.assert_allclose(
            model.forward(x).ravel(), [1, 1, 2, 2, 3, 3]
        )

    def test_backward_sums(self):
        inp = Input((3, 1))
        model = Model(inp, UpSampling1D(2)(inp))
        model.forward(np.zeros((1, 3, 1)), training=True)
        g = np.arange(6, dtype=float).reshape(1, 6, 1)
        (dx,) = model.backward(g)
        np.testing.assert_allclose(dx.ravel(), [1, 5, 9])

    def test_roundtrip_with_pool(self):
        inp = Input((65, 4))
        up = UpSampling1D(2)(inp)
        assert up.shape == (130, 4)

    def test_grad_check(self):
        input_grad_check(lambda t: UpSampling1D(2)(t), (2, 5, 3))


class TestMerge:
    def test_concat_channels(self):
        a, b = Input((5, 2)), Input((5, 3))
        ref = Concatenate()(a, b)
        assert ref.shape == (5, 5)

    def test_concat_backward_splits(self):
        a, b = Input((2, 2)), Input((2, 1))
        model = Model([a, b], Concatenate()(a, b))
        model.forward([np.zeros((1, 2, 2)), np.ones((1, 2, 1))],
                      training=True)
        g = np.arange(6, dtype=float).reshape(1, 2, 3)
        da, db = model.backward(g)
        assert da.shape == (1, 2, 2)
        assert db.shape == (1, 2, 1)
        np.testing.assert_allclose(db.ravel(), [2, 5])

    def test_concat_shape_mismatch(self):
        a, b = Input((5, 2)), Input((6, 3))
        with pytest.raises(ValueError):
            Concatenate()(a, b)

    def test_add_forward(self):
        a, b = Input((4,)), Input((4,))
        model = Model([a, b], Add()(a, b))
        out = model.forward([np.ones((2, 4)), 2 * np.ones((2, 4))])
        np.testing.assert_allclose(out, 3.0)

    def test_add_shape_mismatch(self):
        a, b = Input((4,)), Input((5,))
        with pytest.raises(ValueError):
            Add()(a, b)


class TestActivations:
    @pytest.mark.parametrize("layer_cls,func", [
        (ReLU, lambda x: np.maximum(x, 0)),
        (Sigmoid, lambda x: 1 / (1 + np.exp(-x))),
        (Tanh, np.tanh),
        (Linear, lambda x: x),
    ])
    def test_forward_values(self, layer_cls, func):
        inp = Input((7,))
        model = Model(inp, layer_cls()(inp))
        x = np.linspace(-3, 3, 7).reshape(1, 7)
        np.testing.assert_allclose(model.forward(x), func(x), atol=1e-12)

    def test_softmax_sums_to_one(self):
        inp = Input((5, 3))
        model = Model(inp, Softmax()(inp))
        x = np.random.default_rng(0).normal(size=(2, 5, 3)) * 10
        out = model.forward(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_sigmoid_extreme_stable(self):
        inp = Input((2,))
        model = Model(inp, Sigmoid()(inp))
        out = model.forward(np.array([[-700.0, 700.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh, Softmax])
    def test_grad_check(self, layer_cls):
        input_grad_check(lambda t: layer_cls()(t), (3, 6), seed=3, tol=1e-4)


class TestBatchNorm:
    def test_training_normalizes(self):
        inp = Input((50, 4))
        model = Model(inp, BatchNormalization()(inp))
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(16, 50, 4))
        out = model.forward(x, training=True)
        assert abs(out.mean()) < 0.05
        assert abs(out.std() - 1.0) < 0.05

    def test_inference_uses_moving_stats(self):
        inp = Input((4,))
        bn = BatchNormalization(momentum=0.0)  # adopt batch stats at once
        model = Model(inp, bn(inp))
        x = np.random.default_rng(0).normal(10.0, 2.0, size=(256, 4))
        model.forward(x, training=True)
        out = model.forward(x, training=False)
        assert abs(out.mean()) < 0.1

    def test_gradients(self):
        numeric_grad_check(
            lambda t: BatchNormalization()(t), (8, 5), seed=5, tol=1e-4
        )

    def test_fused_scale_shift_matches_inference(self):
        inp = Input((4,))
        bn = BatchNormalization(momentum=0.0)
        model = Model(inp, bn(inp))
        x = np.random.default_rng(1).normal(5.0, 3.0, size=(128, 4))
        model.forward(x, training=True)
        scale, shift = bn.inference_scale_shift()
        np.testing.assert_allclose(
            model.forward(x, training=False), scale * x + shift, atol=1e-9
        )

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNormalization(momentum=1.0)


class TestReshapeLayers:
    def test_flatten(self):
        inp = Input((4, 3))
        assert Flatten()(inp).shape == (12,)

    def test_flatten_roundtrip_grad(self):
        input_grad_check(lambda t: Flatten()(t), (2, 4, 3))

    def test_reshape(self):
        inp = Input((12,))
        assert Reshape((4, 3))(inp).shape == (4, 3)

    def test_reshape_size_mismatch(self):
        inp = Input((10,))
        with pytest.raises(ValueError):
            Reshape((4, 3))(inp)

    def test_flatten_order_monitor_major(self):
        # (monitors, machines) flattens monitor-major — the 520-value
        # output layout [m0_MI, m0_RR, m1_MI, ...].
        inp = Input((3, 2))
        model = Model(inp, Flatten()(inp))
        x = np.arange(6, dtype=float).reshape(1, 3, 2)
        np.testing.assert_allclose(model.forward(x).ravel(),
                                   [0, 1, 2, 3, 4, 5])


class TestLayerProtocol:
    def test_layer_reuse_rejected(self):
        layer = Dense(2, seed=0)
        a, b = Input((3,)), Input((3,))
        layer(a)
        with pytest.raises(RuntimeError):
            layer(b)

    def test_call_on_non_tensor_rejected(self):
        with pytest.raises(TypeError):
            Dense(2)(np.zeros((1, 3)))

    def test_backward_before_forward(self):
        inp = Input((3,))
        layer = Dense(2, seed=0)
        layer(inp)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_unique_autonames(self):
        names = {Dense(2).name for _ in range(10)}
        assert len(names) == 10
