"""Smoke tests: every example must run to completion.

The examples are the library's living documentation; a broken example is
a broken deliverable, so each is executed in-process (sharing the session
cache through ``repro.experiments.common``) with output captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_examples_directory_complete():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 5


@pytest.mark.parametrize("name", ["precision_exploration.py",
                                  "soc_latency_analysis.py"])
def test_fast_examples_run(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200


def test_beamloss_deblending_runs(capsys):
    runpy.run_path(str(EXAMPLES / "beamloss_deblending.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "trips:" in out
    assert "deadline" in out


@pytest.mark.slow
def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "FEASIBLE" in out or "feasible" in out


@pytest.mark.slow
def test_custom_model_deployment_runs(capsys):
    runpy.run_path(str(EXAMPLES / "custom_model_deployment.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "parameters" in out
    assert "firmware/parameters.h" in out
