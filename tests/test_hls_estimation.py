"""Tests for the latency model, resource model, report, and codegen."""

import numpy as np
import pytest

from repro.hls.codegen import emit_project, write_project
from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.hls.device import ARRIA10_660, CYCLONE_V, Device
from repro.hls.latency import (
    MM_CYCLES_PER_WORD,
    WEIGHT_BANKS,
    estimate_latency,
    kernel_cycles,
)
from repro.hls.precision import uniform_config
from repro.hls.report import build_report
from repro.hls.resources import (
    CalibrationConstants,
    estimate_resources,
    kernel_mult_units,
)
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU, Sigmoid
from repro.nn.zoo import build_mlp, build_unet


def conv_model():
    inp = Input((16, 1), name="in")
    x = Conv1D(4, 3, seed=0, name="c")(inp)
    x = ReLU(name="r")(x)
    out = Flatten(name="f")(x)
    return Model(inp, out, name="cm")


def dense_model():
    inp = Input((64,), name="in")
    x = Dense(32, seed=0, name="d1")(inp)
    x = ReLU(name="r")(x)
    x = Dense(8, seed=1, name="d2")(x)
    out = Sigmoid(name="s")(x)
    return Model(inp, out, name="dm")


class TestLatencyModel:
    def test_reuse_scales_conv_latency(self):
        m = conv_model()
        lats = []
        for reuse in (8, 16, 32):
            hm = convert(m, HLSConfig().with_reuse_factor(reuse))
            lats.append(estimate_latency(hm).total_cycles)
        assert lats[0] < lats[1] < lats[2]
        # conv cycles ≈ positions × RF: roughly linear in RF
        assert lats[2] - lats[1] > (lats[1] - lats[0]) * 0.9

    def test_flat_dense_weight_streaming_floor(self):
        m = dense_model()
        # tiny reuse would make compute trivial — streaming must dominate
        hm = convert(m, HLSConfig().with_reuse_factor(1))
        k = hm.get_kernel("d1")
        cycles = kernel_cycles(k)
        assert cycles >= k.weight_words / WEIGHT_BANKS

    def test_transfer_cycles(self):
        hm = convert(conv_model(), HLSConfig())
        rep = estimate_latency(hm)
        assert rep.transfer_cycles == (16 + 64) * MM_CYCLES_PER_WORD

    def test_latency_seconds(self):
        hm = convert(conv_model(), HLSConfig())
        rep = estimate_latency(hm)
        assert rep.latency_s == pytest.approx(rep.total_cycles / 100e6)

    def test_slowest_layers_sorted(self):
        hm = convert(dense_model(), HLSConfig())
        top = estimate_latency(hm).slowest_layers(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_unet_reference_latency_band(self):
        """The deployed U-Net IP must land near the paper's 1.57 ms."""
        m = build_unet()
        hm = convert(m, uniform_config(16, 7, model=m))
        lat = estimate_latency(hm)
        assert 1.4e-3 < lat.latency_s < 1.8e-3

    def test_mlp_reference_latency_band(self):
        """The MLP IP must land near ≈0.14 ms (0.31 ms system)."""
        m = build_mlp()
        hm = convert(m, uniform_config(16, 7, model=m))
        lat = estimate_latency(hm)
        assert 0.08e-3 < lat.latency_s < 0.2e-3


class TestResourceModel:
    def test_mult_units_ceil(self):
        m = conv_model()
        hm = convert(m, HLSConfig().with_reuse_factor(32))
        k = hm.get_kernel("c")
        assert kernel_mult_units(k) == 1  # ceil(12/32)

    def test_flat_dense_units(self):
        m = dense_model()
        hm = convert(m, HLSConfig().with_reuse_factor(32))
        assert kernel_mult_units(hm.get_kernel("d1")) == 64  # 2048/32

    def test_higher_reuse_fewer_units(self):
        m = build_unet()
        res8 = estimate_resources(convert(m, HLSConfig().with_reuse_factor(8)))
        res64 = estimate_resources(convert(m, HLSConfig().with_reuse_factor(64)))
        assert sum(res8.per_layer_units.values()) > sum(
            res64.per_layer_units.values()
        )
        assert res8.aluts > res64.aluts

    def test_wide_format_alut_cliff(self):
        """The 16 → 18 bit jump must be super-linear (Table II's 22 → 115 %)."""
        m = build_unet()
        r16 = estimate_resources(convert(m, uniform_config(16, 7, model=m)))
        r18 = estimate_resources(convert(m, uniform_config(18, 10, model=m)))
        assert r18.aluts > 3 * r16.aluts

    def test_unet_reference_point(self):
        """Uniform <16,7> lands at the paper's 22 % ALUT anchor."""
        m = build_unet()
        res = estimate_resources(convert(m, uniform_config(16, 7, model=m)))
        assert 0.18 < res.alut_fraction < 0.27
        assert res.dsp_blocks == 273  # the deployed DSP allocation
        assert 350_000 < res.registers < 460_000

    def test_infeasible_design_flagged(self):
        m = build_unet()
        res = estimate_resources(convert(m, uniform_config(18, 10, model=m)))
        assert res.alut_fraction > 1.0
        assert not res.fits

    def test_smaller_device_tighter(self):
        m = conv_model()
        hm = convert(m, HLSConfig())
        big = estimate_resources(hm, ARRIA10_660)
        small = estimate_resources(hm, CYCLONE_V)
        assert small.m20k_fraction > big.m20k_fraction
        assert small.alm_fraction > big.alm_fraction

    def test_device_validation(self):
        with pytest.raises(ValueError):
            Device("bad", alms=0, aluts=1, registers=1, m20k_blocks=1,
                   block_memory_bits=1, dsp_blocks=1, pins=1, plls=1)

    def test_memory_grows_with_buffer_multiplier(self):
        m = conv_model()
        hm = convert(m, HLSConfig())
        lo = estimate_resources(hm, calibration=CalibrationConstants(
            stream_buffer_bits_multiplier=1.0))
        hi = estimate_resources(hm, calibration=CalibrationConstants(
            stream_buffer_bits_multiplier=3.0))
        assert hi.block_memory_bits > 2 * lo.block_memory_bits

    def test_pointwise_dense_folds_total_mults(self):
        """A dense layer applied per position (2-D output) must fold its
        *total* mult count through RF, like the flat dense rule — keying
        the branch on output rank undercounted it by ``positions``."""
        inp = Input((10, 8), name="in")
        out = Dense(4, seed=0, name="pd")(inp)
        hm = convert(Model(inp, out, name="pm"),
                     HLSConfig().with_reuse_factor(16))
        k = hm.get_kernel("pd")
        assert k.output_shape == (10, 4)
        # total mults = 10 positions × 8×4 = 320; ceil(320/16) = 20 —
        # not ceil(32/16) = 2 as the per-position rule would claim.
        assert kernel_mult_units(k) == 20

    def test_register_heavy_design_must_not_fit(self):
        """``fits`` has to check the register budget: a deep-pipeline
        calibration that overflows registers while ALUTs stay small must
        be flagged infeasible."""
        m = dense_model()
        hm = convert(m, uniform_config(16, 7, model=m))
        res = estimate_resources(hm, calibration=CalibrationConstants(
            registers_per_unit=1.2e5))
        assert res.alut_fraction <= 1.0
        assert res.alm_fraction <= 1.0
        assert res.register_fraction > 1.0
        assert not res.fits

    def test_memory_bits_overflow_must_not_fit(self):
        """``fits`` has to check raw block-memory bits, which can
        overflow while the M20K *block* count still fits (bits scale
        with the FIFO padding multiplier; block counts do not)."""
        m = conv_model()
        hm = convert(m, uniform_config(16, 7, model=m))
        res = estimate_resources(hm, calibration=CalibrationConstants(
            stream_buffer_bits_multiplier=2e5))
        assert res.m20k_fraction <= 1.0
        assert res.memory_bits_fraction > 1.0
        assert not res.fits

    def test_unet_reference_still_fits_with_register_check(self):
        """The deployed layer-based design keeps fitting under the
        stricter ``fits`` (Table III anchor: ≈41 % registers)."""
        m = build_unet()
        res = estimate_resources(convert(m, uniform_config(16, 7, model=m)))
        assert res.register_fraction < 1.0
        assert res.memory_bits_fraction < 1.0
        assert res.fits


class TestReport:
    def test_build_report_fields(self):
        m = conv_model()
        hm = convert(m, HLSConfig())
        rep = build_report(hm)
        assert rep.model_name == "cm_hls"
        assert rep.ip_latency_ms > 0
        text = rep.summary_table().render()
        assert "Logic Utilization" in text
        assert "DSP" in text


class TestCodegen:
    def _project(self, include_weights=True):
        m = dense_model()
        hm = convert(m, uniform_config(16, 7, model=m))
        return hm, emit_project(hm, include_weights=include_weights)

    def test_file_set(self):
        _, files = self._project(include_weights=False)
        assert "firmware/parameters.h" in files
        assert "firmware/dm_hls.cpp" in files
        assert "dm_hls_test.cpp" in files
        assert "firmware/weights/w_d1.h" in files

    def test_parameters_contain_ac_fixed_types(self):
        _, files = self._project(include_weights=False)
        params = files["firmware/parameters.h"]
        assert "ac_fixed<16, 7, true>" in params
        assert "N_INPUTS  = 64" in params
        assert "d1_reuse_factor" in params

    def test_component_uses_mm_host(self):
        _, files = self._project(include_weights=False)
        comp = files["firmware/dm_hls.cpp"]
        assert "ihc::mm_host" in comp
        assert "component void dm_hls" in comp

    def test_weight_data_raw_values(self):
        hm, files = self._project(include_weights=True)
        header = files["firmware/weights/w_d2.h"]
        k = hm.get_kernel("d2")
        # raw value of the first kernel weight appears in the initializer
        from repro.fixed import to_raw

        raw0 = int(to_raw(k.weights["kernel"].ravel()[:1],
                          k.config.weight)[0])
        assert str(raw0) in header

    def test_weight_elision(self):
        _, files = self._project(include_weights=False)
        assert "extern const" in files["firmware/weights/w_d1.h"]

    def test_write_project(self, tmp_path):
        hm, _ = self._project(include_weights=False)
        write_project(hm, tmp_path, include_weights=False)
        assert (tmp_path / "firmware" / "parameters.h").exists()
        assert (tmp_path / "firmware" / "weights" / "w_d1.h").exists()

    def test_testbench_uses_tolerance(self):
        _, files = self._project(include_weights=False)
        assert "0.20" in files["dm_hls_test.cpp"]
