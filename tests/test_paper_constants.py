"""The published-constants module must agree with what the library
actually reproduces — these tests tie `repro.paper` to the code."""

import pytest

from repro import paper
from repro.nn.zoo import build_mlp, build_unet
from repro.verify.comparators import CLOSE_ENOUGH_THRESHOLD


class TestConsistencyWithCode:
    def test_param_counts_match_zoo(self):
        assert build_unet().count_params() == paper.UNET["params"]
        assert build_mlp().count_params() == paper.MLP["params"]

    def test_mlp_layer_sizes(self):
        from repro.nn.zoo.mlp import REFERENCE_MLP_CONFIG

        assert REFERENCE_MLP_CONFIG.hidden_units == paper.MLP["hidden_units"]
        assert REFERENCE_MLP_CONFIG.output_units == paper.MLP["output_units"]

    def test_threshold_matches_comparators(self):
        assert CLOSE_ENOUGH_THRESHOLD == paper.FIG5["close_enough_threshold"]

    def test_reuse_factors_match_precision_module(self):
        from repro.hls.precision import DEFAULT_REUSE, DENSE_SIGMOID_REUSE

        assert DEFAULT_REUSE == paper.UNET["default_reuse_factor"]
        assert DENSE_SIGMOID_REUSE == paper.UNET["dense_sigmoid_reuse_factor"]

    def test_system_shape_constants(self):
        from repro.beamloss.blm import DIGITIZER_PERIOD_S
        from repro.beamloss.geometry import TunnelGeometry
        from repro.beamloss.hubs import HubNetwork

        assert DIGITIZER_PERIOD_S == paper.SYSTEM["deadline_s"]
        assert TunnelGeometry().n_monitors == paper.SYSTEM["n_monitors"]
        assert HubNetwork().n_hubs == paper.SYSTEM["n_hubs"]

    def test_device_percentages_consistent(self):
        """The device capacity table was back-solved from Table III; the
        ratios must reproduce the printed percentages."""
        from repro.hls.device import ARRIA10_660

        t3 = paper.TABLE3
        assert round(t3["logic_alms"] / ARRIA10_660.alms * 100) == t3["logic_pct"]
        assert round(t3["ram_blocks"] / ARRIA10_660.m20k_blocks * 100) == t3["ram_pct"]
        assert round(t3["dsp_blocks"] / ARRIA10_660.dsp_blocks * 100) == t3["dsp_pct"]
        assert round(t3["pins"] / ARRIA10_660.pins * 100) == t3["pins_pct"]
        assert round(t3["plls"] / ARRIA10_660.plls * 100) == t3["plls_pct"]

    def test_table2_rows_match_experiment_anchors(self):
        from repro.experiments.table2 import PAPER_VALUES

        for row in paper.TABLE2:
            anchor = PAPER_VALUES[row.strategy]
            assert anchor == (row.accuracy_mi_pct, row.accuracy_rr_pct,
                              row.alut_pct)

    def test_immutability(self):
        with pytest.raises(TypeError):
            paper.SYSTEM["deadline_s"] = 1.0
