"""Failure-injection tests: the system must *detect* corruption, not
silently produce wrong control decisions.

The paper's verification apparatus (memory content editor, SignalTap,
bit-exact comparisons) exists precisely to catch these failure modes;
these tests inject each fault into the simulator and assert the
corresponding detector fires.
"""

import numpy as np
import pytest

from repro.hls import HLSConfig, convert
from repro.nn.schedules import CosineDecay, StepDecay, attach_schedule
from repro.soc.board import AchillesBoard
from repro.soc.control import ControlIP, ControlState
from repro.verify.stages import verify_soc_subsystem


class TestMemoryCorruption:
    def test_corrupted_output_buffer_detected(self, tiny_model):
        """Flipping one output word after a run must fail the bit-exact
        subsystem check (the in-system memory content editor scenario)."""
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        frames = np.random.default_rng(0).normal(size=(2, 16))
        result = verify_soc_subsystem(board, hm, frames)
        assert result.passed
        # corrupt and re-verify via direct comparison
        board.process_frame(frames[0])
        word = board.output_ram.peek(3)
        board.output_ram.poke(3, word + 1)
        out = board.last_output()
        expected = hm.predict(frames[:1, :, None]).reshape(-1)
        from repro.fixed import quantize

        expected = quantize(expected, board.ip.output_format)
        assert not np.array_equal(out, expected)

    def test_oversized_word_rejected_at_write(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        with pytest.raises(OverflowError):
            board.input_ram.write(0, np.array([2**20], dtype=np.int64))


class TestProtocolViolations:
    def test_retrigger_during_inference_rejected(self, tiny_model):
        """The HPS must not trigger while the IP runs; the FSM refuses."""
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        raw = board.ip.quantize_input(np.zeros(16))
        board.input_ram.write(0, raw)
        board.control.csr_write(ControlIP.TRIGGER, 1)  # running now
        with pytest.raises(RuntimeError, match="trigger while running"):
            board.control.csr_write(ControlIP.TRIGGER, 1)
        # drain the pending completion so the board stays consistent
        board.sim.run()
        board.control.csr_write(ControlIP.IRQ_ACK, 1)
        assert board.control.state is ControlState.IDLE

    def test_lost_irq_diagnosed(self, tiny_model):
        """If the IP never signals completion the board raises rather
        than hanging or returning stale data."""
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        # sabotage: detach the done path
        board.ip.run = lambda: (_ for _ in ()).throw(
            RuntimeError("IP wedged"))
        with pytest.raises(RuntimeError):
            board.process_frame(np.zeros(16))

    def test_deadline_miss_detected_by_controller(self, tiny_model):
        """A pathologically slow HPS must surface as deadline misses in
        the controller's statistics, not vanish."""
        from repro.beamloss.controller import TripController
        from repro.soc.hps import HPSConfig

        hm = convert(tiny_model, HLSConfig())
        slow = HPSConfig(preprocess_s=5e-3)  # blows the 3 ms budget alone
        board = AchillesBoard(hm, hps=slow)
        result = board.run(np.zeros((3, 16)))
        ctl = TripController(min_votes=1)
        ctl.decide_batch(result.outputs, result.latencies_s)
        assert ctl.deadline_miss_rate() == 1.0


class TestSchedules:
    def _opt(self):
        from repro.nn.optimizers import SGD

        return SGD(0.1)

    def test_step_decay(self):
        opt = self._opt()
        sched = StepDecay(opt, factor=0.5, every=2)
        for epoch in range(4):
            sched(epoch, {})
        assert opt.learning_rate == pytest.approx(0.025)

    def test_step_decay_floor(self):
        opt = self._opt()
        sched = StepDecay(opt, factor=0.1, every=1, min_lr=1e-3)
        for epoch in range(10):
            sched(epoch, {})
        assert opt.learning_rate == pytest.approx(1e-3)

    def test_cosine_decay_endpoints(self):
        opt = self._opt()
        sched = CosineDecay(opt, total_epochs=10, min_lr=0.0)
        sched(9, {})
        assert opt.learning_rate == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone(self):
        opt = self._opt()
        sched = CosineDecay(opt, total_epochs=5)
        rates = []
        for epoch in range(5):
            sched(epoch, {})
            rates.append(opt.learning_rate)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_attach_schedule_composes(self):
        opt = self._opt()
        calls = []
        cb = attach_schedule(StepDecay(opt, factor=0.5, every=1),
                             extra_callback=lambda e, logs: calls.append(e))
        cb(0, {})
        assert calls == [0]
        assert opt.learning_rate == pytest.approx(0.05)

    def test_schedule_in_fit(self):
        import numpy as np

        from repro.nn import Adam, Dense, Input, MeanSquaredError, Model, fit

        inp = Input((4,))
        m = Model(inp, Dense(2, seed=0)(inp))
        opt = Adam(0.01)
        sched = CosineDecay(opt, total_epochs=3)
        rng = np.random.default_rng(0)
        fit(m, rng.normal(size=(16, 4)), rng.normal(size=(16, 2)),
            MeanSquaredError(), opt, epochs=3, batch_size=8,
            callback=attach_schedule(sched))
        assert opt.learning_rate < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(self._opt(), factor=0.0)
        with pytest.raises(ValueError):
            CosineDecay(self._opt(), total_epochs=0)
