"""Tests for repro.fixed — formats, quantization, FixedArray."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixed import (
    FixedArray,
    FixedPointFormat,
    Overflow,
    Rounding,
    from_raw,
    quantization_error,
    quantize,
    to_raw,
)

F16_7 = FixedPointFormat(16, 7)
F16_7_WRAP = FixedPointFormat(16, 7, overflow=Overflow.WRAP)
F18_10 = FixedPointFormat(18, 10)


class TestFormat:
    def test_spec_spelling(self):
        assert F16_7.spec() == "ac_fixed<16, 7, true>"

    def test_ranges_signed(self):
        assert F16_7.min_value == -64.0
        assert F16_7.max_value == pytest.approx(64.0 - 2**-9)
        assert F16_7.lsb == 2**-9

    def test_ranges_unsigned(self):
        f = FixedPointFormat(8, 4, signed=False)
        assert f.min_value == 0.0
        assert f.max_value == pytest.approx(16.0 - 2**-4)

    def test_integer_can_exceed_width(self):
        f = FixedPointFormat(8, 12)
        assert f.fractional == -4
        assert f.lsb == 16.0

    def test_negative_integer_bits(self):
        f = FixedPointFormat(8, -2)
        assert f.max_value < 0.25

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(63, 10)

    def test_sat_sym_min(self):
        f = FixedPointFormat(8, 4, overflow=Overflow.SAT_SYM)
        assert f.raw_min == -(2**7 - 1)

    def test_with_override(self):
        g = F16_7.with_(width=18, integer=10)
        assert (g.width, g.integer) == (18, 10)
        assert g.rounding is F16_7.rounding

    def test_for_range_powers_of_two(self):
        # 4.0 needs 3 magnitude bits (to represent values up to 4.x).
        f = FixedPointFormat.for_range(4.0, width=16)
        assert f.integer == 4  # 3 magnitude + sign
        f2 = FixedPointFormat.for_range(3.99, width=16)
        assert f2.integer == 3  # 2 magnitude + sign

    def test_for_range_zero(self):
        f = FixedPointFormat.for_range(0.0, width=16)
        assert f.integer == 1  # just the sign

    def test_for_range_margin(self):
        base = FixedPointFormat.for_range(100.0, width=16)
        plus = FixedPointFormat.for_range(100.0, width=16, margin_bits=1)
        assert plus.integer == base.integer + 1

    def test_for_range_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat.for_range(-1.0, width=16)


class TestQuantize:
    def test_representable_values_unchanged(self):
        vals = np.array([0.0, 1.0, -1.0, 0.5, 63.998046875])
        np.testing.assert_array_equal(quantize(vals, F16_7), vals)

    def test_rounding_rnd_half_up(self):
        f = FixedPointFormat(8, 4, rounding=Rounding.RND)
        lsb = f.lsb
        assert quantize(np.array([1.5 * lsb]), f)[0] == pytest.approx(2 * lsb)
        assert quantize(np.array([-1.5 * lsb]), f)[0] == pytest.approx(-lsb)

    def test_rounding_trn_floor(self):
        f = FixedPointFormat(8, 4, rounding=Rounding.TRN)
        lsb = f.lsb
        assert quantize(np.array([1.9 * lsb]), f)[0] == pytest.approx(lsb)
        assert quantize(np.array([-0.1 * lsb]), f)[0] == pytest.approx(-lsb)

    def test_rounding_convergent_ties_even(self):
        f = FixedPointFormat(8, 4, rounding=Rounding.RND_CONV)
        lsb = f.lsb
        assert quantize(np.array([0.5 * lsb]), f)[0] == 0.0
        assert quantize(np.array([1.5 * lsb]), f)[0] == pytest.approx(2 * lsb)

    def test_rounding_zero_ties_toward_zero(self):
        f = FixedPointFormat(8, 4, rounding=Rounding.RND_ZERO)
        lsb = f.lsb
        assert quantize(np.array([0.5 * lsb]), f)[0] == 0.0
        assert quantize(np.array([-0.5 * lsb]), f)[0] == 0.0

    def test_saturation_clips(self):
        f = FixedPointFormat(16, 7, overflow=Overflow.SAT)
        out = quantize(np.array([1000.0, -1000.0]), f)
        assert out[0] == pytest.approx(f.max_value)
        assert out[1] == pytest.approx(f.min_value)

    def test_wrap_two_complement(self):
        # 70 with range ±64 wraps to 70 - 128 = -58 — the Table II
        # catastrophe in miniature.
        out = quantize(np.array([70.0]), F16_7_WRAP)
        assert out[0] == pytest.approx(-58.0)

    def test_wrap_periodicity(self):
        span = 128.0
        vals = np.array([1.25])
        for k in (1, 2, 5):
            shifted = quantize(vals + k * span, F16_7_WRAP)
            assert shifted[0] == pytest.approx(1.25)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            quantize(np.array([np.nan]), F16_7)

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            quantize(np.array([np.inf]), F16_7)

    def test_huge_values_saturate_not_crash(self):
        out = quantize(np.array([1e30, -1e30]), FixedPointFormat(16, 7))
        assert out[0] == pytest.approx(F16_7.max_value)

    def test_raw_roundtrip(self):
        vals = np.linspace(-60, 60, 101)
        raw = to_raw(vals, F16_7)
        assert raw.dtype == np.int64
        back = from_raw(raw, F16_7)
        np.testing.assert_allclose(back, quantize(vals, F16_7))

    def test_error_bounded_by_lsb(self):
        rng = np.random.default_rng(0)
        vals = rng.uniform(-60, 60, size=1000)
        err = quantization_error(vals, F16_7)
        assert np.abs(err).max() <= F16_7.lsb / 2 + 1e-12

    def test_shape_preserved(self):
        x = np.zeros((3, 4, 5))
        assert quantize(x, F16_7).shape == (3, 4, 5)


class TestQuantizeProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-60, 60), min_size=1, max_size=50))
    def test_idempotent(self, values):
        x = np.array(values)
        once = quantize(x, F16_7)
        twice = quantize(once, F16_7)
        np.testing.assert_array_equal(once, twice)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-60, 60), min_size=1, max_size=50))
    def test_monotone_on_in_range(self, values):
        x = np.sort(np.array(values))
        q = quantize(x, F16_7)
        assert (np.diff(q) >= 0).all()

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(2, 30), st.integers(-5, 20),
        st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=30),
    )
    def test_output_on_grid(self, width, integer, values):
        fmt = FixedPointFormat(width, integer, overflow=Overflow.SAT)
        q = quantize(np.array(values), fmt)
        raw = q / fmt.lsb
        np.testing.assert_allclose(raw, np.round(raw), atol=1e-9)
        assert (q >= fmt.min_value - 1e-9).all()
        assert (q <= fmt.max_value + 1e-9).all()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
    def test_wrap_stays_in_range(self, values):
        q = quantize(np.array(values), F16_7_WRAP)
        assert (q >= F16_7_WRAP.min_value).all()
        assert (q <= F16_7_WRAP.max_value).all()

    @settings(max_examples=100, deadline=None)
    @given(st.floats(-400, 400))
    def test_for_range_holds_value(self, max_abs):
        fmt = FixedPointFormat.for_range(abs(max_abs), width=24)
        q = quantize(np.array([max_abs]), fmt)
        # once integer bits are sized for |v|, error is at most one LSB
        assert abs(q[0] - max_abs) <= fmt.lsb


class TestFixedArray:
    def test_from_float_roundtrip(self):
        a = FixedArray.from_float(np.array([1.5, -2.25]), F16_7)
        np.testing.assert_allclose(a.to_float(), [1.5, -2.25])

    def test_add_exact(self):
        a = FixedArray.from_float(np.array([63.0]), F16_7)
        b = FixedArray.from_float(np.array([63.0]), F16_7)
        c = a + b
        assert c.to_float()[0] == pytest.approx(126.0)  # no overflow: widened
        assert c.format.integer == F16_7.integer + 1

    def test_sub(self):
        a = FixedArray.from_float(np.array([1.0]), F16_7)
        b = FixedArray.from_float(np.array([2.5]), F16_7)
        assert (a - b).to_float()[0] == pytest.approx(-1.5)

    def test_neg(self):
        a = FixedArray.from_float(np.array([3.25]), F16_7)
        assert (-a).to_float()[0] == pytest.approx(-3.25)

    def test_mul_exact(self):
        a = FixedArray.from_float(np.array([0.5]), FixedPointFormat(8, 2))
        b = FixedArray.from_float(np.array([0.25]), FixedPointFormat(8, 2))
        c = a * b
        assert c.to_float()[0] == pytest.approx(0.125)
        assert c.format.width == 16

    def test_scalar_coercion(self):
        a = FixedArray.from_float(np.array([1.0]), F16_7)
        assert (a + 1.0).to_float()[0] == pytest.approx(2.0)
        assert (2.0 * a).to_float()[0] == pytest.approx(2.0)

    def test_cast_narrowing_saturates(self):
        wide = FixedArray.from_float(np.array([100.0]), FixedPointFormat(24, 12))
        narrow = wide.cast(FixedPointFormat(16, 7, overflow=Overflow.SAT))
        assert narrow.to_float()[0] == pytest.approx(64.0 - 2**-9)

    def test_cast_widening_exact(self):
        a = FixedArray.from_float(np.array([1.25]), FixedPointFormat(8, 4))
        wide = a.cast(FixedPointFormat(16, 8))
        assert wide.to_float()[0] == pytest.approx(1.25)

    def test_sum_widens(self):
        a = FixedArray.from_float(np.full(100, 60.0), F16_7)
        s = a.sum()
        assert s.to_float() == pytest.approx(6000.0)

    def test_requires_int64(self):
        with pytest.raises(TypeError):
            FixedArray(np.zeros(3, dtype=np.int32), F16_7)

    def test_getitem(self):
        a = FixedArray.from_float(np.array([1.0, 2.0, 3.0]), F16_7)
        assert a[1].to_float()[0] == pytest.approx(2.0)
        assert len(a) == 3


class TestFixedArrayProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-30, 30), min_size=1, max_size=20),
           st.lists(st.floats(-30, 30), min_size=1, max_size=20))
    def test_add_matches_float(self, xs, ys):
        n = min(len(xs), len(ys))
        a = FixedArray.from_float(np.array(xs[:n]), F16_7)
        b = FixedArray.from_float(np.array(ys[:n]), F16_7)
        np.testing.assert_allclose(
            (a + b).to_float(), a.to_float() + b.to_float(), atol=1e-12
        )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-7, 7), min_size=1, max_size=20))
    def test_mul_matches_float(self, xs):
        a = FixedArray.from_float(np.array(xs), FixedPointFormat(12, 4))
        prod = a * a
        np.testing.assert_allclose(
            prod.to_float(), a.to_float() ** 2, atol=1e-12
        )
