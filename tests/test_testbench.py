"""Tests for test-vector file management."""

import numpy as np
import pytest

from repro.fixed import quantize
from repro.hls import HLSConfig, convert
from repro.verify.testbench import read_vector_file, write_test_vectors


@pytest.fixture()
def tiny_hls(tiny_model):
    return convert(tiny_model, HLSConfig())


class TestVectors:
    def test_files_written(self, tiny_hls, tmp_path):
        frames = np.random.default_rng(0).normal(size=(3, 16, 1))
        inp, exp = write_test_vectors(tiny_hls, frames, tmp_path)
        assert inp.exists() and exp.exists()

    def test_input_roundtrip(self, tiny_hls, tmp_path):
        frames = np.random.default_rng(0).normal(size=(3, 16, 1))
        inp, _ = write_test_vectors(tiny_hls, frames, tmp_path)
        fmt = tiny_hls.kernels[0].config.result
        back = read_vector_file(inp, fmt=fmt)
        expected = quantize(frames.reshape(3, -1), fmt)
        np.testing.assert_array_equal(back, expected)

    def test_expected_matches_prediction(self, tiny_hls, tmp_path):
        frames = np.random.default_rng(1).normal(size=(2, 16, 1))
        _, exp = write_test_vectors(tiny_hls, frames, tmp_path)
        out_fmt = tiny_hls.kernels[-1].config.result
        back = read_vector_file(exp, fmt=out_fmt)
        pred = quantize(tiny_hls.predict(frames).reshape(2, -1), out_fmt)
        np.testing.assert_array_equal(back, pred)

    def test_raw_read_without_format(self, tiny_hls, tmp_path):
        frames = np.zeros((2, 16, 1))
        inp, _ = write_test_vectors(tiny_hls, frames, tmp_path)
        raw = read_vector_file(inp)
        assert raw.dtype == np.int64
        assert raw.shape == (2, 16)

    def test_shape_validated(self, tiny_hls, tmp_path):
        with pytest.raises(ValueError):
            write_test_vectors(tiny_hls, np.zeros((2, 9, 1)), tmp_path)

    def test_ragged_file_rejected(self, tmp_path):
        p = tmp_path / "bad.dat"
        p.write_text("1 2 3\n1 2\n")
        with pytest.raises(ValueError):
            read_vector_file(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.dat"
        p.write_text("\n")
        with pytest.raises(ValueError):
            read_vector_file(p)
