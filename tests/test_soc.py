"""Tests for the SoC simulator components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.soc import (
    AchillesBoard,
    AvalonBridge,
    ControlIP,
    DualPortRAM,
    HPSConfig,
    NeuralIPCore,
    OSJitter,
    PerformanceCounters,
    SignalTrace,
    Simulator,
)
from repro.soc.control import ControlState
from repro.soc.dma import DMAEngine


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(2))
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(0.5, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 1.5)]

    def test_advance(self):
        sim = Simulator()
        sim.advance(2.5)
        assert sim.now == 2.5
        with pytest.raises(ValueError):
            sim.advance(-1.0)

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.advance(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestAvalonBridge:
    def test_write_time_linear(self):
        b = AvalonBridge("b", write_ns=100.0, read_ns=120.0)
        assert b.write_time(10) == pytest.approx(1e-6)
        assert b.read_time(10) == pytest.approx(1.2e-6)

    def test_zero_words_free(self):
        b = AvalonBridge("b")
        assert b.write_time(0) == 0.0

    def test_burst_discount_structure(self):
        b = AvalonBridge("b", write_ns=100.0, burst_ns=10.0)
        # first word full cost, rest incremental
        assert b.write_time(2) == pytest.approx((200 + 10) * 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            AvalonBridge("b", write_ns=0.0)
        with pytest.raises(ValueError):
            AvalonBridge("b").write_time(-1)


class TestDualPortRAM:
    def test_write_read_roundtrip(self):
        ram = DualPortRAM(16, 16)
        data = np.array([1, -2, 30000], dtype=np.int64)
        ram.write(3, data)
        np.testing.assert_array_equal(ram.read(3, 3), data)

    def test_width_enforced(self):
        ram = DualPortRAM(4, 16)
        with pytest.raises(OverflowError):
            ram.write(0, np.array([40000], dtype=np.int64))
        with pytest.raises(OverflowError):
            ram.write(0, np.array([-40000], dtype=np.int64))

    def test_bounds_enforced(self):
        ram = DualPortRAM(4, 16)
        with pytest.raises(IndexError):
            ram.write(3, np.zeros(2, dtype=np.int64))
        with pytest.raises(IndexError):
            ram.read(0, 5)

    def test_poke_peek(self):
        ram = DualPortRAM(4, 16)
        ram.poke(2, -5)
        assert ram.peek(2) == -5

    def test_access_counters(self):
        ram = DualPortRAM(8, 16)
        ram.write(0, np.zeros(4, dtype=np.int64))
        ram.read(0, 2)
        assert ram.write_count == 4
        assert ram.read_count == 2

    def test_clear(self):
        ram = DualPortRAM(4, 16)
        ram.poke(0, 7)
        ram.clear()
        assert ram.peek(0) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-32768, 32767), min_size=1, max_size=16))
    def test_roundtrip_property(self, words):
        ram = DualPortRAM(16, 16)
        arr = np.array(words, dtype=np.int64)
        ram.write(0, arr)
        np.testing.assert_array_equal(ram.read(0, len(words)), arr)


class TestControlIP:
    def test_happy_path(self):
        started, irq = [], []
        ctl = ControlIP(start_ip=lambda: started.append(1),
                        raise_irq=lambda: irq.append(1))
        ctl.csr_write(ControlIP.TRIGGER, 1)
        assert ctl.state is ControlState.RUNNING
        ctl.ip_done()
        assert ctl.state is ControlState.DONE_IRQ
        ctl.csr_write(ControlIP.IRQ_ACK, 1)
        assert ctl.state is ControlState.IDLE
        assert started == [1] and irq == [1]
        assert ctl.trigger_count == 1 and ctl.irq_count == 1

    def test_status_register(self):
        ctl = ControlIP()
        assert ctl.csr_read(ControlIP.STATUS) == 0
        ctl.csr_write(ControlIP.TRIGGER, 1)
        assert ctl.csr_read(ControlIP.STATUS) == 1
        ctl.ip_done()
        assert ctl.csr_read(ControlIP.STATUS) == 2

    def test_double_trigger_rejected(self):
        ctl = ControlIP()
        ctl.csr_write(ControlIP.TRIGGER, 1)
        with pytest.raises(RuntimeError):
            ctl.csr_write(ControlIP.TRIGGER, 1)

    def test_spurious_done_rejected(self):
        with pytest.raises(RuntimeError):
            ControlIP().ip_done()

    def test_spurious_ack_rejected(self):
        with pytest.raises(RuntimeError):
            ControlIP().csr_write(ControlIP.IRQ_ACK, 1)

    def test_write_zero_noop(self):
        ctl = ControlIP()
        ctl.csr_write(ControlIP.TRIGGER, 0)
        assert ctl.state is ControlState.IDLE

    def test_bad_register(self):
        with pytest.raises(IndexError):
            ControlIP().csr_write(0x9, 1)
        with pytest.raises(IndexError):
            ControlIP().csr_read(0x0)


class TestOSJitter:
    def test_nonnegative(self):
        j = OSJitter()
        assert (j.sample(10_000, rng=0) >= 0).all()

    def test_spikes_present_at_high_rate(self):
        j = OSJitter(spike_rate=0.5, spike_min_s=1e-3, spike_max_s=2e-3)
        s = j.sample(1000, rng=0)
        assert (s > 1e-3).mean() > 0.3

    def test_no_spikes_at_zero_rate(self):
        j = OSJitter(spike_rate=0.0, scale_s=1e-6)
        assert j.sample(1000, rng=0).max() < 50e-6

    def test_deterministic(self):
        j = OSJitter()
        np.testing.assert_array_equal(j.sample(100, rng=5),
                                      j.sample(100, rng=5))

    def test_validation(self):
        with pytest.raises(ValueError):
            OSJitter(spike_rate=2.0)
        with pytest.raises(ValueError):
            OSJitter(spike_min_s=2.0, spike_max_s=1.0)


class TestCountersAndTrace:
    def test_counter_intervals(self):
        c = PerformanceCounters(clock_hz=100e6)
        c.start("x", 1.0)
        assert c.stop("x", 1.5) == pytest.approx(0.5)
        assert c.total_cycles("x") == 50_000_000
        assert c.names() == ["x"]

    def test_counter_misuse(self):
        c = PerformanceCounters()
        with pytest.raises(RuntimeError):
            c.stop("never", 1.0)
        c.start("x", 1.0)
        with pytest.raises(ValueError):
            c.stop("x", 0.5)

    def test_nested_start_pairs_lifo(self):
        c = PerformanceCounters()
        c.start("x", 1.0)
        c.start("x", 2.0)  # nested start is well-defined (LIFO pairing)
        assert c.open_count("x") == 2
        assert c.stop("x", 3.0) == pytest.approx(1.0)
        assert c.stop("x", 4.0) == pytest.approx(3.0)
        assert c.open_count("x") == 0
        with pytest.raises(RuntimeError):
            c.stop("x", 5.0)

    def test_cancel_pops_innermost_only(self):
        c = PerformanceCounters()
        c.start("x", 1.0)
        c.start("x", 2.0)
        c.cancel("x")  # discards the nested start, keeps the outer one
        assert c.stop("x", 3.0) == pytest.approx(2.0)
        c.cancel("x")  # not running: clean no-op
        assert c.open_count("x") == 0

    def test_trace_capture_and_order(self):
        tr = SignalTrace(depth=8)
        tr.record(1.0, "a", 1)
        tr.record(2.0, "b", 1)
        tr.record(3.0, "a", 0)
        assert tr.assert_order("a", "b")
        assert not tr.assert_order("b", "a")
        assert tr.last("a").value == 0
        assert len(tr.samples("a")) == 2

    def test_trace_ring_buffer(self):
        tr = SignalTrace(depth=3)
        for i in range(10):
            tr.record(float(i), "s", i)
        assert len(tr) == 3
        assert tr.samples()[0].value == 7

    def test_trace_trigger(self):
        tr = SignalTrace(depth=8,
                         trigger=lambda sig, val: sig == "go" and val == 1)
        tr.record(0.0, "noise", 1)
        assert len(tr) == 0
        tr.record(1.0, "go", 1)
        tr.record(2.0, "after", 1)
        assert [s.signal for s in tr.samples()] == ["go", "after"]


class TestDMA:
    def test_setup_dominates_small(self):
        dma = DMAEngine(setup_s=35e-6, bytes_per_s=1.2e9)
        t = dma.transfer_time(520)  # one 260-word frame
        assert t == pytest.approx(35e-6, rel=0.05)

    def test_bandwidth_dominates_large(self):
        dma = DMAEngine(setup_s=35e-6, bytes_per_s=1.2e9)
        t = dma.transfer_time(12_000_000)
        assert t == pytest.approx(0.01, rel=0.05)

    def test_round_trip(self):
        dma = DMAEngine()
        rt = dma.frame_round_trip(260, 520)
        assert rt > 2 * dma.setup_s * 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            DMAEngine(setup_s=-1)
        with pytest.raises(ValueError):
            DMAEngine().transfer_time(-1)


@pytest.fixture(scope="module")
def tiny_board(tiny_model):
    hm = convert(tiny_model, HLSConfig())
    return AchillesBoard(hm, trace=SignalTrace())


class TestBoard:
    def test_functional_output_matches_hls(self, tiny_model, tiny_board):
        from repro.fixed import quantize

        rng = np.random.default_rng(0)
        frames = rng.normal(size=(4, 16))
        result = tiny_board.run(frames)
        hls = tiny_board.ip.hls_model
        expected = hls.predict(frames[:, :, None]).reshape(4, -1)
        expected = quantize(expected, tiny_board.ip.output_format)
        np.testing.assert_array_equal(result.outputs, expected)

    def test_timing_breakdown_sums(self, tiny_board):
        timing = tiny_board.process_frame(np.zeros(16))
        parts = (timing.preprocess + timing.write_input + timing.trigger
                 + timing.ip_compute + timing.irq + timing.read_output
                 + timing.postprocess + timing.jitter)
        assert timing.total == pytest.approx(parts)

    def test_ip_compute_matches_latency_model(self, tiny_board):
        timing = tiny_board.process_frame(np.zeros(16))
        assert timing.ip_compute == pytest.approx(
            tiny_board.ip.compute_latency_s, rel=1e-6
        )

    def test_deterministic_latency_matches_run(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm, jitter=OSJitter(scale_s=0.0,
                                                  spike_rate=0.0))
        res = board.run(np.zeros((3, 16)))
        det = board.deterministic_latency_s()
        np.testing.assert_allclose(res.latencies_s, det, rtol=1e-9)

    def test_distribution_matches_functional(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        run = board.run(np.zeros((20, 16)), seed=3)
        dist = AchillesBoard(hm).sample_latency_distribution(20, seed=3)
        np.testing.assert_allclose(run.latencies_s, dist, rtol=1e-9)

    def test_paced_mode_aligns_to_ticks(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        board.run(np.zeros((3, 16)), paced=True, period_s=3e-3)
        # After 3 paced frames the clock sits past the 2nd tick.
        assert board.sim.now >= 2 * 3e-3

    def test_signal_order(self, tiny_board):
        tiny_board.trace.clear()
        tiny_board.process_frame(np.zeros(16))
        assert tiny_board.trace.assert_order("trigger", "ip_busy", "irq")

    def test_counters_recorded(self, tiny_board):
        tiny_board.counters.reset()
        tiny_board.process_frame(np.zeros(16))
        assert set(tiny_board.counters.names()) == {
            "step1_write_input", "ip_compute", "step8_read_output"
        }

    def test_fsm_idle_after_frame(self, tiny_board):
        tiny_board.process_frame(np.zeros(16))
        assert tiny_board.control.state is ControlState.IDLE

    def test_fraction_below(self, tiny_board):
        res = tiny_board.run(np.zeros((5, 16)))
        assert res.fraction_below(1.0) == 1.0
        assert res.fraction_below(0.0) == 0.0

    def test_bad_frames_shape(self, tiny_board):
        with pytest.raises(ValueError):
            tiny_board.run(np.zeros((3, 16, 1)))


class TestNeuralIPCore:
    def test_ram_too_small_rejected(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        small = DualPortRAM(4, 16)
        big = DualPortRAM(512, 16)
        with pytest.raises(ValueError):
            NeuralIPCore(hm, small, big)
        with pytest.raises(ValueError):
            NeuralIPCore(hm, big, small)

    def test_quantize_dequantize_roundtrip(self, tiny_board):
        frame = np.linspace(-3, 3, 16)
        raw = tiny_board.ip.quantize_input(frame)
        back = tiny_board.ip.dequantize_output(raw[: tiny_board.ip.n_outputs]) \
            if tiny_board.ip.n_outputs <= 16 else None
        # round-trip through the input format:
        from repro.fixed import from_raw

        recovered = from_raw(raw, tiny_board.ip.input_format)
        np.testing.assert_allclose(recovered, frame, atol=2e-2)

    def test_run_counts(self, tiny_board):
        before = tiny_board.ip.runs
        tiny_board.process_frame(np.zeros(16))
        assert tiny_board.ip.runs == before + 1


class TestPipelinedThroughput:
    def test_beats_sequential(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        seq = 1.0 / board.deterministic_latency_s()
        piped = board.pipelined_throughput_fps()
        assert piped >= seq

    def test_bounded_by_bottleneck(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        piped = board.pipelined_throughput_fps()
        # the pipeline can never beat its slowest stage
        assert piped <= (1.0 / board.ip.compute_latency_s) * (1 + 1e-9)
