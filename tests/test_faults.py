"""Unit tests for the fault-injection subsystem (`repro.soc.faults`) and
the component-level injection hooks it drives."""

import numpy as np
import pytest

from repro.beamloss.acnet import ACNETLog, ACNETTransportError
from repro.beamloss.controller import TripController, TripDecision
from repro.beamloss.hubs import HubNetwork
from repro.hls import HLSConfig, convert
from repro.soc.board import AchillesBoard
from repro.soc.control import ControlIP, ControlState
from repro.soc.counters import PerformanceCounters
from repro.soc.faults import (
    ACNETFault,
    FaultInjector,
    FaultKind,
    FrameFaults,
    FrameHangError,
    HubDelayFault,
    HubDropFault,
    IPHangFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
    StuckMonitorFault,
    flip_bit,
)


def decision(machine=None, idx=0):
    return TripDecision(frame_index=idx, machine=machine, score=1.0,
                        latency_s=1e-3, deadline_met=True)


class TestSpecs:
    def test_rate_validated(self):
        with pytest.raises(ValueError):
            HubDropFault(rate=1.5)
        with pytest.raises(ValueError):
            HubDropFault(rate=-0.1)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            IPHangFault(start=5, stop=5)
        with pytest.raises(ValueError):
            IPHangFault(start=-1)

    def test_kind_specific_validation(self):
        with pytest.raises(ValueError):
            HubDelayFault(delay_s=-1.0)
        with pytest.raises(ValueError):
            NoisyMonitorFault(sigma=-1.0)
        with pytest.raises(ValueError):
            SEUFault(ram="flash")
        with pytest.raises(ValueError):
            SEUFault(bit=16)
        with pytest.raises(ValueError):
            ACNETFault(failures=0)
        with pytest.raises(ValueError):
            IPHangFault(extra_s=-1e-3)

    def test_window_active(self):
        spec = LostIRQFault(start=10, stop=20)
        assert not spec.active(9)
        assert spec.active(10)
        assert spec.active(19)
        assert not spec.active(20)

    def test_injector_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FaultInjector([object()])


class TestInjectorDeterminism:
    SPECS = [
        HubDropFault(rate=0.3),
        HubDelayFault(rate=0.2, delay_s=1e-3),
        NoisyMonitorFault(monitor=3, sigma=2.0, rate=0.5),
        SEUFault(rate=0.4, ram="input"),
        IPHangFault(rate=0.1),
    ]

    def test_same_seed_bit_identical_schedules(self):
        a = FaultInjector(self.SPECS, seed=99).plan(0, 300)
        b = FaultInjector(self.SPECS, seed=99).plan(0, 300)
        assert a.signature() == b.signature()
        assert a.counts() == b.counts()

    def test_different_seed_differs(self):
        a = FaultInjector(self.SPECS, seed=1).plan(0, 300)
        b = FaultInjector(self.SPECS, seed=2).plan(0, 300)
        assert a.signature() != b.signature()

    def test_batch_boundaries_do_not_matter(self):
        """A frame's events depend only on (seed, specs, frame), never on
        how runs were batched."""
        inj = FaultInjector(self.SPECS, seed=7)
        whole = inj.plan(0, 100)
        split = inj.plan(40, 20)
        for f in range(40, 60):
            assert whole.for_frame(f) == split.for_frame(f)

    def test_rate_one_fires_every_frame(self):
        sched = FaultInjector([LostIRQFault(rate=1.0)], seed=0).plan(0, 25)
        assert all(sched.for_frame(f) for f in range(25))

    def test_rate_zero_never_fires(self):
        sched = FaultInjector([LostIRQFault(rate=0.0)], seed=0).plan(0, 25)
        assert len(sched) == 0

    def test_window_respected_in_schedule(self):
        sched = FaultInjector([IPHangFault(start=5, stop=8)], seed=0).plan(0, 20)
        frames = {e.frame_index for e in sched.events}
        assert frames == {5, 6, 7}


class TestFlipBit:
    def test_involution(self):
        for word in (-32768, -1, 0, 1, 12345, 32767):
            for bit in (0, 7, 15):
                assert flip_bit(flip_bit(word, bit), bit) == word

    def test_stays_in_range(self):
        for word in (-32768, -129, 0, 255, 32767):
            for bit in range(16):
                flipped = flip_bit(word, bit)
                assert -32768 <= flipped <= 32767

    def test_sign_bit(self):
        assert flip_bit(0, 15) == -32768

    def test_width_validated(self):
        with pytest.raises(ValueError):
            flip_bit(0, 0, width_bits=0)


class TestFrameFaults:
    def test_from_events_extracts_board_faults(self):
        inj = FaultInjector([IPHangFault(rate=1.0, extra_s=2e-3),
                             LostIRQFault(rate=1.0),
                             SEUFault(rate=1.0, ram="output"),
                             HubDropFault(rate=1.0)], seed=0)
        ff = FrameFaults.from_events(inj.events_for_frame(0))
        assert ff.ip_extra_s == pytest.approx(2e-3)
        assert ff.lost_irq
        assert len(ff.seu) == 1

    def test_from_events_none_when_board_clean(self):
        inj = FaultInjector([HubDropFault(rate=1.0)], seed=0)
        assert FrameFaults.from_events(inj.events_for_frame(0)) is None


class TestHubNetworkHook:
    def test_faulted_matches_clean_when_no_faults(self):
        hubs = HubNetwork()
        clean = hubs.arrival_times(10, seed=3)
        faulted = hubs.faulted_arrival_times(10, seed=3)
        np.testing.assert_array_equal(clean, faulted)

    def test_drop_becomes_inf(self):
        hubs = HubNetwork()
        mask = np.zeros((5, hubs.n_hubs), dtype=bool)
        mask[2, 4] = True
        times = hubs.faulted_arrival_times(5, seed=0, drop_mask=mask)
        assert np.isinf(times[2, 4])
        assert np.isfinite(times).sum() == times.size - 1

    def test_delay_added(self):
        hubs = HubNetwork()
        extra = np.zeros((4, hubs.n_hubs))
        extra[1, 0] = 5e-3
        base = hubs.arrival_times(4, seed=1)
        times = hubs.faulted_arrival_times(4, seed=1, extra_delay_s=extra)
        assert times[1, 0] == pytest.approx(base[1, 0] + 5e-3)

    def test_shapes_validated(self):
        hubs = HubNetwork()
        with pytest.raises(ValueError):
            hubs.faulted_arrival_times(3, extra_delay_s=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            hubs.faulted_arrival_times(3, drop_mask=np.zeros((1, 1), bool))
        with pytest.raises(ValueError):
            hubs.faulted_arrival_times(
                3, extra_delay_s=np.full((3, hubs.n_hubs), -1e-3))


class TestBoardHooks:
    def _board(self, tiny_model):
        return AchillesBoard(convert(tiny_model, HLSConfig()))

    def test_ip_hang_inflates_busy_time(self, tiny_model):
        board = self._board(tiny_model)
        clean = board.process_frame(np.zeros(16))
        hung = board.process_frame(
            np.zeros(16), faults=FrameFaults(ip_extra_s=5e-3))
        assert hung.ip_compute == pytest.approx(clean.ip_compute + 5e-3)

    def test_lost_irq_raises_and_recovers(self, tiny_model):
        board = self._board(tiny_model)
        with pytest.raises(FrameHangError):
            board.process_frame(np.zeros(16), faults=FrameFaults(lost_irq=True))
        board.recover()
        assert board.control.state is ControlState.IDLE
        # the very next frame processes cleanly
        timing = board.process_frame(np.zeros(16))
        assert timing.total > 0

    def test_output_seu_corrupts_readback(self, tiny_model):
        board = self._board(tiny_model)
        board.process_frame(np.zeros(16))
        clean = board.last_output()
        inj = FaultInjector([SEUFault(rate=1.0, ram="output", bit=15)], seed=1)
        ff = FrameFaults.from_events(inj.events_for_frame(0))
        board.process_frame(np.zeros(16), faults=ff)
        corrupted = board.last_output()
        assert not np.array_equal(clean, corrupted)
        assert corrupted.min() < 0  # sign bit flipped on a sigmoid output

    def test_input_seu_stays_in_ram_range(self, tiny_model):
        """Input-buffer upsets must produce valid 16-bit words (the RAM
        model raises on out-of-range), just corrupted ones."""
        board = self._board(tiny_model)
        inj = FaultInjector([SEUFault(rate=1.0, ram="input")], seed=5)
        for f in range(4):
            ff = FrameFaults.from_events(inj.events_for_frame(f))
            board.process_frame(np.zeros(16), faults=ff)  # must not raise


class TestControlReset:
    def test_reset_from_any_state(self):
        ctl = ControlIP()
        ctl.csr_write(ControlIP.TRIGGER, 1)
        assert ctl.state is ControlState.RUNNING
        ctl.reset()
        assert ctl.state is ControlState.IDLE
        ctl.reset()  # idempotent
        assert ctl.state is ControlState.IDLE


class TestCounters:
    def test_event_counters(self):
        c = PerformanceCounters()
        assert c.count("x") == 0
        c.increment("x")
        c.increment("x", 2)
        assert c.count("x") == 3
        assert c.counts() == {"x": 3}
        c.reset()
        assert c.count("x") == 0

    def test_increment_validated(self):
        with pytest.raises(ValueError):
            PerformanceCounters().increment("x", -1)

    def test_cancel_open_interval(self):
        c = PerformanceCounters()
        c.start("step", 0.0)
        c.cancel("step")
        c.start("step", 1.0)  # would raise "already running" without cancel
        assert c.stop("step", 2.0) == pytest.approx(1.0)

    def test_cancel_missing_is_noop(self):
        PerformanceCounters().cancel("nothing")


class TestACNETPolicies:
    def test_strict_raises_out_of_order(self):
        log = ACNETLog()
        log.publish(decision(), sent_at_s=1.0)
        with pytest.raises(ValueError):
            log.publish(decision(), sent_at_s=0.5)

    def test_drop_policy_counts(self):
        log = ACNETLog(order_policy="drop")
        log.publish(decision(), sent_at_s=1.0)
        assert log.publish(decision(), sent_at_s=0.5) is None
        assert log.dropped_out_of_order == 1
        assert len(log) == 1
        # in-order publishing still works afterwards
        assert log.publish(decision(), sent_at_s=2.0) is not None

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            ACNETLog(order_policy="chaos")

    def test_injected_failures_raise_then_clear(self):
        log = ACNETLog()
        log.inject_failures(2)
        for _ in range(2):
            with pytest.raises(ACNETTransportError):
                log.publish(decision(), sent_at_s=0.0)
        assert log.publish(decision(), sent_at_s=0.0) is not None

    def test_inject_failures_validated(self):
        with pytest.raises(ValueError):
            ACNETLog().inject_failures(-1)


class TestControllerSatellites:
    def _output(self, mi=0.0, rr=0.0, n=10):
        out = np.zeros((n, 2))
        out[:, 0] = mi
        out[:, 1] = rr
        return out.ravel()

    def test_decide_batch_threads_start_index(self):
        ctl = TripController(min_votes=1)
        ctl.decide(self._output(mi=0.9), frame_index=41)
        batch = ctl.decide_batch(
            np.stack([self._output(rr=0.9), self._output()]),
            start_index=42,
        )
        assert [d.frame_index for d in batch] == [42, 43]

    def test_decide_batch_default_unchanged(self):
        ctl = TripController(min_votes=1)
        batch = ctl.decide_batch(np.stack([self._output(), self._output()]))
        assert [d.frame_index for d in batch] == [0, 1]

    def test_abstain_records_no_trip(self):
        ctl = TripController()
        d = ctl.abstain(frame_index=5, latency_s=4e-3)
        assert d.machine is None
        assert d.frame_index == 5
        assert not d.deadline_met
        assert ctl.decisions == [d]
        assert ctl.trip_counts()[None] == 1


# ----------------------------------------------------------------------
# Fault-taint model (repro.soc.taint)
# ----------------------------------------------------------------------
class TestTaintModel:
    def test_every_fault_kind_is_classified(self):
        """Exhaustiveness pin: a new FaultKind must pick a taint class
        explicitly — it can never default to speculation-safe."""
        from repro.soc.taint import TAINT_OF, taint_of

        assert set(TAINT_OF) == set(FaultKind)
        for kind in FaultKind:
            assert taint_of(kind) is TAINT_OF[kind]

    def test_classification_matches_corruption_surface(self):
        from repro.soc.taint import TAINT_OF, TaintClass

        assert {k for k, t in TAINT_OF.items()
                if t is TaintClass.INPUT} == {
            FaultKind.HUB_DROP, FaultKind.HUB_DELAY,
            FaultKind.STUCK_MONITOR, FaultKind.NOISY_MONITOR}
        assert TAINT_OF[FaultKind.SEU] is TaintClass.MODEL_STATE
        assert {k for k, t in TAINT_OF.items()
                if t is TaintClass.TIMING} == {
            FaultKind.IP_HANG, FaultKind.LOST_IRQ}
        assert TAINT_OF[FaultKind.ACNET_FAIL] is TaintClass.POST

    def test_classify_events_folds_flags(self):
        from repro.soc.faults import FaultEvent
        from repro.soc.taint import classify_events

        clean = classify_events(())
        assert clean.clean and not clean.invalidates_raw
        mixed = classify_events((
            FaultEvent(0, FaultKind.LOST_IRQ),
            FaultEvent(0, FaultKind.SEU, detail="output"),
        ))
        assert mixed.timing and mixed.model_state
        assert not mixed.input and not mixed.post
        assert mixed.invalidates_raw
        timing_only = classify_events((FaultEvent(0, FaultKind.IP_HANG),))
        assert not timing_only.invalidates_raw

    def test_speculation_mask_rules(self):
        """INPUT and SEU frames are masked, SEU also masks its scrub
        frame; TIMING/POST frames stay valid; carried-in model taint
        masks frame 0."""
        from repro.soc.taint import speculation_mask

        specs = [StuckMonitorFault(monitor=1, rate=1.0, start=2, stop=3),
                 SEUFault(rate=1.0, start=5, stop=6),
                 IPHangFault(rate=1.0, start=8, stop=9),
                 ACNETFault(rate=1.0, start=9, stop=10)]
        sched = FaultInjector(specs, seed=0).plan(0, 12)
        mask = speculation_mask(sched, 0, 12)
        expect = np.ones(12, dtype=bool)
        expect[2] = False           # input taint
        expect[5] = False           # SEU hit
        expect[6] = False           # its scrub frame
        assert np.array_equal(mask, expect)

        carried = speculation_mask(sched, 0, 12, model_tainted=True)
        assert not carried[0]
        assert np.array_equal(carried[1:], expect[1:])

    def test_seu_on_last_frame_masks_nothing_beyond_block(self):
        from repro.soc.taint import speculation_mask

        sched = FaultInjector([SEUFault(rate=1.0, start=9, stop=10)],
                              seed=0).plan(0, 10)
        mask = speculation_mask(sched, 0, 10)
        assert not mask[9]
        assert mask[:9].all()


class TestScheduleIndex:
    """FaultSchedule.for_frame is O(1): a dense tuple index inside the
    window, dict fallback outside."""

    def test_dense_and_fallback_agree(self):
        specs = [IPHangFault(rate=0.3), SEUFault(rate=0.2)]
        inj = FaultInjector(specs, seed=12)
        sched = inj.plan(10, 50)
        for f in range(10, 60):
            assert sched.for_frame(f) == inj.events_for_frame(f)
        # Out-of-window queries stay well-defined (and empty).
        assert sched.for_frame(0) == ()
        assert sched.for_frame(9) == ()
        assert sched.for_frame(60) == ()
        assert sched.for_frame(-3) == ()

    def test_dense_index_covers_window(self):
        sched = FaultInjector([LostIRQFault(rate=1.0)], seed=0).plan(5, 4)
        assert len(sched._dense) == 4
        for i, fi in enumerate(range(5, 9)):
            assert sched._dense[i] == sched.for_frame(fi)
