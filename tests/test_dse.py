"""Tests for the design-space-exploration autotuner (repro.dse)."""

import math

import numpy as np
import pytest

from repro.core.codesign import DesignConstraints
from repro.dse import (
    Candidate,
    DSESettings,
    SearchSpace,
    build_config,
    open_loop_problem,
    pareto_front,
    plant_problem,
    run_dse,
    score_candidate,
)
from repro.dse.driver import MODES
from repro.dse.pareto import dominates
from repro.experiments import common
from repro.hls.profiling import profile_model
from repro.nn import Dense, Input, Model, ReLU, Sigmoid
from repro.obs import MetricsRegistry
from repro.plants import CartpolePlant


def small_model():
    inp = Input((8,), name="in")
    x = Dense(16, seed=0, name="d1")(inp)
    x = ReLU(name="r")(x)
    x = Dense(2, seed=1, name="d2")(x)
    out = Sigmoid(name="s")(x)
    return Model(inp, out, name="sm")


class TestCandidate:
    def test_uniform_canonicalises_precision_perturbations(self):
        a = Candidate(strategy="uniform<16,7>", margin_bits=1,
                      layer_deltas=(("d1", 1),))
        b = Candidate(strategy="uniform<16,7>")
        assert a.margin_bits == 0 and a.layer_deltas == ()
        assert a.key() == b.key()

    def test_layer_deltas_sorted(self):
        a = Candidate(layer_deltas=(("z", 1), ("a", -1)))
        assert a.layer_deltas == (("a", -1), ("z", 1))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Candidate(strategy="uniform[16,7]")

    def test_key_roundtrips_dict(self):
        c = Candidate(strategy="layer-based", margin_bits=1,
                      layer_deltas=(("d1", -1),), default_reuse=64)
        import json

        assert json.loads(c.key()) == c.to_dict()

    def test_reference_precision_flag(self):
        assert Candidate().is_reference_precision
        assert not Candidate(margin_bits=1).is_reference_precision
        assert not Candidate(default_reuse=64).is_reference_precision


class TestSearchSpace:
    def test_anchors_cover_paper_ladder(self):
        space = SearchSpace()
        anchors = space.anchors()
        assert [a.strategy for a in anchors] == [
            "uniform<18,10>", "uniform<16,7>", "layer-based"]
        # anchors sit at the deployed reference reuse point
        assert all(a.is_reference_precision for a in anchors)

    def test_grid_is_rng_free_and_deterministic(self):
        space = SearchSpace(layer_names=("d1", "d2"))
        g1 = [c.key() for c in space.grid(12)]
        g2 = [c.key() for c in space.grid(12)]
        assert g1 == g2
        assert len(g1) == len(set(g1))  # deduplicated
        assert 0 < len(g1) <= 12

    def test_sample_stream_is_seed_stable(self):
        space = SearchSpace(layer_names=("d1", "d2"))
        draw = lambda: [space.sample(np.random.default_rng(7)).key()
                        for _ in range(5)]
        assert draw() == draw()

    def test_mutate_perturbs_at_most_one_knob(self):
        space = SearchSpace(layer_names=("d1",))
        base = Candidate()
        changed = 0
        for seed in range(8):
            mutant = space.mutate(base, np.random.default_rng(seed))
            diffs = [k for k, v in mutant.to_dict().items()
                     if v != base.to_dict()[k]]
            # a re-draw may land on the current value (no-op mutation)
            assert len(diffs) <= 1
            changed += bool(diffs)
        assert changed > 0


class TestBuildConfig:
    def test_layer_delta_applied_and_clamped(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(32, 8))
        profiles = profile_model(m, x)
        base = build_config(Candidate(), m, profiles)
        up = build_config(Candidate(layer_deltas=(("d1", 1),)), m, profiles)
        assert (up.for_layer("d1").result.integer
                == base.for_layer("d1").result.integer + 1)
        # a huge negative delta clamps at 1 integer bit, never below
        down = build_config(
            Candidate(layer_deltas=(("d1", -99),)), m, profiles)
        assert down.for_layer("d1").result.integer == 1

    def test_reuse_knobs_flow_through(self):
        m = small_model()
        cfg = build_config(Candidate(strategy="uniform<16,7>",
                                     default_reuse=16,
                                     dense_sigmoid_reuse=130), m)
        assert cfg.for_layer("d1").reuse_factor == 130  # dense rule
        assert cfg.for_layer("r").reuse_factor == 16


class TestPareto:
    def test_dominates(self):
        assert dominates((2.0, 1.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))
        assert not dominates((2.0, 0.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_front_drops_dominated_keeps_trades(self):
        items = [("a", (1.0, 5.0)), ("b", (5.0, 1.0)),
                 ("c", (0.5, 0.5)), ("d", (1.0, 5.0))]
        front = pareto_front(items, objectives=lambda it: it[1],
                             tie_break=lambda it: it[0])
        assert [n for n, _ in front] == ["a", "b", "d"]  # duplicates live

    def test_front_order_independent_of_input_order(self):
        items = [("a", (1.0, 5.0)), ("b", (5.0, 1.0)), ("c", (3.0, 3.0))]
        f1 = pareto_front(items, lambda it: it[1], lambda it: it[0])
        f2 = pareto_front(items[::-1], lambda it: it[1], lambda it: it[0])
        assert f1 == f2


class TestScoring:
    def test_estimator_prefilter_skips_simulation(self):
        m = small_model()
        x = np.random.default_rng(1).normal(size=(16, 8))
        problem = open_loop_problem(
            m, x, eval_frames=8, name="tiny",
            constraints=DesignConstraints(latency_budget_s=1e-9))
        score = score_candidate(problem, Candidate())
        assert not score.simulated
        assert score.reject_reason == "estimator: over latency budget"
        assert not score.feasible

    def test_screening_pass_never_simulates(self):
        m = small_model()
        x = np.random.default_rng(1).normal(size=(16, 8))
        problem = open_loop_problem(m, x, eval_frames=8, name="tiny")
        score = score_candidate(problem, Candidate(), eval_frames=0)
        assert not score.simulated and score.reject_reason is None
        assert not math.isnan(score.est_ip_latency_ms)

    def test_open_loop_score_is_seed_pure(self):
        m = small_model()
        x = np.random.default_rng(2).normal(size=(16, 8))
        mk = lambda: open_loop_problem(m, x, eval_frames=8, name="tiny")
        s1 = score_candidate(mk(), Candidate())
        s2 = score_candidate(mk(), Candidate())
        assert s1.to_dict() == s2.to_dict()
        assert s1.simulated and s1.fps > 0

    def test_workers_scale_modelled_throughput(self):
        m = small_model()
        x = np.random.default_rng(3).normal(size=(16, 8))
        problem = open_loop_problem(m, x, eval_frames=8, name="tiny")
        solo = score_candidate(problem, Candidate(n_shards=1, workers=0))
        pool = score_candidate(problem, Candidate(n_shards=4, workers=4))
        assert pool.fps > solo.fps


class TestDriverDeterminism:
    """Same seed ⇒ byte-identical front, in every mode (satellite 4)."""

    @pytest.fixture(scope="class")
    def problem(self):
        return plant_problem(CartpolePlant(), eval_frames=96,
                             profile_frames=64, seed=0)

    @pytest.mark.parametrize("mode", MODES)
    def test_seeded_rerun_byte_identical(self, problem, mode):
        settings = DSESettings(mode=mode, budget=5, seed=11,
                               survivors=2, mutations=1)
        r1 = run_dse(problem, settings=settings)
        r2 = run_dse(problem, settings=settings)
        assert r1.front_json() == r2.front_json()
        assert r1.front, f"{mode}: empty front"
        assert r1.recommended is not None and r1.recommended.feasible

    def test_anchors_always_evaluated(self, problem):
        res = run_dse(problem, settings=DSESettings(
            mode="random", budget=4, seed=0))
        strategies = {s.candidate.strategy for s in res.evaluated
                      if s.candidate.is_reference_precision}
        assert {"uniform<18,10>", "uniform<16,7>",
                "layer-based"} <= strategies

    def test_adaptive_budget_respected(self, problem):
        settings = DSESettings(mode="adaptive", budget=4, seed=1,
                               survivors=2, mutations=2)
        res = run_dse(problem, settings=settings)
        # screening round short-sims at most budget candidates and the
        # refinement round fully evaluates at most budget more
        assert res.n_simulated <= 2 * settings.budget

    def test_different_seeds_may_change_pool_not_crash(self, problem):
        for seed in (0, 1):
            res = run_dse(problem, settings=DSESettings(
                mode="random", budget=4, seed=seed))
            assert res.front


class TestUnetRecommendation:
    """The recommended U-Net config must reproduce the deployed
    layer-based <16,x> strategy within one integer bit (satellite 4)."""

    def test_recommendation_pins_paper_design(self):
        from repro.dse import unet_problem
        from repro.hls.precision import layer_based_config

        problem = unet_problem(fast=True, eval_frames=32)
        res = run_dse(problem, settings=DSESettings(
            mode="adaptive", budget=6, seed=0, survivors=2, mutations=1))
        rec = res.recommended
        assert rec is not None and rec.feasible
        assert rec.candidate.strategy == "layer-based"
        assert rec.fits  # corrected `fits`: registers + memory bits too
        assert rec.register_fraction < 1.0
        deployed = layer_based_config(problem.model, None,
                                      profiles=problem.profiles)
        chosen = build_config(rec.candidate, problem.model,
                              problem.profiles)
        for name in problem.profiles:
            got = chosen.for_layer(name).result.integer
            ref = deployed.for_layer(name).result.integer
            assert abs(got - ref) <= 1, (
                f"layer {name}: recommended {got} integer bits vs "
                f"deployed {ref}")


class TestConvertedCache:
    """The explicit (strategy, level) LRU in experiments.common
    (satellite 3): sizing, counters, and the repro.obs mirror."""

    @pytest.fixture(autouse=True)
    def _restore_cache(self):
        saved_cache = common._converted_cache.copy()
        saved_size = common._converted_cache_maxsize
        saved_counts = dict(common._converted_cache_counts)
        yield
        common._converted_cache.clear()
        common._converted_cache.update(saved_cache)
        common._converted_cache_maxsize = saved_size
        common._converted_cache_counts.clear()
        common._converted_cache_counts.update(saved_counts)

    def _fill(self, n):
        common._converted_cache.clear()
        for i in range(n):
            common._converted_cache[(f"s{i}", 0)] = object()

    def test_resize_returns_previous_and_shrink_evicts_oldest(self):
        common.set_converted_cache_size(8)
        self._fill(6)
        before = common.converted_cache_stats()["evictions"]
        assert common.set_converted_cache_size(4) == 8
        stats = common.converted_cache_stats()
        assert stats["size"] == 4 and stats["maxsize"] == 4
        assert stats["evictions"] == before + 2
        # oldest entries went first
        assert ("s0", 0) not in common._converted_cache
        assert ("s5", 0) in common._converted_cache

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            common.set_converted_cache_size(0)

    def test_stats_shape(self):
        stats = common.converted_cache_stats()
        assert {"hits", "misses", "evictions", "size",
                "maxsize"} <= set(stats)

    def test_fold_metrics_into_registry(self):
        common.set_converted_cache_size(8)
        self._fill(3)
        common._converted_cache_counts.update(
            {"hits": 5, "misses": 2, "evictions": 1})
        metrics = MetricsRegistry()
        common.fold_converted_cache_metrics(metrics)
        assert metrics.count("experiments.converted_cache.hits") == 5
        assert metrics.count("experiments.converted_cache.misses") == 2
        assert metrics.count("experiments.converted_cache.evictions") == 1
        assert metrics.gauge("experiments.converted_cache.size").value == 3
        assert metrics.gauge(
            "experiments.converted_cache.maxsize").value == 8
