"""Tests for the central-node runtime and the decision-quality metrics."""

import numpy as np
import pytest

from repro.beamloss.controller import TripDecision
from repro.beamloss.metrics import (
    DecisionScore,
    ground_truth_machines,
    score_decisions,
)
from repro.hls import HLSConfig, convert
from repro.soc.board import AchillesBoard
from repro.soc.runtime import CentralNodeRuntime


def decision(machine, idx=0, latency=1e-3):
    return TripDecision(frame_index=idx, machine=machine, score=1.0,
                        latency_s=latency, deadline_met=True)


class TestGroundTruth:
    def test_clear_mi_frame(self):
        t = np.zeros((1, 10, 2))
        t[0, 2:6, 0] = 0.9
        assert ground_truth_machines(t, min_monitors=3) == ["MI"]

    def test_healthy_frame(self):
        t = np.full((1, 10, 2), 0.1)
        assert ground_truth_machines(t) == [None]

    def test_min_monitors_gate(self):
        t = np.zeros((1, 10, 2))
        t[0, 3, 1] = 0.95  # one strong monitor only
        assert ground_truth_machines(t, min_monitors=3) == [None]

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            ground_truth_machines(np.zeros((2, 10)))


class TestScoring:
    def test_perfect_run(self):
        truth = ["MI", "RR", None]
        decisions = [decision("MI"), decision("RR"), decision(None)]
        score = score_decisions(decisions, truth)
        assert score.accuracy == 1.0
        assert score.false_trip_rate == 0.0
        assert score.precision["MI"] == 1.0
        assert score.recall["RR"] == 1.0

    def test_false_trip_counted(self):
        truth = [None, None]
        decisions = [decision("MI"), decision(None)]
        score = score_decisions(decisions, truth)
        assert score.false_trip_rate == pytest.approx(0.5)
        assert score.precision["MI"] == 0.0

    def test_missed_trip_hits_recall(self):
        truth = ["RR", "RR"]
        decisions = [decision("RR"), decision(None)]
        score = score_decisions(decisions, truth)
        assert score.recall["RR"] == pytest.approx(0.5)

    def test_confusion_counts(self):
        truth = ["MI", "MI", "RR"]
        decisions = [decision("MI"), decision("RR"), decision("RR")]
        score = score_decisions(decisions, truth)
        assert score.confusion[("MI", "MI")] == 1
        assert score.confusion[("MI", "RR")] == 1
        assert score.confusion[("RR", "RR")] == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            score_decisions([decision("MI")], ["MI", "RR"])

    def test_summary_renders(self):
        score = score_decisions([decision("MI")], ["MI"])
        assert "accuracy" in score.summary()


class TestRuntime:
    @pytest.fixture()
    def runtime(self, tiny_model):
        hm = convert(tiny_model, HLSConfig())
        board = AchillesBoard(hm)
        from repro.beamloss.controller import TripController
        from repro.beamloss.hubs import HubNetwork

        return CentralNodeRuntime(
            board=board,
            hubs=HubNetwork(n_monitors=16, n_hubs=4),
            controller=TripController(min_votes=1),
        )

    def test_run_produces_records(self, runtime):
        frames = np.random.default_rng(0).normal(size=(5, 16))
        records = runtime.run(frames, seed=1)
        assert len(records) == 5
        assert len(runtime.records) == 5
        assert len(runtime.acnet) == 5

    def test_latency_includes_hub_delay(self, runtime):
        frames = np.zeros((2, 16))
        records = runtime.run(frames, seed=1)
        for r in records:
            assert r.total_latency_s > r.node_latency_s
            assert r.hub_delay_s > 0

    def test_deadline_compliance(self, runtime):
        frames = np.zeros((4, 16))
        runtime.run(frames, seed=1)
        # a 16-input toy is far inside 3 ms
        assert runtime.deadline_compliance() == 1.0
        assert runtime.deadline_compliance(deadline_s=1e-7) == 0.0

    def test_consecutive_runs_extend_records(self, runtime):
        runtime.run(np.zeros((2, 16)), seed=1)
        runtime.run(np.zeros((3, 16)), seed=2)
        assert [r.frame_index for r in runtime.records] == [0, 1, 2, 3, 4]

    def test_bad_frames_rejected(self, runtime):
        with pytest.raises(ValueError):
            runtime.run(np.zeros((2, 16, 1)))
