"""Cross-module property-based tests (hypothesis).

These fuzz the invariants that hold the reproduction together:

* any model built from the supported layer vocabulary converts and
  produces finite outputs of the right shape,
* at generous precision the converted model tracks the float model,
* the event simulator never goes back in time,
* hub splitting is a partition for any (monitors, hubs) pair,
* the trip controller's decision is permutation-consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixed import FixedPointFormat, Overflow
from repro.hls import HLSConfig, convert
from repro.hls.config import LayerConfig, WIDE_ACCUM
from repro.hls.latency import estimate_latency
from repro.hls.resources import estimate_resources
from repro.nn import (
    AveragePooling1D,
    Conv1D,
    Dense,
    Flatten,
    Input,
    MaxPooling1D,
    Model,
    ReLU,
    Sigmoid,
    Tanh,
    UpSampling1D,
)
from repro.soc.event import Simulator


def build_random_model(draw):
    """Strategy helper: a random, valid conv/dense stack."""
    length = draw(st.sampled_from([8, 12, 16, 20]))
    inp = Input((length, 1))
    x = inp
    n_blocks = draw(st.integers(1, 3))
    for i in range(n_blocks):
        filters = draw(st.integers(1, 6))
        kernel = draw(st.sampled_from([1, 3, 5]))
        x = Conv1D(filters, kernel, seed=draw(st.integers(0, 100)))(x)
        act = draw(st.sampled_from([ReLU, Tanh, Sigmoid]))
        x = act()(x)
        if draw(st.booleans()) and x.shape[0] >= 4:
            pool = draw(st.sampled_from([MaxPooling1D, AveragePooling1D]))
            x = pool(2)(x)
        elif draw(st.booleans()):
            x = UpSampling1D(2)(x)
    x = Dense(draw(st.integers(1, 4)), seed=draw(st.integers(0, 100)))(x)
    out = Flatten()(x)
    return Model(inp, out)


@st.composite
def models(draw):
    return build_random_model(draw)


class TestConverterFuzz:
    @settings(max_examples=25, deadline=None)
    @given(models(), st.integers(0, 2**31 - 1))
    def test_any_model_converts_and_runs(self, model, data_seed):
        hm = convert(model, HLSConfig())
        x = np.random.default_rng(data_seed).normal(size=(2,) + tuple(
            model.inputs[0].shape))
        out = hm.predict(x)
        assert out.shape == (2,) + tuple(model.outputs[0].shape)
        assert np.isfinite(out).all()

    @settings(max_examples=15, deadline=None)
    @given(models(), st.integers(0, 2**31 - 1))
    def test_high_precision_tracks_float(self, model, data_seed):
        wide = FixedPointFormat(40, 20, overflow=Overflow.SAT)
        config = HLSConfig(default=LayerConfig(
            weight=wide, result=wide, accum=WIDE_ACCUM, reuse_factor=8))
        hm = convert(model, config)
        x = np.random.default_rng(data_seed).normal(
            size=(3,) + tuple(model.inputs[0].shape))
        y_f = model.forward(x)
        y_q = hm.predict(x)
        # LUT activations bound the residual error.
        assert np.abs(y_f - y_q).max() < 0.05

    @settings(max_examples=15, deadline=None)
    @given(models())
    def test_estimators_always_positive(self, model):
        hm = convert(model, HLSConfig())
        lat = estimate_latency(hm)
        assert lat.total_cycles > 0
        res = estimate_resources(hm)
        assert res.block_memory_bits > 0
        assert res.registers >= 0

    @settings(max_examples=10, deadline=None)
    @given(models(), st.sampled_from([4, 16, 64]))
    def test_latency_monotone_in_reuse(self, model, reuse):
        lo = estimate_latency(convert(model, HLSConfig().with_reuse_factor(
            reuse))).total_cycles
        hi = estimate_latency(convert(model, HLSConfig().with_reuse_factor(
            reuse * 2))).total_cycles
        assert hi >= lo


class TestSimulatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    def test_time_monotone(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.events_processed == len(delays)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=10),
           st.floats(0.0, 10.0))
    def test_run_until_boundary(self, delays, until):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run(until=until)
        assert all(d <= until for d in fired)
        assert sim.now <= until or not delays


class TestHubProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 400), st.integers(1, 20))
    def test_spans_partition(self, n_monitors, n_hubs):
        from repro.beamloss.hubs import HubNetwork

        if n_hubs > n_monitors:
            return
        net = HubNetwork(n_monitors=n_monitors, n_hubs=n_hubs)
        spans = net.spans()
        covered = []
        for a, b in spans:
            covered.extend(range(a, b))
        assert covered == list(range(n_monitors))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 300), st.integers(1, 9),
           st.integers(0, 2**31 - 1))
    def test_split_assemble_identity(self, n_monitors, n_hubs, seed):
        from repro.beamloss.hubs import HubNetwork

        if n_hubs > n_monitors:
            return
        net = HubNetwork(n_monitors=n_monitors, n_hubs=n_hubs)
        frame = np.random.default_rng(seed).normal(size=n_monitors)
        packets = net.split_frame(frame)
        np.testing.assert_array_equal(net.assemble(packets), frame)


class TestControllerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_machine_symmetry(self, seed):
        """Swapping the two machine channels must swap the decision."""
        from repro.beamloss.controller import TripController

        rng = np.random.default_rng(seed)
        probs = rng.uniform(size=(40, 2))
        a = TripController(machine_names=("MI", "RR"), min_votes=1)
        d1 = a.decide(probs.ravel())
        b = TripController(machine_names=("RR", "MI"), min_votes=1)
        d2 = b.decide(probs[:, ::-1].ravel())
        assert d1.machine == d2.machine

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.floats(0.3, 0.9))
    def test_score_nonnegative_and_bounded(self, seed, threshold):
        from repro.beamloss.controller import TripController

        rng = np.random.default_rng(seed)
        probs = rng.uniform(size=(40, 2))
        ctl = TripController(probability_threshold=threshold, min_votes=1)
        d = ctl.decide(probs.ravel())
        assert 0.0 <= d.score <= probs.size
