"""Integration tests for the hardened `CentralNodeRuntime`: degradation
ladder, fallback hysteresis, fault-free bit-identity and the chaos sweep
(zero silent failures)."""

import numpy as np
import pytest

from repro.beamloss.controller import TripController
from repro.beamloss.hubs import HubNetwork
from repro.hls import HLSConfig, convert
from repro.soc.board import FRAME_PERIOD_S, AchillesBoard
from repro.soc.faults import (
    ACNETFault,
    FaultInjector,
    FaultKind,
    HubDelayFault,
    HubDropFault,
    IPHangFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
    StuckMonitorFault,
)
from repro.soc.runtime import (
    ENGINE_FALLBACK,
    ENGINE_PRIMARY,
    STATUS_CORRUPT,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_STALE,
    STATUS_WATCHDOG,
    CentralNodeRuntime,
    DegradationPolicy,
)

N_MONITORS = 16
N_HUBS = 4


@pytest.fixture(scope="module")
def tiny_hls(tiny_model):
    return convert(tiny_model, HLSConfig())


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(42)
    return rng.normal(0.0, 1.0, size=(220, N_MONITORS))


def make_runtime(tiny_hls, specs=None, seed=2024, with_fallback=True,
                 batch=True, speculation=True, **policy_kw):
    """A fresh runtime over tiny boards (identical primary/fallback)."""
    return CentralNodeRuntime(
        board=AchillesBoard(tiny_hls),
        fallback_board=AchillesBoard(tiny_hls) if with_fallback else None,
        hubs=HubNetwork(n_monitors=N_MONITORS, n_hubs=N_HUBS),
        controller=TripController(min_votes=1),
        injector=(FaultInjector(specs, seed=seed)
                  if specs is not None else None),
        policy=DegradationPolicy(**policy_kw),
        batch_inference=batch,
        speculation=speculation,
    )


class TestFaultFreeEquivalence:
    """With no injector the hardened loop must be bit-identical to the
    plain hubs → board.run(paced) → controller pipeline."""

    def test_bit_identical_records(self, tiny_hls, frames):
        n = 40
        runtime = make_runtime(tiny_hls, with_fallback=False)
        records = runtime.run(frames[:n], seed=5)

        # Reconstruct the unhardened pipeline with the same seed stream.
        from repro.soc.runtime import derive_stream_seeds
        hub_seed, board_seed = derive_stream_seeds(5, 0)
        hubs = HubNetwork(n_monitors=N_MONITORS, n_hubs=N_HUBS)
        arrivals = hubs.arrival_times(n, seed=hub_seed)
        board = AchillesBoard(tiny_hls)
        result = board.run(frames[:n], seed=board_seed, paced=True)
        controller = TripController(min_votes=1)

        assert len(records) == n
        for i, r in enumerate(records):
            assert r.status == STATUS_OK
            assert r.engine == ENGINE_PRIMARY
            assert not r.flagged
            assert r.hub_delay_s == arrivals[i].max()
            assert r.node_latency_s == result.timings[i].total
            ref = controller.decide(result.outputs[i],
                                    latency_s=r.total_latency_s,
                                    frame_index=i)
            assert r.decision.machine == ref.machine
            assert r.decision.score == ref.score
            assert r.decision.latency_s == ref.latency_s
            assert r.decision.deadline_met == ref.deadline_met

    def test_hardening_counters_stay_zero(self, tiny_hls, frames):
        runtime = make_runtime(tiny_hls, with_fallback=False)
        runtime.run(frames[:20], seed=1)
        health = runtime.health_report()
        assert health.status_counts == {STATUS_OK: 20}
        assert health.fault_counts == {}
        assert health.watchdog_trips == 0
        assert health.substituted_slices == 0
        assert health.publish_retries == 0
        assert health.dead_letters == 0
        assert health.transitions == ()


class TestWatchdog:
    def test_ip_hang_times_out_without_blocking(self, tiny_hls, frames):
        specs = [IPHangFault(rate=1.0, start=2, stop=3, extra_s=5e-3)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False)
        records = runtime.run(frames[:6], seed=0)
        hung = records[2]
        assert hung.status == STATUS_WATCHDOG
        assert hung.node_latency_s == runtime.watchdog_s
        assert hung.decision.machine is None  # no trip on a hung frame
        assert hung.flagged
        assert records[3].status == STATUS_OK  # next frame unaffected

    def test_lost_irq_recovers(self, tiny_hls, frames):
        specs = [LostIRQFault(rate=1.0, start=1, stop=2)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False)
        records = runtime.run(frames[:4], seed=0)
        assert records[1].status == STATUS_WATCHDOG
        assert records[1].decision.machine is None
        assert [r.status for r in records[2:]] == [STATUS_OK, STATUS_OK]
        assert runtime.health_report().watchdog_trips == 1


class TestLastKnownGood:
    def test_substitution_then_staleness(self, tiny_hls, frames):
        specs = [HubDropFault(hub=1, rate=1.0, start=3, stop=9)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False,
                               staleness_limit=2)
        records = runtime.run(frames[:12], seed=0)
        # Within the staleness bound: substituted, decided, degraded.
        for r in records[3:5]:
            assert r.status == STATUS_DEGRADED
            assert r.substituted_hubs == (1,)
        # Past the bound: stale inputs, explicit no-trip.
        for r in records[5:9]:
            assert r.status == STATUS_STALE
            assert r.decision.machine is None
        # Hub back online: healthy again.
        for r in records[9:]:
            assert r.status == STATUS_OK
        assert runtime.health_report().substituted_slices == 2

    def test_drop_before_any_good_data_is_stale(self, tiny_hls, frames):
        specs = [HubDropFault(hub=0, rate=1.0, start=0, stop=1)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False)
        records = runtime.run(frames[:2], seed=0)
        assert records[0].status == STATUS_STALE  # nothing to substitute yet
        assert records[1].status == STATUS_OK


class TestCorruptionGuard:
    def test_output_seu_abstains(self, tiny_hls, frames):
        specs = [SEUFault(rate=1.0, start=2, stop=3, ram="output", bit=15)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False)
        records = runtime.run(frames[:5], seed=0)
        corrupt = records[2]
        assert corrupt.status == STATUS_CORRUPT
        assert corrupt.decision.machine is None
        assert records[3].status == STATUS_OK


class TestPublishRetry:
    def test_transient_failure_retried(self, tiny_hls, frames):
        specs = [ACNETFault(rate=1.0, start=3, stop=4, failures=1)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False)
        records = runtime.run(frames[:6], seed=0)
        assert records[3].publish_attempts == 2
        assert records[3].published
        assert all(r.publish_attempts == 1 for r in records[:3])
        health = runtime.health_report()
        assert health.publish_retries == 1
        assert health.dead_letters == 0
        assert len(runtime.acnet) == 6  # nothing lost

    def test_persistent_failure_dead_letters(self, tiny_hls, frames):
        specs = [ACNETFault(rate=1.0, start=2, stop=3, failures=5)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False,
                               max_publish_attempts=3)
        records = runtime.run(frames[:5], seed=0)
        dead = records[2]
        assert dead.publish_attempts == 3
        assert not dead.published
        assert dead.flagged
        health = runtime.health_report()
        assert health.dead_letters == 1
        # Leftover injected failures must not leak into later frames.
        assert all(r.published for r in records[3:])
        assert len(runtime.acnet) == 4

    def test_publish_order_monotonic(self, tiny_hls, frames):
        """Degraded timing (watchdog frames charged the full budget) must
        never produce out-of-order ACNET publishes."""
        specs = [LostIRQFault(rate=0.3)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False)
        runtime.run(frames[:30], seed=0)
        sent = [m.sent_at_s for m in runtime.acnet.records]
        assert sent == sorted(sent)


class TestFallbackHysteresis:
    """Satellite (d): forced primary-engine misses engage the fallback
    within the configured window; recovery switches back; no frame is
    ever silently dropped."""

    def test_fallback_and_recovery(self, tiny_hls, frames):
        n = 20
        specs = [IPHangFault(rate=1.0, start=5, stop=9, extra_s=5e-3)]
        runtime = make_runtime(tiny_hls, specs, miss_threshold=2,
                               recovery_streak=4)
        records = runtime.run(frames[:n], seed=3)

        # No silent drops: one record per frame, in order, all published
        # or explicitly flagged.
        assert [r.frame_index for r in records] == list(range(n))
        assert all(r.published or r.flagged for r in records)

        # Two misses (frames 5, 6) trip the fallback at frame 6 ...
        assert runtime.transitions[0] == (6, ENGINE_PRIMARY, ENGINE_FALLBACK)
        # ... so frames 7+ run on the fallback engine.
        assert records[6].engine == ENGINE_PRIMARY
        assert records[7].engine == ENGINE_FALLBACK
        # The hang window (5..8) also hits the fallback; healthy frames
        # resume at 9 and the recovery streak (4) switches back at 12.
        assert runtime.transitions[1] == (12, ENGINE_FALLBACK, ENGINE_PRIMARY)
        assert records[12].engine == ENGINE_FALLBACK
        assert records[13].engine == ENGINE_PRIMARY
        assert len(runtime.transitions) == 2

        # Fallback frames that decided cleanly are degraded, not ok.
        for r in records[9:13]:
            assert r.status == STATUS_DEGRADED
            assert r.engine == ENGINE_FALLBACK
        # Back on the primary, fully healthy.
        for r in records[13:]:
            assert r.status == STATUS_OK
            assert not r.flagged

        health = runtime.health_report()
        assert health.engine_frames[ENGINE_FALLBACK] == 6
        assert health.transitions == tuple(runtime.transitions)

    def test_no_fallback_board_never_switches(self, tiny_hls, frames):
        specs = [IPHangFault(rate=1.0, start=2, stop=8, extra_s=5e-3)]
        runtime = make_runtime(tiny_hls, specs, with_fallback=False,
                               miss_threshold=2)
        records = runtime.run(frames[:10], seed=3)
        assert all(r.engine == ENGINE_PRIMARY for r in records)
        assert runtime.transitions == []


class TestDeterminism:
    """Satellite (c): identical seeds + specs ⇒ bit-identical fault
    schedules, FrameRecord streams and HealthReports."""

    SPECS = [
        HubDropFault(rate=0.10),
        HubDelayFault(rate=0.05, delay_s=4e-3),
        StuckMonitorFault(monitor=3, value=4.0, rate=0.08),
        NoisyMonitorFault(monitor=11, sigma=8.0, rate=0.08),
        IPHangFault(rate=0.05, extra_s=5e-3),
        LostIRQFault(rate=0.04),
        SEUFault(rate=0.08, ram="output", bit=15),
        ACNETFault(rate=0.06, failures=1),
    ]

    def test_identical_runs(self, tiny_hls, frames):
        runs = []
        for _ in range(2):
            runtime = make_runtime(tiny_hls, self.SPECS, seed=77,
                                   miss_threshold=2, recovery_streak=6)
            records = runtime.run(frames[:60], seed=9)
            runs.append((records, runtime.health_report(),
                         runtime.injector.plan(0, 60).signature()))
        (rec_a, health_a, sig_a), (rec_b, health_b, sig_b) = runs
        assert sig_a == sig_b  # bit-identical fault schedules
        assert rec_a == rec_b  # bit-identical record streams
        assert health_a == health_b


class TestChaosSweep:
    """Acceptance criterion: sweep every fault class through a ≥200-frame
    run and assert zero *silent* failures — every frame produces a
    record, and any frame whose decision differs from the fault-free
    baseline is flagged."""

    SPECS = [
        HubDropFault(rate=0.08),
        HubDelayFault(rate=0.05, delay_s=4e-3),
        StuckMonitorFault(monitor=5, value=4.0, rate=0.08),
        NoisyMonitorFault(monitor=12, sigma=8.0, rate=0.08),
        IPHangFault(rate=0.05, extra_s=5e-3),
        LostIRQFault(rate=0.05),
        SEUFault(rate=0.08, ram="output", bit=15),
        SEUFault(rate=0.05, ram="input"),
        ACNETFault(rate=0.08, failures=1),
        ACNETFault(rate=0.02, failures=5),
    ]

    def test_zero_silent_failures(self, tiny_hls, frames):
        n = 220
        baseline = make_runtime(tiny_hls, with_fallback=False)
        base_records = baseline.run(frames[:n], seed=11)

        runtime = make_runtime(tiny_hls, self.SPECS, seed=4242,
                               miss_threshold=2, recovery_streak=8)
        records = runtime.run(frames[:n], seed=11)
        health = runtime.health_report()

        # Every fault class actually fired in this sweep.
        assert set(health.fault_counts) == {k.value for k in FaultKind}

        # A record for every frame, in order — nothing dropped.
        assert [r.frame_index for r in records] == list(range(n))

        # Zero silent failures: injected faults always leave a flag ...
        for r in records:
            if r.fault_kinds:
                assert r.flagged, f"frame {r.frame_index} faulted but clean"
        # ... and any decision differing from the fault-free baseline is
        # flagged — an unflagged record implies a bit-identical decision
        # (never an unflagged wrong trip).
        for r, b in zip(records, base_records):
            if not r.flagged:
                assert r.decision.machine == b.decision.machine
                assert r.decision.score == b.decision.score

        # Abstaining statuses never trip a machine.
        for r in records:
            if r.status in (STATUS_WATCHDOG, STATUS_STALE, STATUS_CORRUPT):
                assert r.decision.machine is None

        # Health accounting is consistent with the record stream.
        assert health.frames_total == n
        assert sum(health.status_counts.values()) == n
        assert sum(health.engine_frames.values()) == n
        published = sum(1 for r in records if r.published)
        assert len(runtime.acnet) == published
        assert health.dead_letters == n - published


class TestChaosBitIdentityMatrix:
    """Acceptance criterion for the speculative ladder: a ≥220-frame
    chaos sweep produces records bit-identical to the sequential
    reference across injector seeds × compile levels {0, 1, 2} ×
    speculation on/off — and with speculation on, the counters prove the
    majority of fault-free frames rode the batched fast path."""

    # Every fault class at a moderate rate: chaotic enough that every
    # taint class fires repeatedly over 220 frames, light enough that
    # fault-free frames dominate the block (the deployment regime the
    # fast path is for).
    SPECS = [
        HubDropFault(rate=0.03),
        HubDelayFault(rate=0.02, delay_s=4e-3),
        StuckMonitorFault(monitor=5, value=4.0, rate=0.03),
        NoisyMonitorFault(monitor=12, sigma=8.0, rate=0.03),
        IPHangFault(rate=0.02, extra_s=5e-3),
        LostIRQFault(rate=0.02),
        SEUFault(rate=0.03, ram="output", bit=15),
        SEUFault(rate=0.02, ram="input"),
        ACNETFault(rate=0.03, failures=1),
    ]

    @pytest.mark.parametrize("inj_seed", [4242, 1337])
    def test_matrix(self, tiny_model, frames, inj_seed):
        from repro.hls import HLSConfig, convert

        n = 220
        # The sequential reference is level-independent by the compiler's
        # bit-identity contract — asserted below, not assumed.
        ref_rt = make_runtime(convert(tiny_model, HLSConfig()),
                              self.SPECS, seed=inj_seed, batch=False,
                              miss_threshold=2, recovery_streak=8)
        reference = ref_rt.run(frames[:n], seed=11)
        assert any(r.fault_kinds for r in reference)

        for level in (0, 1, 2):
            for speculation in (True, False):
                hls = convert(tiny_model, HLSConfig())
                if level:
                    hls.compile(level=level)
                rt = make_runtime(hls, self.SPECS, seed=inj_seed,
                                  speculation=speculation,
                                  miss_threshold=2, recovery_streak=8)
                records = rt.run(frames[:n], seed=11)
                label = f"level={level} speculation={speculation}"
                assert records == reference, label

                batched = rt.counters.count("frame.batched")
                speculated = rt.counters.count("spec.speculated")
                replayed = rt.counters.count("spec.replayed")
                if speculation:
                    # Every frame either speculated or replayed, and the
                    # majority of the block rode the fast path.
                    assert batched == speculated, label
                    assert speculated + replayed == n, label
                    assert speculated > n // 2, label
                    # Majority of *fault-free* frames rode it, proved
                    # from the counters alone: a fault-free frame can
                    # only replay via model-state propagation (scrubs)
                    # or fallback-engine residency, never input taint.
                    clean = sum(1 for r in records if not r.fault_kinds)
                    inval = rt.health_report().invalidation_counts
                    clean_replays = (inval.get("model_state", 0)
                                     + inval.get("fallback", 0))
                    assert clean_replays < clean / 2, label
                else:
                    # Historical behaviour: injector disengages batching.
                    assert batched == 0, label
                    assert speculated == 0 and replayed == 0, label
