"""Model graph, training loop, losses, optimizers, serialization, zoo."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    BinaryCrossentropy,
    Concatenate,
    Conv1D,
    Dense,
    Flatten,
    Input,
    MaxPooling1D,
    MeanAbsoluteError,
    MeanSquaredError,
    Model,
    ReLU,
    Sigmoid,
    UpSampling1D,
    fit,
    load_weights,
    save_weights,
)
from repro.nn.zoo import (
    REFERENCE_MLP_CONFIG,
    REFERENCE_UNET_CONFIG,
    MLPConfig,
    UNetConfig,
    build_mlp,
    build_unet,
)


def tiny_skip_model(seed=0):
    inp = Input((8, 1))
    c1 = Conv1D(3, 3, seed=seed, name="c1")(inp)
    r1 = ReLU(name="r1")(c1)
    p1 = MaxPooling1D(2, name="p1")(r1)
    c2 = Conv1D(4, 3, seed=seed + 1, name="c2")(p1)
    u1 = UpSampling1D(2, name="u1")(c2)
    cat = Concatenate(name="cat")(u1, r1)
    d = Dense(2, seed=seed + 2, name="d")(cat)
    s = Sigmoid(name="s")(d)
    f = Flatten(name="f")(s)
    return Model(inp, f, name="tiny_skip")


class TestModelGraph:
    def test_topological_order(self):
        m = tiny_skip_model()
        order = [l.name for l in m.layers]
        assert order.index("c1") < order.index("cat")
        assert order.index("u1") < order.index("cat")
        assert order[-1] == "f"

    def test_forward_shape(self):
        m = tiny_skip_model()
        out = m.forward(np.zeros((5, 8, 1)))
        assert out.shape == (5, 16)

    def test_get_layer(self):
        m = tiny_skip_model()
        assert m.get_layer("c2").name == "c2"
        with pytest.raises(KeyError):
            m.get_layer("nope")

    def test_wrong_input_shape_rejected(self):
        m = tiny_skip_model()
        with pytest.raises(ValueError):
            m.forward(np.zeros((5, 9, 1)))

    def test_fanout_gradient_accumulation(self):
        # r1 feeds both the pool path and the skip: its upstream conv
        # gradient must accumulate both contributions.  Verified
        # numerically.
        rng = np.random.default_rng(0)
        m = tiny_skip_model(seed=3)
        x = rng.normal(size=(3, 8, 1))
        y = rng.uniform(size=(3, 16))
        loss = MeanSquaredError()
        pred = m.forward(x, training=True)
        m.backward(loss.grad(y, pred))
        layer = m.get_layer("c1")
        g = layer.grads["kernel"]
        eps = 1e-6
        idx = (1, 0, 1)
        orig = layer.params["kernel"][idx]
        layer.params["kernel"][idx] = orig + eps
        lp = loss.value(y, m.forward(x, training=True))
        layer.params["kernel"][idx] = orig - eps
        lm = loss.value(y, m.forward(x, training=True))
        layer.params["kernel"][idx] = orig
        num = (lp - lm) / (2 * eps)
        assert abs(num - g[idx]) / max(1e-8, abs(num)) < 1e-4

    def test_input_gradient_returned(self):
        m = tiny_skip_model()
        x = np.random.default_rng(0).normal(size=(2, 8, 1))
        pred = m.forward(x, training=True)
        grads = m.backward(np.ones_like(pred))
        assert len(grads) == 1
        assert grads[0].shape == x.shape

    def test_predict_batching_consistent(self):
        m = tiny_skip_model()
        x = np.random.default_rng(1).normal(size=(10, 8, 1))
        full = m.predict(x)
        batched = m.predict(x, batch_size=3)
        np.testing.assert_allclose(full, batched)

    def test_summary_mentions_layers(self):
        s = tiny_skip_model().summary()
        assert "c1" in s and "Total params" in s

    def test_disconnected_input_rejected(self):
        a = Input((3,))
        b = Input((3,))
        out = Dense(2, seed=0)(a)
        with pytest.raises(ValueError):
            Model([a, b], out)

    def test_non_input_as_model_input_rejected(self):
        a = Input((3,))
        mid = ReLU()(a)
        with pytest.raises(TypeError):
            Model(mid, mid)


class TestLosses:
    y = np.array([[0.0, 1.0, 0.5]])
    p = np.array([[0.2, 0.7, 0.5]])

    def test_mse_value(self):
        assert MeanSquaredError().value(self.y, self.p) == pytest.approx(
            (0.04 + 0.09 + 0) / 3
        )

    def test_mae_value(self):
        assert MeanAbsoluteError().value(self.y, self.p) == pytest.approx(
            (0.2 + 0.3 + 0) / 3
        )

    def test_bce_matches_formula(self):
        bce = BinaryCrossentropy()
        expected = -(np.log(1 - 0.2) + np.log(0.7) + 0.5 * np.log(0.5)
                     + 0.5 * np.log(0.5)) / 3
        assert bce.value(self.y, self.p) == pytest.approx(expected)

    @pytest.mark.parametrize("loss", [MeanSquaredError(),
                                      BinaryCrossentropy()])
    def test_grad_numerically(self, loss):
        rng = np.random.default_rng(0)
        y = rng.uniform(0.05, 0.95, size=(3, 4))
        p = rng.uniform(0.05, 0.95, size=(3, 4))
        g = loss.grad(y, p)
        eps = 1e-7
        for idx in [(0, 0), (1, 2), (2, 3)]:
            pp = p.copy()
            pp[idx] += eps
            pm = p.copy()
            pm[idx] -= eps
            num = (loss.value(y, pp) - loss.value(y, pm)) / (2 * eps)
            assert num == pytest.approx(g[idx], rel=1e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value(np.zeros((2, 3)), np.zeros((3, 2)))


class TestOptimizers:
    def _quadratic_model(self):
        inp = Input((4,))
        out = Dense(1, seed=0)(inp)
        return Model(inp, out)

    @pytest.mark.parametrize("opt", [SGD(0.05), SGD(0.02, momentum=0.9),
                                     Adam(0.05)])
    def test_loss_decreases(self, opt):
        rng = np.random.default_rng(0)
        m = self._quadratic_model()
        x = rng.normal(size=(64, 4))
        w_true = np.array([[1.0], [-2.0], [0.5], [3.0]])
        y = x @ w_true
        h = fit(m, x, y, MeanSquaredError(), opt, epochs=30, batch_size=16)
        assert h.loss[-1] < 0.05 * h.loss[0]

    def test_adam_converges_to_solution(self):
        rng = np.random.default_rng(0)
        m = self._quadratic_model()
        x = rng.normal(size=(128, 4))
        w_true = np.array([[1.0], [-2.0], [0.5], [3.0]])
        y = x @ w_true + 0.7
        fit(m, x, y, MeanSquaredError(), Adam(0.05), epochs=120,
            batch_size=32)
        layer = m.trainable_layers()[0]
        np.testing.assert_allclose(layer.params["kernel"], w_true, atol=0.05)
        np.testing.assert_allclose(layer.params["bias"], [0.7], atol=0.05)

    def test_step_without_backward_raises(self):
        m = self._quadratic_model()
        m.forward(np.zeros((2, 4)))
        with pytest.raises(RuntimeError):
            SGD(0.1).step(m)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(-1.0)
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(0.1, beta_1=1.0)


class TestFit:
    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 8, 1))
        y = rng.uniform(size=(32, 16))

        def train():
            m = tiny_skip_model(seed=5)
            fit(m, x, y, MeanSquaredError(), Adam(0.01), epochs=3,
                batch_size=8, seed=9)
            return m.forward(x)

        np.testing.assert_array_equal(train(), train())

    def test_validation_recorded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 8, 1))
        y = rng.uniform(size=(20, 16))
        m = tiny_skip_model(seed=1)
        h = fit(m, x, y, MeanSquaredError(), Adam(0.01), epochs=2,
                batch_size=10, validation_data=(x[:5], y[:5]))
        assert len(h.val_loss) == 2

    def test_callback_invoked(self):
        calls = []
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 8, 1))
        y = rng.uniform(size=(8, 16))
        fit(tiny_skip_model(seed=2), x, y, MeanSquaredError(), Adam(0.01),
            epochs=3, batch_size=4,
            callback=lambda e, logs: calls.append((e, logs["loss"])))
        assert [c[0] for c in calls] == [0, 1, 2]

    def test_mismatched_xy_rejected(self):
        m = tiny_skip_model()
        with pytest.raises(ValueError):
            fit(m, np.zeros((4, 8, 1)), np.zeros((5, 16)),
                MeanSquaredError(), Adam(), epochs=1)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        m1 = tiny_skip_model(seed=1)
        path = tmp_path / "w.npz"
        save_weights(m1, path)
        m2 = tiny_skip_model(seed=99)  # different init
        load_weights(m2, path)
        x = np.random.default_rng(0).normal(size=(3, 8, 1))
        np.testing.assert_array_equal(m1.forward(x), m2.forward(x))

    def test_strict_key_check(self, tmp_path):
        m1 = tiny_skip_model(seed=1)
        path = tmp_path / "w.npz"
        save_weights(m1, path)
        inp = Input((4,))
        other = Model(inp, Dense(2, seed=0)(inp))
        with pytest.raises(ValueError):
            load_weights(other, path)


class TestZoo:
    def test_unet_param_count_exact(self):
        assert build_unet().count_params() == 134_434

    def test_mlp_param_count_exact(self):
        assert build_mlp().count_params() == 100_102

    def test_unet_shapes(self):
        m = build_unet()
        out = m.forward(np.zeros((2, 260, 1)))
        assert out.shape == (2, 520)

    def test_unet_output_is_probability(self):
        m = build_unet()
        out = m.forward(np.random.default_rng(0).normal(size=(2, 260, 1)))
        assert (out >= 0).all() and (out <= 1).all()

    def test_mlp_shapes(self):
        out = build_mlp().forward(np.zeros((2, 260)))
        assert out.shape == (2, 518)

    def test_unet_batchnorm_variant(self):
        m = build_unet(UNetConfig(batchnorm_standardizer=True))
        assert any(l.name == "input_bn" for l in m.layers)
        assert m.count_params() == 134_434 + 2  # + gamma/beta on 1 channel

    def test_unet_custom_config(self):
        cfg = UNetConfig(input_length=64, encoder_channels=(8, 16),
                         bottleneck_channels=24)
        m = build_unet(cfg)
        assert m.forward(np.zeros((1, 64, 1))).shape == (1, 128)

    def test_unet_bad_length_rejected(self):
        with pytest.raises(ValueError):
            UNetConfig(input_length=258)  # 258→129→64→128→256 ≠ 258

    def test_unet_seed_changes_weights(self):
        a = build_unet(seed=0).get_weights()["enc1_conv/kernel"]
        b = build_unet(seed=1).get_weights()["enc1_conv/kernel"]
        assert not np.allclose(a, b)

    def test_unet_layer_weight_streams_independent(self):
        w = build_unet(seed=0).get_weights()
        assert not np.allclose(
            w["enc1_conv/kernel"].ravel()[:50],
            w["dec1_conv/kernel"].ravel()[:50],
        )

    def test_mlp_config_validation(self):
        with pytest.raises(ValueError):
            MLPConfig(input_size=0)

    def test_reference_configs_frozen(self):
        assert REFERENCE_UNET_CONFIG.input_length == 260
        assert REFERENCE_MLP_CONFIG.hidden_units == 128
