"""Tests for quantization-aware training."""

import numpy as np
import pytest

from repro.fixed import FixedPointFormat, Overflow
from repro.hls import HLSConfig, convert
from repro.nn import (
    Adam,
    Conv1D,
    Dense,
    Flatten,
    Input,
    MeanSquaredError,
    Model,
    ReLU,
    fit,
)
from repro.nn.qat import (
    disable_qat,
    enable_qat,
    fine_tune_quantized,
    qat_layer_formats,
)

COARSE = FixedPointFormat(6, 3, overflow=Overflow.SAT)  # very lossy


def small_model(seed=0):
    inp = Input((8, 1), name="in")
    x = Conv1D(3, 3, seed=seed, name="c")(inp)
    x = ReLU(name="r")(x)
    x = Dense(2, seed=seed + 1, name="d")(x)
    out = Flatten(name="f")(x)
    return Model(inp, out)


class TestEnableDisable:
    def test_formats_resolved_per_layer(self):
        m = small_model()
        formats = qat_layer_formats(m, COARSE)
        assert set(formats) == {"c", "d"}

    def test_formats_from_hls_config(self):
        m = small_model()
        cfg = HLSConfig()
        cfg.set_layer("c", weight=FixedPointFormat(12, 4))
        formats = qat_layer_formats(m, cfg)
        assert formats["c"].width == 12
        assert formats["d"] == cfg.default.weight

    def test_enable_changes_forward(self):
        m = small_model()
        x = np.random.default_rng(0).normal(size=(4, 8, 1))
        before = m.forward(x)
        enable_qat(m, COARSE)
        during = m.forward(x)
        assert not np.allclose(before, during)
        disable_qat(m)
        after = m.forward(x)
        np.testing.assert_array_equal(before, after)

    def test_no_quantizable_layers_rejected(self):
        inp = Input((4,))
        m = Model(inp, ReLU()(inp))
        with pytest.raises(ValueError):
            enable_qat(m, COARSE)


class TestSTE:
    def test_float_masters_updated(self):
        m = small_model()
        enable_qat(m, COARSE)
        kernel_before = m.get_layer("c").params["kernel"].copy()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 8, 1))
        y = rng.normal(size=(16, 16))
        fit(m, x, y, MeanSquaredError(), Adam(0.01), epochs=2, batch_size=8)
        kernel_after = m.get_layer("c").params["kernel"]
        # masters moved, and moved off the coarse grid (they are float)
        assert not np.allclose(kernel_before, kernel_after)
        grid = kernel_after / COARSE.lsb
        assert not np.allclose(grid, np.round(grid))

    def test_forward_uses_quantized_weights(self):
        m = small_model()
        enable_qat(m, COARSE)
        x = np.random.default_rng(0).normal(size=(2, 8, 1))
        m.forward(x, training=True)
        kq = m.get_layer("c")._kernel_q
        grid = kq / COARSE.lsb
        np.testing.assert_allclose(grid, np.round(grid), atol=1e-9)


class TestFineTune:
    def test_qat_beats_ptq_on_coarse_grid(self):
        """Fine-tuning under a coarse weight grid must reduce the
        quantized-forward loss relative to straight PTQ."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(96, 8, 1))
        teacher = small_model(seed=7)
        y = teacher.forward(x)

        # train a float student first
        student = small_model(seed=2)
        fit(student, x, y, MeanSquaredError(), Adam(0.01), epochs=20,
            batch_size=16, seed=0)

        def quantized_loss(model):
            enable_qat(model, COARSE)
            out = model.forward(x)
            disable_qat(model)
            return float(((out - y) ** 2).mean())

        ptq_loss = quantized_loss(student)
        fine_tune_quantized(student, x, y, MeanSquaredError(), Adam(3e-3),
                            spec=COARSE, epochs=12, batch_size=16, seed=0)
        qat_loss = quantized_loss(student)
        assert qat_loss < ptq_loss

    def test_quantizers_detached_after(self):
        m = small_model()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 8, 1))
        y = rng.normal(size=(8, 16))
        fine_tune_quantized(m, x, y, MeanSquaredError(), Adam(0.01),
                            spec=COARSE, epochs=1, batch_size=4)
        assert m.get_layer("c").weight_quantizer is None

    def test_keep_enabled(self):
        m = small_model()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 8, 1))
        y = rng.normal(size=(8, 16))
        fine_tune_quantized(m, x, y, MeanSquaredError(), Adam(0.01),
                            spec=COARSE, epochs=1, batch_size=4,
                            keep_enabled=True)
        assert m.get_layer("c").weight_quantizer is COARSE

    def test_qat_model_converts_consistently(self):
        """Converting with the same weight format reproduces the QAT
        forward exactly (weights quantize to the same grid)."""
        m = small_model()
        cfg = HLSConfig()
        enable_qat(m, cfg)
        x = np.random.default_rng(0).normal(size=(3, 8, 1))
        qat_forward = m.forward(x)
        disable_qat(m)
        hm = convert(m, cfg)
        # HLS adds activation/result quantization on top; weight effect
        # must match, so outputs agree to the result grid.
        assert np.abs(hm.predict(x) - qat_forward).max() < 0.02
