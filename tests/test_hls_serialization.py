"""Tests for HLS model persistence (the deployment artefact)."""

import numpy as np
import pytest

from repro.hls import HLSConfig, convert
from repro.hls.latency import estimate_latency
from repro.hls.resources import estimate_resources
from repro.hls.serialization import load_hls_model, save_hls_model
from repro.nn import (
    BatchNormalization,
    Conv1D,
    Dense,
    Flatten,
    Input,
    MaxPooling1D,
    Model,
    ReLU,
    Sigmoid,
    Softmax,
    UpSampling1D,
)


@pytest.fixture()
def rich_hls(tmp_path):
    """A model touching every serializable kernel family."""
    inp = Input((16, 1), name="in")
    x = Conv1D(4, 3, seed=0, name="c")(inp)
    x = BatchNormalization(name="bn")(x)
    x = ReLU(name="r")(x)
    x = MaxPooling1D(2, name="p")(x)
    x = UpSampling1D(2, name="u")(x)
    x = Dense(3, seed=1, name="d")(x)
    x = Softmax(name="sm")(x)
    out = Flatten(name="f")(x)
    m = Model(inp, out)
    m.forward(np.random.default_rng(0).normal(size=(32, 16, 1)),
              training=True)  # give batch-norm real statistics
    return convert(m, HLSConfig())


class TestRoundTrip:
    def test_bit_exact(self, rich_hls, tmp_path):
        path = tmp_path / "model.npz"
        save_hls_model(rich_hls, path)
        loaded = load_hls_model(path)
        x = np.random.default_rng(1).normal(size=(6, 16, 1))
        np.testing.assert_array_equal(loaded.predict(x),
                                      rich_hls.predict(x))

    def test_structure_preserved(self, rich_hls, tmp_path):
        path = tmp_path / "model.npz"
        save_hls_model(rich_hls, path)
        loaded = load_hls_model(path)
        assert [k.name for k in loaded.kernels] == [
            k.name for k in rich_hls.kernels
        ]
        assert [k.kind for k in loaded.kernels] == [
            k.kind for k in rich_hls.kernels
        ]
        assert loaded.name == rich_hls.name

    def test_configs_preserved(self, rich_hls, tmp_path):
        path = tmp_path / "model.npz"
        save_hls_model(rich_hls, path)
        loaded = load_hls_model(path)
        for a, b in zip(rich_hls.kernels, loaded.kernels):
            assert a.config.result == b.config.result
            assert a.config.weight == b.config.weight
            assert a.config.reuse_factor == b.config.reuse_factor

    def test_estimators_agree(self, rich_hls, tmp_path):
        path = tmp_path / "model.npz"
        save_hls_model(rich_hls, path)
        loaded = load_hls_model(path)
        assert (estimate_latency(loaded).total_cycles
                == estimate_latency(rich_hls).total_cycles)
        assert (estimate_resources(loaded).aluts
                == estimate_resources(rich_hls).aluts)

    def test_weights_stored_as_raw_words(self, rich_hls, tmp_path):
        path = tmp_path / "model.npz"
        save_hls_model(rich_hls, path)
        with np.load(path) as data:
            raw = data["c/kernel"]
        assert raw.dtype == np.int64

    def test_loaded_model_without_float_source(self, rich_hls, tmp_path):
        """The artefact must be self-sufficient (no repro.nn objects)."""
        path = tmp_path / "model.npz"
        save_hls_model(rich_hls, path)
        loaded = load_hls_model(path)
        # it can feed a board directly
        from repro.soc.board import AchillesBoard

        board = AchillesBoard(loaded)
        result = board.run(np.zeros((2, 16)))
        assert result.outputs.shape == (2, 48)
