"""Integration tests: the full pipeline on the pre-trained reference
bundle.  These are the repository's ground-truth checks that the paper's
headline results actually regenerate."""

import numpy as np
import pytest

from repro.hls.converter import convert
from repro.hls.latency import estimate_latency
from repro.hls.precision import layer_based_config, uniform_config
from repro.hls.resources import estimate_resources
from repro.soc.board import AchillesBoard
from repro.verify import close_enough_accuracy
from repro.verify.flow import VerificationFlow


@pytest.fixture(scope="module")
def eval_slice(reference_bundle):
    ds = reference_bundle.dataset
    return ds.unet_inputs(ds.x_eval[:120])


class TestReferenceBundle:
    def test_param_counts(self, reference_bundle):
        assert reference_bundle.unet.count_params() == 134_434
        assert reference_bundle.mlp.count_params() == 100_102

    def test_unet_learned_the_task(self, reference_bundle):
        """Predictions must beat the trivial all-zeros baseline clearly."""
        ds = reference_bundle.dataset
        x = ds.unet_inputs(ds.x_eval[:200])
        pred = reference_bundle.unet.forward(x)
        y = ds.y_eval[:200]
        mse_model = float(((pred - y) ** 2).mean())
        mse_zero = float((y**2).mean())
        assert mse_model < 0.5 * mse_zero

    def test_output_means_match_paper_band(self, reference_bundle):
        """Paper: mean model output ≈ 0.17 (MI) and 0.42 (RR)."""
        ds = reference_bundle.dataset
        pred = reference_bundle.unet.forward(ds.unet_inputs(ds.x_eval[:300]))
        per_machine = pred.reshape(-1, 260, 2)
        mi = per_machine[..., 0].mean()
        rr = per_machine[..., 1].mean()
        assert 0.10 < mi < 0.30
        assert 0.30 < rr < 0.55
        assert rr > mi  # the asymmetry that drives Fig 5a's reading

    def test_metadata_recorded(self, reference_bundle):
        assert reference_bundle.metadata is not None
        assert "unet" in reference_bundle.metadata


class TestTableIIShape:
    def test_uniform16_collapses(self, reference_bundle, eval_slice):
        b = reference_bundle
        y_float = b.unet.forward(eval_slice)
        hm = convert(b.unet, uniform_config(16, 7, model=b.unet))
        acc = close_enough_accuracy(y_float, hm.predict(eval_slice))
        assert acc["MI"] < 0.7 and acc["RR"] < 0.7

    def test_layer_based_accurate_and_cheap(self, reference_bundle,
                                            reference_hls_unet, eval_slice):
        b = reference_bundle
        y_float = b.unet.forward(eval_slice)
        acc = close_enough_accuracy(
            y_float, reference_hls_unet.predict(eval_slice))
        assert acc["MI"] > 0.97 and acc["RR"] > 0.97
        res = estimate_resources(reference_hls_unet)
        assert res.alut_fraction < 0.5
        assert res.fits

    def test_uniform18_accurate_but_infeasible(self, reference_bundle,
                                               eval_slice):
        b = reference_bundle
        y_float = b.unet.forward(eval_slice)
        hm = convert(b.unet, uniform_config(18, 10, model=b.unet))
        acc = close_enough_accuracy(y_float, hm.predict(eval_slice))
        assert acc["MI"] > 0.95 and acc["RR"] > 0.95
        assert estimate_resources(hm).alut_fraction > 1.0


class TestDeployedSystem:
    def test_latency_bands(self, reference_hls_unet):
        lat = estimate_latency(reference_hls_unet)
        assert 1.3e-3 < lat.latency_s < 1.8e-3  # paper: 1.57 ms
        board = AchillesBoard(reference_hls_unet)
        system = board.deterministic_latency_s()
        assert 1.5e-3 < system < 2.0e-3  # paper: 1.74 ms
        assert 1.0 / system > 320  # deployment requirement (paper: 575)

    def test_verification_flow_passes(self, reference_bundle,
                                      reference_hls_unet):
        ds = reference_bundle.dataset
        flow = VerificationFlow(reference_bundle.unet, reference_hls_unet)
        flow.run_all(ds.unet_inputs(ds.x_eval[:40]), min_accuracy=0.95)
        assert flow.passed, flow.report()

    def test_board_output_bit_exact_vs_hls(self, reference_bundle,
                                           reference_hls_unet):
        from repro.fixed import quantize

        ds = reference_bundle.dataset
        frames = ds.x_eval[:2]
        board = AchillesBoard(reference_hls_unet)
        result = board.run(frames)
        expected = reference_hls_unet.predict(
            ds.unet_inputs(frames)).reshape(2, -1)
        expected = quantize(expected, board.ip.output_format)
        np.testing.assert_array_equal(result.outputs, expected)

    def test_latency_distribution_facts(self, reference_hls_unet):
        board = AchillesBoard(reference_hls_unet)
        lat = board.sample_latency_distribution(20_000, seed=11)
        assert (lat < 3e-3).all()
        assert (lat < 1.9e-3).mean() > 0.995
        assert lat.max() > 2.0e-3  # the OS-jitter tail exists


class TestCodesignOnReference:
    def test_optimizer_chooses_layer_based(self, reference_bundle):
        """On the real U-Net the ladder must reject both uniform designs
        and land on layer-based — the paper's Section IV-D storyline."""
        from repro.core import CodesignOptimizer

        ds = reference_bundle.dataset
        opt = CodesignOptimizer(
            reference_bundle.unet,
            ds.unet_inputs(ds.x_train[:200]),
            eval_frames=60,
        )
        result = opt.optimize()
        assert result.feasible
        assert "layer-based" in result.config.strategy
        tried = [r.config.strategy for r in opt.history]
        assert any("uniform<16,7>" in s for s in tried)
        assert any("uniform<18,10>" in s for s in tried)


class TestMLPReference:
    def test_mlp_system_latency_band(self, reference_bundle):
        b = reference_bundle
        hm = convert(b.mlp, uniform_config(16, 7, model=b.mlp))
        board = AchillesBoard(hm)
        system = board.deterministic_latency_s()
        assert 0.2e-3 < system < 0.45e-3  # paper: 0.31 ms

    def test_mlp_verifies_on_board(self, reference_bundle):
        # The paper uses the MLP as a verification/exploration vehicle
        # and never reports its quantized accuracy; with 16 total bits
        # its 260-wide dense accumulations keep only 2–3 fraction bits,
        # so ≈0.9 within-0.20 accuracy is the honest expectation.
        b = reference_bundle
        ds = b.dataset
        hm = convert(b.mlp, layer_based_config(b.mlp, ds.x_train[:200]))
        flow = VerificationFlow(b.mlp, hm)
        flow.run_all(ds.x_eval[:30], min_accuracy=0.85)
        assert flow.passed, flow.report()
