"""Tests for ``repro.serve`` — the sharded multi-worker serving front-end.

The load-bearing guarantees pinned here:

* sharding and micro-batch planning are pure arithmetic with exact,
  pinnable outputs (round-robin assignment, deadline-aware flushes),
* a farm run on the spawn worker pool is **bit-identical** to the same
  plan executed sequentially in-process, for every worker count and
  compile level — the determinism contract of docs/serving.md,
* a hard worker crash is detected, the worker restarted, the shard task
  requeued, and the results are *still* bit-identical (tasks are pure),
* per-shard observability snapshots merge into one ``repro-obs/1``
  document whose counters/histograms equal a single registry that saw
  every sample,
* the ``repro.core.api`` facade (``build_farm``/``serve_frames``)
  validates its inputs and round-trips through the farm.
"""

import os
import signal
import time

import numpy as np
import pytest

import repro
from repro.core.api import RuntimeConfig, build_farm, serve_frames
from repro.plants import BeamLossPlant
from repro.hls import HLSConfig, convert
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU, Sigmoid
from repro.obs import MetricsRegistry, ObsConfig, Observability
from repro.serve import (
    BatchingPolicy,
    FarmSpec,
    ShardedNodeFarm,
    ShardPlan,
    WorkerCrashError,
    WorkerPool,
    merge_obs_snapshots,
    plan_microbatches,
    shard_seed,
)
from repro.serve.batching import backlog_arrivals, stream_arrivals
from repro.serve.merge import merge_histogram_summaries, merge_metrics_snapshots
from repro.soc.board import FRAME_PERIOD_S
from repro.soc.faults import (
    ACNETFault,
    FaultInjector,
    HubDelayFault,
    HubDropFault,
    IPHangFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
    StuckMonitorFault,
)

N_MONITORS = 16


@pytest.fixture(scope="module")
def tiny_model():
    inp = Input((N_MONITORS, 1), name="in")
    x = Conv1D(4, 3, seed=21, name="c1")(inp)
    x = ReLU(name="r1")(x)
    x = Dense(2, seed=23, name="d1")(x)
    x = Sigmoid(name="s1")(x)
    return Model(inp, Flatten(name="f1")(x), name="serve-tiny")


@pytest.fixture(scope="module")
def tiny_hls(tiny_model):
    return convert(tiny_model, HLSConfig())


def frames_for(n, seed=77):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(n, N_MONITORS))


def farm_for(hls, *, level=0, n_shards=3, obs=None, max_batch=4,
             arrival_mode="backlog", seed=3):
    return build_farm(
        hls,
        config=RuntimeConfig(compile_level=level, batch_inference=True),
        plant=BeamLossPlant(min_votes=1),
        obs=obs,
        n_shards=n_shards,
        batching=BatchingPolicy(max_batch=max_batch),
        seed=seed,
        arrival_mode=arrival_mode,
    )


# ----------------------------------------------------------------------
# Sharding: pure round-robin arithmetic
# ----------------------------------------------------------------------
class TestSharding:
    def test_round_robin_round_trip(self):
        plan = ShardPlan(n_frames=11, n_shards=3)
        for g in range(11):
            s, p = plan.shard_of(g), plan.local_of(g)
            assert plan.global_of(s, p) == g
        assert plan.shard_globals(0) == (0, 3, 6, 9)
        assert plan.shard_globals(1) == (1, 4, 7, 10)
        assert plan.shard_globals(2) == (2, 5, 8)
        assert [plan.shard_size(s) for s in range(3)] == [4, 4, 3]

    def test_gather_inverts_sharding(self):
        plan = ShardPlan(n_frames=10, n_shards=4)
        per_shard = [[g for g in plan.shard_globals(s)] for s in range(4)]
        assert plan.gather(per_shard) == list(range(10))

    def test_gather_validates_sizes(self):
        plan = ShardPlan(n_frames=6, n_shards=2)
        with pytest.raises(ValueError, match="expected 2 shard lists"):
            plan.gather([[0, 2, 4]])
        with pytest.raises(ValueError, match="shard 1"):
            plan.gather([[0, 2, 4], [1, 3]])

    def test_shard_seeds_are_independent_and_reproducible(self):
        draws = {}
        for shard in range(4):
            rng = np.random.default_rng(shard_seed(3, shard))
            draws[shard] = tuple(rng.integers(0, 2**63, size=4))
            again = np.random.default_rng(shard_seed(3, shard))
            assert tuple(again.integers(0, 2**63, size=4)) == draws[shard]
        assert len(set(draws.values())) == 4      # pairwise distinct
        other_farm = np.random.default_rng(shard_seed(4, 0))
        assert tuple(other_farm.integers(0, 2**63, size=4)) != draws[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(n_frames=4, n_shards=0)
        with pytest.raises(ValueError):
            shard_seed(0, -1)
        with pytest.raises(ValueError):
            ShardPlan(n_frames=4, n_shards=2).shard_globals(2)


# ----------------------------------------------------------------------
# Micro-batching: deterministic, pinnable plans
# ----------------------------------------------------------------------
class TestBatching:
    def test_backlog_fills_to_max_batch(self):
        plan = plan_microbatches(backlog_arrivals(10),
                                 BatchingPolicy(max_batch=4))
        assert plan == [(0, 4), (4, 8), (8, 10)]

    def test_zero_slack_stream_dispatches_singletons(self):
        plan = plan_microbatches(stream_arrivals(4, FRAME_PERIOD_S),
                                 BatchingPolicy(max_batch=8, slack_s=0.0))
        assert plan == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_deadline_aware_early_flush(self):
        # Slack of 3 ticks, 1 ms predicted dispatch cost per queued
        # frame: the 4th frame would push the oldest past its deadline
        # (9 ms arrival + 4 ms dispatch > 0 ms + 9 ms slack), so every
        # batch flushes at 3 frames although max_batch is 32.
        policy = BatchingPolicy(max_batch=32, slack_s=3 * FRAME_PERIOD_S,
                                est_cost_per_frame_s=1e-3)
        plan = plan_microbatches(stream_arrivals(10, FRAME_PERIOD_S), policy)
        assert plan == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_plan_covers_exactly_once_in_order(self):
        plan = plan_microbatches(stream_arrivals(23, FRAME_PERIOD_S),
                                 BatchingPolicy(max_batch=5))
        flat = [i for a, b in plan for i in range(a, b)]
        assert flat == list(range(23))

    def test_arrivals_must_be_sorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            plan_microbatches([0.0, 2.0, 1.0], BatchingPolicy())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchingPolicy(slack_s=-1.0)
        with pytest.raises(ValueError):
            BatchingPolicy(est_cost_per_frame_s=-1.0)


# ----------------------------------------------------------------------
# The determinism contract: pool == sequential reference, bit for bit
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_pool_matches_reference_across_worker_counts(self, tiny_hls,
                                                         level):
        frames = frames_for(24)
        farm = farm_for(tiny_hls, level=level)
        reference = farm.serve_reference(frames)
        assert len(reference.records) == 24
        assert not np.isnan(reference.outputs).any()
        for workers in (1, 2, 4):
            result = farm.serve(frames, workers=workers)
            assert result.records == reference.records, \
                f"workers={workers} level={level} diverged"
            assert np.array_equal(result.outputs, reference.outputs)
            assert result.health.worker_restarts == 0
            assert result.health.frames_total == 24

    def test_stream_arrival_mode_matches_reference(self, tiny_hls):
        frames = frames_for(18)
        farm = farm_for(tiny_hls, arrival_mode="stream", max_batch=8)
        reference = farm.serve_reference(frames)
        result = farm.serve(frames, workers=2)
        assert result.records == reference.records

    def test_records_interleave_in_global_order(self, tiny_hls):
        frames = frames_for(10)
        farm = farm_for(tiny_hls)
        result = farm.serve_reference(frames)
        assert [r.frame_index for r in
                result.by_shard[0]] == [0, 1, 2, 3]      # shard-local
        assert len(result.records) == 10
        # Row g of the output block belongs to global frame g: its
        # score column equals the gathered record's decision score.
        for g, record in enumerate(result.records):
            assert result.outputs[g, 0] == float(record.decision.score)


# ----------------------------------------------------------------------
# Crash recovery: requeued tasks stay bit-identical
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_crashes_are_detected_requeued_and_identical(self, tiny_hls):
        frames = frames_for(18)
        farm = farm_for(tiny_hls)
        reference = farm.serve_reference(frames)
        result = farm.serve(frames, workers=2, chaos_crash_shards=(0, 2))
        assert result.health.worker_restarts == 2
        assert result.health.requeued_tasks == 2
        assert result.records == reference.records
        assert np.array_equal(result.outputs, reference.outputs)
        assert "worker restarts: 2" in result.health.render()

    def test_restart_budget_exhaustion_raises(self, tiny_hls):
        frames = frames_for(6)
        farm = farm_for(tiny_hls)
        with pytest.raises(WorkerCrashError, match="budget"):
            farm.serve(frames, workers=1, chaos_crash_shards=(1,),
                       max_restarts=0)

    def test_pool_validation(self, tiny_hls):
        spec = FarmSpec(model=tiny_hls)
        with pytest.raises(ValueError):
            WorkerPool(spec, 0)
        with pytest.raises(ValueError):
            WorkerPool(spec, 1, max_restarts=-1)


# ----------------------------------------------------------------------
# Farm-level chaos: speculation keeps pool == sequential, bit for bit
# ----------------------------------------------------------------------
class TestFarmChaos:
    SPECS = [
        HubDropFault(rate=0.03),
        HubDelayFault(rate=0.02, delay_s=4e-3),
        StuckMonitorFault(monitor=5, value=4.0, rate=0.03),
        NoisyMonitorFault(monitor=12, sigma=8.0, rate=0.03),
        IPHangFault(rate=0.02, extra_s=5e-3),
        LostIRQFault(rate=0.02),
        SEUFault(rate=0.03, ram="output", bit=15),
        ACNETFault(rate=0.03, failures=1),
    ]

    def chaos_farm(self, hls, *, speculation=True, obs=None):
        return build_farm(
            hls,
            config=RuntimeConfig(speculation=speculation),
            plant=BeamLossPlant(min_votes=1),
            obs=obs,
            injector=FaultInjector(self.SPECS, seed=99),
            n_shards=3,
            batching=BatchingPolicy(max_batch=16),
            seed=3,
            arrival_mode="backlog",
        )

    def test_pool_matches_reference_under_chaos(self, tiny_hls):
        frames = frames_for(220)
        farm = self.chaos_farm(tiny_hls)
        reference = farm.serve_reference(frames)

        # The speculative farm is bit-identical to the same farm with
        # speculation disabled (the all-sequential fault path).
        sequential = self.chaos_farm(tiny_hls, speculation=False)
        seq_ref = sequential.serve_reference(frames)
        assert reference.records == seq_ref.records
        assert seq_ref.health.frames_speculated == 0

        # The ladder actually engaged: faults fired, yet the majority of
        # the block rode the precomputed fast path.
        h = reference.health
        assert h.fault_counts, "chaos farm injected no faults"
        assert h.frames_speculated + h.frames_replayed == 220
        assert h.frames_speculated > 110
        assert sum(h.invalidation_counts.values()) == h.frames_replayed
        assert "speculation:" in h.render()

        for workers in (1, 2, 4):
            result = farm.serve(frames, workers=workers)
            assert result.records == reference.records, \
                f"workers={workers} diverged under chaos"
            assert np.array_equal(result.outputs, reference.outputs)
            rh = result.health
            assert rh.frames_speculated == h.frames_speculated
            assert rh.frames_replayed == h.frames_replayed
            assert rh.invalidation_counts == h.invalidation_counts

    def test_merged_obs_snapshot_carries_spec_counters(self, tiny_hls):
        frames = frames_for(36)
        farm = self.chaos_farm(tiny_hls, obs=ObsConfig(flight_frames=8))
        result = farm.serve(frames, workers=2)
        counters = result.obs["metrics"]["counters"]
        assert counters["spec.speculated"] == result.health.frames_speculated
        assert (counters.get("spec.replayed", 0)
                == result.health.frames_replayed)
        assert result.health.frames_speculated > 0
        per_shard = sum(s["metrics"]["counters"].get("spec.speculated", 0)
                        for s in result.obs["shards"])
        assert per_shard == counters["spec.speculated"]


# ----------------------------------------------------------------------
# Observability merging
# ----------------------------------------------------------------------
class TestObsMerge:
    def test_merged_histogram_equals_single_registry(self):
        buckets = (1e-3, 2e-3, 4e-3)
        shard_a, shard_b, whole = (MetricsRegistry() for _ in range(3))
        a_vals = [0.5e-3, 1.5e-3, 3e-3, 9e-3]
        b_vals = [0.2e-3, 1.1e-3, 1.9e-3]
        for v in a_vals:
            shard_a.histogram("lat", buckets_s=buckets).observe(v)
        for v in b_vals:
            shard_b.histogram("lat", buckets_s=buckets).observe(v)
        for v in a_vals + b_vals:
            whole.histogram("lat", buckets_s=buckets).observe(v)

        merged = merge_histogram_summaries(
            [shard_a.snapshot()["histograms"]["lat"],
             shard_b.snapshot()["histograms"]["lat"]])
        expected = whole.snapshot()["histograms"]["lat"]
        assert merged["count"] == expected["count"] == 7
        assert merged["mean"] == pytest.approx(expected["mean"])
        for q in ("p50", "p90", "p99", "max"):
            assert merged[q] == expected[q]
        assert merged["buckets"] == expected["buckets"]

    def test_farm_merges_shard_snapshots(self, tiny_hls):
        frames = frames_for(12)
        farm = farm_for(tiny_hls, obs=ObsConfig(flight_frames=8))
        result = farm.serve(frames, workers=2)
        obs = result.obs
        assert obs is not None
        assert obs["meta"]["format"] == "repro-obs/1"
        assert obs["meta"]["merged_shards"] == 3
        assert obs["meta"]["workers"] == 2
        assert obs["metrics"]["counters"]["frames.total"] == 12
        assert len(obs["shards"]) == 3
        shard_total = sum(s["metrics"]["counters"]["frames.total"]
                          for s in obs["shards"])
        assert shard_total == 12
        assert obs["recorder"]["frames_seen"] == 12

    def test_counters_sum_and_gauges_max(self):
        snaps = [
            {"metrics": {"counters": {"a": 2}, "gauges": {"g": 1.0},
                         "histograms": {}},
             "spans": {"count": 3, "dropped": 0,
                       "stages_sim": {}, "stages_wall": {}},
             "recorder": {"capacity": 4, "frames_seen": 3,
                          "retained": 3, "trips": 0}},
            {"metrics": {"counters": {"a": 5, "b": 1},
                         "gauges": {"g": 7.0}, "histograms": {}},
             "spans": {"count": 2, "dropped": 1,
                       "stages_sim": {}, "stages_wall": {}},
             "recorder": {"capacity": 4, "frames_seen": 2,
                          "retained": 2, "trips": 1}},
        ]
        merged = merge_obs_snapshots(snaps, include_shards=False)
        assert merged["metrics"]["counters"] == {"a": 7, "b": 1}
        assert merged["metrics"]["gauges"] == {"g": 7.0}
        assert merged["spans"] == {"count": 5, "dropped": 1,
                                   "stages_sim": {}, "stages_wall": {}}
        assert merged["recorder"]["trips"] == 1
        assert "shards" not in merged

    def test_heterogeneous_histogram_sets_merge(self):
        # Cross-host merges see uneven shards: a host that served no
        # frames ships no latency histogram at all, another ships an
        # empty one.  Metrics present on only some shards must merge
        # as if the others simply observed nothing.
        buckets = (1e-3, 4e-3)
        with_lat, without = MetricsRegistry(), MetricsRegistry()
        for v in (0.5e-3, 2e-3, 9e-3):
            with_lat.histogram("lat", buckets_s=buckets).observe(v)
        without.histogram("other", buckets_s=buckets).observe(1e-3)
        empty = MetricsRegistry()
        empty.histogram("lat", buckets_s=buckets)      # declared, unused
        snaps = [{"metrics": r.snapshot()}
                 for r in (with_lat, without, empty)]
        merged = merge_metrics_snapshots([s["metrics"] for s in snaps])
        assert set(merged["histograms"]) == {"lat", "other"}
        lat = merged["histograms"]["lat"]
        assert lat["count"] == 3 and lat["max"] == 9e-3
        solo = merge_histogram_summaries(
            [with_lat.snapshot()["histograms"]["lat"]])
        for q in ("count", "mean", "p50", "p90", "p99", "max"):
            assert lat[q] == solo[q]
        assert merged["histograms"]["other"]["count"] == 1

    def test_all_empty_histograms_merge_to_zero(self):
        merged = merge_histogram_summaries(
            [{"count": 0, "mean": 0.0, "max": 0.0, "buckets": []},
             {}])                           # host with no histogram data
        assert merged == {"count": 0, "mean": 0.0, "p50": 0.0,
                          "p90": 0.0, "p99": 0.0, "max": 0.0,
                          "buckets": []}

    def test_empty_counter_maps_and_mismatched_stages_merge(self):
        # One shard with empty counters/gauges, one missing the metrics
        # key entirely, and span stage sets that only partially overlap
        # (a remote host that never ran the publish stage).
        snaps = [
            {"metrics": {"counters": {}, "gauges": {}, "histograms": {}},
             "spans": {"count": 1, "dropped": 0,
                       "stages_sim": {"infer": {"count": 2,
                                                "mean_s": 2.0,
                                                "max_s": 3.0}},
                       "stages_wall": {}}},
            {"spans": {"count": 2, "dropped": 1,
                       "stages_sim": {"infer": {"count": 2,
                                                "mean_s": 4.0,
                                                "max_s": 5.0},
                                      "publish": {"count": 1,
                                                  "mean_s": 1.0,
                                                  "max_s": 1.0}},
                       "stages_wall": {"io": {"count": 0}}}},
            {"metrics": {"counters": {"frames.total": 4}}},
        ]
        merged = merge_obs_snapshots(snaps, include_shards=False,
                                     extra_meta={"transport": "hosts"})
        assert merged["meta"]["merged_shards"] == 3
        assert merged["meta"]["transport"] == "hosts"
        assert merged["metrics"]["counters"] == {"frames.total": 4}
        assert merged["metrics"]["gauges"] == {}
        stages = merged["spans"]["stages_sim"]
        assert stages["infer"] == {"count": 4, "mean_s": 3.0,
                                   "max_s": 5.0}   # count-weighted mean
        assert stages["publish"] == {"count": 1, "mean_s": 1.0,
                                     "max_s": 1.0}
        # a stage present only with zero count folds to the zero row
        assert merged["spans"]["stages_wall"]["io"] == {
            "count": 0, "mean_s": 0.0, "max_s": 0.0}
        assert merged["spans"]["count"] == 3
        assert merged["recorder"]["frames_seen"] == 0


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class TestServeFacade:
    def test_top_level_exports(self):
        assert repro.build_farm is build_farm
        assert repro.serve_frames is serve_frames

    def test_serve_frames_builds_and_serves(self, tiny_hls):
        frames = frames_for(9)
        result = serve_frames(tiny_hls, frames, workers=0, n_shards=3,
                              plant=BeamLossPlant(min_votes=1),
                              batching=BatchingPolicy(max_batch=4),
                              arrival_mode="backlog", seed=3)
        farm = farm_for(tiny_hls, max_batch=4)
        assert result.records == farm.serve_reference(frames).records

    def test_serve_frames_accepts_ready_farm(self, tiny_hls):
        frames = frames_for(6)
        farm = farm_for(tiny_hls)
        result = serve_frames(farm, frames, workers=0)
        assert result.records == farm.serve_reference(frames).records
        with pytest.raises(TypeError, match="ready farm"):
            serve_frames(farm, frames, workers=0,
                         config=RuntimeConfig())

    def test_build_farm_rejects_shared_observability(self, tiny_hls):
        with pytest.raises(TypeError, match="ObsConfig"):
            build_farm(tiny_hls,
                       obs=Observability.from_config(ObsConfig()))
        with pytest.raises(TypeError, match="ObsConfig"):
            build_farm(tiny_hls, obs=object())

    def test_farm_validation(self, tiny_hls):
        spec = FarmSpec(model=tiny_hls)
        with pytest.raises(ValueError, match="n_shards"):
            ShardedNodeFarm(spec, n_shards=0)
        with pytest.raises(ValueError, match="arrival_mode"):
            ShardedNodeFarm(spec, arrival_mode="poisson")
        farm = ShardedNodeFarm(spec, n_shards=2)
        with pytest.raises(ValueError, match="2-D"):
            farm.serve(np.zeros(4), workers=0)
        with pytest.raises(ValueError, match="workers"):
            farm.serve(frames_for(4), workers=-1)
        with pytest.raises(ValueError, match="chaos"):
            farm.serve(frames_for(4), workers=0, chaos_crash_shards=(0,))
        with pytest.raises(ValueError, match="outside"):
            farm.plan(4, chaos_crash_shards=(5,))

    def test_plan_is_deterministic(self, tiny_hls):
        farm = farm_for(tiny_hls, max_batch=4)
        assert farm.plan(10) == farm.plan(10)
        plan = farm.plan(10)
        assert plan.n_batches == sum(len(t.batches) for t in plan.tasks)
        assert plan.tasks[1].batches == ((0, 3),)      # 3 frames, 1 batch


# ----------------------------------------------------------------------
# Batching contracts: NaN rejection, backlog x cost-model interaction
# ----------------------------------------------------------------------
class TestBatchingContracts:
    def test_nan_arrivals_rejected(self):
        # NaN compares false against everything, so without the explicit
        # check it would sail through the monotonicity guard and poison
        # every deadline comparison (batch boundaries — and hence seeds
        # and records — would silently depend on NaN semantics).
        with pytest.raises(ValueError, match="NaN"):
            plan_microbatches([0.0, float("nan"), 0.0], BatchingPolicy())
        with pytest.raises(ValueError, match="NaN"):
            plan_microbatches([float("nan")], BatchingPolicy())

    def test_backlog_cost_model_splits_before_max_batch(self):
        arr = backlog_arrivals(9)
        # Cost model off (the default): batches fill to max_batch.
        assert plan_microbatches(arr, BatchingPolicy(max_batch=4)) == [
            (0, 4), (4, 8), (8, 9)]
        # Positive per-frame cost: even though every frame arrived at
        # t=0, the oldest frame's deadline is slack_s after arrival, so
        # the batch splits as soon as cost * (len + 1) > slack — here
        # at 3 frames, well before max_batch=8 (docstring contract of
        # backlog_arrivals).
        pol = BatchingPolicy(max_batch=8, slack_s=3e-3,
                             est_cost_per_frame_s=1e-3)
        assert plan_microbatches(arr, pol) == [(0, 3), (3, 6), (6, 9)]


# ----------------------------------------------------------------------
# Persistent warm pool: start_pool + supervision regressions
# ----------------------------------------------------------------------
class TestWarmPool:
    def test_warm_serves_are_bit_identical_to_cold_reference(self, tiny_hls):
        farm = farm_for(tiny_hls, n_shards=4)
        frames = frames_for(24)
        ref = farm.serve_reference(frames)
        with farm:
            pool = farm.start_pool(4)
            r1 = farm.serve(frames)
            r2 = farm.serve(frames)
            assert r1.records == ref.records
            assert r2.records == ref.records
            assert np.array_equal(r2.outputs, ref.outputs)
            assert pool.stats.worker_restarts == 0
            assert pool.alive_workers() == 4
            # The result pipes back the host agent's event loop: one
            # selectable Connection per live worker.
            conns = pool.result_connections()
            assert len(conns) == 4
            assert all(isinstance(c.fileno(), int) for c in conns)
            with pytest.raises(ValueError, match="fixed at start_pool"):
                farm.serve(frames, max_restarts=1)
            with pytest.raises(RuntimeError, match="already holds"):
                farm.start_pool(4)
        assert farm.pool is None

    def test_idle_worker_crash_respawns_to_full_strength(self, tiny_hls):
        # Regression: the old supervisor respawned only when *every*
        # worker was gone, so an idle casualty with survivors left a
        # 4-worker pool at 3 forever — and wasn't counted as a restart.
        farm = farm_for(tiny_hls, n_shards=4)
        frames = frames_for(24)
        ref = farm.serve_reference(frames)
        with farm:
            pool = farm.start_pool(4)
            farm.serve(frames)                       # pool is idle now
            t_kill = time.monotonic()
            wid = pool.worker_ids()[0]
            os.kill(pool.worker_pid(wid), signal.SIGKILL)
            deadline = time.monotonic() + 60
            while (pool.stats.worker_restarts < 1
                   and time.monotonic() < deadline):
                pool.pump(0.02)
            assert pool.stats.worker_restarts == 1   # counted
            while (pool.alive_workers() < 4
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert pool.alive_workers() == 4         # held at strength
            # Regression: the respawn must refresh the stall clock —
            # recovery is progress, not a hang to time out on.
            assert pool._last_progress >= t_kill
            r = farm.serve(frames)
            assert r.records == ref.records
            assert r.health.worker_restarts == 0     # per-call delta
        assert pool.stats.worker_restarts == 1       # cumulative

    def test_drain_sleeps_instead_of_busy_spinning_without_pipes(
            self, tiny_hls):
        # Regression: with every result pipe down (workers mid-respawn
        # after a mass crash) the supervisor used to spin a zero-timeout
        # poll loop at 100% CPU.  A pipeless _drain must sleep.
        pool = WorkerPool(FarmSpec(model=tiny_hls), 2)
        t0_wall, t0_cpu = time.perf_counter(), time.process_time()
        for _ in range(5):
            assert pool._drain(0.03) is False
        wall = time.perf_counter() - t0_wall
        cpu = time.process_time() - t0_cpu
        assert wall >= 0.12          # it actually waited
        assert cpu < wall / 2        # ... by sleeping, not spinning
