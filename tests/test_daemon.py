"""Tests for ``repro.serve.daemon`` + ``repro.serve.protocol``.

The daemon extends the farm's determinism contract to frames that
arrive one at a time over sockets (docs/serving.md, daemon section):

* the ``repro-serve/1`` framing layer is sans-io and loss-free under
  arbitrary fragmentation, and poisons itself on any framing violation,
* :class:`StreamIngress` makes admission + batching a pure function of
  the offer/complete sequence — shedding and batch boundaries are
  reproducible with no sockets involved,
* concurrent TCP streams are bit-identical to the sequential
  per-stream reference (:func:`serve_streams_reference`), interleaving
  and crash replays included,
* overload sheds at admission only: whatever was accepted produces
  exactly the records of a run that never saw the shed frames,
* drain loses no accepted frame; reload swaps the pool under a live
  listener,
* the ``repro.core.api.start_daemon`` facade validates like
  ``build_farm``.

No pytest-asyncio: the daemon runs on its own background loop thread
via :class:`DaemonHandle`, and tests drive it synchronously.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.api import RuntimeConfig, start_daemon
from repro.plants import BeamLossPlant
from repro.hls import HLSConfig, convert
from repro.nn import Conv1D, Dense, Flatten, Input, Model, ReLU, Sigmoid
from repro.obs import ObsConfig, Observability
from repro.serve import (
    BatchingPolicy,
    FarmSpec,
    ServingDaemon,
    StreamIngress,
    serve_streams_reference,
)
from repro.serve.batching import plan_microbatches, stream_arrivals
from repro.serve.protocol import (
    ASSIGN_STREAM,
    MAX_PAYLOAD,
    MessageDecoder,
    MsgKind,
    ProtocolError,
    pack,
    pack_eos,
    pack_error,
    pack_frame,
    pack_hello,
    pack_result,
    pack_shed,
    pack_welcome,
    unpack_frame,
    unpack_hello,
    unpack_result,
    unpack_seq,
    unpack_welcome,
)

N_MONITORS = 16


@pytest.fixture(scope="module")
def tiny_hls():
    inp = Input((N_MONITORS, 1), name="in")
    x = Conv1D(4, 3, seed=21, name="c1")(inp)
    x = ReLU(name="r1")(x)
    x = Dense(2, seed=23, name="d1")(x)
    x = Sigmoid(name="s1")(x)
    model = Model(inp, Flatten(name="f1")(x), name="daemon-tiny")
    return convert(model, HLSConfig())


@pytest.fixture(scope="module")
def tiny_spec(tiny_hls):
    return FarmSpec(model=tiny_hls,
                    config=RuntimeConfig(batch_inference=True),
                    plant=BeamLossPlant(min_votes=1))


def frames_for(n, seed=77):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(n, N_MONITORS))


def launch(tiny_hls, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batching", BatchingPolicy(max_batch=4))
    kwargs.setdefault("seed", 5)
    return start_daemon(tiny_hls,
                        config=RuntimeConfig(batch_inference=True),
                        plant=BeamLossPlant(min_votes=1),
                        **kwargs)


# ----------------------------------------------------------------------
# Wire protocol: framing round-trips, fragmentation, poisoning
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_survives_any_fragmentation(self):
        vec = np.random.default_rng(1).normal(size=N_MONITORS)
        row = np.random.default_rng(2).normal(size=7)
        wire = (pack_hello(9) + pack_welcome(9, N_MONITORS)
                + pack_frame(3, vec) + pack_result(3, row)
                + pack_shed(4) + pack_eos() + pack_error("boom"))
        dec = MessageDecoder()
        msgs = []
        for i in range(len(wire)):            # worst case: byte at a time
            dec.feed(wire[i:i + 1])
            msgs.extend(dec)
        kinds = [k for k, _ in msgs]
        assert kinds == [MsgKind.HELLO, MsgKind.WELCOME, MsgKind.FRAME,
                         MsgKind.RESULT, MsgKind.SHED, MsgKind.EOS,
                         MsgKind.ERROR]
        assert unpack_hello(msgs[0][1]) == (1, 9)
        assert unpack_welcome(msgs[1][1]) == (9, N_MONITORS)
        seq, got_vec = unpack_frame(msgs[2][1])
        assert seq == 3
        # bit-exact: the wire carries the same little-endian f64 words
        assert got_vec.tobytes() == vec.astype("<f8").tobytes()
        seq, got_row = unpack_result(msgs[3][1])
        assert seq == 3 and got_row.tobytes() == row.astype("<f8").tobytes()
        assert unpack_seq(msgs[4][1]) == 4
        assert msgs[6][1].decode() == "boom"

    def test_decoder_poisons_on_bad_magic(self):
        dec = MessageDecoder()
        dec.feed(b"XXXX" + bytes(5))
        with pytest.raises(ProtocolError, match="magic"):
            dec.next_message()
        with pytest.raises(ProtocolError, match="poisoned"):
            dec.feed(pack_eos())

    def test_decoder_rejects_oversize_and_unknown_kind(self):
        import struct
        dec = MessageDecoder()
        dec.feed(struct.pack("!4sBI", b"RSRV", 1, MAX_PAYLOAD + 1))
        with pytest.raises(ProtocolError, match="payload bound"):
            dec.next_message()
        dec2 = MessageDecoder()
        dec2.feed(struct.pack("!4sBI", b"RSRV", 200, 0))
        with pytest.raises(ProtocolError, match="unknown message kind"):
            dec2.next_message()
        with pytest.raises(ProtocolError, match="exceeds"):
            pack(MsgKind.FRAME, bytes(MAX_PAYLOAD + 1))

    def test_unpack_validation(self):
        with pytest.raises(ProtocolError):
            unpack_hello(b"\x00")
        with pytest.raises(ProtocolError):
            unpack_welcome(b"\x00" * 3)
        with pytest.raises(ProtocolError, match="8 \\+ 8k"):
            unpack_frame(b"\x00" * 11)
        with pytest.raises(ProtocolError):
            unpack_seq(b"\x00" * 4)


# ----------------------------------------------------------------------
# StreamIngress: sans-io admission + batching determinism
# ----------------------------------------------------------------------
class TestStreamIngress:
    def test_batches_equal_plan_microbatches(self):
        policy = BatchingPolicy(max_batch=4)
        ing = StreamIngress(0, policy=policy, period_s=3e-3,
                            queue_limit=64)
        n = 11
        for f in frames_for(n):
            assert ing.offer(f)
        ing.end()
        got = []
        while (b := ing.next_ready()) is not None:
            got.append(b)
        assert got == plan_microbatches(stream_arrivals(n, 3e-3), policy)
        assert ing.shed == 0

    def test_shed_at_queue_limit_is_deterministic(self):
        ing = StreamIngress(0, policy=BatchingPolicy(max_batch=2),
                            queue_limit=4)
        frames = frames_for(10)
        admitted = [ing.offer(f) for f in frames]
        # exactly the first queue_limit frames are in, the rest shed
        assert admitted == [True] * 4 + [False] * 6
        assert (ing.accepted, ing.shed) == (4, 6)
        # completions reopen the window deterministically
        ing.mark_completed(2)
        assert ing.offer(frames[0]) and ing.offer(frames[1])
        assert not ing.offer(frames[2])
        assert (ing.accepted, ing.shed) == (6, 7)
        # the accepted clock never advanced for shed frames
        assert ing.frames[-1] is not None and len(ing.frames) == 6

    def test_ended_stream_sheds_everything(self):
        ing = StreamIngress(0, queue_limit=8)
        assert ing.offer(frames_for(1)[0])
        ing.end()
        assert not ing.offer(frames_for(1)[0])
        assert ing.shed == 1
        assert not ing.drained            # one accepted frame pending
        ing.mark_completed(1)
        ing.next_ready()
        assert ing.drained or ing.next_ready() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="queue_limit"):
            StreamIngress(0, queue_limit=0)
        with pytest.raises(ValueError, match="arrival_mode"):
            StreamIngress(0, arrival_mode="poisson")


# ----------------------------------------------------------------------
# End-to-end over TCP
# ----------------------------------------------------------------------
class TestDaemonEndToEnd:
    def test_concurrent_streams_bit_identical_to_reference(
            self, tiny_hls, tiny_spec):
        policy = BatchingPolicy(max_batch=4)
        stream_frames = {s: frames_for(10 + s, seed=100 + s)
                         for s in range(3)}
        ref = serve_streams_reference(tiny_spec, stream_frames,
                                      batching=policy, seed=5)
        total = sum(f.shape[0] for f in stream_frames.values())
        with launch(tiny_hls) as handle:
            clients = {s: handle.client(stream_id=s)
                       for s in stream_frames}
            longest = max(f.shape[0] for f in stream_frames.values())
            for i in range(longest):      # adversarial interleaving
                for s, frames in stream_frames.items():
                    if i < frames.shape[0]:
                        clients[s].send(frames[i])
            for s, c in clients.items():
                c.finish(timeout_s=120)
                assert c.eos_seen and not c.shed
                n = stream_frames[s].shape[0]
                got = np.asarray([c.results[i] for i in range(n)])
                assert np.array_equal(got, ref[s].rows), f"stream {s}"
                c.close()
            report = handle.drain()
        assert report.frames_total == total
        assert report.frames_shed == 0
        assert report.batches == sum(len(r.batches) for r in ref.values())
        assert report.health.frames_total == total
        assert report.health.frames_shed == 0
        assert report.obs is None         # no ObsConfig on the spec

    def test_overload_sheds_at_admission_only(self, tiny_hls, tiny_spec):
        # Blast one stream with a queue bound far below the load: some
        # frames shed (reported per frame), and the accepted
        # subsequence produces exactly the records of a run that never
        # saw the shed frames — the admission-time shedding contract.
        frames = frames_for(40)
        with launch(tiny_hls, queue_limit=4) as handle:
            c = handle.client(stream_id=0)
            for i in range(frames.shape[0]):
                c.send(frames[i])
            c.finish(timeout_s=120)
            report = handle.drain()
            assert c.shed                              # overload happened
            accepted = sorted(c.results)
            assert sorted(c.shed) + accepted == sorted(
                range(frames.shape[0])) or not set(c.shed) & set(accepted)
            assert len(accepted) + len(c.shed) == frames.shape[0]
            ref = serve_streams_reference(
                tiny_spec, {0: frames[accepted]},
                batching=BatchingPolicy(max_batch=4), seed=5)
            got = np.asarray([c.results[i] for i in accepted])
            assert np.array_equal(got, ref[0].rows)
            c.close()
        assert report.frames_shed == len(c.shed)
        assert report.health.frames_shed == report.frames_shed
        assert report.frames_total == len(accepted)

    def test_drain_loses_no_accepted_frame_and_reload_reopens(
            self, tiny_hls, tiny_spec):
        frames = frames_for(10)
        ref = serve_streams_reference(
            tiny_spec, {7: frames}, batching=BatchingPolicy(max_batch=4),
            seed=5)
        with launch(tiny_hls) as handle:
            c = handle.client(stream_id=7)
            for i in range(frames.shape[0]):
                c.send(frames[i])
            # Wait for the first two batches' results — the socket is
            # ordered, so their arrival proves all 10 frames were
            # accepted.  Frames 8..9 are then parked in the open tail
            # batch (mid-stream partials wait for the policy boundary).
            deadline = time.monotonic() + 60
            while len(c.results) < 8 and time.monotonic() < deadline:
                c.pump()
                time.sleep(0.002)
            assert len(c.results) >= 8 and not c.shed
            # No EOS: drain must still flush and deliver the tail.
            report = handle.drain()
            c.wait_settled(timeout_s=60)
            assert len(c.results) == frames.shape[0] and not c.shed
            assert report.frames_total == frames.shape[0]
            got = np.asarray([c.results[i]
                              for i in range(frames.shape[0])])
            assert np.array_equal(got, ref[7].rows)
            # While draining, new connections are refused...
            with pytest.raises(ProtocolError, match="draining"):
                handle.client(stream_id=8)
            c.close()
            # ... until a reload swaps in a fresh pool; stream ids are
            # then reusable and results stay bit-identical.
            handle.reload()
            c2 = handle.client(stream_id=7)
            for i in range(frames.shape[0]):
                c2.send(frames[i])
            c2.finish(timeout_s=120)
            got2 = np.asarray([c2.results[i]
                               for i in range(frames.shape[0])])
            assert np.array_equal(got2, ref[7].rows)
            c2.close()

    def test_home_worker_crash_replays_history_bit_exactly(
            self, tiny_hls, tiny_spec):
        frames = frames_for(16, seed=42)
        ref = serve_streams_reference(
            tiny_spec, {0: frames}, batching=BatchingPolicy(max_batch=4),
            seed=5)
        with launch(tiny_hls, workers=2) as handle:
            c = handle.client(stream_id=0)
            for i in range(8):
                c.send(frames[i])
            # Stream-mode batches flush in pairs; 6 results prove three
            # completed batches of replica state live on the home
            # worker (frames 6..7 park in the open tail batch).
            deadline = time.monotonic() + 120
            while len(c.results) < 6 and time.monotonic() < deadline:
                c.pump()
                time.sleep(0.002)
            assert len(c.results) >= 6
            pool = handle.daemon._pool
            wid = pool.stream_home(0)
            assert wid is not None
            os.kill(pool.worker_pid(wid), signal.SIGKILL)
            deadline = time.monotonic() + 60
            while (pool.stats.worker_restarts < 1
                   and time.monotonic() < deadline):
                time.sleep(0.02)                # driver thread reaps
            for i in range(8, 16):
                c.send(frames[i])
            c.finish(timeout_s=120)
            assert not c.shed
            got = np.asarray([c.results[i] for i in range(16)])
            assert np.array_equal(got, ref[0].rows)
            report = handle.drain()
            c.close()
        assert report.worker_restarts >= 1
        assert report.frames_total == 16

    def test_stream_id_collision_and_missing_hello_rejected(
            self, tiny_hls):
        with launch(tiny_hls) as handle:
            c = handle.client(stream_id=3)
            with pytest.raises(ProtocolError, match="already in use"):
                handle.client(stream_id=3)
            c.close()
            # A FRAME before HELLO is a protocol violation.
            import socket as socket_mod
            raw = socket_mod.create_connection(handle.address, timeout=30)
            raw.sendall(pack_frame(0, np.zeros(N_MONITORS)))
            dec = MessageDecoder()
            deadline = time.monotonic() + 30
            msg = None
            while msg is None and time.monotonic() < deadline:
                data = raw.recv(1 << 16)
                if not data:
                    break
                dec.feed(data)
                msg = dec.next_message()
            raw.close()
            assert msg is not None and msg[0] == MsgKind.ERROR
            assert b"HELLO" in msg[1]

    def test_unknown_protocol_version_refused_cleanly(self, tiny_hls):
        # A HELLO advertising a future repro-serve version gets a clean
        # application-level ERROR (naming both versions) and a close —
        # never a framing poison — and the listener stays healthy for
        # the next well-versioned client.
        import socket as socket_mod
        with launch(tiny_hls) as handle:
            raw = socket_mod.create_connection(handle.address, timeout=30)
            raw.sendall(pack_hello(0, version=99))
            dec = MessageDecoder()
            msg = None
            deadline = time.monotonic() + 30
            while msg is None and time.monotonic() < deadline:
                data = raw.recv(1 << 16)
                if not data:
                    break
                dec.feed(data)
                msg = dec.next_message()
            assert msg is not None and msg[0] == MsgKind.ERROR
            assert b"version" in msg[1] and b"99" in msg[1]
            # server closes after the refusal
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                data = raw.recv(1 << 16)
                if not data:
                    break
                dec.feed(data)
            raw.close()
            # the daemon still serves properly-versioned clients
            c = handle.client(stream_id=0)
            frames = frames_for(4)
            for i in range(4):
                c.send(frames[i])
            c.finish(timeout_s=120)
            assert len(c.results) == 4 and not c.errors
            c.close()


# ----------------------------------------------------------------------
# Facade + constructor validation
# ----------------------------------------------------------------------
class TestDaemonFacade:
    def test_start_daemon_validates_like_build_farm(self, tiny_hls):
        with pytest.raises(TypeError, match="ObsConfig"):
            start_daemon(tiny_hls,
                         obs=Observability.from_config(ObsConfig()))
        with pytest.raises(TypeError, match="ObsConfig"):
            start_daemon(tiny_hls, obs=object())

    def test_daemon_validation(self, tiny_spec):
        with pytest.raises(ValueError, match="workers"):
            ServingDaemon(tiny_spec, workers=0)
        with pytest.raises(ValueError, match="arrival_mode"):
            ServingDaemon(tiny_spec, arrival_mode="poisson")

    def test_exports(self):
        import repro.serve as serve
        for name in ("ServingDaemon", "DaemonHandle", "DaemonReport",
                     "StreamIngress", "serve_streams_reference",
                     "StreamClient", "MessageDecoder", "ProtocolError"):
            assert hasattr(serve, name), name
        from repro.core.api import __all__ as api_all
        assert "start_daemon" in api_all
