"""Pre-trained reference models (the paper starts from a *pre-trained*
U-Net; we ship one).

Training the reference U-Net takes minutes of CPU time, so the repository
ships the trained weights under ``src/repro/pretrained/data/`` together
with the dataset seed they were trained on.  Every experiment harness
loads the same bundle, exactly as every experiment in the paper uses the
same deployed network.

Regenerate the weights with ``python tools/pretrain.py`` (deterministic:
same seeds → same files).
"""

from repro.pretrained.bundle import (
    DATA_DIR,
    REFERENCE_DATASET_KWARGS,
    ReferenceBundle,
    load_reference_bundle,
    reference_dataset,
)

__all__ = [
    "DATA_DIR",
    "REFERENCE_DATASET_KWARGS",
    "ReferenceBundle",
    "load_reference_bundle",
    "reference_dataset",
]
