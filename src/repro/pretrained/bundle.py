"""Loading (and lazily training) the reference model bundle."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.beamloss.dataset import (
    DeblendingDataset,
    make_dataset,
    train_reference_mlp,
    train_reference_unet,
)
from repro.nn.model import Model
from repro.nn.serialization import load_weights, save_weights
from repro.nn.zoo import build_mlp, build_unet
from repro.nn.zoo.unet import UNetConfig

__all__ = [
    "DATA_DIR",
    "REFERENCE_DATASET_KWARGS",
    "ReferenceBundle",
    "reference_dataset",
    "load_reference_bundle",
]

DATA_DIR = Path(__file__).parent / "data"

#: The dataset every pre-trained model was trained on (regenerated on
#: demand — synthesis is deterministic and takes well under a second).
REFERENCE_DATASET_KWARGS = dict(n_train=1500, n_val=300, n_eval=1000, seed=0)

#: Training hyper-parameters used by tools/pretrain.py.
TRAINING_KWARGS = dict(epochs=40, batch_size=32, learning_rate=1e-3, seed=0)
MLP_TRAINING_KWARGS = dict(epochs=60, batch_size=32, learning_rate=1e-3, seed=0)
BN_TRAINING_KWARGS = dict(epochs=10, batch_size=32, learning_rate=1e-3, seed=0)


def reference_dataset() -> DeblendingDataset:
    """The canonical dataset (1,500 train / 300 val / 1,000 eval frames —
    the eval size matches the paper's "1,000 datasets" in Fig 5a)."""
    return make_dataset(**REFERENCE_DATASET_KWARGS)


@dataclass
class ReferenceBundle:
    """The deployed artefacts: dataset + trained U-Net + trained MLP.

    ``unet_bn`` is the paper's first training configuration (raw counts
    with an in-model batch-norm); it is optional because only the
    standardisation ablation needs it.
    """

    dataset: DeblendingDataset
    unet: Model
    mlp: Model
    unet_bn: Optional[Model] = None
    metadata: Optional[dict] = None


def _weights_path(name: str) -> Path:
    return DATA_DIR / f"{name}.npz"


def bundle_available(include_bn: bool = False) -> bool:
    """Whether pre-trained weight files exist on disk."""
    names = ["unet", "mlp"] + (["unet_bn"] if include_bn else [])
    return all(_weights_path(n).exists() for n in names)


def load_reference_bundle(include_bn: bool = False,
                          train_if_missing: bool = False) -> ReferenceBundle:
    """Load the shipped pre-trained bundle.

    Parameters
    ----------
    include_bn:
        Also load the batch-norm-standardizer U-Net variant.
    train_if_missing:
        Train from scratch when weight files are absent (minutes of CPU);
        otherwise a missing file raises ``FileNotFoundError`` pointing at
        ``tools/pretrain.py``.
    """
    dataset = reference_dataset()
    if not bundle_available(include_bn):
        if not train_if_missing:
            raise FileNotFoundError(
                f"pre-trained weights not found under {DATA_DIR}; "
                "run `python tools/pretrain.py` (or pass train_if_missing=True)"
            )
        return train_and_save_bundle(dataset, include_bn=include_bn)

    unet = build_unet(seed=0)
    load_weights(unet, _weights_path("unet"))
    mlp = build_mlp(seed=0)
    load_weights(mlp, _weights_path("mlp"))
    unet_bn = None
    if include_bn:
        unet_bn = build_unet(UNetConfig(batchnorm_standardizer=True), seed=0)
        load_weights(unet_bn, _weights_path("unet_bn"))
    meta_path = DATA_DIR / "metadata.json"
    metadata = json.loads(meta_path.read_text()) if meta_path.exists() else None
    return ReferenceBundle(dataset=dataset, unet=unet, mlp=mlp,
                           unet_bn=unet_bn, metadata=metadata)


def train_and_save_bundle(dataset: Optional[DeblendingDataset] = None,
                          include_bn: bool = True,
                          verbose: bool = False) -> ReferenceBundle:
    """Train all reference models and persist them under ``DATA_DIR``."""
    dataset = dataset or reference_dataset()
    os.makedirs(DATA_DIR, exist_ok=True)

    unet, unet_hist = train_reference_unet(dataset, verbose=verbose,
                                           **TRAINING_KWARGS)
    save_weights(unet, _weights_path("unet"))
    mlp, mlp_hist = train_reference_mlp(dataset, verbose=verbose,
                                        **MLP_TRAINING_KWARGS)
    save_weights(mlp, _weights_path("mlp"))

    unet_bn = None
    bn_final = None
    if include_bn:
        unet_bn, bn_hist = train_reference_unet(
            dataset, batchnorm_standardizer=True, verbose=verbose,
            **BN_TRAINING_KWARGS,
        )
        save_weights(unet_bn, _weights_path("unet_bn"))
        bn_final = bn_hist.final_loss

    metadata = {
        "dataset": {k: v for k, v in REFERENCE_DATASET_KWARGS.items()},
        "unet": {"final_loss": unet_hist.final_loss,
                 "val_loss": unet_hist.val_loss[-1],
                 **TRAINING_KWARGS},
        "mlp": {"final_loss": mlp_hist.final_loss,
                "val_loss": mlp_hist.val_loss[-1],
                **MLP_TRAINING_KWARGS},
    }
    if bn_final is not None:
        metadata["unet_bn"] = {"final_loss": bn_final, **BN_TRAINING_KWARGS}
    (DATA_DIR / "metadata.json").write_text(json.dumps(metadata, indent=2))
    return ReferenceBundle(dataset=dataset, unet=unet, mlp=mlp,
                           unet_bn=unet_bn, metadata=metadata)
