"""Minimal ASCII table rendering for experiment harnesses.

The benchmark/experiment scripts print tables in the same row/column layout
as the paper.  We deliberately avoid external dependencies; this renderer
supports left/right alignment and a title line, which is all the harnesses
need.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class Table:
    """An append-only ASCII table.

    Example
    -------
    >>> t = Table(["Strategy", "Accuracy MI"], title="Table II")
    >>> t.add_row(["Uniform <18,10>", "98.8%"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: List[List[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; values are stringified. Length must match columns."""
        cells = [str(v) for v in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self._rows.append(cells)

    @property
    def rows(self) -> List[List[str]]:
        """A copy of the row data added so far."""
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """Render the table as a string with ``|``-separated columns."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"

        def fmt(cells: Sequence[str]) -> str:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(fmt(self.columns))
        lines.append(sep)
        for row in self._rows:
            lines.append(fmt(row))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()
