"""Deterministic random-number management.

Every stochastic component in the library (dataset synthesis, weight
initialisation, OS-jitter model, ...) takes either an integer seed or a
:class:`numpy.random.Generator`.  This module centralises the coercion
logic so that

* an ``int`` seed always produces the same stream,
* ``None`` produces a fresh nondeterministic stream (only used when the
  caller explicitly opts in), and
* a ``Generator`` is passed through untouched, letting callers share one
  stream across components.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def default_rng(seed: SeedLike = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``int`` / ``SeedSequence`` for a deterministic stream, an existing
        ``Generator`` (returned unchanged), or ``None`` for entropy-seeded
        randomness.  The library-wide default seed is ``0``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Split *seed* into *n* independent generators.

    Used when a component (e.g. the SoC simulator) needs per-subsystem
    streams that must not correlate: drawing from one stream must never
    perturb another subsystem's sequence.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
