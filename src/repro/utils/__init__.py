"""Shared utilities: deterministic RNG management, units, tables, timing.

These helpers keep the rest of the library free of boilerplate:

* :mod:`repro.utils.rng` — a single entry point for seeded
  :class:`numpy.random.Generator` instances so every experiment is
  reproducible bit-for-bit.
* :mod:`repro.utils.units` — conversions between cycles, seconds and
  frames-per-second used throughout the latency models.
* :mod:`repro.utils.tables` — minimal ASCII table rendering for the
  experiment harnesses (the benchmark scripts print paper-style tables).
"""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.units import (
    MHZ,
    cycles_to_seconds,
    fps_from_latency,
    seconds_to_cycles,
    us,
    ms,
)
from repro.utils.tables import Table

__all__ = [
    "default_rng",
    "spawn_rngs",
    "MHZ",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "fps_from_latency",
    "us",
    "ms",
    "Table",
]
