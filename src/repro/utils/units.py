"""Unit helpers shared by the latency and throughput models.

The paper reports latencies in milliseconds, clock frequency in MHz and
throughput in frames per second; the HLS latency model internally works in
clock cycles.  These tiny converters keep the arithmetic explicit and
self-documenting at call sites.
"""

from __future__ import annotations

MHZ = 1_000_000.0

#: Clock frequency of the deployed design (paper, Section VI).
DEFAULT_CLOCK_HZ = 100 * MHZ


def us(value: float) -> float:
    """Microseconds → seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds → seconds."""
    return value * 1e-3


def cycles_to_seconds(cycles: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert a cycle count at *clock_hz* into seconds."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> int:
    """Convert seconds into a (rounded-up) cycle count at *clock_hz*."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    cycles = seconds * clock_hz
    return int(-(-cycles // 1))  # ceil without importing math


def fps_from_latency(latency_s: float) -> float:
    """Frames per second sustained at a per-frame latency of *latency_s*.

    This matches the paper's definition: 575 fps ⇔ 1.74 ms per frame.
    """
    if latency_s <= 0:
        raise ValueError(f"latency must be positive, got {latency_s}")
    return 1.0 / latency_s
