"""repro — reproduction of "ML-Based Real-Time Control at the Edge: An
Approach Using hls4ml" (IPPS 2024).

The package rebuilds the paper's full system in pure Python/numpy:

* :mod:`repro.nn` — a Keras-like NN framework with the paper's exact
  U-Net (134,434 params) and MLP (100,102 params) architectures,
* :mod:`repro.fixed` — bit-accurate ``ac_fixed`` arithmetic,
* :mod:`repro.hls` — the hls4ml-analogue converter: per-layer precision,
  reuse factors, cycle-accurate latency, Arria 10 resources, C++ codegen,
* :mod:`repro.soc` — a discrete-event Arria 10 SoC (Achilles) simulator,
* :mod:`repro.beamloss` — the synthetic Fermilab beam-loss substrate,
* :mod:`repro.platforms` — CPU/GPU/FPGA latency comparison models,
* :mod:`repro.verify` — the staged verification flow,
* :mod:`repro.core` — the ML/HLS co-design methodology (the paper's
  contribution) as a public API,
* :mod:`repro.serve` — the deterministic sharded multi-worker serving
  front-end (:func:`repro.build_farm` / :func:`repro.serve_frames`) and
  the persistent socket daemon (:func:`repro.start_daemon`),
* :mod:`repro.plants` — pluggable workloads behind the
  :class:`repro.Plant` interface: the paper's open-loop beam-loss
  substrate (:class:`repro.BeamLossPlant`, the default everywhere) and
  a closed-loop cartpole scenario (:class:`repro.CartpolePlant`),
* :mod:`repro.experiments` — one harness per paper table/figure,
* :mod:`repro.paper` — every published constant, with section refs.

Quickstart (the :mod:`repro.core.api` facade)::

    import repro

    bundle = repro.load_pretrained()
    result = repro.run_control_loop(
        bundle.unet, bundle.dataset.x_eval[:260],
        x_profile=bundle.dataset.unet_inputs(bundle.dataset.x_train),
        config=repro.RuntimeConfig(compile_level=2),
        obs=repro.ObsConfig(),
    )
    print(result.health.render())
    print(result.obs.metrics.snapshot()["histograms"]["latency.total_s"])
"""

from repro.core.api import (
    ControlLoopResult,
    RuntimeConfig,
    build_farm,
    build_runtime,
    codesign_and_deploy,
    load_pretrained,
    run_control_loop,
    serve_frames,
    start_daemon,
)
from repro.obs import ObsConfig, Observability
from repro.plants import (
    BeamLossPlant,
    CartpolePlant,
    ControlQuality,
    Plant,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RuntimeConfig",
    "ObsConfig",
    "Observability",
    "ControlLoopResult",
    "Plant",
    "BeamLossPlant",
    "CartpolePlant",
    "ControlQuality",
    "load_pretrained",
    "build_runtime",
    "run_control_loop",
    "build_farm",
    "serve_frames",
    "start_daemon",
    "codesign_and_deploy",
]
