"""Gradient-descent optimizers (SGD with momentum, Adam).

Optimizers consume the ``layer.grads`` dictionaries that
``Model.backward`` fills and update ``layer.params`` in place.  Slot
variables (momentum, Adam moments) are keyed by ``(layer.name, param)``
so an optimizer instance can only ever be applied to one model.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn.model import Model

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: subclasses implement :meth:`_update` per parameter."""

    def __init__(self, learning_rate: float = 0.001):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.iterations = 0

    def step(self, model: Model) -> None:
        """Apply one update using the gradients currently stored on *model*."""
        self.iterations += 1
        for layer in model.trainable_layers():
            if not layer.trainable:
                continue
            for key, param in layer.params.items():
                grad = layer.grads.get(key)
                if grad is None:
                    raise RuntimeError(
                        f"no gradient for {layer.name}/{key}; "
                        "did you call model.backward()?"
                    )
                if grad.shape != param.shape:
                    raise RuntimeError(
                        f"gradient shape mismatch for {layer.name}/{key}: "
                        f"{grad.shape} vs {param.shape}"
                    )
                self._update((layer.name, key), param, grad)

    def _update(self, slot_key: Tuple[str, str], param: np.ndarray,
                grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[Tuple[str, str], np.ndarray] = {}

    def _update(self, slot_key, param, grad) -> None:
        if self.momentum:
            v = self._velocity.get(slot_key)
            if v is None:
                v = np.zeros_like(param)
            v = self.momentum * v - self.learning_rate * grad
            self._velocity[slot_key] = v
            param += v
        else:
            param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates —
    the optimizer used for the zoo models' reference training runs."""

    def __init__(self, learning_rate: float = 0.001, beta_1: float = 0.9,
                 beta_2: float = 0.999, epsilon: float = 1e-7):
        super().__init__(learning_rate)
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: Dict[Tuple[str, str], np.ndarray] = {}
        self._v: Dict[Tuple[str, str], np.ndarray] = {}

    def _update(self, slot_key, param, grad) -> None:
        m = self._m.get(slot_key)
        v = self._v.get(slot_key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = self.beta_1 * m + (1 - self.beta_1) * grad
        v = self.beta_2 * v + (1 - self.beta_2) * grad**2
        self._m[slot_key] = m
        self._v[slot_key] = v
        t = self.iterations
        m_hat = m / (1 - self.beta_1**t)
        v_hat = v / (1 - self.beta_2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
