"""Nearest-neighbour 1-D up-sampling — the U-Net decoder's expansion step."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layer import Layer, Shape

__all__ = ["UpSampling1D"]


class UpSampling1D(Layer):
    """Repeat each timestep ``size`` times along the length axis.

    The backward pass sums the gradient over each repeated group (the
    transpose of repetition).
    """

    def __init__(self, size: int = 2, name: Optional[str] = None):
        super().__init__(name)
        if size <= 1:
            raise ValueError(f"size must be >= 2, got {size}")
        self.size = int(size)

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(f"UpSampling1D expects (length, channels), got {shape}")
        return (int(shape[0]) * self.size, shape[1])

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        return np.repeat(x, self.size, axis=1)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        n, length, c = grad.shape
        if length % self.size:
            raise ValueError(
                f"gradient length {length} not a multiple of size {self.size}"
            )
        return [grad.reshape(n, length // self.size, self.size, c).sum(axis=2)]

    def get_config(self):
        cfg = super().get_config()
        cfg["size"] = self.size
        return cfg
