"""1-D pooling layers (max and average).

Both follow Keras ``padding="valid"`` semantics with
``stride == pool_size``: a trailing remainder that does not fill a whole
window is dropped (260 → 130 → 65 in the reference U-Net).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layer import Layer, Shape

__all__ = ["MaxPooling1D", "AveragePooling1D"]


class _Pooling1D(Layer):
    """Shared machinery: window reshape plus remainder trimming."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None):
        super().__init__(name)
        if pool_size <= 1:
            raise ValueError(f"pool_size must be >= 2, got {pool_size}")
        self.pool_size = int(pool_size)
        self._input_shape = None

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(f"pooling expects (length, channels), got {shape}")
        out_len = int(shape[0]) // self.pool_size
        if out_len == 0:
            raise ValueError(
                f"pool_size {self.pool_size} larger than length {shape[0]}"
            )
        return (out_len, shape[1])

    def _window(self, x: np.ndarray) -> np.ndarray:
        n, length, c = x.shape
        out_len = length // self.pool_size
        self._input_shape = x.shape
        trimmed = x[:, : out_len * self.pool_size, :]
        return trimmed.reshape(n, out_len, self.pool_size, c)

    def _expand(self, grad_windows: np.ndarray) -> np.ndarray:
        n, length, c = self._input_shape
        out_len = grad_windows.shape[1]
        dx = np.zeros((n, length, c), dtype=grad_windows.dtype)
        dx[:, : out_len * self.pool_size, :] = grad_windows.reshape(
            n, out_len * self.pool_size, c
        )
        return dx

    def get_config(self):
        cfg = super().get_config()
        cfg["pool_size"] = self.pool_size
        return cfg


class MaxPooling1D(_Pooling1D):
    """Maximum over non-overlapping windows; backward routes the gradient
    to the argmax position of each window (ties go to the first maximum,
    matching the hardware comparator tree)."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None):
        super().__init__(pool_size, name)
        self._argmax = None

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        windows = self._window(x)
        self._argmax = windows.argmax(axis=2)
        return windows.max(axis=2)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._argmax is None:
            raise RuntimeError("backward called before forward")
        n, out_len, c = grad.shape
        gw = np.zeros((n, out_len, self.pool_size, c), dtype=grad.dtype)
        np.put_along_axis(gw, self._argmax[:, :, None, :], grad[:, :, None, :], axis=2)
        return [self._expand(gw)]


class AveragePooling1D(_Pooling1D):
    """Mean over non-overlapping windows; backward spreads the gradient
    uniformly across each window."""

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        return self._window(x).mean(axis=2)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        gw = np.repeat(grad[:, :, None, :], self.pool_size, axis=2) / self.pool_size
        return [self._expand(gw)]
