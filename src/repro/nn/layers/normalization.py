"""Batch normalisation over the channel (last) axis.

The paper's first training attempt placed a ``BatchNormalization`` layer
inside the model to standardise the raw BLM magnitudes (105k–120k); that
configuration quantizes poorly because the layer's own parameters then
carry the huge input scale (Section IV-D).  Reproducing that experiment
requires a faithful batch-norm, including the moving statistics used at
inference time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn import initializers
from repro.nn.layer import Layer, Shape

__all__ = ["BatchNormalization"]


class BatchNormalization(Layer):
    """Normalise each channel to zero mean / unit variance, then affine.

    Trainable parameters: ``gamma`` (scale) and ``beta`` (shift).
    Non-trainable state: ``moving_mean`` / ``moving_var`` updated with
    ``momentum`` during training steps and used verbatim at inference.
    """

    def __init__(self, momentum: float = 0.99, epsilon: float = 1e-3,
                 name: Optional[str] = None):
        super().__init__(name)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        #: inference-time statistics (non-trainable, excluded from grads)
        self.state: Dict[str, np.ndarray] = {}
        self._cache = None

    def build(self, input_shapes: Sequence[Shape]) -> None:
        (shape,) = input_shapes
        c = int(shape[-1])
        self.params["gamma"] = initializers.ones((c,))
        self.params["beta"] = initializers.zeros((c,))
        self.state["moving_mean"] = np.zeros(c)
        self.state["moving_var"] = np.ones(c)

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.state["moving_mean"] = m * self.state["moving_mean"] + (1 - m) * mean
            self.state["moving_var"] = m * self.state["moving_var"] + (1 - m) * var
        else:
            mean = self.state["moving_mean"]
            var = self.state["moving_var"]
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, axes, x.shape)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, axes, shape = self._cache
        # Number of samples contributing to each channel statistic.
        m = int(np.prod([shape[a] for a in axes]))
        gamma = self.params["gamma"]
        self.grads["gamma"] = (grad * x_hat).sum(axis=axes)
        self.grads["beta"] = grad.sum(axis=axes)
        # Standard batch-norm backward (training-mode statistics).
        dxhat = grad * gamma
        dx = (inv_std / m) * (
            m * dxhat
            - dxhat.sum(axis=axes)
            - x_hat * (dxhat * x_hat).sum(axis=axes)
        )
        return [dx]

    def inference_scale_shift(self):
        """The folded affine form ``y = scale * x + shift`` used at inference.

        hls4ml fuses batch-norm into a single multiply-add; the HLS
        converter calls this to build that fused layer.
        """
        inv_std = 1.0 / np.sqrt(self.state["moving_var"] + self.epsilon)
        scale = self.params["gamma"] * inv_std
        shift = self.params["beta"] - self.state["moving_mean"] * scale
        return scale, shift

    def get_config(self):
        cfg = super().get_config()
        cfg.update(momentum=self.momentum, epsilon=self.epsilon)
        return cfg
