"""The graph entry point.

:func:`Input` mirrors ``keras.Input``: it creates an :class:`InputLayer`
and immediately returns its symbolic tensor.  The model feeds actual
arrays into these layers at execution time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.nn.layer import Layer, Shape, TensorRef

__all__ = ["Input", "InputLayer"]


class InputLayer(Layer):
    """Placeholder layer holding the declared input shape (batch excluded)."""

    def __init__(self, shape: Tuple[int, ...], name: str = None):
        super().__init__(name)
        if not shape:
            raise ValueError("input shape must have at least one dimension")
        if any(int(d) <= 0 for d in shape):
            raise ValueError(f"input dimensions must be positive, got {shape}")
        self.shape = tuple(int(d) for d in shape)
        self.output_shape = self.shape
        self.built = True

    def symbol(self) -> TensorRef:
        """The symbolic tensor produced by this input."""
        return TensorRef(self, self.shape)

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != self.shape:
            raise ValueError(
                f"input {self.name!r} expects trailing shape {self.shape}, got {x.shape[1:]}"
            )
        return x

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        return [grad]

    def get_config(self):
        cfg = super().get_config()
        cfg["shape"] = list(self.shape)
        return cfg


def Input(shape: Sequence[int], name: str = None) -> TensorRef:
    """Create an input placeholder and return its symbolic tensor."""
    return InputLayer(tuple(shape), name=name).symbol()
