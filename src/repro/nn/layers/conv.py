"""1-D convolution.

Implements the ``Conv1D`` layer used by the paper's U-Net encoder/decoder.
Stride is fixed at 1 (the U-Net downsamples via pooling layers, not via
strided convs) and padding may be ``"same"`` or ``"valid"``.

The forward pass is a single einsum over a
:func:`numpy.lib.stride_tricks.sliding_window_view` — no Python-level
loops — and the backward pass reuses the same windowing trick on the
zero-padded output gradient (a full correlation with the flipped kernel).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import initializers
from repro.nn.layer import Layer, Shape
from repro.utils.rng import SeedLike, default_rng

__all__ = ["Conv1D"]


class Conv1D(Layer):
    """Cross-correlation over the length axis of ``(batch, length, channels)``.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Receptive field length (odd sizes recommended with ``"same"``).
    padding:
        ``"same"`` keeps the length; ``"valid"`` shrinks it by
        ``kernel_size - 1``.
    use_bias, seed:
        As for :class:`~repro.nn.layers.dense.Dense`.
    """

    def __init__(self, filters: int, kernel_size: int, padding: str = "same",
                 use_bias: bool = True, seed: SeedLike = 0,
                 name: Optional[str] = None):
        super().__init__(name)
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        if padding not in ("same", "valid"):
            raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.padding = padding
        self.use_bias = bool(use_bias)
        self._rng = default_rng(seed)
        self._windows: Optional[np.ndarray] = None
        self._input_length = 0
        #: optional fixed-point weight quantizer (set by repro.nn.qat)
        self.weight_quantizer = None
        self._kernel_q: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _pad_amounts(self) -> Tuple[int, int]:
        if self.padding == "valid":
            return 0, 0
        total = self.kernel_size - 1
        left = total // 2
        return left, total - left

    def build(self, input_shapes: Sequence[Shape]) -> None:
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(
                f"Conv1D expects (length, channels) inputs, got shape {shape}"
            )
        channels = int(shape[-1])
        k = self.kernel_size
        fan_in = k * channels
        fan_out = k * self.filters
        self.params["kernel"] = initializers.glorot_uniform(
            (k, channels, self.filters), fan_in, fan_out, self._rng
        )
        if self.use_bias:
            self.params["bias"] = initializers.zeros((self.filters,))

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        length = int(shape[0])
        if self.padding == "valid":
            length = length - self.kernel_size + 1
            if length <= 0:
                raise ValueError(
                    f"kernel {self.kernel_size} too large for length {shape[0]}"
                )
        return (length, self.filters)

    # ------------------------------------------------------------------
    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        left, right = self._pad_amounts()
        self._input_length = x.shape[1]
        if left or right:
            x = np.pad(x, ((0, 0), (left, right), (0, 0)))
        # (batch, out_len, channels, kernel)
        windows = sliding_window_view(x, self.kernel_size, axis=1)
        self._windows = windows
        if self.weight_quantizer is None:
            self._kernel_q = self.params["kernel"]
        else:
            from repro.fixed import quantize

            self._kernel_q = quantize(self.params["kernel"],
                                      self.weight_quantizer)
        y = np.einsum("ntck,kcf->ntf", windows, self._kernel_q,
                      optimize=True)
        if self.use_bias:
            y = y + self.params["bias"]
        return y

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._windows is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        self.grads["kernel"] = np.einsum(
            "ntck,ntf->kcf", self._windows, grad, optimize=True
        )
        if self.use_bias:
            self.grads["bias"] = grad.sum(axis=(0, 1))
        # Full correlation of grad with the flipped kernel gives the
        # gradient w.r.t. the *padded* input; slice the padding back off.
        grad_pad = np.pad(grad, ((0, 0), (k - 1, k - 1), (0, 0)))
        gwin = sliding_window_view(grad_pad, k, axis=1)  # (n, Lp, f, k)
        kernel = (self._kernel_q if self._kernel_q is not None
                  else self.params["kernel"])
        flipped = kernel[::-1]  # (k, c, f)
        dx_pad = np.einsum("ntfk,kcf->ntc", gwin, flipped, optimize=True)
        left, _right = self._pad_amounts()
        dx = dx_pad[:, left:left + self._input_length, :]
        return [dx]

    def get_config(self):
        cfg = super().get_config()
        cfg.update(filters=self.filters, kernel_size=self.kernel_size,
                   padding=self.padding, use_bias=self.use_bias)
        return cfg
