"""Activation layers.

Activations are standalone layers (not fused options on Dense/Conv): that
matches how hls4ml sees a Keras graph and keeps the HLS converter's
layer-by-layer precision assignment one-to-one with the paper's Fig 2.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layer import Layer

__all__ = ["ReLU", "Sigmoid", "Tanh", "Softmax", "Linear"]


class ReLU(Layer):
    """``max(x, 0)``."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._mask = None

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return [grad * self._mask]


class Sigmoid(Layer):
    """Logistic function — the paper's output nonlinearity (probabilities
    that MI resp. RR caused the loss at each monitor)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y = None

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        # Numerically stable piecewise form.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._y = out
        return out

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return [grad * self._y * (1.0 - self._y)]


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y = None

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return [grad * (1.0 - self._y**2)]


class Softmax(Layer):
    """Softmax over the last axis."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._y = None

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        z = x - x.max(axis=-1, keepdims=True)
        e = np.exp(z)
        self._y = e / e.sum(axis=-1, keepdims=True)
        return self._y

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        y = self._y
        dot = (grad * y).sum(axis=-1, keepdims=True)
        return [y * (grad - dot)]


class Linear(Layer):
    """Identity — keeps graph topology explicit where Keras would insert
    a linear activation."""

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        return x

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        return [grad]
