"""Inverted dropout.

Not used by the paper's deployed models, but a standard regulariser for
retraining experiments on noisier substrates; included so downstream
users can train variants without leaving the framework.  Inference-mode
behaviour is the identity, so converted HLS models are unaffected
(the converter maps Dropout to a routing kernel).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layer import Layer
from repro.utils.rng import SeedLike, default_rng

__all__ = ["Dropout"]


class Dropout(Layer):
    """Zero each activation with probability *rate* during training,
    scaling survivors by ``1/(1-rate)`` (inverted dropout), so inference
    needs no rescaling."""

    def __init__(self, rate: float, seed: SeedLike = 0,
                 name: Optional[str] = None):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._mask is None:
            return [grad]
        return [grad * self._mask]

    def get_config(self):
        cfg = super().get_config()
        cfg["rate"] = self.rate
        return cfg
