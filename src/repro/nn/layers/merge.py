"""Multi-input merge layers: channel concatenation and elementwise add.

``Concatenate`` realises the U-Net skip connections: the decoder receives
``concat([upsampled, encoder_features])`` along the channel axis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layer import Layer, Shape

__all__ = ["Concatenate", "Add"]


class Concatenate(Layer):
    """Concatenate along the channel (last) axis.

    All inputs must agree on every axis except the last.  The backward
    pass splits the gradient back into the per-input channel slices.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._splits: List[int] = []

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ValueError("Concatenate needs at least two inputs")
        head = input_shapes[0]
        for s in input_shapes[1:]:
            if s[:-1] != head[:-1]:
                raise ValueError(
                    f"concatenate shape mismatch: {head} vs {s} "
                    "(all axes but the last must agree)"
                )
        channels = sum(int(s[-1]) for s in input_shapes)
        return tuple(head[:-1]) + (channels,)

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        self._splits = [x.shape[-1] for x in inputs]
        return np.concatenate(inputs, axis=-1)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if not self._splits:
            raise RuntimeError("backward called before forward")
        offsets = np.cumsum(self._splits)[:-1]
        return list(np.split(grad, offsets, axis=-1))


class Add(Layer):
    """Elementwise sum of identically-shaped inputs (residual connections)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._n_inputs = 0

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ValueError("Add needs at least two inputs")
        head = input_shapes[0]
        for s in input_shapes[1:]:
            if s != head:
                raise ValueError(f"add shape mismatch: {head} vs {s}")
        return head

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        self._n_inputs = len(inputs)
        out = inputs[0].copy()
        for x in inputs[1:]:
            out += x
        return out

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if not self._n_inputs:
            raise RuntimeError("backward called before forward")
        return [grad] * self._n_inputs
