"""Fully-connected layer.

Applies ``y = x @ W + b`` over the last axis, so it works both on flat
``(batch, features)`` tensors and, Keras-style, pointwise on sequence
tensors ``(batch, length, channels)``.

The paper's reference MLP uses a bias-free first dense layer — that is
the only (128, 518) split that reproduces the printed 100,102-parameter
count exactly (see DESIGN.md) — so ``use_bias`` is a first-class option.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import initializers
from repro.nn.layer import Layer, Shape
from repro.utils.rng import SeedLike, default_rng

__all__ = ["Dense"]


class Dense(Layer):
    """``y = x W + b`` on the last axis.

    Parameters
    ----------
    units:
        Output feature count.
    use_bias:
        Include the additive bias term (default True).
    seed:
        Seed/Generator for Glorot-uniform kernel initialisation.
    """

    def __init__(self, units: int, use_bias: bool = True,
                 seed: SeedLike = 0, name: Optional[str] = None):
        super().__init__(name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self._rng = default_rng(seed)
        self._x: Optional[np.ndarray] = None
        #: optional fixed-point weight quantizer (set by repro.nn.qat);
        #: forward uses quantized weights, gradients update the float
        #: master copy — the straight-through estimator.
        self.weight_quantizer = None
        self._kernel_q: Optional[np.ndarray] = None

    def build(self, input_shapes: Sequence[Shape]) -> None:
        (shape,) = input_shapes
        fan_in = int(shape[-1])
        self.params["kernel"] = initializers.glorot_uniform(
            (fan_in, self.units), fan_in, self.units, self._rng
        )
        if self.use_bias:
            self.params["bias"] = initializers.zeros((self.units,))

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return tuple(shape[:-1]) + (self.units,)

    def _effective_kernel(self) -> np.ndarray:
        if self.weight_quantizer is None:
            return self.params["kernel"]
        from repro.fixed import quantize

        return quantize(self.params["kernel"], self.weight_quantizer)

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        self._x = x
        self._kernel_q = self._effective_kernel()
        y = x @ self._kernel_q
        if self.use_bias:
            y = y + self.params["bias"]
        return y

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before forward")
        # Collapse all leading axes so the same code serves 2-D and 3-D.
        x2 = x.reshape(-1, x.shape[-1])
        g2 = grad.reshape(-1, grad.shape[-1])
        self.grads["kernel"] = x2.T @ g2
        if self.use_bias:
            self.grads["bias"] = g2.sum(axis=0)
        kernel = (self._kernel_q if self._kernel_q is not None
                  else self.params["kernel"])
        dx = grad @ kernel.T
        return [dx]

    def get_config(self):
        cfg = super().get_config()
        cfg.update(units=self.units, use_bias=self.use_bias)
        return cfg
