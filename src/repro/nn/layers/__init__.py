"""Concrete layer implementations (one module per layer family)."""
