"""Shape manipulation layers (Flatten / Reshape).

The U-Net head flattens its ``(260, 2)`` per-monitor probability map into
the flat 520-value output array the IP core writes to the output buffer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layer import Layer, Shape

__all__ = ["Flatten", "Reshape"]


class Flatten(Layer):
    """Collapse all non-batch axes into one."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._input_shape = None

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return (int(np.prod(shape)),)

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return [grad.reshape(self._input_shape)]


class Reshape(Layer):
    """Reshape the non-batch axes to ``target_shape``."""

    def __init__(self, target_shape: Tuple[int, ...], name: Optional[str] = None):
        super().__init__(name)
        self.target_shape = tuple(int(d) for d in target_shape)
        self._input_shape = None

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if int(np.prod(shape)) != int(np.prod(self.target_shape)):
            raise ValueError(
                f"cannot reshape {shape} (size {int(np.prod(shape))}) to "
                f"{self.target_shape} (size {int(np.prod(self.target_shape))})"
            )
        return self.target_shape

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        (x,) = inputs
        self._input_shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return [grad.reshape(self._input_shape)]

    def get_config(self):
        cfg = super().get_config()
        cfg["target_shape"] = list(self.target_shape)
        return cfg
