"""Weight initialisers (Glorot/He and constants).

The zoo models use Glorot-uniform for dense/conv kernels — the Keras
default, which matters because the paper's quantization behaviour depends
on the trained weight magnitudes staying in the Keras-typical range.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros", "ones"]


def glorot_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fi+fo))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], fan_in: int,
              rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, sqrt(2/fan_in)) — used ahead of ReLU stacks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero parameter (biases, batch-norm beta)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one parameter (batch-norm gamma)."""
    return np.ones(shape, dtype=np.float64)
