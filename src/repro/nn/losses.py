"""Training losses with analytic gradients.

Each loss exposes ``value`` (scalar mean over all elements) and ``grad``
(dL/dŷ with the same shape as the prediction).  The de-blending task is a
per-monitor regression onto [0, 1] probabilities, trained with MSE in our
reproduction (the paper calls it "semantic regression", citing [16]).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "MeanAbsoluteError", "BinaryCrossentropy"]


class Loss:
    """Interface: ``value(y_true, y_pred) -> float`` and matching ``grad``."""

    name = "loss"

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _check(self, y_true: np.ndarray, y_pred: np.ndarray):
        y_true = np.asarray(y_true, dtype=np.float64)
        y_pred = np.asarray(y_pred, dtype=np.float64)
        if y_true.shape != y_pred.shape:
            raise ValueError(
                f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
            )
        return y_true, y_pred


class MeanSquaredError(Loss):
    """``mean((ŷ - y)²)`` over every element."""

    name = "mse"

    def value(self, y_true, y_pred) -> float:
        y_true, y_pred = self._check(y_true, y_pred)
        return float(np.mean((y_pred - y_true) ** 2))

    def grad(self, y_true, y_pred) -> np.ndarray:
        y_true, y_pred = self._check(y_true, y_pred)
        return 2.0 * (y_pred - y_true) / y_pred.size


class MeanAbsoluteError(Loss):
    """``mean(|ŷ - y|)``; subgradient 0 at exact equality."""

    name = "mae"

    def value(self, y_true, y_pred) -> float:
        y_true, y_pred = self._check(y_true, y_pred)
        return float(np.mean(np.abs(y_pred - y_true)))

    def grad(self, y_true, y_pred) -> np.ndarray:
        y_true, y_pred = self._check(y_true, y_pred)
        return np.sign(y_pred - y_true) / y_pred.size


class BinaryCrossentropy(Loss):
    """Elementwise BCE on probabilities (post-sigmoid), clipped for
    numerical safety exactly like Keras' default epsilon."""

    name = "bce"

    def __init__(self, epsilon: float = 1e-7):
        if not 0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = float(epsilon)

    def _clip(self, y_pred: np.ndarray) -> np.ndarray:
        return np.clip(y_pred, self.epsilon, 1.0 - self.epsilon)

    def value(self, y_true, y_pred) -> float:
        y_true, y_pred = self._check(y_true, y_pred)
        p = self._clip(y_pred)
        return float(np.mean(-(y_true * np.log(p) + (1 - y_true) * np.log1p(-p))))

    def grad(self, y_true, y_pred) -> np.ndarray:
        y_true, y_pred = self._check(y_true, y_pred)
        p = self._clip(y_pred)
        return ((p - y_true) / (p * (1.0 - p))) / y_pred.size
