"""The beam-loss de-blending U-Net.

The paper's Fig 2 U-Net has an encoder–decoder shape with skip
connections over the layer types {Conv1D, MaxPooling, UpSampling,
Concatenate, Dense, Sigmoid} and 134,434 trainable parameters over a
260-sample input and 520-value output (two per-monitor probabilities,
MI and RR).  The exact channel widths are not printed in the paper, so
the reference configuration below was solved to reproduce the parameter
count *exactly* (see DESIGN.md): two encoder levels of 40 and 96
channels, a 136-channel bottleneck, kernel size 3 throughout, and a
pointwise Dense(2) + Sigmoid head.  The head is a Keras ``Dense`` applied
per sequence position — which is precisely why the paper's Table III
lists a separate "Dense/Sigmoid reuse factor" of 260: hls4ml reuses that
layer's multipliers across the 260 positions.

The pooling chain 260 → 130 → 65 and the matching up-sampling chain
65 → 130 → 260 reproduce the paper's spatial sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.nn.layers.activations import ReLU, Sigmoid
from repro.nn.layers.conv import Conv1D
from repro.nn.layers.dense import Dense
from repro.nn.layers.input import Input
from repro.nn.layers.merge import Concatenate
from repro.nn.layers.normalization import BatchNormalization
from repro.nn.layers.pooling import MaxPooling1D
from repro.nn.layers.reshape import Flatten
from repro.nn.layers.upsampling import UpSampling1D
from repro.nn.model import Model
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["UNetConfig", "REFERENCE_UNET_CONFIG", "build_unet"]

#: Parameter count printed in the paper (Table III).
PAPER_UNET_PARAMS = 134_434


@dataclass(frozen=True)
class UNetConfig:
    """Architecture hyper-parameters for :func:`build_unet`.

    ``encoder_channels`` lists the channel width of each encoder level;
    the decoder mirrors it.  ``input_length`` must be divisible by
    ``2 ** len(encoder_channels)``-ish — precisely, each pooling halves
    (flooring) and each up-sampling doubles, so the round trip must
    restore the original length (260 → 130 → 65 → 130 → 260 works).
    """

    input_length: int = 260
    input_channels: int = 1
    encoder_channels: Tuple[int, ...] = (40, 96)
    bottleneck_channels: int = 136
    kernel_size: int = 3
    outputs_per_position: int = 2
    #: Insert a BatchNormalization straight after the input.  This is the
    #: paper's *first* training configuration (standardisation inside the
    #: model), which quantizes poorly; the deployed model standardises the
    #: data *before* training instead (Section IV-D).
    batchnorm_standardizer: bool = False

    def __post_init__(self):
        if self.input_length <= 0 or self.input_channels <= 0:
            raise ValueError("input dimensions must be positive")
        if not self.encoder_channels:
            raise ValueError("need at least one encoder level")
        if self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd for 'same' padding symmetry")
        # Validate the pool/upsample round trip restores the length.
        length = self.input_length
        for _ in self.encoder_channels:
            length //= 2
            if length == 0:
                raise ValueError("too many encoder levels for input_length")
        for _ in self.encoder_channels:
            length *= 2
        if length != self.input_length:
            raise ValueError(
                f"input_length {self.input_length} does not survive the "
                f"pool/upsample round trip (got back {length})"
            )

    @property
    def output_size(self) -> int:
        """Flat output width (260 monitors × 2 machines = 520)."""
        return self.input_length * self.outputs_per_position


#: The configuration whose parameter count matches the paper exactly.
REFERENCE_UNET_CONFIG = UNetConfig()


def build_unet(config: UNetConfig = REFERENCE_UNET_CONFIG,
               seed: SeedLike = 0, name: str = "unet") -> Model:
    """Build the de-blending U-Net.

    Returns an untrained :class:`~repro.nn.model.Model`; train it with
    :func:`repro.nn.training.fit` or via
    :func:`repro.beamloss.dataset.train_reference_model`.
    """
    n_levels = len(config.encoder_channels)
    # One independent weight stream per parameterised layer.
    rngs = iter(spawn_rngs(seed, 2 * n_levels + 2 + 1))
    k = config.kernel_size

    inp = Input((config.input_length, config.input_channels), name="blm_input")
    x = inp
    if config.batchnorm_standardizer:
        x = BatchNormalization(name="input_bn")(x)

    skips = []
    for level, channels in enumerate(config.encoder_channels, start=1):
        x = Conv1D(channels, k, seed=next(rngs), name=f"enc{level}_conv")(x)
        x = ReLU(name=f"enc{level}_relu")(x)
        skips.append(x)
        x = MaxPooling1D(2, name=f"enc{level}_pool")(x)

    x = Conv1D(config.bottleneck_channels, k, seed=next(rngs),
               name="bottleneck_conv")(x)
    x = ReLU(name="bottleneck_relu")(x)

    for level in range(n_levels, 0, -1):
        channels = config.encoder_channels[level - 1]
        x = UpSampling1D(2, name=f"dec{level}_up")(x)
        x = Concatenate(name=f"dec{level}_concat")(x, skips[level - 1])
        x = Conv1D(channels, k, seed=next(rngs), name=f"dec{level}_conv")(x)
        x = ReLU(name=f"dec{level}_relu")(x)

    x = Dense(config.outputs_per_position, seed=next(rngs), name="head_dense")(x)
    x = Sigmoid(name="head_sigmoid")(x)
    out = Flatten(name="output_flatten")(x)
    return Model(inp, out, name=name)
