"""The verification MLP.

Section III-A: "two dense layers (128 and 518 nodes, respectively), and
similar input size and output size … 100,102 trainable parameters".
The only (128, 518) split that reproduces 100,102 exactly is a bias-free
first layer: ``260·128 + (128·518 + 518) = 100,102``; we adopt it and
record the reasoning in DESIGN.md.  The paper's companion "905 nodes"
figure is not consistent with any such split and is documented as a
paper-internal discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers.activations import ReLU, Sigmoid
from repro.nn.layers.dense import Dense
from repro.nn.layers.input import Input
from repro.nn.model import Model
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["MLPConfig", "REFERENCE_MLP_CONFIG", "build_mlp"]

#: Parameter count printed in the paper (Table I / Section III-A).
PAPER_MLP_PARAMS = 100_102


@dataclass(frozen=True)
class MLPConfig:
    """Architecture hyper-parameters for :func:`build_mlp`."""

    input_size: int = 260
    hidden_units: int = 128
    output_units: int = 518
    hidden_bias: bool = False  # the split that matches the paper's count

    def __post_init__(self):
        if min(self.input_size, self.hidden_units, self.output_units) <= 0:
            raise ValueError("all sizes must be positive")


REFERENCE_MLP_CONFIG = MLPConfig()


def build_mlp(config: MLPConfig = REFERENCE_MLP_CONFIG,
              seed: SeedLike = 0, name: str = "mlp") -> Model:
    """Build the two-dense-layer verification MLP (flat in, flat out)."""
    rngs = iter(spawn_rngs(seed, 2))
    inp = Input((config.input_size,), name="blm_input")
    x = Dense(config.hidden_units, use_bias=config.hidden_bias,
              seed=next(rngs), name="hidden_dense")(inp)
    x = ReLU(name="hidden_relu")(x)
    x = Dense(config.output_units, seed=next(rngs), name="output_dense")(x)
    out = Sigmoid(name="output_sigmoid")(x)
    return Model(inp, out, name=name)
