"""Reference model builders reproducing the paper's architectures.

* :func:`build_unet` — the 1-D U-Net (134,434 trainable parameters,
  260 inputs → 520 outputs) deployed as the FPGA IP core.
* :func:`build_mlp` — the simpler MLP (100,102 parameters) the paper used
  for verification and early architecture exploration.
"""

from repro.nn.zoo.unet import REFERENCE_UNET_CONFIG, UNetConfig, build_unet
from repro.nn.zoo.mlp import REFERENCE_MLP_CONFIG, MLPConfig, build_mlp

__all__ = [
    "UNetConfig",
    "REFERENCE_UNET_CONFIG",
    "build_unet",
    "MLPConfig",
    "REFERENCE_MLP_CONFIG",
    "build_mlp",
]
