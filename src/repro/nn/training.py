"""Mini-batch training loop.

:func:`fit` runs the classic loop — shuffle, batch, forward, loss grad,
backward, optimizer step — and returns a :class:`History` of per-epoch
metrics, including optional validation losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.losses import Loss
from repro.nn.model import Model
from repro.nn.optimizers import Optimizer
from repro.utils.rng import SeedLike, default_rng

__all__ = ["fit", "History"]


@dataclass
class History:
    """Per-epoch training record (mirrors ``keras.callbacks.History``)."""

    loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Training loss of the last epoch."""
        if not self.loss:
            raise ValueError("no epochs recorded")
        return self.loss[-1]


def fit(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    optimizer: Optimizer,
    epochs: int = 10,
    batch_size: int = 32,
    validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    seed: SeedLike = 0,
    verbose: bool = False,
    callback: Optional[Callable[[int, Dict[str, float]], None]] = None,
) -> History:
    """Train *model* on ``(x, y)``.

    Parameters
    ----------
    model, x, y, loss, optimizer:
        The usual suspects; ``x``/``y`` are full datasets with the batch
        axis first.
    epochs, batch_size:
        Loop controls; the last batch may be smaller.
    validation_data:
        Optional ``(x_val, y_val)`` evaluated (inference mode) per epoch.
    seed:
        Shuffling seed — training is fully deterministic for a fixed seed.
    callback:
        Called as ``callback(epoch, logs)`` after each epoch.
    """
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
        )
    rng = default_rng(seed)
    history = History()
    n = x.shape[0]
    for epoch in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        seen = 0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            xb, yb = x[idx], y[idx]
            pred = model.forward(xb, training=True)
            batch_loss = loss.value(yb, pred)
            model.backward(loss.grad(yb, pred))
            optimizer.step(model)
            epoch_loss += batch_loss * len(idx)
            seen += len(idx)
        logs = {"loss": epoch_loss / seen}
        history.loss.append(logs["loss"])
        if validation_data is not None:
            xv, yv = validation_data
            pv = model.forward(np.asarray(xv, dtype=np.float64), training=False)
            logs["val_loss"] = loss.value(np.asarray(yv, dtype=np.float64), pv)
            history.val_loss.append(logs["val_loss"])
        if verbose:  # pragma: no cover - cosmetic
            msg = f"epoch {epoch + 1}/{epochs} loss={logs['loss']:.6f}"
            if "val_loss" in logs:
                msg += f" val_loss={logs['val_loss']:.6f}"
            print(msg)
        if callback is not None:
            callback(epoch, logs)
    return history
