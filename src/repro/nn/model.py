"""Functional-graph model: topological execution and reverse-mode autodiff.

A :class:`Model` is defined by input and output :class:`TensorRef` symbols;
the constructor walks the inbound references to recover the full DAG
(including U-Net skip connections), validates it, and caches a topological
order.  ``forward`` executes layers in that order; ``backward`` walks it in
reverse, accumulating gradients where a tensor fans out to several
consumers (e.g. an encoder activation feeding both the pooling path and a
skip connection).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.layer import Layer, TensorRef
from repro.nn.layers.input import InputLayer

__all__ = ["Model"]

ArrayOrList = Union[np.ndarray, Sequence[np.ndarray]]


class Model:
    """A DAG of layers executable forward and backward.

    Parameters
    ----------
    inputs:
        One symbol (or list of symbols) produced by :func:`repro.nn.Input`.
    outputs:
        One symbol (or list) whose producing layers form the model outputs.
    name:
        Optional model name used in summaries and reports.
    """

    def __init__(self, inputs: Union[TensorRef, Sequence[TensorRef]],
                 outputs: Union[TensorRef, Sequence[TensorRef]],
                 name: str = "model"):
        self.name = name
        self._single_input = isinstance(inputs, TensorRef)
        self._single_output = isinstance(outputs, TensorRef)
        self.inputs: List[TensorRef] = [inputs] if self._single_input else list(inputs)
        self.outputs: List[TensorRef] = [outputs] if self._single_output else list(outputs)
        if not self.inputs or not self.outputs:
            raise ValueError("model needs at least one input and one output")
        for t in self.inputs:
            if not isinstance(t.layer, InputLayer):
                raise TypeError(
                    f"model inputs must come from Input(), got {type(t.layer).__name__}"
                )
        self.layers: List[Layer] = self._toposort()
        self._layer_by_name = {l.name: l for l in self.layers}
        if len(self._layer_by_name) != len(self.layers):
            raise ValueError("duplicate layer names in model")
        # consumers[layer] = number of downstream layers reading its output
        self._consumers: Dict[Layer, int] = {l: 0 for l in self.layers}
        for layer in self.layers:
            for ref in layer.inbound:
                self._consumers[ref.layer] += 1
        self._last_outputs: Optional[Dict[Layer, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _toposort(self) -> List[Layer]:
        """Depth-first post-order from the outputs = topological order."""
        order: List[Layer] = []
        state: Dict[Layer, int] = {}  # 1 = on stack, 2 = done

        def visit(layer: Layer) -> None:
            mark = state.get(layer, 0)
            if mark == 2:
                return
            if mark == 1:
                raise ValueError(f"cycle detected at layer {layer.name!r}")
            state[layer] = 1
            for ref in layer.inbound:
                visit(ref.layer)
            state[layer] = 2
            order.append(layer)

        for ref in self.outputs:
            visit(ref.layer)
        # Reachability check: every declared input must be in the graph.
        reached = set(order)
        for ref in self.inputs:
            if ref.layer not in reached:
                raise ValueError(
                    f"input {ref.layer.name!r} is not connected to any output"
                )
        return order

    def get_layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        try:
            return self._layer_by_name[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r} in model {self.name!r}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _coerce_inputs(self, x: ArrayOrList) -> List[np.ndarray]:
        if isinstance(x, np.ndarray):
            arrays = [x]
        else:
            arrays = [np.asarray(a) for a in x]
        if len(arrays) != len(self.inputs):
            raise ValueError(
                f"model {self.name!r} takes {len(self.inputs)} inputs, got {len(arrays)}"
            )
        return arrays

    def forward(self, x: ArrayOrList, training: bool = False) -> ArrayOrList:
        """Run the graph; returns array(s) matching the outputs spec."""
        arrays = self._coerce_inputs(x)
        feed = {ref.layer: arr for ref, arr in zip(self.inputs, arrays)}
        values: Dict[Layer, np.ndarray] = {}
        for layer in self.layers:
            if isinstance(layer, InputLayer):
                values[layer] = layer.forward([feed[layer]], training)
            else:
                ins = [values[ref.layer] for ref in layer.inbound]
                values[layer] = layer.forward(ins, training)
        self._last_outputs = values
        outs = [values[ref.layer] for ref in self.outputs]
        return outs[0] if self._single_output else outs

    def __call__(self, x: ArrayOrList, training: bool = False) -> ArrayOrList:
        return self.forward(x, training=training)

    def predict(self, x: ArrayOrList, batch_size: Optional[int] = None) -> ArrayOrList:
        """Inference-mode forward pass, optionally in mini-batches."""
        if batch_size is None:
            return self.forward(x, training=False)
        arrays = self._coerce_inputs(x)
        n = arrays[0].shape[0]
        chunks = []
        for start in range(0, n, batch_size):
            sl = slice(start, start + batch_size)
            out = self.forward([a[sl] for a in arrays], training=False)
            chunks.append(out if self._single_output else out)
        if self._single_output:
            return np.concatenate(chunks, axis=0)
        return [np.concatenate([c[i] for c in chunks], axis=0)
                for i in range(len(self.outputs))]

    def backward(self, grad: ArrayOrList) -> List[np.ndarray]:
        """Back-propagate dL/d(outputs); returns dL/d(inputs).

        Must follow a ``forward`` call (layers cache their activations).
        Parameter gradients are left in each layer's ``grads`` dict for the
        optimizer to consume.
        """
        if self._last_outputs is None:
            raise RuntimeError("backward called before forward")
        grads_out = [grad] if self._single_output else list(grad)
        if len(grads_out) != len(self.outputs):
            raise ValueError(
                f"expected {len(self.outputs)} output gradients, got {len(grads_out)}"
            )
        pending: Dict[Layer, np.ndarray] = {}
        for ref, g in zip(self.outputs, grads_out):
            g = np.asarray(g, dtype=np.float64)
            if ref.layer in pending:
                pending[ref.layer] = pending[ref.layer] + g
            else:
                pending[ref.layer] = g
        for layer in reversed(self.layers):
            if isinstance(layer, InputLayer):
                continue  # input gradients are collected after the loop
            g = pending.pop(layer, None)
            if g is None:
                continue  # layer not on any path to the loss
            input_grads = layer.backward(g)
            if len(input_grads) != len(layer.inbound):
                raise RuntimeError(
                    f"layer {layer.name!r} returned {len(input_grads)} input "
                    f"grads for {len(layer.inbound)} inputs"
                )
            for ref, ig in zip(layer.inbound, input_grads):
                if ref.layer in pending:
                    pending[ref.layer] = pending[ref.layer] + ig
                else:
                    pending[ref.layer] = ig
        return [
            pending.get(ref.layer, np.zeros((0,)))
            for ref in self.inputs
        ]

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def trainable_layers(self) -> List[Layer]:
        """Layers owning at least one parameter."""
        return [l for l in self.layers if l.params]

    def count_params(self) -> int:
        """Total trainable parameter count (paper: 134,434 / 100,102)."""
        return sum(l.count_params() for l in self.layers)

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Flat ``{layer/param: array}`` mapping (copies)."""
        out = {}
        for layer in self.layers:
            for key, val in layer.params.items():
                out[f"{layer.name}/{key}"] = val.copy()
            state = getattr(layer, "state", None)
            if state:
                for key, val in state.items():
                    out[f"{layer.name}/state/{key}"] = val.copy()
        return out

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load weights produced by :meth:`get_weights` (strict matching)."""
        expected = set(self.get_weights())
        given = set(weights)
        if expected != given:
            missing = sorted(expected - given)[:5]
            extra = sorted(given - expected)[:5]
            raise ValueError(
                f"weight key mismatch; missing={missing} extra={extra}"
            )
        for layer in self.layers:
            for key in layer.params:
                arr = np.asarray(weights[f"{layer.name}/{key}"], dtype=np.float64)
                if arr.shape != layer.params[key].shape:
                    raise ValueError(
                        f"shape mismatch for {layer.name}/{key}: "
                        f"{arr.shape} vs {layer.params[key].shape}"
                    )
                layer.params[key] = arr.copy()
            state = getattr(layer, "state", None)
            if state:
                for key in state:
                    state[key] = np.asarray(
                        weights[f"{layer.name}/state/{key}"], dtype=np.float64
                    ).copy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Keras-style text summary with parameter counts."""
        lines = [f"Model: {self.name}"]
        header = f"{'Layer':<28}{'Type':<20}{'Output shape':<18}{'Params':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for layer in self.layers:
            lines.append(
                f"{layer.name:<28}{type(layer).__name__:<20}"
                f"{str(layer.output_shape):<18}{layer.count_params():>10}"
            )
        lines.append("-" * len(header))
        lines.append(f"Total params: {self.count_params():,}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Model {self.name!r}: {len(self.layers)} layers, {self.count_params():,} params>"
