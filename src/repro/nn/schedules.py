"""Learning-rate schedules.

Small utilities that plug into :func:`repro.nn.training.fit` through its
``callback`` hook: each schedule is called at the end of every epoch and
rewrites ``optimizer.learning_rate``.  Used by the QAT fine-tuning
recipes, where a decaying rate stabilises training on the coarse weight
grid.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.nn.optimizers import Optimizer

__all__ = ["StepDecay", "CosineDecay", "attach_schedule"]


class StepDecay:
    """Multiply the learning rate by ``factor`` every ``every`` epochs."""

    def __init__(self, optimizer: Optimizer, factor: float = 0.5,
                 every: int = 10, min_lr: float = 1e-6):
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if min_lr <= 0:
            raise ValueError(f"min_lr must be positive, got {min_lr}")
        self.optimizer = optimizer
        self.factor = factor
        self.every = every
        self.min_lr = min_lr

    def __call__(self, epoch: int, logs: Dict[str, float]) -> None:
        if (epoch + 1) % self.every == 0:
            self.optimizer.learning_rate = max(
                self.min_lr, self.optimizer.learning_rate * self.factor
            )


class CosineDecay:
    """Cosine-anneal the rate from its initial value to ``min_lr`` over
    ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 1e-6):
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        if min_lr < 0:
            raise ValueError(f"min_lr must be >= 0, got {min_lr}")
        self.optimizer = optimizer
        self.initial_lr = optimizer.learning_rate
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def __call__(self, epoch: int, logs: Dict[str, float]) -> None:
        progress = min(1.0, (epoch + 1) / self.total_epochs)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        self.optimizer.learning_rate = (
            self.min_lr + (self.initial_lr - self.min_lr) * cos
        )


def attach_schedule(schedule, extra_callback=None):
    """Compose a schedule with an optional user callback for ``fit``."""

    def callback(epoch: int, logs: Dict[str, float]) -> None:
        schedule(epoch, logs)
        if extra_callback is not None:
            extra_callback(epoch, logs)

    return callback
