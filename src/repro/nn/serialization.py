"""Weight persistence (npz) for trained models.

The experiment harness trains the reference models once and caches the
weights on disk so that every table/figure reproduction starts from the
same trained network, exactly as the paper starts every experiment from
its one pre-trained U-Net.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn.model import Model

__all__ = ["save_weights", "load_weights"]


def save_weights(model: Model, path: Union[str, os.PathLike]) -> None:
    """Write all parameters and batch-norm state to a compressed ``.npz``."""
    weights = model.get_weights()
    # np.savez_compressed mangles '/' fine; keys are restored verbatim.
    np.savez_compressed(path, **weights)


def load_weights(model: Model, path: Union[str, os.PathLike]) -> None:
    """Load weights saved by :func:`save_weights` into *model* (strict)."""
    with np.load(path) as data:
        weights = {k: data[k] for k in data.files}
    model.set_weights(weights)
