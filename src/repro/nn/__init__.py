"""A minimal Keras-like neural-network framework on numpy.

The paper trains its U-Net and MLP in Keras; since no deep-learning
framework is available offline, this package provides the subset of Keras
the paper needs, implemented from scratch with vectorised numpy:

* functional-graph models with skip connections (:class:`Model`),
* layers: :class:`Input`, :class:`Dense`, :class:`Conv1D`,
  :class:`MaxPooling1D`, :class:`AveragePooling1D`, :class:`UpSampling1D`,
  :class:`Concatenate`, :class:`BatchNormalization`, :class:`Flatten`,
  :class:`Reshape` and the activations :class:`ReLU`, :class:`Sigmoid`,
  :class:`Softmax`, :class:`Linear`,
* full reverse-mode differentiation through the graph,
* losses, metrics, SGD/Adam optimizers and a training loop,
* weight (de)serialisation,
* a model zoo (:mod:`repro.nn.zoo`) with builders reproducing the paper's
  exact architectures and parameter counts.

Shapes follow Keras conventions: batch first, channels last; e.g. a BLM
frame enters the U-Net as ``(batch, 260, 1)``.
"""

from repro.nn.layer import Layer, TensorRef
from repro.nn.layers.input import Input, InputLayer
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv1D
from repro.nn.layers.pooling import AveragePooling1D, MaxPooling1D
from repro.nn.layers.upsampling import UpSampling1D
from repro.nn.layers.merge import Add, Concatenate
from repro.nn.layers.normalization import BatchNormalization
from repro.nn.layers.reshape import Flatten, Reshape
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.activations import Linear, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.model import Model
from repro.nn.losses import (
    BinaryCrossentropy,
    Loss,
    MeanAbsoluteError,
    MeanSquaredError,
)
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.training import History, fit
from repro.nn.serialization import load_weights, save_weights
from repro.nn.qat import disable_qat, enable_qat, fine_tune_quantized
from repro.nn.schedules import CosineDecay, StepDecay, attach_schedule

__all__ = [
    "Layer",
    "TensorRef",
    "Input",
    "InputLayer",
    "Dense",
    "Conv1D",
    "MaxPooling1D",
    "AveragePooling1D",
    "UpSampling1D",
    "Concatenate",
    "Add",
    "BatchNormalization",
    "Flatten",
    "Reshape",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "Linear",
    "Model",
    "Loss",
    "MeanSquaredError",
    "MeanAbsoluteError",
    "BinaryCrossentropy",
    "Optimizer",
    "SGD",
    "Adam",
    "fit",
    "History",
    "save_weights",
    "load_weights",
    "enable_qat",
    "disable_qat",
    "fine_tune_quantized",
    "StepDecay",
    "CosineDecay",
    "attach_schedule",
]
