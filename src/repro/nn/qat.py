"""Quantization-aware training (QAT).

The paper uses *post-training* quantization; its natural extension —
and the approach of hls4ml's companion project QKeras — is to expose the
quantization during training so the network learns weights that survive
narrow formats.  This module implements weight-QAT with the
straight-through estimator (STE):

* :func:`enable_qat` — attach fixed-point weight quantizers (taken from
  an :class:`~repro.hls.config.HLSConfig` or a single format) to every
  Dense/Conv1D layer.  Forward passes then use quantized weights while
  gradients flow to the float master copies.
* :func:`disable_qat` — detach the quantizers (the float masters are
  untouched).
* :func:`fine_tune_quantized` — the standard QAT recipe: enable, run a
  few low-learning-rate epochs, disable; returns the history.

The PTQ-vs-QAT comparison at narrow widths lives in
``repro.experiments.ablations.run_qat_comparison``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.fixed import FixedPointFormat
from repro.hls.config import HLSConfig
from repro.nn.layers.conv import Conv1D
from repro.nn.layers.dense import Dense
from repro.nn.losses import Loss
from repro.nn.model import Model
from repro.nn.optimizers import Optimizer
from repro.nn.training import History, fit
from repro.utils.rng import SeedLike

__all__ = ["enable_qat", "disable_qat", "fine_tune_quantized",
           "qat_layer_formats"]

QuantSpec = Union[FixedPointFormat, HLSConfig]


def qat_layer_formats(model: Model, spec: QuantSpec) -> Dict[str, FixedPointFormat]:
    """Resolve the weight format each quantizable layer will train under."""
    formats = {}
    for layer in model.layers:
        if not isinstance(layer, (Dense, Conv1D)):
            continue
        if isinstance(spec, HLSConfig):
            formats[layer.name] = spec.for_layer(layer.name).weight
        else:
            formats[layer.name] = spec
    if not formats:
        raise ValueError("model has no quantizable (Dense/Conv1D) layers")
    return formats


def enable_qat(model: Model, spec: QuantSpec) -> Dict[str, FixedPointFormat]:
    """Attach weight quantizers; returns ``{layer: format}`` applied."""
    formats = qat_layer_formats(model, spec)
    for name, fmt in formats.items():
        model.get_layer(name).weight_quantizer = fmt
    return formats


def disable_qat(model: Model) -> None:
    """Detach all weight quantizers (float masters stay as trained)."""
    for layer in model.layers:
        if isinstance(layer, (Dense, Conv1D)):
            layer.weight_quantizer = None
            layer._kernel_q = None


def fine_tune_quantized(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    optimizer: Optimizer,
    spec: QuantSpec,
    epochs: int = 3,
    batch_size: int = 32,
    seed: SeedLike = 0,
    keep_enabled: bool = False,
) -> History:
    """QAT fine-tuning: train *model* with quantized-weight forwards.

    The float master weights are updated (STE), so after
    :func:`disable_qat` the model retains its fine-tuned float weights;
    converting it with the same weight formats then reproduces exactly
    the datapath it was trained against.
    """
    enable_qat(model, spec)
    try:
        history = fit(model, x, y, loss, optimizer, epochs=epochs,
                      batch_size=batch_size, seed=seed)
    finally:
        if not keep_enabled:
            disable_qat(model)
    return history
