"""Layer base class and the symbolic tensor handle used to build graphs.

Models are built functionally, exactly like Keras::

    inp = Input((260, 1))
    x = Conv1D(16, 7, padding="same")(inp)
    x = ReLU()(x)
    model = Model(inp, x)

``layer(tensor)`` records the connection and returns a new
:class:`TensorRef`; the :class:`~repro.nn.model.Model` later walks these
references to run forward/backward passes in topological order.

Each concrete layer implements:

* :meth:`Layer.build` — create parameters once input shapes are known,
* :meth:`Layer.compute_output_shape` — static shape inference,
* :meth:`Layer.forward` — the batched numpy computation (caching whatever
  the backward pass needs), and
* :meth:`Layer.backward` — gradients w.r.t. every input, also filling
  ``self.grads`` for its own parameters.

Shapes exclude the batch dimension throughout the symbolic API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Layer", "TensorRef"]

Shape = Tuple[int, ...]


@dataclass(frozen=True)
class TensorRef:
    """A symbolic tensor: the output of *layer* with static *shape*.

    ``shape`` excludes the batch dimension (Keras convention).
    """

    layer: "Layer"
    shape: Shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TensorRef({self.layer.name}, shape={self.shape})"


class Layer:
    """Base class for all layers.

    Subclasses declare parameters in ``self.params`` (name → ndarray) and
    fill ``self.grads`` (same keys) during :meth:`backward`.  A layer
    instance may be called exactly once: weight sharing is out of scope for
    this reproduction and forbidding it keeps the graph a simple DAG of
    layers.
    """

    _ids = itertools.count()

    def __init__(self, name: Optional[str] = None):
        self.name = name or f"{type(self).__name__.lower()}_{next(Layer._ids)}"
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.inbound: List[TensorRef] = []
        self.output_shape: Optional[Shape] = None
        self.built = False
        #: set by Model.forward; True only inside a training step.
        self.trainable = True

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def __call__(self, *inputs: TensorRef) -> TensorRef:
        if self.inbound:
            raise RuntimeError(
                f"layer {self.name!r} was already connected; "
                "create a new instance instead of sharing weights"
            )
        if not inputs:
            raise ValueError(f"layer {self.name!r} called with no inputs")
        for t in inputs:
            if not isinstance(t, TensorRef):
                raise TypeError(
                    f"layer {self.name!r} must be called on TensorRef symbols, got {type(t).__name__}"
                )
        shapes = [t.shape for t in inputs]
        self.build(shapes)
        self.built = True
        self.inbound = list(inputs)
        self.output_shape = self.compute_output_shape(shapes)
        return TensorRef(self, self.output_shape)

    # ------------------------------------------------------------------
    # To be implemented by subclasses
    # ------------------------------------------------------------------
    def build(self, input_shapes: Sequence[Shape]) -> None:
        """Create parameters. Default: parameter-free layer."""

    def compute_output_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Infer the output shape (excluding batch). Default: passthrough."""
        return input_shapes[0]

    def forward(self, inputs: List[np.ndarray], training: bool = False) -> np.ndarray:
        """Run the layer on batched inputs."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> List[np.ndarray]:
        """Given dL/d(output), return [dL/d(input_i)] and fill self.grads."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def count_params(self) -> int:
        """Total number of trainable scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def get_config(self) -> Dict[str, object]:
        """A JSON-serialisable description (subset of Keras get_config)."""
        return {"name": self.name, "class": type(self).__name__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} out={self.output_shape}>"
