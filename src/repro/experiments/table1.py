"""Table I — system latency comparison across models and platforms.

The literature rows are recorded constants from the cited works (we
cannot re-measure someone else's board); the two "This Work" rows are
measured from our pipeline: parameter counts from the zoo builders, ALM
usage from the resource model, and latency from the simulated board.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import ExperimentResult, bundle, converted
from repro.hls.resources import estimate_resources
from repro.hls.converter import convert
from repro.hls.precision import uniform_config
from repro.soc.board import AchillesBoard
from repro.utils.tables import Table

__all__ = ["run", "LITERATURE_ROWS"]


@dataclass(frozen=True)
class ComparisonRow:
    """One row of Table I."""

    work: str
    ip_core: str
    layers: str
    params: str
    precision: str
    alms: str
    board: str
    latency_ms: str
    transfer: str
    tools: str


#: Prior-work rows exactly as printed in the paper's Table I.
LITERATURE_ROWS: List[ComparisonRow] = [
    ComparisonRow("VLSI'18 [7]", "CNN", "Con2D, Pool", "7.59M", "16 bits",
                  "161k", "Arria 10", "3.8", "DMA", "RTL Compiler"),
    ComparisonRow("FPL'19 [8]", "U-Net", "Con, Decon, Conct, Pool", "?",
                  "8 bits", "250k", "Arria 10", "17.4", "DMA", "Verilog"),
    ComparisonRow("MLST'21 [9]", "CNN", "Dense, Con2D", "12,858", "7 bits",
                  "48k", "PYNQ-Z2", "0.17", "AXI DMA", "hls4ml"),
    ComparisonRow("DATE'23 [10]", "MLP", "Dense", "?", "4 bits", "?",
                  "ZCU104", "0.12", "AXI", "FINN"),
]


def _our_rows(fast: bool = False) -> List[ComparisonRow]:
    b = bundle()
    rows = []
    # MLP row: uniform 16-bit with the plain default reuse factor of 32
    # everywhere (the dense/sigmoid=260 override in Table III belongs to
    # the deployed U-Net, not to this exploration vehicle).
    mlp_hls = convert(b.mlp, uniform_config(16, 7))
    mlp_board = AchillesBoard(mlp_hls)
    mlp_res = estimate_resources(mlp_hls)
    rows.append(ComparisonRow(
        "This Work", "MLP", "Dense", f"{b.mlp.count_params():,}", "16 bits",
        f"{mlp_res.alms // 1000}k", "Arria10",
        f"{mlp_board.deterministic_latency_s() * 1e3:.2f}",
        "MM Bridge", "hls4ml",
    ))
    # U-Net row: the deployed layer-based design.
    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    unet_board = AchillesBoard(unet_hls)
    unet_res = estimate_resources(unet_hls)
    rows.append(ComparisonRow(
        "This Work", "U-Net", "Dense, Con1D, UpSam, Pool, Conct",
        f"{b.unet.count_params():,}", "16 bits",
        f"{unet_res.alms // 1000}k", "Arria10",
        f"{unet_board.deterministic_latency_s() * 1e3:.2f}",
        "MM Bridge", "hls4ml",
    ))
    return rows


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table I."""
    t = Table(
        ["Work", "IP Core", "Typical Layers", "Params", "Precision",
         "ALMs", "Board", "Latency (ms)", "Data Tran.", "Tools"],
        title="TABLE I: System Latency Comparison Across Multiple Models "
              "and Multiple Platforms for Sequential Inputs",
    )
    rows = LITERATURE_ROWS + _our_rows(fast)
    for r in rows:
        t.add_row([r.work, r.ip_core, r.layers, r.params, r.precision,
                   r.alms, r.board, r.latency_ms, r.transfer, r.tools])
    ours = rows[-2:]
    notes = [
        f"paper: MLP 0.31 ms / U-Net 1.74 ms; measured: "
        f"MLP {ours[0].latency_ms} ms / U-Net {ours[1].latency_ms} ms",
        "shape: MM-bridge designs beat the DMA-based prior Arria 10 works "
        "([7] 3.8 ms, [8] 17.4 ms) despite comparable or larger models",
        f"params reproduce the paper exactly: MLP {ours[0].params}, "
        f"U-Net {ours[1].params}",
    ]
    return ExperimentResult(name="table1", table=t, notes=notes)
