"""plant-bench — the pluggable-plant layer under its bit-identity gate.

Not a paper table: the paper's workload is the open-loop beam-loss
substrate.  This harness exercises the :mod:`repro.plants` interface on
the workload that stresses it hardest — the closed-loop cartpole, where
every published trip changes the next frame — and asserts the property
that makes plug-in plants trustworthy on this stack: **bit-exact
determinism across executors**.  The same seeded episode is driven

* on the naive sequential executor (the reference semantics),
* on the batched fast path,
* on the compiled fast path (level 2), with speculation on and off,
* on a 2-shard worker-pool farm, and
* on the same farm with a worker hard-killed mid-plan (chaos),

and every run must produce the identical :class:`FrameRecord` stream,
word for word — while the quantized MLP controller actually stabilises
the pole.  Any divergence (or a dropped pole on the reference
executor) raises — this harness is the CI smoke behind the
``cartpole_closedloop`` benchmark in ``tools/bench_report.py``.
"""

from __future__ import annotations

import time

from repro.core.api import RuntimeConfig, build_farm, run_control_loop
from repro.experiments.common import ExperimentResult
from repro.plants import CartpolePlant
from repro.utils.tables import Table

__all__ = ["run"]


def _quality_cells(c) -> list:
    """Table cells from a ControlQuality (or its merged dict form)."""
    if not isinstance(c, dict):
        from dataclasses import asdict

        c = asdict(c)
    return [
        "yes" if c.get("stabilized") else "NO",
        f"{c.get('trip_precision', float('nan')):.2f}/"
        f"{c.get('trip_recall', float('nan')):.2f}",
        f"{c.get('rms_state_error', float('nan')):.4f}",
    ]


def run(fast: bool = False) -> ExperimentResult:
    """Drive one cartpole episode every way; assert all ways agree."""
    plant = CartpolePlant()
    model = plant.default_model()
    n_frames = 60 if fast else 200
    seed = 3

    executors = [
        ("naive sequential", RuntimeConfig(batch_inference=False)),
        ("batched", RuntimeConfig(batch_inference=True)),
        ("compiled (level 2)",
         RuntimeConfig(batch_inference=True, compile_level=2)),
        ("compiled, speculation off",
         RuntimeConfig(batch_inference=True, compile_level=2,
                       speculation=False)),
    ]

    t = Table(["Execution mode", "Identical", "Stabilised", "Trip P/R",
               "RMS theta", "Throughput (fps)"],
              title="Plant-bench: closed-loop cartpole determinism "
                    "+ control quality")
    divergent = []

    reference = None
    for label, config in executors:
        t0 = time.perf_counter()
        result = run_control_loop(model, n_frames=n_frames, seed=seed,
                                  config=config, plant=plant)
        fps = n_frames / (time.perf_counter() - t0)
        if reference is None:
            reference, same = result, True
        else:
            same = result.records == reference.records
        if not same:
            divergent.append(label)
        t.add_row([label, "yes" if same else "NO",
                   *_quality_cells(result.control), f"{fps:.0f}"])

    farm = build_farm(model,
                      config=RuntimeConfig(batch_inference=True,
                                           compile_level=1),
                      plant=plant, n_shards=2, seed=5)
    farm_ref = farm.serve_plant_reference(n_frames)
    farm_runs = [
        ("farm: 2-shard reference", farm_ref),
        ("farm: 2-worker pool", farm.serve_plant(n_frames, workers=2)),
        ("farm: 2-worker + shard-1 crash",
         farm.serve_plant(n_frames, workers=2, chaos_crash_shards=(1,))),
    ]
    for label, result in farm_runs:
        same = result.records == farm_ref.records
        if not same:
            divergent.append(label)
        t.add_row([label, "yes" if same else "NO",
                   *_quality_cells(result.health.control or {}),
                   f"{result.throughput_fps:.0f}"])

    control = reference.control
    chaos = farm_runs[-1][1]
    notes = [
        f"episode: {n_frames} frames, seed {seed}, 8 monitors over "
        f"2 hubs, hand-crafted quantized vote MLP "
        f"(deadband |u| > {plant.deadband:g})",
        "determinism contract: every executor tier and every farm run "
        "must reproduce the naive / sequential-reference FrameRecord "
        "stream bit for bit (docs/plants.md)",
        f"control quality (reference): stabilised in "
        f"{control.stabilization_time_s * 1e3:.0f} ms, trip "
        f"precision/recall {control.trip_precision:.2f}/"
        f"{control.trip_recall:.2f} vs the float control law, "
        f"RMS pole angle {control.rms_state_error:.4f} rad",
        f"chaos run: {chaos.health.worker_restarts} worker restart(s), "
        f"{chaos.health.requeued_tasks} requeued plant task(s), still "
        f"bit-identical",
        "farm sessions are per-shard (ordered within a shard), so the "
        "farm episode differs from the single-runtime episode by "
        "construction — identity is asserted per execution family",
    ]
    if divergent:
        raise AssertionError(
            f"closed-loop runs diverged from their reference: "
            f"{divergent}")
    if not control.stabilized:
        raise AssertionError(
            "the quantized controller failed to stabilise the pole on "
            "the reference executor")
    return ExperimentResult(name="plant-bench", table=t, notes=notes)
