"""obs-report — the paper's latency table, rebuilt from recorded spans.

Every other harness derives latency analytically (cycle counts × clock
period).  This one measures it the way the paper did on hardware: run
the deployed designs through the full control loop with the
observability layer on, then aggregate the per-stage spans the tracer
recorded.  The two roads must meet — the span-derived averages land on
the same figures as Table III (U-Net ≈ 1.74 ms average system latency,
575 fps) and Table 3's MLP (≈ 0.31 ms) because the simulated clock, not
the estimator, is the source of truth here.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import RuntimeConfig, build_runtime
from repro.experiments.common import ExperimentResult, bundle, converted
from repro.hls.converter import convert
from repro.hls.precision import uniform_config
from repro.obs import ObsConfig
from repro.obs.report import BOARD_STAGES, node_latencies_s, stage_summary
from repro.utils.tables import Table

__all__ = ["run", "PAPER_VALUES"]

#: Published figures the span-derived table is checked against.
PAPER_VALUES = {
    "unet_avg_system_latency_ms": 1.74,
    "mlp_avg_latency_ms": 0.31,
    "unet_throughput_fps": 575.0,
}


def _observed(hls_model, frames: np.ndarray, *, seed: int):
    """Run a deployed design with obs on; return (runtime, obs)."""
    runtime = build_runtime(
        hls_model,
        config=RuntimeConfig(batch_inference=True),
        obs=ObsConfig(flight_frames=min(len(frames), 256)),
    )
    runtime.run(frames, seed=seed)
    return runtime, runtime.obs


def run(fast: bool = False) -> ExperimentResult:
    """Rebuild the latency table from spans recorded by ``repro.obs``."""
    b = bundle()
    n_frames = 64 if fast else 260
    frames = b.dataset.x_eval[:n_frames]

    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    mlp_hls = convert(b.mlp, uniform_config(16, 7))

    _, unet_obs = _observed(unet_hls, frames, seed=11)
    _, mlp_obs = _observed(mlp_hls, frames, seed=11)

    cols = {}
    for label, obs in (("U-Net", unet_obs), ("MLP", mlp_obs)):
        node_ms = node_latencies_s(obs.tracer) * 1e3
        summary = stage_summary(obs.tracer, names=["frame"])["frame"]
        cols[label] = {
            "frames": len(node_ms),
            "node_mean": float(node_ms.mean()),
            "node_p50": float(np.percentile(node_ms, 50)),
            "node_p90": float(np.percentile(node_ms, 90)),
            "node_p99": float(np.percentile(node_ms, 99)),
            "node_max": float(node_ms.max()),
            "system_mean": summary["mean_s"] * 1e3,
            "fps": 1e3 / float(node_ms.mean()),
        }

    t = Table(["Observed Latency (from spans)", "U-Net", "MLP"],
              title="Latency table rebuilt from recorded spans")
    u, m = cols["U-Net"], cols["MLP"]
    t.add_row(["Frames observed", u["frames"], m["frames"]])
    for label, key, fmt in [
        ("Avg node latency (steps 1-8)", "node_mean", "{:.3f}ms"),
        ("p50 node latency", "node_p50", "{:.3f}ms"),
        ("p90 node latency", "node_p90", "{:.3f}ms"),
        ("p99 node latency", "node_p99", "{:.3f}ms"),
        ("Max node latency", "node_max", "{:.3f}ms"),
        ("Avg system latency (incl. hub readout)", "system_mean", "{:.3f}ms"),
        ("Sustained throughput", "fps", "{:.0f} fps"),
    ]:
        t.add_row([label, fmt.format(u[key]), fmt.format(m[key])])

    stages = stage_summary(unet_obs.tracer, names=BOARD_STAGES)
    breakdown = Table(["U-Net Stage", "Mean", "p99", "Max"],
                      title="Per-stage breakdown (U-Net, simulated clock)")
    for stage in BOARD_STAGES:
        s = stages.get(stage)
        if s is None or s["count"] == 0:
            continue
        breakdown.add_row([stage,
                           f"{s['mean_s'] * 1e6:.1f}us",
                           f"{s['p99_s'] * 1e6:.1f}us",
                           f"{s['max_s'] * 1e6:.1f}us"])

    p = PAPER_VALUES
    notes = [
        f"U-Net avg system latency: paper {p['unet_avg_system_latency_ms']} ms "
        f"vs observed {u['system_mean']:.2f} ms (span-derived)",
        f"MLP avg latency: paper {p['mlp_avg_latency_ms']} ms vs observed "
        f"{m['node_mean']:.2f} ms",
        f"U-Net throughput: paper {p['unet_throughput_fps']:.0f} fps vs "
        f"observed {u['fps']:.0f} fps (1 / avg node latency)",
        f"spans recorded: U-Net {len(unet_obs.tracer.spans())}, "
        f"MLP {len(mlp_obs.tracer.spans())} (dropped: "
        f"{unet_obs.tracer.dropped}/{mlp_obs.tracer.dropped})",
        "same control loop, obs on vs off, is bit-identical "
        "(tests/test_obs.py pins this on every executor path)",
        breakdown.render(),
    ]
    return ExperimentResult(
        name="obs-report",
        table=t,
        series={"unet_node_latency_s": node_latencies_s(unet_obs.tracer),
                "mlp_node_latency_s": node_latencies_s(mlp_obs.tracer)},
        notes=notes,
    )
