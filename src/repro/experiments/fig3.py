"""Fig 3 — system latency across models and platforms at batch size 1.

Reproduces the preliminary platform study: both Keras models on CPU and
GPU at batch 1 (plus the GPU's large-batch amortization, which motivates
"GPUs are only efficient with large batches"), against the FPGA SoC.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, bundle
from repro.platforms import (
    CPUPlatform,
    FPGAPlatform,
    GPUPlatform,
    compare_platforms,
    gpu_batch_sweep,
)
from repro.utils.tables import Table

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig 3's data (batch-1 bars + GPU batch sweep)."""
    b = bundle()
    platforms = [
        CPUPlatform(),
        GPUPlatform(),
        FPGAPlatform(config=None),  # per-model uniform<16,7> default
    ]
    results = compare_platforms([b.mlp, b.unet], platforms, batch_size=1)

    t = Table(["Model", "Platform", "Latency (ms)", "Meets 3 ms"],
              title="Fig 3: System latency across models and platforms, "
                    "batch size = 1")
    series = {}
    for r in results:
        t.add_row([r.model_name, r.platform, f"{r.latency_s * 1e3:.3f}",
                   "yes" if r.latency_s <= 3e-3 else "NO"])
        series[f"{r.model_name}/{r.platform}"] = np.array([r.latency_s])

    sweep = gpu_batch_sweep(b.unet)
    series["unet/GPU per-frame vs batch"] = np.array(
        [r.per_frame_s for r in sweep]
    )
    series["batch sizes"] = np.array([r.batch_size for r in sweep])

    by_key = {(r.model_name, r.platform): r.latency_s for r in results}
    fpga_name = FPGAPlatform.name
    notes = [
        "shape: FPGA SoC is the only platform meeting 3 ms for the U-Net "
        f"(FPGA {by_key[('unet', fpga_name)] * 1e3:.2f} ms vs CPU "
        f"{by_key[('unet', 'CPU (Keras)')] * 1e3:.2f} ms, GPU "
        f"{by_key[('unet', 'GPU (Keras)')] * 1e3:.2f} ms at batch 1)",
        "GPU ≈ CPU at batch 1; per-frame GPU cost falls to "
        f"{sweep[-1].per_frame_s * 1e6:.1f} µs at batch "
        f"{sweep[-1].batch_size} (µs-range, as the paper observes)",
    ]
    return ExperimentResult(name="fig3", table=t, series=series, notes=notes)
