"""Table II — effect of precision customization on the U-Net.

Three strategies × {MI accuracy, RR accuracy, ALUT usage}.  Accuracy is
the paper's within-0.20 metric over the evaluation frames against the
float model; ALUT usage comes from the resource model.  The paper's
values: <18,10> → 98.8 % / 99.3 % / 115 %; <16,7> → 16.7 % / 36.5 % /
22 %; layer-based <16,x> → 99.1 % / 99.9 % / 31 %.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    bundle,
    converted,
    eval_inputs,
    reference_configs,
)
from repro.hls.resources import estimate_resources
from repro.utils.tables import Table
from repro.verify.comparators import close_enough_accuracy

__all__ = ["run", "PAPER_VALUES"]

#: (accuracy MI %, accuracy RR %, ALUT %) as printed in the paper.
PAPER_VALUES = {
    "Uniform Precision ac_fixed<18, 10>": (98.8, 99.3, 115),
    "Uniform Precision ac_fixed<16, 7>": (16.7, 36.5, 22),
    "Layer-based Precision ac_fixed<16, x>": (99.1, 99.9, 31),
}


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table II."""
    b = bundle()
    x = eval_inputs(fast)
    y_float = b.unet.forward(x)
    t = Table(
        ["Strategy", "Accuracy MI", "Accuracy RR", "Resource ALUTs"],
        title="TABLE II: Optimization: Effect of Precision Customization "
              "on the U-Net Model",
    )
    notes = []
    measured = {}
    for strategy in reference_configs():
        hls_model = converted(strategy)
        y_fixed = hls_model.predict(x)
        acc = close_enough_accuracy(y_float, y_fixed)
        res = estimate_resources(hls_model)
        t.add_row([
            strategy,
            f"{acc['MI'] * 100:.1f}%",
            f"{acc['RR'] * 100:.1f}%",
            f"{res.alut_fraction * 100:.0f}%",
        ])
        measured[strategy] = (acc["MI"] * 100, acc["RR"] * 100,
                              res.alut_fraction * 100)
        paper = PAPER_VALUES[strategy]
        notes.append(
            f"{strategy}: paper ({paper[0]}%, {paper[1]}%, {paper[2]}%) vs "
            f"measured ({acc['MI'] * 100:.1f}%, {acc['RR'] * 100:.1f}%, "
            f"{res.alut_fraction * 100:.0f}%)"
        )
    lb = measured["Layer-based Precision ac_fixed<16, x>"]
    u16 = measured["Uniform Precision ac_fixed<16, 7>"]
    u18 = measured["Uniform Precision ac_fixed<18, 10>"]
    notes.append(
        "shape check: layer-based is simultaneously accurate "
        f"({lb[0]:.0f}/{lb[1]:.0f}%) and cheap ({lb[2]:.0f}% ALUT); "
        f"uniform 16-bit collapses ({u16[0]:.0f}/{u16[1]:.0f}%); "
        f"uniform 18-bit overflows the device ({u18[2]:.0f}% ALUT)"
    )
    return ExperimentResult(name="table2", table=t, notes=notes)
