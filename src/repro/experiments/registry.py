"""Experiment registry: name → harness callable."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (ablations, daemonbench, dse, fig3, fig5,
                               obsreport, plantbench, remotebench,
                               replaybench, robustness, servebench, table1,
                               table2, table3)
from repro.experiments.common import ExperimentResult

__all__ = ["REGISTRY", "get_experiment"]

Harness = Callable[[bool], ExperimentResult]

REGISTRY: Dict[str, Harness] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig3": fig3.run,
    "fig5a": fig5.run_fig5a,
    "fig5b": fig5.run_fig5b,
    "fig5c": fig5.run_fig5c,
    "ablation-reuse": ablations.run_reuse_sweep,
    "ablation-interface": ablations.run_interface_comparison,
    "ablation-buffers": ablations.run_buffer_sizing,
    "ablation-standardization": ablations.run_standardization_comparison,
    "ablation-interface-style": ablations.run_interface_style,
    "ablation-qat": ablations.run_qat_comparison,
    "ablation-pipelining": ablations.run_pipelining_comparison,
    "robustness": robustness.run,
    "obs-report": obsreport.run,
    "serve-bench": servebench.run,
    "plant-bench": plantbench.run,
    "daemon-bench": daemonbench.run,
    "remote-bench": remotebench.run,
    "replay-bench": replaybench.run,
    "dse": dse.run,
}


def get_experiment(name: str) -> Harness:
    """Look up a harness; raises ``KeyError`` with the available names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None
