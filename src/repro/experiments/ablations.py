"""Design-choice ablations called out in Section IV-D.

* **Reuse-factor sweep** — the primary resource/latency trade-off knob:
  higher reuse → fewer multipliers, longer latency.
* **DMA vs memory-mapped bridge** — why the paper's small-frame workload
  favours the MM host interface, including the crossover transfer size
  where DMA starts winning.
* **Buffer sizing** — on-chip stream buffer depth vs block-RAM cost (the
  paper "empirically optimized … the data buffer size to pursue resource
  trade-offs and perform deadlock mitigation").
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, bundle, unet_profiles
from repro.hls.converter import convert
from repro.hls.latency import estimate_latency
from repro.hls.precision import layer_based_config
from repro.hls.resources import estimate_resources
from repro.soc.avalon import HPS2FPGA_BRIDGE
from repro.soc.dma import DMAEngine
from repro.utils.tables import Table

__all__ = ["run_reuse_sweep", "run_interface_comparison",
           "run_buffer_sizing", "run_standardization_comparison",
           "run_interface_style", "run_qat_comparison",
           "run_pipelining_comparison"]

REUSE_SWEEP = (8, 16, 32, 64, 128, 260)


def run_reuse_sweep(fast: bool = False) -> ExperimentResult:
    """IP latency and resources across the reuse-factor ladder."""
    b = bundle()
    t = Table(["Reuse factor", "IP latency (ms)", "ALUT %", "Mult units"],
              title="Ablation: reuse factor — the resource/latency trade-off")
    series_lat, series_alut = [], []
    factors = REUSE_SWEEP[1:-1] if fast else REUSE_SWEEP
    for reuse in factors:
        config = layer_based_config(b.unet, None, profiles=unet_profiles())
        config = config.with_reuse_factor(reuse)
        hls_model = convert(b.unet, config)
        lat = estimate_latency(hls_model)
        res = estimate_resources(hls_model)
        units = sum(res.per_layer_units.values())
        t.add_row([reuse, f"{lat.latency_s * 1e3:.2f}",
                   f"{res.alut_fraction * 100:.0f}", f"{units:,}"])
        series_lat.append(lat.latency_s)
        series_alut.append(res.alut_fraction)
    notes = [
        "shape: latency grows ~linearly with reuse while multiplier "
        "count (and ALUT usage) shrinks ~1/reuse — the paper's stated "
        "trade-off ('the higher the reuse factor, the less parallel the "
        "implementation')",
    ]
    return ExperimentResult(
        "ablation_reuse", t,
        series={"reuse": np.array(factors, float),
                "latency_s": np.array(series_lat),
                "alut_fraction": np.array(series_alut)},
        notes=notes,
    )


def run_interface_comparison(fast: bool = False) -> ExperimentResult:
    """MM bridge vs DMA for the de-blending frame and larger transfers."""
    dma = DMAEngine()
    mm = HPS2FPGA_BRIDGE
    t = Table(["Transfer (16-bit words)", "MM bridge (µs)", "DMA (µs)",
               "Winner"],
              title="Ablation: data transfer — memory-mapped bridge vs DMA")
    sizes = (260, 520, 780, 2048, 8192, 65536)
    crossover = None
    series_mm, series_dma = [], []
    for n in sizes:
        # MM: HPS moves two 16-bit samples per 32-bit beat.
        t_mm = mm.write_time((n + 1) // 2)
        t_dma = dma.transfer_time(n * 2)
        series_mm.append(t_mm)
        series_dma.append(t_dma)
        winner = "MM" if t_mm < t_dma else "DMA"
        if winner == "DMA" and crossover is None:
            crossover = n
        t.add_row([n, f"{t_mm * 1e6:.1f}", f"{t_dma * 1e6:.1f}", winner])
    # The deployed workload: 260 words in + 520 words out per frame.
    frame_mm = mm.write_time(130) + mm.read_time(260)
    frame_dma = dma.frame_round_trip(260, 520)
    t.add_row(["frame (260 in + 520 out)",
               f"{frame_mm * 1e6:.1f}", f"{frame_dma * 1e6:.1f}",
               "MM" if frame_mm < frame_dma else "DMA"])
    notes = [
        f"de-blending frame: MM {frame_mm * 1e6:.0f} µs vs DMA "
        f"{frame_dma * 1e6:.0f} µs — DMA's per-transfer setup dominates "
        "at this size, which is the paper's Table I argument for the "
        "Avalon MM host interface",
        (f"DMA pays off beyond ≈{crossover:,} words one-way"
         if crossover else "MM bridge wins at every measured size"),
    ]
    return ExperimentResult(
        "ablation_interface", t,
        series={"words": np.array(sizes, float),
                "mm_s": np.array(series_mm), "dma_s": np.array(series_dma)},
        notes=notes,
    )


def run_buffer_sizing(fast: bool = False) -> ExperimentResult:
    """Stream-buffer depth multiplier vs block-RAM cost and deadlock
    margin (deeper buffers tolerate more consumer stall before the
    producer blocks)."""
    from repro.hls.resources import CalibrationConstants

    b = bundle()
    config = layer_based_config(b.unet, None, profiles=unet_profiles())
    hls_model = convert(b.unet, config)
    t = Table(["Depth multiplier", "Block memory bits", "M20K blocks",
               "Stall margin (cycles)"],
              title="Ablation: on-chip stream buffer sizing")
    mults = (1.0, 1.7, 2.5, 4.0)
    bits, blocks = [], []
    for m in mults:
        cal = CalibrationConstants(stream_buffer_bits_multiplier=m)
        res = estimate_resources(hls_model, calibration=cal)
        # Stall margin: extra buffered positions × II of the slowest layer.
        margin = int((m - 1.0) * 260 * 32)
        t.add_row([m, f"{res.block_memory_bits:,}", f"{res.m20k_blocks:,}",
                   f"{margin:,}"])
        bits.append(res.block_memory_bits)
        blocks.append(res.m20k_blocks)
    notes = [
        "shape: block-memory bits grow linearly with buffer depth while "
        "the M20K *block* count is dominated by per-channel FIFO "
        "granularity — matching the deployed design's 85% block usage at "
        "only 58% bit utilization",
    ]
    return ExperimentResult(
        "ablation_buffers", t,
        series={"multiplier": np.array(mults),
                "memory_bits": np.array(bits, float),
                "m20k": np.array(blocks, float)},
        notes=notes,
    )


def run_standardization_comparison(fast: bool = False) -> ExperimentResult:
    """Section IV-D's algorithm-level choice: in-model batch-norm vs
    standardize-before-training.

    "the model was trained with the original data … using a Batch
    Normalization Layer to perform the standardization.  This resulted in
    poor accuracy given the tightly constrained range of the 16-bit
    resource-aware quantization.  We then explored standardizing the data
    before training, which improved accuracy to the desired levels."

    Both variants are trained on the same substrate and quantized with
    the same layer-based 16-bit strategy; only the standardization
    placement differs.
    """
    from repro.experiments.common import bundle as _bundle
    from repro.hls.profiling import profile_model
    from repro.pretrained import load_reference_bundle
    from repro.verify.comparators import close_enough_accuracy

    b = load_reference_bundle(include_bn=True, train_if_missing=True)
    ds = b.dataset
    n = 150 if fast else 400
    t = Table(["Training configuration", "Accuracy MI", "Accuracy RR",
               "Input precision", "Quantization-critical format"],
              title="Ablation: standardization placement (Section IV-D)")

    # (a) deployed: standardized before training
    xs = ds.unet_inputs(ds.x_eval[:n])
    y_float = b.unet.forward(xs)
    profiles = profile_model(b.unet, ds.unet_inputs(ds.x_train))
    cfg = layer_based_config(b.unet, None, profiles=profiles)
    acc_std = close_enough_accuracy(
        y_float, convert(b.unet, cfg).predict(xs))
    t.add_row(["standardize before training (deployed)",
               f"{acc_std['MI']:.1%}", f"{acc_std['RR']:.1%}",
               cfg.for_layer("blm_input").result.spec(),
               "inputs span ±hundreds of noise sigma"])

    # (b) first attempt: raw counts + in-model batch-norm
    xr = ds.unet_inputs(ds.raw_eval[:n])
    y_float_bn = b.unet_bn.forward(xr)
    profiles_bn = profile_model(b.unet_bn, ds.unet_inputs(ds.raw_train[:400]))
    cfg_bn = layer_based_config(b.unet_bn, None, profiles=profiles_bn)
    acc_bn = close_enough_accuracy(
        y_float_bn, convert(b.unet_bn, cfg_bn).predict(xr))
    t.add_row(["batch-norm inside the model (first attempt)",
               f"{acc_bn['MI']:.1%}", f"{acc_bn['RR']:.1%}",
               cfg_bn.for_layer("blm_input").result.spec(),
               f"BN scale ≈ 1/3000 under "
               f"{cfg_bn.for_layer('input_bn').weight.spec()}"])

    notes = [
        "shape: the in-model batch-norm variant quantizes poorly "
        f"({acc_bn['MI']:.0%}/{acc_bn['RR']:.0%}) because 16-bit formats "
        "must simultaneously hold 10^5-scale raw counts and 10^-4-scale "
        "normalisation weights; pre-standardisation restores "
        f"{acc_std['MI']:.0%}/{acc_std['RR']:.0%} — the paper's stated "
        "reason for switching",
    ]
    return ExperimentResult(
        "ablation_standardization", t,
        series={
            "acc_std": np.array([acc_std["MI"], acc_std["RR"]]),
            "acc_bn": np.array([acc_bn["MI"], acc_bn["RR"]]),
        },
        notes=notes,
    )


def run_interface_style(fast: bool = False) -> ExperimentResult:
    """Section IV-B's wrapper decision: stock hls4ml streaming interface
    vs the customized Avalon MM host interface, at the system level."""
    from repro.experiments.common import converted
    from repro.nn.zoo import build_mlp
    from repro.hls.precision import uniform_config
    from repro.soc.board import AchillesBoard
    from repro.soc.streaming import StreamingInterfaceModel

    b = bundle()
    streaming = StreamingInterfaceModel()
    t = Table(["Model", "MM host interface (ms)", "Streaming (ms)",
               "Streaming penalty"],
              title="Ablation: IP interface style — customized MM host "
                    "vs stock hls4ml streaming")
    rows = []
    for label, hls_model in [
        ("unet", converted("Layer-based Precision ac_fixed<16, x>")),
        ("mlp", convert(b.mlp, uniform_config(16, 7, model=b.mlp))),
    ]:
        board = AchillesBoard(hls_model)
        mm_s = board.deterministic_latency_s()
        stream_s = streaming.system_latency_s(
            board.ip.latency, board.ip.n_inputs, board.ip.n_outputs
        )
        penalty = stream_s / mm_s - 1.0
        t.add_row([label, f"{mm_s * 1e3:.3f}", f"{stream_s * 1e3:.3f}",
                   f"+{penalty:.0%}"])
        rows.append((label, mm_s, stream_s))
    notes = [
        "shape: the MM host interface wins for both models — the "
        "streaming wrapper makes the HPS feed/drain every word and poll "
        "for completion, which is why the paper extended hls4ml with the "
        "active memory-mapped interface (Section IV-B)",
    ]
    return ExperimentResult(
        "ablation_interface_style", t,
        series={
            "mm_s": np.array([r[1] for r in rows]),
            "stream_s": np.array([r[2] for r in rows]),
        },
        notes=notes,
    )


def run_qat_comparison(fast: bool = False) -> ExperimentResult:
    """Extension beyond the paper: post-training quantization (PTQ, the
    paper's method) vs quantization-aware fine-tuning (QAT, the QKeras-
    style follow-on) at narrow widths, where PTQ degrades.

    The U-Net is fine-tuned for a few epochs with quantized-weight
    forward passes (straight-through estimator), then converted with the
    same layer-based formats.  Accuracy is the paper's within-0.20
    metric against each variant's own float reference.
    """
    import copy

    from repro.nn.losses import BinaryCrossentropy
    from repro.nn.optimizers import Adam
    from repro.nn.qat import disable_qat, fine_tune_quantized
    from repro.nn.serialization import save_weights, load_weights
    from repro.nn.zoo import build_unet
    from repro.verify.comparators import close_enough_accuracy

    b = bundle()
    ds = b.dataset
    n_eval = 120 if fast else 300
    n_train = 300 if fast else 600
    widths = (10, 11) if fast else (10, 11, 12)
    xe = ds.unet_inputs(ds.x_eval[:n_eval])
    xt = ds.unet_inputs(ds.x_train[:n_train])

    t = Table(["Total bits", "PTQ acc MI", "PTQ acc RR",
               "QAT acc MI", "QAT acc RR"],
              title="Extension: post-training vs quantization-aware "
                    "training at narrow widths")
    series_ptq, series_qat = [], []
    y_float_ptq = b.unet.forward(xe)
    for width in widths:
        cfg = layer_based_config(b.unet, None, width=width,
                                 profiles=unet_profiles())
        # PTQ: straight conversion of the shipped model.
        acc_ptq = close_enough_accuracy(
            y_float_ptq, convert(b.unet, cfg).predict(xe))

        # QAT: clone the trained model, fine-tune under the same formats.
        clone = build_unet(seed=0)
        clone.set_weights(b.unet.get_weights())
        fine_tune_quantized(clone, xt, ds.y_train[:n_train],
                            BinaryCrossentropy(), Adam(2e-4), spec=cfg,
                            epochs=2, batch_size=32, seed=3)
        y_float_qat = clone.forward(xe)
        acc_qat = close_enough_accuracy(
            y_float_qat, convert(clone, cfg).predict(xe))
        t.add_row([width,
                   f"{acc_ptq['MI']:.1%}", f"{acc_ptq['RR']:.1%}",
                   f"{acc_qat['MI']:.1%}", f"{acc_qat['RR']:.1%}"])
        series_ptq.append(min(acc_ptq.values()))
        series_qat.append(min(acc_qat.values()))
    notes = [
        "shape: QAT recovers accuracy at widths where PTQ degrades — "
        "the QKeras-style extension the paper's flow composes with",
    ]
    return ExperimentResult(
        "ablation_qat", t,
        series={"widths": np.array(widths, float),
                "ptq_min_acc": np.array(series_ptq),
                "qat_min_acc": np.array(series_qat)},
        notes=notes,
    )


def run_pipelining_comparison(fast: bool = False) -> ExperimentResult:
    """Extension beyond the paper: sequential processing (deployed) vs
    ping-pong double buffering, which overlaps HPS transfers with IP
    compute.  Latency per frame is identical; throughput improves toward
    the bottleneck stage's rate."""
    from repro.experiments.common import converted
    from repro.hls.precision import uniform_config
    from repro.soc.board import AchillesBoard

    b = bundle()
    t = Table(["Model", "Sequential (fps)", "Double-buffered (fps)",
               "Gain", "Meets 320 fps"],
              title="Extension: sequential vs double-buffered frame "
                    "processing")
    rows = []
    for label, hls_model in [
        ("unet", converted("Layer-based Precision ac_fixed<16, x>")),
        ("mlp", convert(b.mlp, uniform_config(16, 7))),
    ]:
        board = AchillesBoard(hls_model)
        seq = 1.0 / board.deterministic_latency_s()
        piped = board.pipelined_throughput_fps()
        t.add_row([label, f"{seq:.0f}", f"{piped:.0f}",
                   f"+{piped / seq - 1:.0%}",
                   "yes" if seq >= 320 else "only pipelined"])
        rows.append((label, seq, piped))
    notes = [
        "shape: double buffering always helps and helps the MLP most "
        "(its transfers rival its compute); the deployed sequential "
        "U-Net already exceeds the 320 fps requirement, which is why "
        "the paper did not need this extension",
    ]
    return ExperimentResult(
        "ablation_pipelining", t,
        series={"sequential_fps": np.array([r[1] for r in rows]),
                "pipelined_fps": np.array([r[2] for r in rows])},
        notes=notes,
    )
