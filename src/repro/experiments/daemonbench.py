"""daemon-bench — the persistent serving daemon under sustained load.

The serve-bench harness proves the sharded farm deterministic for one
pre-planned frame block; this harness proves the same property for the
**daemon** (:mod:`repro.serve.daemon`), where frames arrive one at a
time over sockets, streams interleave arbitrarily, and the worker pool
is persistent and warm.  Four concurrent client streams are driven
from a single thread through the real TCP front (``repro-serve/1``
protocol), twice:

* **round 1 (cold)** — the first batches pay worker spawn + replica
  conversion/compile inside the measurement window, exactly what a
  one-shot ``serve()`` call pays every time;
* **round 2 (steady-state)** — the same load on the now-warm pool
  (live workers, cached replica template), the daemon's reason to
  exist.

Every result row of every stream must be bit-identical to
:func:`~repro.serve.daemon.serve_streams_reference` — the sequential
one-replica-per-stream reference — and any divergence raises.  The
table also reports admission-control sheds, worker restarts, and the
p99 *simulated* node latency (the quantity the paper's 3 ms machine-
protection budget constrains; the hard SLO gate lives in
``tools/bench_report.py``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.api import RuntimeConfig, start_daemon
from repro.experiments.common import ExperimentResult, bundle, converted
from repro.obs import ObsConfig
from repro.serve import BatchingPolicy, serve_streams_reference
from repro.serve.workers import OUTPUT_COLUMNS, FarmSpec
from repro.utils.tables import Table

__all__ = ["run"]

_NODE_LAT = OUTPUT_COLUMNS.index("node_latency_s")


def _drive_round(handle, stream_frames: Dict[int, np.ndarray],
                 timeout_s: float = 600.0) -> Tuple[Dict[int, np.ndarray],
                                                    int, float]:
    """Interleave all streams' frames over live sockets; gather rows.

    Returns ``(rows by stream, frames shed, wall seconds)``.  Single
    threaded on purpose: the interleaving is adversarial for the
    daemon (every stream advances in lock-step) yet reproducible.
    """
    t0 = time.perf_counter()
    clients = {sid: handle.client(stream_id=sid) for sid in stream_frames}
    try:
        longest = max(f.shape[0] for f in stream_frames.values())
        for i in range(longest):
            for sid, frames in stream_frames.items():
                if i < frames.shape[0]:
                    clients[sid].send(frames[i])
                clients[sid].pump()
        rows: Dict[int, np.ndarray] = {}
        shed = 0
        for sid, c in clients.items():
            c.finish(timeout_s=timeout_s)
            shed += len(c.shed)
            n = stream_frames[sid].shape[0]
            got = np.full((n, len(OUTPUT_COLUMNS)), np.nan)
            for seq, row in c.results.items():
                got[seq, :] = row
            rows[sid] = got
    finally:
        for c in clients.values():
            c.close()
    return rows, shed, time.perf_counter() - t0


def run(fast: bool = False) -> ExperimentResult:
    """Serve 4 interleaved TCP streams, cold then warm; assert identity."""
    b = bundle()
    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    per_stream = 10 if fast else 40
    n_streams = 4
    x = b.dataset.x_eval
    policy = BatchingPolicy(max_batch=8)
    config = RuntimeConfig(batch_inference=True)
    spec = FarmSpec(model=unet_hls, config=config,
                    obs=ObsConfig(flight_frames=32))

    def frames_for(sids) -> Dict[int, np.ndarray]:
        return {sid: x[(sid % n_streams) * per_stream:
                       (sid % n_streams + 1) * per_stream]
                for sid in sids}

    round1 = frames_for(range(n_streams))
    round2 = frames_for(range(n_streams, 2 * n_streams))
    reference = serve_streams_reference(
        spec, {**round1, **round2}, batching=policy, seed=7)

    handle = start_daemon(unet_hls, config=config,
                          obs=ObsConfig(flight_frames=32),
                          workers=n_streams, batching=policy, seed=7)
    with handle:
        rows1, shed1, wall1 = _drive_round(handle, round1)
        rows2, shed2, wall2 = _drive_round(handle, round2)
        report = handle.drain()

    n_round = n_streams * per_stream
    rounds = [("round 1 (cold: spawn + replica build)", rows1, shed1, wall1),
              ("round 2 (steady state, warm pool)", rows2, shed2, wall2)]
    t = Table(["Load round", "Identical", "Shed", "p99 node lat (ms)",
               "Throughput (fps)"],
              title="Daemon-bench: persistent serving front under "
                    "4 interleaved TCP streams")
    divergent: List[str] = []
    p99s = []
    for label, rows, shed, wall in rounds:
        same = all(np.array_equal(rows[sid], reference[sid].rows)
                   for sid in rows)
        if not same:
            divergent.append(label)
        lat = np.concatenate([rows[sid][:, _NODE_LAT] for sid in rows])
        p99 = float(np.percentile(lat, 99) * 1e3)
        p99s.append(p99)
        t.add_row([label, "yes" if same else "NO", shed,
                   f"{p99:.3f}", f"{n_round / wall:.0f}"])

    speedup = wall1 / wall2 if wall2 > 0 else float("inf")
    obs = report.obs or {}
    notes = [
        f"{n_streams} concurrent streams x {per_stream} frames/round, "
        f"interleaved frame-by-frame from one thread over TCP "
        f"(stream arrivals, max_batch={policy.max_batch})",
        "determinism contract: every stream's result rows equal "
        "serve_streams_reference (one persistent replica per stream) "
        "bit for bit — docs/serving.md, daemon section",
        f"steady-state vs cold speedup: {speedup:.1f}x "
        f"({wall1:.2f}s -> {wall2:.2f}s for {n_round} frames)",
        f"epoch report: {report.frames_total} frames over "
        f"{report.streams} streams, {report.batches} micro-batches, "
        f"{report.frames_shed} shed, "
        f"{report.worker_restarts} worker restart(s)",
        f"p99 simulated node latency: {max(p99s):.3f} ms against the "
        f"paper's 3 ms machine-protection budget "
        f"(hard gate: daemon_slo in tools/bench_report.py)",
        f"merged obs export: format "
        f"{obs.get('meta', {}).get('format')!r}, "
        f"{obs.get('meta', {}).get('merged_shards')} stream snapshots",
    ]
    if divergent:
        raise AssertionError(
            f"daemon rounds diverged from the sequential per-stream "
            f"reference: {divergent}")
    if report.frames_total != 2 * n_round:
        raise AssertionError(
            f"drain lost frames: {report.frames_total} != {2 * n_round}")
    return ExperimentResult(name="daemon-bench", table=t, notes=notes)
