"""serve-bench — the sharded serving front-end under its determinism gate.

Not a paper table: the paper deploys one central node.  This harness
exercises the scale-out path (:mod:`repro.serve`) the deployment sketch
implies — N runtime replicas over round-robin BLM stream shards, a
deadline-aware micro-batch scheduler, and a spawn-based worker pool —
and asserts the property that makes the farm trustworthy for machine
protection: **bit-exact determinism**.  The same frame block is served

* sequentially in-process (the reference semantics),
* on a 1-worker pool,
* on a 4-worker pool, and
* on a pool whose first worker is hard-killed mid-plan (chaos),

and every run must produce the identical :class:`FrameRecord` stream,
word for word.  Any divergence raises — this harness is the CI smoke
for the ``serve_throughput`` gate in ``tools/bench_report.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.api import RuntimeConfig, build_farm, build_runtime
from repro.experiments.common import ExperimentResult, bundle, converted
from repro.obs import ObsConfig
from repro.serve import BatchingPolicy
from repro.utils.tables import Table

__all__ = ["run"]


def _identical(reference, result) -> bool:
    """Full-stream bit identity: records and shared-memory outputs."""
    return (reference.records == result.records
            and np.array_equal(reference.outputs, result.outputs))


def run(fast: bool = False) -> ExperimentResult:
    """Serve one frame block every way; assert all ways agree exactly."""
    b = bundle()
    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    n_frames = 48 if fast else 160
    frames = b.dataset.x_eval[:n_frames]

    farm = build_farm(
        unet_hls,
        config=RuntimeConfig(batch_inference=True),
        obs=ObsConfig(flight_frames=32),
        n_shards=4,
        batching=BatchingPolicy(max_batch=8),
        seed=7,
        arrival_mode="backlog",
    )

    reference = farm.serve_reference(frames)
    runs = [
        ("sequential reference", reference),
        ("1-worker pool", farm.serve(frames, workers=1)),
        ("4-worker pool", farm.serve(frames, workers=4)),
        ("4-worker pool + shard-1 crash",
         farm.serve(frames, workers=4, chaos_crash_shards=(1,))),
    ]

    # Single-runtime baseline for the throughput column.
    runtime = build_runtime(unet_hls,
                            config=RuntimeConfig(batch_inference=True))
    t0 = time.perf_counter()
    runtime.run(frames, seed=99)
    base_fps = n_frames / (time.perf_counter() - t0)

    t = Table(["Serving mode", "Identical", "Restarts", "Requeued",
               "Throughput (fps)"],
              title="Serve-bench: sharded farm determinism + throughput")
    divergent = []
    for label, result in runs:
        same = _identical(reference, result)
        if not same:
            divergent.append(label)
        t.add_row([label, "yes" if same else "NO",
                   result.health.worker_restarts,
                   result.health.requeued_tasks,
                   f"{result.throughput_fps:.0f}"])
    t.add_row(["single runtime (no farm)", "-", "-", "-",
               f"{base_fps:.0f}"])

    chaos = runs[-1][1]
    obs = reference.obs or {}
    notes = [
        f"frames: {n_frames} over {farm.n_shards} shards, "
        f"{reference.plan.n_batches} micro-batches (backlog arrivals, "
        f"max_batch={farm.batching.max_batch})",
        "determinism contract: every mode's FrameRecord stream and "
        "shared-memory output block must equal the sequential reference "
        "bit for bit (docs/serving.md)",
        f"chaos run: {chaos.health.worker_restarts} worker restart(s), "
        f"{chaos.health.requeued_tasks} requeued shard task(s), still "
        f"bit-identical",
        f"merged obs export: format "
        f"{obs.get('meta', {}).get('format')!r}, "
        f"{obs.get('meta', {}).get('merged_shards')} shard snapshots, "
        f"frames.total={obs.get('metrics', {}).get('counters', {}).get('frames.total')}",
        "pool throughput includes replica build + spawn startup; at "
        "benchmark scale see serve_throughput in tools/bench_report.py",
    ]
    if divergent:
        raise AssertionError(
            f"farm runs diverged from the sequential reference: "
            f"{divergent}")
    return ExperimentResult(name="serve-bench", table=t, notes=notes)
