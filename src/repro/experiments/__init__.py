"""Experiment harnesses — one module per paper table/figure.

Every harness exposes ``run(fast=False) -> ExperimentResult`` and prints
the same rows/series the paper reports.  ``fast=True`` shrinks the frame
populations for CI-speed runs; the benchmark suite uses it, the CLI
defaults to the full populations.

==================  ===============================================
module              reproduces
==================  ===============================================
``table1``          Table I  — cross-platform latency comparison
``table2``          Table II — precision strategy trade-off
``table3``          Table III — deployed model/system summary
``fig3``            Fig 3    — CPU/GPU/FPGA latency, batch 1
``fig5``            Fig 5a/b/c — accuracy vs bits, outliers, latency
``ablations``       §IV-D    — reuse sweep, DMA vs MM, buffer sizing
==================  ===============================================
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import REGISTRY, get_experiment

__all__ = ["ExperimentResult", "REGISTRY", "get_experiment"]
