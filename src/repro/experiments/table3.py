"""Table III — deployed model / system summary.

One table aggregating the deployed U-Net design: parameter count,
precision strategy, reuse factors, system and IP latency, and the full
resource row (ALMs, registers, block memory, RAM blocks, DSPs).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, bundle, converted
from repro.hls.latency import estimate_latency
from repro.hls.resources import estimate_resources
from repro.soc.board import AchillesBoard
from repro.utils.tables import Table

__all__ = ["run", "PAPER_VALUES"]

#: Paper Table III rows for comparison notes.
PAPER_VALUES = {
    "params": 134_434,
    "avg_system_latency_ms": 1.74,
    "fpga_ip_latency_ms": 1.57,
    "logic_alms": 223_674,
    "logic_pct": 89,
    "registers": 406_123,
    "memory_bits": 25_275_808,
    "memory_pct": 58,
    "ram_blocks": 1_818,
    "ram_pct": 85,
    "dsp": 273,
    "dsp_pct": 16,
}


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table III for the deployed layer-based design."""
    b = bundle()
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    board = AchillesBoard(hls_model)
    latency = estimate_latency(hls_model)
    res = estimate_resources(hls_model)
    jitter_mean = board.jitter.scale_s  # mean of the exponential part
    system_ms = (board.deterministic_latency_s() + jitter_mean) * 1e3

    t = Table(["System Properties", "U-Net Model"],
              title="TABLE III: Model Summary")
    t.add_row(["Trainable Parameters", f"{b.unet.count_params():,}"])
    t.add_row(["Default Precision", "ac_fixed<16, 7>"])
    t.add_row(["Precision Strategy", "Layer-based"])
    t.add_row(["Default Reuse Factor",
               hls_model.config.default.reuse_factor])
    t.add_row(["Dense/Sigmoid Reuse Factor",
               hls_model.config.for_layer("head_dense").reuse_factor])
    t.add_row(["Average System Latency", f"{system_ms:.2f}ms"])
    t.add_row(["FPGA U-Net Latency", f"{latency.latency_s * 1e3:.2f}ms"])
    t.add_row(["Logic Utilization",
               f"{res.alms:,} ({res.alm_fraction:.0%})"])
    t.add_row(["Total Registers", f"{res.registers:,}"])
    t.add_row(["Total Block Memory Bits",
               f"{res.block_memory_bits:,} ({res.memory_bits_fraction:.0%})"])
    t.add_row(["Total RAM Blocks",
               f"{res.m20k_blocks:,} ({res.m20k_fraction:.0%})"])
    t.add_row(["Total DSP Blocks",
               f"{res.dsp_blocks:,} ({res.dsp_fraction:.0%})"])

    p = PAPER_VALUES
    notes = [
        f"params: paper {p['params']:,} vs measured {b.unet.count_params():,} (exact)",
        f"system latency: paper {p['avg_system_latency_ms']} ms vs "
        f"measured {system_ms:.2f} ms",
        f"IP latency: paper {p['fpga_ip_latency_ms']} ms vs measured "
        f"{latency.latency_s * 1e3:.2f} ms",
        f"ALMs: paper {p['logic_alms']:,} ({p['logic_pct']}%) vs measured "
        f"{res.alms:,} ({res.alm_fraction:.0%})",
        f"registers: paper {p['registers']:,} vs measured {res.registers:,}",
        f"RAM blocks: paper {p['ram_blocks']:,} ({p['ram_pct']}%) vs "
        f"measured {res.m20k_blocks:,} ({res.m20k_fraction:.0%})",
        f"DSP: paper {p['dsp']} ({p['dsp_pct']}%) vs measured "
        f"{res.dsp_blocks} ({res.dsp_fraction:.0%})",
        f"throughput: paper 575 fps vs measured "
        f"{1e3 / system_ms:.0f} fps (requirement: 320 fps)",
    ]
    return ExperimentResult(name="table3", table=t, notes=notes)
