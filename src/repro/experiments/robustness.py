"""Robustness sweep — chaos run of the hardened central-node runtime.

Not a paper table: the paper ships the happy path and verifies it with
testbenches, SignalTap and the in-system memory editor.  This harness
exercises the *unhappy* paths a fielded machine-protection node sees
(documented in the companion readout paper): every fault class is
injected into a stretch of eval frames on the deployed U-Net board, with
the Table 3 MLP board standing by as the degraded-mode fallback, and the
resulting :class:`~repro.soc.runtime.HealthReport` is printed.

The invariant under test is *zero silent failures*: every frame produces
a record, and every injected fault is absorbed, recorded as degraded, or
explicitly detected.

The sweep runs with the speculative fault-aware ladder engaged (the
deployment default) and replays the identical chaos on a sequential
reference runtime: the two record streams must be bit-identical, or the
harness raises — the CI chaos-smoke step runs exactly this check.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, bundle, converted
from repro.hls.converter import convert
from repro.hls.precision import uniform_config
from repro.soc.board import AchillesBoard
from repro.soc.faults import (
    ACNETFault,
    FaultInjector,
    HubDelayFault,
    HubDropFault,
    IPHangFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
    StuckMonitorFault,
)
from repro.soc.runtime import CentralNodeRuntime, DegradationPolicy
from repro.utils.tables import Table

__all__ = ["run", "default_fault_specs"]


def default_fault_specs():
    """The chaos-sweep fault mix: every fault class at a moderate rate."""
    return [
        HubDropFault(rate=0.08),
        HubDelayFault(rate=0.04, delay_s=4e-3),
        StuckMonitorFault(monitor=17, value=4.0, rate=0.10),
        NoisyMonitorFault(monitor=129, sigma=8.0, rate=0.10),
        IPHangFault(rate=0.04, extra_s=5e-3),
        LostIRQFault(rate=0.04),
        SEUFault(rate=0.10, ram="output"),
        SEUFault(rate=0.05, ram="input"),
        ACNETFault(rate=0.08, failures=1),
        ACNETFault(rate=0.02, failures=5),
    ]


def run(fast: bool = False) -> ExperimentResult:
    """Chaos-sweep the hardened runtime and summarise its health."""
    b = bundle()
    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    mlp_hls = convert(b.mlp, uniform_config(16, 7))
    n_frames = 48 if fast else 200

    def make_runtime(**overrides):
        return CentralNodeRuntime(
            board=AchillesBoard(unet_hls),
            fallback_board=AchillesBoard(mlp_hls),
            injector=FaultInjector(default_fault_specs(), seed=2024),
            policy=DegradationPolicy(miss_threshold=2, recovery_streak=8),
            **overrides,
        )

    runtime = make_runtime()  # speculation on: the deployment default
    records = runtime.run(b.dataset.x_eval[:n_frames], seed=7)
    health = runtime.health_report()

    # Chaos bit-identity: the speculative ladder must replay the exact
    # sequential reference under the same schedule, bit for bit.
    reference = make_runtime(batch_inference=False)
    ref_records = reference.run(b.dataset.x_eval[:n_frames], seed=7)
    if records != ref_records:
        raise AssertionError(
            "speculative chaos run diverged from the sequential reference")

    t = Table(["Robustness Metric", "Value"],
              title="Robustness: chaos sweep of the hardened runtime")
    t.add_row(["Frames processed", health.frames_total])
    for status, count in sorted(health.status_counts.items()):
        t.add_row([f"Frames {status}", count])
    for kind, count in sorted(health.fault_counts.items()):
        t.add_row([f"Injected {kind}", count])
    t.add_row(["Frames speculated (fast path)", health.frames_speculated])
    t.add_row(["Frames replayed in-line", health.frames_replayed])
    for cause, count in sorted(health.invalidation_counts.items()):
        t.add_row([f"Invalidated ({cause})", count])
    t.add_row(["Watchdog trips", health.watchdog_trips])
    t.add_row(["Hub slices substituted", health.substituted_slices])
    t.add_row(["Degradation transitions", len(health.transitions)])
    t.add_row(["Deadline miss rate", f"{health.deadline_miss_rate:.2%}"])
    t.add_row(["Publish retries", health.publish_retries])
    t.add_row(["Dead letters", health.dead_letters])

    flagged = sum(1 for r in records if r.flagged)
    faulted = sum(1 for r in records if r.fault_kinds)
    silent = sum(
        1 for r in records
        if r.fault_kinds and not r.flagged
    )
    notes = [
        f"records emitted for every frame: {len(records)}/{n_frames}",
        f"frames hit by injected faults: {faulted}; flagged records: {flagged}",
        f"silent fault failures (must be 0): {silent}",
        f"speculative run bit-identical to sequential reference: "
        f"{records == ref_records} "
        f"({health.frames_speculated} speculated, "
        f"{health.frames_replayed} replayed)",
        "degradation ladder: full -> last-known-good -> MLP fallback -> "
        "no-trip (docs/robustness.md)",
    ]
    notes.append(health.render())
    if silent:
        raise AssertionError(
            f"{silent} injected-fault frames produced unflagged records"
        )
    return ExperimentResult(name="robustness", table=t, notes=notes)
