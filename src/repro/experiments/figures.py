"""Plain-text figure rendering for the CLI and examples.

The environment has no plotting stack, so the figure harnesses render
their series as unicode-free ASCII: line series become scaled bar rows,
histograms become vertical bars.  Good enough to *see* Fig 3's ordering,
Fig 5(a)'s monotone descent and Fig 5(c)'s tail in a terminal or a CI
log.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["ascii_series", "ascii_histogram"]


def ascii_series(x: Sequence[float], y: Sequence[float],
                 title: str = "", width: int = 50,
                 x_label: str = "x", y_label: str = "y") -> str:
    """Render ``y`` against ``x`` as one scaled bar per sample."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"x and y must be equal-length 1-D, got "
                         f"{x.shape} and {y.shape}")
    if x.size == 0:
        raise ValueError("empty series")
    top = float(y.max())
    lines = [title] if title else []
    lines.append(f"{x_label:>10} | {y_label}")
    for xi, yi in zip(x, y):
        bar = "#" * (int(width * yi / top) if top > 0 else 0)
        lines.append(f"{xi:>10.4g} | {bar} {yi:.4g}")
    return "\n".join(lines)


def ascii_histogram(values: Sequence[float], bins: int = 16,
                    title: str = "", width: int = 50,
                    unit_scale: float = 1.0,
                    unit_label: str = "") -> str:
    """Render a histogram of *values* (optionally scaled to a unit)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty values")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    hist, edges = np.histogram(values, bins=bins)
    top = hist.max()
    lines = [title] if title else []
    for lo, hi, count in zip(edges, edges[1:], hist):
        bar = "#" * (int(width * count / top) if top > 0 else 0)
        lines.append(
            f"{lo * unit_scale:8.3f}-{hi * unit_scale:8.3f}{unit_label} "
            f"| {bar} {count}"
        )
    return "\n".join(lines)
