"""Command-line entry point: ``repro-experiments [names...]``.

Runs the requested harnesses (default: all) and prints each paper-style
table with its paper-vs-measured notes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import REGISTRY, get_experiment

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", default=[],
                        help=f"experiments to run (default: all); "
                             f"choices: {', '.join(sorted(REGISTRY))}")
    parser.add_argument("--fast", action="store_true",
                        help="reduced frame populations (CI mode)")
    parser.add_argument("--compile-level", type=int, choices=(0, 1, 2),
                        default=0, metavar="{0,1,2}",
                        help="graph-compiler level for the reference "
                             "designs (0=naive executor, 1=LUT/fusion "
                             "rewrites, 2=+folding and arena planning); "
                             "bit-identical at every level")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(REGISTRY):
            print(name)
        return 0

    from repro.experiments.common import set_compile_level

    set_compile_level(args.compile_level)
    names = args.names or sorted(REGISTRY)
    for name in names:
        try:
            harness = get_experiment(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        t0 = time.time()
        result = harness(args.fast)
        print(result.render())
        _render_figures(result)
        print(f"  [{name} regenerated in {time.time() - t0:.1f}s]")
        print()
    return 0


def _render_figures(result) -> None:
    """Print ASCII figures for harnesses that produced plottable series."""
    from repro.experiments.figures import ascii_histogram, ascii_series

    series = result.series
    if "latencies_s" in series:
        print()
        print(ascii_histogram(series["latencies_s"], bins=14,
                              unit_scale=1e3, unit_label="ms",
                              title="latency distribution"))
    if "bits" in series and "MI" in series:
        print()
        print(ascii_series(series["bits"], series["MI"],
                           title="mean |Δ| vs total bits — MI",
                           x_label="bits", y_label="|Δ|"))
        print(ascii_series(series["bits"], series["RR"],
                           title="mean |Δ| vs total bits — RR",
                           x_label="bits", y_label="|Δ|"))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
