"""replay-bench — bursty traffic replay through the serving daemon.

daemon-bench drives polite lock-step streams; real BLM traffic is
bursty — synchronized trains of frames at the digitizer period with
quiet gaps between them, many streams at once.  This harness replays
exactly that: a seeded on-off arrival schedule
(:func:`~repro.serve.replay.synth_schedule`) is pushed through the
daemon's own admission path offline
(:func:`~repro.serve.replay.simulate_admission` — real
:class:`~repro.serve.daemon.StreamIngress` objects, deterministic
service model), fixing every shed decision and batch boundary up
front, bit for bit.  The admitted frames then run through a live
daemon over real sockets and must reproduce
:func:`~repro.serve.daemon.serve_streams_reference` exactly, while the
table reports what operators care about: aggregate throughput,
per-stream p50/p99 node latency (simulated clock, the 3 ms budget's
currency), and how much each stream shed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.api import RuntimeConfig, start_daemon
from repro.experiments.common import ExperimentResult, bundle, converted
from repro.obs import ObsConfig
from repro.serve import BatchingPolicy, serve_streams_reference
from repro.serve.replay import (
    BurstModel,
    accepted_frames,
    replay_streams,
    simulate_admission,
    synth_schedule,
)
from repro.serve.workers import FarmSpec
from repro.utils.tables import Table

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Replay 8 seeded bursty streams; assert identity, report sheds."""
    b = bundle()
    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    n_streams = 8
    # 24 frames/stream is the floor at which every stream's bursts
    # overflow the queue bound (sheds on all 8 streams) — fast mode
    # must exercise the shedding path, not just the happy path.
    per_stream = 24 if fast else 48
    policy = BatchingPolicy(max_batch=8)
    config = RuntimeConfig(batch_inference=True)
    spec = FarmSpec(model=unet_hls, config=config,
                    obs=ObsConfig(flight_frames=32))

    schedule = synth_schedule(
        n_streams, per_stream, seed=11,
        model=BurstModel(burst_mean=24.0, gap_mean_s=0.012))
    sim = simulate_admission(schedule, batching=policy, queue_limit=6,
                             workers=2, service_per_frame_s=1.2e-3)
    # Determinism is the headline claim: the same seed must fix the
    # same arrivals and the same shed decisions, run after run.
    again = simulate_admission(
        synth_schedule(n_streams, per_stream, seed=11,
                       model=BurstModel(burst_mean=24.0,
                                        gap_mean_s=0.012)),
        batching=policy, queue_limit=6, workers=2,
        service_per_frame_s=1.2e-3)
    if sim.signature() != again.signature():
        raise AssertionError("replay simulation is not deterministic "
                             "under a fixed seed")

    x = b.dataset.x_eval
    stream_frames = [x[s * per_stream:(s + 1) * per_stream]
                     for s in range(n_streams)]
    admitted = accepted_frames(sim, stream_frames)
    reference = serve_streams_reference(spec, admitted, batching=policy,
                                        seed=7, arrival_mode="backlog")

    handle = start_daemon(unet_hls, config=config,
                          obs=ObsConfig(flight_frames=32),
                          workers=4, batching=policy, seed=7,
                          queue_limit=4096, arrival_mode="backlog")
    with handle:
        report = replay_streams(handle, sim, stream_frames)

    divergent: List[str] = []
    t = Table(["Stream", "Offered", "Accepted", "Shed",
               "p50 node (ms)", "p99 node (ms)"],
              title=f"Replay-bench: {n_streams} seeded bursty streams "
                    f"through the serving daemon")
    for s, ssim in enumerate(sim.streams):
        got = np.stack([report.rows[s][i]
                        for i in range(len(admitted[s]))]) \
            if len(admitted[s]) else np.zeros((0, 1))
        if len(admitted[s]) and not np.array_equal(
                got, reference[s].rows):
            divergent.append(f"stream {s}")
        t.add_row([str(s), str(ssim.offered), str(len(ssim.accepted)),
                   str(len(ssim.shed)),
                   f"{report.node_p(s, 50) * 1e3:.3f}",
                   f"{report.node_p(s, 99) * 1e3:.3f}"])
    t.add_row(["total", str(sim.total_offered),
               str(sim.total_accepted), str(sim.total_shed),
               "", f"{report.worst_node_p99_ms():.3f}"])
    if divergent:
        raise AssertionError("replay rows diverged from the sequential "
                             "reference: " + ", ".join(divergent))

    notes = [
        f"aggregate throughput {report.aggregate_fps:.0f} fps over "
        f"{report.frames_executed} admitted frames "
        f"({report.wall_s:.2f} s wall)",
        "shed decisions and batch boundaries are fixed offline by the "
        "deterministic admission simulation (same seed, same sheds); "
        "the live run reproduces the sequential reference bit-exactly",
        f"worst per-stream p99 node latency "
        f"{report.worst_node_p99_ms():.3f} ms (simulated clock) vs "
        f"the 3 ms machine-protection budget",
    ]
    return ExperimentResult(name="replay-bench", table=t, notes=notes)
