"""Shared infrastructure for the experiment harnesses.

The expensive artefacts (the pre-trained bundle, layer profiles, the
converted reference designs) are process-cached so a benchmark session
that regenerates every table reuses one set of models — the same way
every experiment in the paper ran against the one deployed bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.hls.model import HLSModel
from repro.hls.precision import layer_based_config, uniform_config
from repro.hls.profiling import LayerProfile, profile_model
from repro.pretrained import ReferenceBundle, load_reference_bundle
from repro.utils.tables import Table

__all__ = [
    "ExperimentResult",
    "bundle",
    "unet_profiles",
    "reference_configs",
    "converted",
    "eval_inputs",
]


@dataclass
class ExperimentResult:
    """Output of one harness: a paper-style table plus figure series.

    ``series`` maps a label to an array (a figure line/histogram);
    ``notes`` carries the comparisons against the paper's published
    values (mirrored into EXPERIMENTS.md).
    """

    name: str
    table: Table
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Printable report: table + notes."""
        parts = [self.table.render()]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(parts)


@lru_cache(maxsize=1)
def bundle(include_bn: bool = False) -> ReferenceBundle:
    """The pre-trained reference bundle (cached)."""
    return load_reference_bundle(include_bn=include_bn,
                                 train_if_missing=True)


@lru_cache(maxsize=1)
def unet_profiles() -> Dict[str, LayerProfile]:
    """Layer profiles of the reference U-Net on the training split."""
    b = bundle()
    return profile_model(b.unet, b.dataset.unet_inputs(b.dataset.x_train))


def reference_configs() -> Dict[str, HLSConfig]:
    """The paper's three precision strategies for the reference U-Net."""
    b = bundle()
    return {
        "Uniform Precision ac_fixed<18, 10>": uniform_config(18, 10, model=b.unet),
        "Uniform Precision ac_fixed<16, 7>": uniform_config(16, 7, model=b.unet),
        "Layer-based Precision ac_fixed<16, x>": layer_based_config(
            b.unet, None, profiles=unet_profiles()
        ),
    }


@lru_cache(maxsize=16)
def converted(strategy: str) -> HLSModel:
    """Cached conversion of the reference U-Net under one strategy."""
    configs = reference_configs()
    if strategy not in configs:
        raise KeyError(f"unknown strategy {strategy!r}; have {sorted(configs)}")
    return convert(bundle().unet, configs[strategy])


def eval_inputs(fast: bool = False) -> np.ndarray:
    """Evaluation frames shaped for the U-Net (1,000 as in Fig 5a, or a
    150-frame subset in fast mode)."""
    ds = bundle().dataset
    x = ds.unet_inputs(ds.x_eval)
    return x[:150] if fast else x
