"""Shared infrastructure for the experiment harnesses.

The expensive artefacts (the pre-trained bundle, layer profiles, the
converted reference designs) are process-cached so a benchmark session
that regenerates every table reuses one set of models — the same way
every experiment in the paper ran against the one deployed bitstream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.hls.model import HLSModel
from repro.hls.precision import layer_based_config, uniform_config
from repro.hls.profiling import LayerProfile, profile_model
from repro.pretrained import ReferenceBundle, load_reference_bundle
from repro.utils.tables import Table

__all__ = [
    "ExperimentResult",
    "bundle",
    "unet_profiles",
    "reference_configs",
    "converted",
    "converted_at",
    "set_compile_level",
    "get_compile_level",
    "set_converted_cache_size",
    "converted_cache_stats",
    "fold_converted_cache_metrics",
    "eval_inputs",
]


@dataclass
class ExperimentResult:
    """Output of one harness: a paper-style table plus figure series.

    ``series`` maps a label to an array (a figure line/histogram);
    ``notes`` carries the comparisons against the paper's published
    values (mirrored into EXPERIMENTS.md).
    """

    name: str
    table: Table
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Printable report: table + notes."""
        parts = [self.table.render()]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(parts)


@lru_cache(maxsize=1)
def bundle(include_bn: bool = False) -> ReferenceBundle:
    """The pre-trained reference bundle (cached)."""
    return load_reference_bundle(include_bn=include_bn,
                                 train_if_missing=True)


@lru_cache(maxsize=1)
def unet_profiles() -> Dict[str, LayerProfile]:
    """Layer profiles of the reference U-Net on the training split."""
    b = bundle()
    return profile_model(b.unet, b.dataset.unet_inputs(b.dataset.x_train))


def reference_configs() -> Dict[str, HLSConfig]:
    """The paper's three precision strategies for the reference U-Net."""
    b = bundle()
    return {
        "Uniform Precision ac_fixed<18, 10>": uniform_config(18, 10, model=b.unet),
        "Uniform Precision ac_fixed<16, 7>": uniform_config(16, 7, model=b.unet),
        "Layer-based Precision ac_fixed<16, x>": layer_based_config(
            b.unet, None, profiles=unet_profiles()
        ),
    }


#: Process-wide compile level for the cached reference designs.  The
#: CLI's ``--compile-level`` flag sets it before any harness runs; every
#: level gets its own cache slot so switching levels mid-process never
#: mutates a model another caller already holds.
_compile_level = 0


def set_compile_level(level: int) -> None:
    """Select the graph-compiler level (0/1/2) used by :func:`converted`.

    Level 0 (the default) keeps the naive liveness executor — compiled
    plans are bit-identical by construction, so any level reproduces the
    same tables, just at different speed.
    """
    if level not in (0, 1, 2):
        raise ValueError(f"compile level must be 0, 1 or 2, got {level}")
    global _compile_level
    _compile_level = level


def get_compile_level() -> int:
    """The compile level :func:`converted` currently applies."""
    return _compile_level


#: Explicit LRU over (strategy, level) → converted model.  A plain
#: ``functools.lru_cache(maxsize=16)`` silently evicted under DSE sweeps
#: visiting more than 16 (strategy, level) pairs, turning cached
#: comparisons into recompiles mid-scoring; the cache size is now
#: explicit and sweep-configurable, and hit/miss/eviction counters are
#: observable (and foldable into a :class:`repro.obs` registry).
_DEFAULT_CONVERTED_CACHE_SIZE = 16
_converted_cache: "OrderedDict[Tuple[str, int], HLSModel]" = OrderedDict()
_converted_cache_maxsize = _DEFAULT_CONVERTED_CACHE_SIZE
_converted_cache_counts = {"hits": 0, "misses": 0, "evictions": 0}


def set_converted_cache_size(maxsize: int) -> int:
    """Resize the converted-model cache; returns the previous size.

    Sweeps that visit many (strategy, level) pairs should raise this to
    at least the number of pairs they touch, or every revisit pays a
    full reconvert+recompile and skews any wall-clock comparison.
    Shrinking evicts oldest entries immediately.
    """
    if maxsize < 1:
        raise ValueError(f"cache size must be >= 1, got {maxsize}")
    global _converted_cache_maxsize
    previous = _converted_cache_maxsize
    _converted_cache_maxsize = int(maxsize)
    while len(_converted_cache) > _converted_cache_maxsize:
        _converted_cache.popitem(last=False)
        _converted_cache_counts["evictions"] += 1
    return previous


def converted_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters plus current size/capacity."""
    return {
        **_converted_cache_counts,
        "size": len(_converted_cache),
        "maxsize": _converted_cache_maxsize,
    }


def fold_converted_cache_metrics(metrics) -> None:
    """Mirror the cache counters into a :class:`repro.obs` registry.

    Counters land under ``experiments.converted_cache.{hits,misses,
    evictions}`` and the occupancy under ``...{size,maxsize}`` gauges.
    """
    stats = converted_cache_stats()
    for name in ("hits", "misses", "evictions"):
        metrics.set_count(f"experiments.converted_cache.{name}", stats[name])
    for name in ("size", "maxsize"):
        metrics.set_gauge(f"experiments.converted_cache.{name}", stats[name])


def converted_at(strategy: str, level: int) -> HLSModel:
    """Cached conversion of the reference U-Net at an explicit level."""
    if level not in (0, 1, 2):
        raise ValueError(f"compile level must be 0, 1 or 2, got {level}")
    key = (strategy, level)
    cached = _converted_cache.get(key)
    if cached is not None:
        _converted_cache.move_to_end(key)
        _converted_cache_counts["hits"] += 1
        return cached
    _converted_cache_counts["misses"] += 1
    configs = reference_configs()
    if strategy not in configs:
        raise KeyError(f"unknown strategy {strategy!r}; have {sorted(configs)}")
    model = convert(bundle().unet, configs[strategy])
    if level:
        model.compile(level=level)
    _converted_cache[key] = model
    while len(_converted_cache) > _converted_cache_maxsize:
        _converted_cache.popitem(last=False)
        _converted_cache_counts["evictions"] += 1
    return model


def converted(strategy: str) -> HLSModel:
    """Cached conversion of the reference U-Net under one strategy,
    compiled at the process-wide level (see :func:`set_compile_level`)."""
    return converted_at(strategy, _compile_level)


def eval_inputs(fast: bool = False) -> np.ndarray:
    """Evaluation frames shaped for the U-Net (1,000 as in Fig 5a, or a
    150-frame subset in fast mode)."""
    ds = bundle().dataset
    x = ds.unet_inputs(ds.x_eval)
    return x[:150] if fast else x
