"""dse — the deterministic design-space-exploration harness.

Runs :func:`repro.dse.run_dse` over the paper's U-Net de-blending
problem in all three modes (random / grid / adaptive), asserts the
determinism contract (a seeded rerun of each mode reproduces the
Pareto front byte for byte), and renders the adaptive front as a
paper-style table.  The harness also checks that the recommended
configuration reproduces the deployed design: the layer-based
``<16,x>`` strategy, fitting the Arria 10 under the corrected resource
model, inside the 3 ms budget.

The converted-model cache in :mod:`repro.experiments.common` is sized
up for the sweep and its hit/miss counters are folded into a
:mod:`repro.obs` metrics registry (reported in the notes).
"""

from __future__ import annotations

from repro.dse import DSESettings, run_dse, unet_problem
from repro.dse.space import build_config
from repro.experiments.common import (ExperimentResult,
                                      converted_cache_stats,
                                      fold_converted_cache_metrics,
                                      set_converted_cache_size)
from repro.hls.precision import layer_based_config
from repro.obs.metrics import MetricsRegistry
from repro.utils.tables import Table

__all__ = ["run"]

MODES = ("random", "grid", "adaptive")


def run(fast: bool = False) -> ExperimentResult:
    """Search the joint knob space on the U-Net problem; verify rerun
    byte-identity and the paper-pin of the recommendation."""
    budget = 8 if fast else 16
    set_converted_cache_size(max(16, budget * 2))
    problem = unet_problem(fast=fast, seed=0)

    notes = []
    results = {}
    for mode in MODES:
        settings = DSESettings(mode=mode, budget=budget, seed=0)
        result = run_dse(problem, settings=settings)
        rerun = run_dse(problem, settings=settings)
        if result.front_json() != rerun.front_json():
            raise AssertionError(
                f"DSE mode {mode!r} is nondeterministic: seeded rerun "
                f"diverged from the first front")
        results[mode] = result
        rec = result.recommended
        notes.append(
            f"{mode}: {result.n_simulated} simulated / "
            f"{result.n_prefiltered} pre-filtered, front size "
            f"{len(result.front)}, rerun byte-identical; recommended "
            f"{rec.candidate.strategy if rec else 'nothing'}")

    adaptive = results["adaptive"]
    rec = adaptive.recommended
    if rec is None:
        raise AssertionError("adaptive DSE found no feasible design for "
                             "the paper's U-Net problem")
    if rec.candidate.strategy != "layer-based":
        raise AssertionError(
            f"recommended strategy {rec.candidate.strategy!r}; the paper "
            f"deployed the layer-based <16,x> strategy")
    # Pin: the recommended per-layer integer bits stay within one bit of
    # the deployed profile-derived grid.
    deployed = layer_based_config(problem.model, None,
                                  profiles=problem.profiles)
    chosen = build_config(rec.candidate, problem.model, problem.profiles)
    for name in problem.profiles:
        want = deployed.for_layer(name).result.integer
        got = chosen.for_layer(name).result.integer
        if abs(got - want) > 1:
            raise AssertionError(
                f"layer {name}: recommended integer bits {got} drift "
                f">1 from the deployed grid {want}")
    notes.append("recommended config reproduces the deployed layer-based "
                 "<16,x> strategy within one integer bit per layer")

    metrics = MetricsRegistry()
    fold_converted_cache_metrics(metrics)
    stats = converted_cache_stats()
    notes.append(
        f"converted-model cache: {stats['hits']} hits / "
        f"{stats['misses']} misses / {stats['evictions']} evictions "
        f"(size {stats['size']}/{stats['maxsize']}; counters exported "
        f"as experiments.converted_cache.* obs metrics)")

    table = Table(
        ["Design point", "Acc", "fps (model)", "node p99 ms",
         "IP ms", "ALUT", "Regs", "Feasible"],
        title=f"DSE Pareto front — U-Net de-blending (adaptive, "
              f"budget {budget}, seed 0)")
    for score in adaptive.front:
        c = score.candidate
        label = (f"{c.strategy} ru={c.default_reuse}/"
                 f"{c.dense_sigmoid_reuse} L{c.compile_level} "
                 f"{c.conv_formulation} b{c.batch_size} "
                 f"s{c.n_shards}w{c.workers}")
        marker = " <- recommended" if score is rec else ""
        table.add_row([
            label + marker,
            f"{score.accuracy:.1%}",
            f"{score.fps:.0f}",
            f"{score.node_p99_ms:.3f}",
            f"{score.est_ip_latency_ms:.2f}",
            f"{score.alut_fraction:.0%}",
            f"{score.register_fraction:.0%}",
            "yes" if score.feasible else "no",
        ])

    return ExperimentResult(name="dse", table=table, notes=notes)
