"""Fig 5 — accuracy/precision/timing analysis.

* **(a)** mean |quantized − float| per machine as total bits sweep
  upward with layer-based integer allocation (paper at 16 bits:
  ≈0.025 MI, ≈0.005 RR; MI worse because max-abs scaling favours RR's
  larger outputs),
* **(b)** outlier count (|Δ| > 0.20) vs total bits, and the observation
  that one extra integer margin bit removes roughly half the outliers,
* **(c)** the end-to-end system latency distribution over 10,000 frames
  (average 1.74 ms, 99.97 % below 1.9 ms, rare OS-jitter excursions
  above 2 ms).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    bundle,
    converted,
    eval_inputs,
    unet_profiles,
)
from repro.hls.converter import convert
from repro.hls.precision import layer_based_config
from repro.soc.board import AchillesBoard
from repro.utils.tables import Table
from repro.verify.comparators import mean_abs_diff_per_machine, outlier_count

__all__ = ["run_fig5a", "run_fig5b", "run_fig5c", "run"]

#: Bit widths swept in Fig 5(a)/(b).
BIT_SWEEP = (10, 11, 12, 13, 14, 15, 16, 17, 18)
FAST_BIT_SWEEP = (10, 12, 14, 16, 18)


def _sweep(fast: bool, margin_bits: int = 0) -> Dict[int, Dict[str, float]]:
    """Accuracy metrics for each total width in the sweep."""
    b = bundle()
    x = eval_inputs(fast)
    y_float = b.unet.forward(x)
    out: Dict[int, Dict[str, float]] = {}
    for width in (FAST_BIT_SWEEP if fast else BIT_SWEEP):
        config = layer_based_config(b.unet, None, width=width,
                                    margin_bits=margin_bits,
                                    profiles=unet_profiles())
        y_fixed = convert(b.unet, config).predict(x)
        metrics = mean_abs_diff_per_machine(y_float, y_fixed)
        metrics["outliers"] = outlier_count(y_float, y_fixed)
        out[width] = metrics
    return out


def run_fig5a(fast: bool = False) -> ExperimentResult:
    """Fig 5(a): accuracy vs total bits for MI and RR."""
    sweep = _sweep(fast)
    widths = sorted(sweep)
    t = Table(["Total bits", "Mean |Δ| MI", "Mean |Δ| RR"],
              title="Fig 5(a): Change of accuracy on MI and RR predictions "
                    "as the number of total bits increases")
    for w in widths:
        t.add_row([w, f"{sweep[w]['MI']:.4f}", f"{sweep[w]['RR']:.4f}"])
    at16 = sweep[16]
    notes = [
        f"paper at 16 bits: MI ≈ 0.025, RR ≈ 0.005; measured: "
        f"MI {at16['MI']:.4f}, RR {at16['RR']:.4f}",
        "shape: error decreases monotonically with width"
        + ("; MI loses more accuracy than RR (max-abs scaling favours "
           "RR's larger outputs)" if at16["MI"] > at16["RR"] else ""),
    ]
    series = {
        "bits": np.array(widths, dtype=float),
        "MI": np.array([sweep[w]["MI"] for w in widths]),
        "RR": np.array([sweep[w]["RR"] for w in widths]),
    }
    return ExperimentResult("fig5a", t, series=series, notes=notes)


def run_fig5b(fast: bool = False) -> ExperimentResult:
    """Fig 5(b): outliers vs total bits, plus the +1-integer-bit fix."""
    base = _sweep(fast)
    widths = sorted(base)
    margin = _sweep(fast, margin_bits=1)
    t = Table(["Total bits", "Outliers", "Outliers (+1 integer bit)"],
              title="Fig 5(b): The number of outliers decreases as the "
                    "number of total bits increases")
    for w in widths:
        t.add_row([w, base[w]["outliers"], margin[w]["outliers"]])
    notes = ["shape: outlier count decreases with total bits"]
    # Evaluate the +1-integer-bit mitigation at the widest width that
    # still shows outliers (at 16 bits our quantized model is already
    # outlier-free — cleaner than the paper's silicon, noted in
    # EXPERIMENTS.md).
    with_outliers = [w for w in widths if base[w]["outliers"] > 0]
    if with_outliers:
        w0 = with_outliers[-1]
        b0, m0 = base[w0]["outliers"], margin[w0]["outliers"]
        notes.append(
            f"+1 integer bit at {w0} total bits: {b0} → {m0} outliers "
            f"({m0 / b0:.0%} remaining; paper: ≈ half mitigated)"
        )
    else:
        notes.append("no outliers at any swept width (quantized model "
                     "cleaner than the paper's)")
    series = {
        "bits": np.array(widths, dtype=float),
        "outliers": np.array([base[w]["outliers"] for w in widths], float),
        "outliers_margin1": np.array(
            [margin[w]["outliers"] for w in widths], float
        ),
    }
    return ExperimentResult("fig5b", t, series=series, notes=notes)


def run_fig5c(fast: bool = False) -> ExperimentResult:
    """Fig 5(c): distribution of system latency (steps 1–8)."""
    hls_model = converted("Layer-based Precision ac_fixed<16, x>")
    board = AchillesBoard(hls_model)
    n = 2_000 if fast else 10_000
    lat = board.sample_latency_distribution(n, seed=42)
    edges = np.linspace(lat.min(), max(lat.max(), 2.3e-3), 24)
    hist, _ = np.histogram(lat, bins=edges)
    t = Table(["Statistic", "Value"],
              title="Fig 5(c): The distribution of system latency "
                    "SoC FPGA (Steps 1-8)")
    t.add_row(["Frames", n])
    t.add_row(["Mean", f"{lat.mean() * 1e3:.3f} ms"])
    t.add_row(["Min", f"{lat.min() * 1e3:.3f} ms"])
    t.add_row(["Max", f"{lat.max() * 1e3:.3f} ms"])
    t.add_row(["Fraction < 1.9 ms", f"{(lat < 1.9e-3).mean():.4f}"])
    t.add_row(["Fraction > 2.0 ms", f"{(lat > 2.0e-3).mean():.5f}"])
    t.add_row(["Throughput", f"{1.0 / lat.mean():.0f} fps"])
    notes = [
        f"paper: mean 1.74 ms, range [1.73, 2.27] ms, 99.97% < 1.9 ms; "
        f"measured: mean {lat.mean() * 1e3:.2f} ms, range "
        f"[{lat.min() * 1e3:.2f}, {lat.max() * 1e3:.2f}] ms, "
        f"{(lat < 1.9e-3).mean():.2%} < 1.9 ms",
        "shape: tight unimodal bulk with a rare OS-scheduling tail above "
        "2 ms, exactly the paper's reading",
    ]
    series = {"latencies_s": lat, "hist": hist.astype(float),
              "bin_edges": edges}
    return ExperimentResult("fig5c", t, series=series, notes=notes)


def run(fast: bool = False) -> ExperimentResult:
    """All three panels; returns 5(a) (the others print separately)."""
    a = run_fig5a(fast)
    b = run_fig5b(fast)
    c = run_fig5c(fast)
    a.notes += b.notes + c.notes
    a.series.update({f"5b_{k}": v for k, v in b.series.items()})
    a.series.update({f"5c_{k}": v for k, v in c.series.items()})
    return a
