"""remote-bench — cross-host shard serving over ``repro-hosts/1``.

serve-bench and daemon-bench pin the determinism contract for a farm
and a socket daemon on *one* machine; this harness extends the proof
across the host boundary.  Two localhost host agents
(:func:`~repro.serve.remote.spawn_agent` — separate processes, real
TCP, separate worker pools) take the farm's shard tasks through a
:class:`~repro.serve.remote.HostPool`, and every output row must be
bit-identical to the sequential in-process reference.  The second
round SIGKILLs one agent mid-flight: the pool must detect the
partition, requeue that host's in-flight shards onto the survivors
under the restart budget, and *still* reproduce the reference word for
word — the cross-host incarnation of the worker-crash recovery pledge.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.core.api import RuntimeConfig
from repro.experiments.common import ExperimentResult, bundle, converted
from repro.serve.farm import ShardedNodeFarm
from repro.serve.remote import spawn_agent
from repro.serve.workers import FarmSpec
from repro.utils.tables import Table

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Serve one frame block across two host agents; kill one mid-run."""
    b = bundle()
    unet_hls = converted("Layer-based Precision ac_fixed<16, x>")
    n_frames = 48 if fast else 192
    n_shards = 4
    frames = b.dataset.x_eval[:n_frames]
    spec = FarmSpec(model=unet_hls,
                    config=RuntimeConfig(batch_inference=True))

    farm_ref = ShardedNodeFarm(spec, n_shards=n_shards, seed=11)
    ref = farm_ref.serve_reference(frames)

    rows: List[List[str]] = []
    divergent: List[str] = []

    with spawn_agent(workers=2) as a1, spawn_agent(workers=2) as a2:
        # Round 1: clean run split across both agents, zero local
        # workers — every frame crosses the wire twice.
        farm = ShardedNodeFarm(spec, n_shards=n_shards, seed=11,
                               hosts=[a1.address, a2.address])
        t0 = time.perf_counter()
        res = farm.serve(frames, workers=0)
        wall = time.perf_counter() - t0
        same = bool(np.array_equal(res.outputs, ref.outputs))
        if not same:
            divergent.append("clean 2-host run diverged from reference")
        rows.append(["2 hosts, clean", "yes" if same else "NO",
                     str(res.health.host_failures),
                     str(res.health.requeued_tasks),
                     f"{n_frames / wall:.0f}"])

        # Round 2: warm pool, SIGKILL agent 2 while its shards are in
        # flight.  Partition-aware recovery must requeue them onto
        # agent 1 and keep the outputs bit-identical.
        farm2 = ShardedNodeFarm(spec, n_shards=n_shards, seed=11,
                                hosts=[a1.address, a2.address])
        pool = farm2.start_pool(workers=0)
        try:
            t0 = time.perf_counter()
            handle = pool.submit(
                np.ascontiguousarray(frames, dtype=np.float64),
                list(farm2.plan(n_frames).tasks))
            a2.kill()                      # hard partition, mid-run
            pool.wait(handle)
            wall2 = time.perf_counter() - t0
            same2 = bool(np.array_equal(handle.outputs, ref.outputs))
            if not same2:
                divergent.append("post-partition run diverged "
                                 "from reference")
            if pool.stats.host_failures < 1:
                divergent.append("SIGKILL did not register as a "
                                 "host partition")
            rows.append(["2 hosts, one SIGKILLed mid-run",
                         "yes" if same2 else "NO",
                         str(pool.stats.host_failures),
                         str(pool.stats.requeued_tasks),
                         f"{n_frames / wall2:.0f}"])
        finally:
            pool.close()

    t = Table(["Topology", "Identical", "Host partitions",
               "Requeued shards", "Throughput (fps)"],
              title="Remote-bench: shard serving across two host "
                    "agents (repro-hosts/1)")
    for r in rows:
        t.add_row(r)
    if divergent:
        raise AssertionError("remote-bench identity violations: "
                             + "; ".join(divergent))
    notes = [
        f"{n_frames} frames x {n_shards} shards over 2 localhost "
        f"agents (2 workers each); outputs bit-identical to the "
        f"sequential reference in both rounds",
        "partition recovery: killing an agent mid-run requeues its "
        "in-flight shards onto the survivor under the restart budget",
    ]
    return ExperimentResult(name="remote-bench", table=t, notes=notes)
