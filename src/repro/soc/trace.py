"""SignalTap-style signal capture.

The paper debugs the fabric with Intel's SignalTap logic analyser
(Section IV-C).  :class:`SignalTrace` is the simulator's equivalent: a
bounded ring buffer of ``(time, signal, value)`` samples with trigger
support, so verification tests can assert on signal *sequences* (e.g.
"trigger rises before busy, busy falls before irq") rather than only on
final state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

__all__ = ["SignalTrace", "Sample"]


@dataclass(frozen=True)
class Sample:
    """One captured transition."""

    time: float
    signal: str
    value: object


class SignalTrace:
    """Bounded capture buffer with optional trigger condition.

    Parameters
    ----------
    depth:
        Ring-buffer capacity (oldest samples fall out, like the real
        analyser's sample memory).
    trigger:
        Optional predicate ``(signal, value) -> bool``; capture only
        starts once it fires.
    pre_trigger:
        Number of samples from *before* the trigger fires to keep — the
        real SignalTap analyser's pre-trigger window.  Samples seen while
        un-armed circulate in a ring of this size and are promoted into
        the capture buffer (oldest first, ahead of the triggering sample)
        when the trigger fires.  The default of 0 keeps the historical
        discard-everything behaviour.
    """

    def __init__(self, depth: int = 4096,
                 trigger: Optional[Callable[[str, object], bool]] = None,
                 pre_trigger: int = 0):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if pre_trigger < 0:
            raise ValueError(f"pre_trigger must be >= 0, got {pre_trigger}")
        self.depth = depth
        self.trigger = trigger
        self.pre_trigger = int(pre_trigger)
        self.armed = trigger is None
        self._samples: Deque[Sample] = deque(maxlen=depth)
        self._pre: Optional[Deque[Sample]] = (
            deque(maxlen=self.pre_trigger)
            if trigger is not None and self.pre_trigger else None
        )

    def record(self, time: float, signal: str, value: object) -> None:
        """Capture one transition (subject to trigger arming)."""
        if not self.armed and self.trigger is not None:
            if self.trigger(signal, value):
                self.armed = True
                if self._pre:
                    self._samples.extend(self._pre)
                    self._pre.clear()
            else:
                if self._pre is not None:
                    self._pre.append(Sample(time, signal, value))
                return
        self._samples.append(Sample(time, signal, value))

    # ------------------------------------------------------------------
    def samples(self, signal: Optional[str] = None) -> List[Sample]:
        """Captured samples, optionally filtered by signal name."""
        if signal is None:
            return list(self._samples)
        return [s for s in self._samples if s.signal == signal]

    def last(self, signal: str) -> Optional[Sample]:
        """Most recent sample of *signal*, or None."""
        for s in reversed(self._samples):
            if s.signal == signal:
                return s
        return None

    def assert_order(self, *signals: str) -> bool:
        """True if the first occurrences of *signals* appear in order."""
        times = []
        for name in signals:
            first = next((s.time for s in self._samples if s.signal == name),
                         None)
            if first is None:
                return False
            times.append(first)
        return all(a <= b for a, b in zip(times, times[1:]))

    def clear(self) -> None:
        """Drop all captured samples and re-arm the trigger."""
        self._samples.clear()
        if self._pre is not None:
            self._pre.clear()
        self.armed = self.trigger is None

    def __len__(self) -> int:
        return len(self._samples)
