"""Discrete-event simulator of the Arria 10 SoC central node.

Reproduces the paper's Fig 2 architecture and its step 0–9 frame
pipeline:

* :mod:`~repro.soc.event` — the event-driven simulation core,
* :mod:`~repro.soc.avalon` — HPS↔FPGA Avalon memory-mapped bridge timing,
* :mod:`~repro.soc.ocram` — the two dual-port on-chip RAM buffers
  (16-bit IP-side port, 32-bit HPS-side port),
* :mod:`~repro.soc.control` — the hand-written control IP (handshake FSM
  between HPS and the U-Net IP, interrupt generation),
* :mod:`~repro.soc.ip_core` — the U-Net IP wrapper: functional execution
  via the converted :class:`repro.hls.HLSModel`, timing via its
  :class:`repro.hls.LatencyReport`,
* :mod:`~repro.soc.hps` — the Linux user-space application on the Hard
  Processor System (uncached MMIO word transfers, IRQ wait, pre/post
  processing) plus the OS-scheduling jitter model behind Fig 5(c)'s tail,
* :mod:`~repro.soc.counters` / :mod:`~repro.soc.trace` — the performance
  counters and SignalTap-style signal capture used for verification,
* :mod:`~repro.soc.board` — the assembled Achilles board:
  ``AchillesBoard.run(frames)`` returns outputs plus per-step timing for
  every frame,
* :mod:`~repro.soc.faults` — seeded, deterministic fault injection
  (hub packet drop/delay, stuck/noisy monitors, IP hang, lost IRQ, RAM
  SEUs, publish failures),
* :mod:`~repro.soc.taint` — the fault-taint model behind speculative
  fault-aware batching: classifies every fault kind by the state it can
  corrupt (input / model state / timing / post-inference),
* :mod:`~repro.soc.runtime` — the hardened central-node loop: watchdog,
  last-known-good substitution, output guards, publish retry, the
  U-Net→MLP degraded-mode fallback and the speculative execution ladder
  that keeps the batched fast path live under an active fault injector
  (see ``docs/robustness.md``).

The functional path is real: input frames are quantized into the input
buffer's 16-bit words, the IP computes on those words, and the HPS reads
back and dequantizes — so the SoC simulation produces *bit-identical*
outputs to the HLS C-simulation, which is precisely the property the
paper's verification flow checks on hardware.
"""

from repro.soc.event import Simulator
from repro.soc.avalon import AvalonBridge
from repro.soc.ocram import DualPortRAM
from repro.soc.control import ControlIP
from repro.soc.ip_core import NeuralIPCore
from repro.soc.hps import HPSConfig, OSJitter
from repro.soc.counters import PerformanceCounters
from repro.soc.trace import SignalTrace
from repro.soc.faults import (
    ACNETFault,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    FrameFaults,
    FrameHangError,
    HubDelayFault,
    HubDropFault,
    IPHangFault,
    LostIRQFault,
    NoisyMonitorFault,
    SEUFault,
    StuckMonitorFault,
)
from repro.soc.taint import (
    FrameTaint,
    TaintClass,
    classify_events,
    speculation_mask,
    taint_of,
)
from repro.soc.board import AchillesBoard, FrameTiming, SystemRunResult
from repro.soc.dma import DMAEngine
from repro.soc.runtime import (
    CentralNodeRuntime,
    DegradationPolicy,
    FrameRecord,
    HealthReport,
)

__all__ = [
    "Simulator",
    "AvalonBridge",
    "DualPortRAM",
    "ControlIP",
    "NeuralIPCore",
    "HPSConfig",
    "OSJitter",
    "PerformanceCounters",
    "SignalTrace",
    "AchillesBoard",
    "FrameTiming",
    "SystemRunResult",
    "DMAEngine",
    "CentralNodeRuntime",
    "FrameRecord",
    "DegradationPolicy",
    "HealthReport",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultKind",
    "FaultEvent",
    "FrameFaults",
    "FrameHangError",
    "HubDropFault",
    "HubDelayFault",
    "StuckMonitorFault",
    "NoisyMonitorFault",
    "IPHangFault",
    "LostIRQFault",
    "SEUFault",
    "ACNETFault",
    "TaintClass",
    "FrameTaint",
    "classify_events",
    "taint_of",
    "speculation_mask",
]
