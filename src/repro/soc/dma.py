"""DMA engine model — the transfer mechanism the paper argues *against*.

Table I notes that prior works use (AXI) DMA and that "DMA is tailored
for transferring large chunks of data at a time and its use in these ML
hardware solutions results in higher latencies".  The model: a fixed
descriptor-setup + interrupt cost per transfer plus high-bandwidth bulk
movement.  For the de-blending workload (260 in / 520 out words) the
setup dominates, which is exactly why the paper's memory-mapped design
wins; the ablation benchmark sweeps the transfer size to find the
crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DMAEngine"]


@dataclass(frozen=True)
class DMAEngine:
    """Scatter-gather DMA timing model.

    Parameters
    ----------
    setup_s:
        Descriptor programming + cache maintenance + completion interrupt
        per transfer — tens of microseconds under Linux; 60 µs is typical
        for a user-space-initiated SG-DMA round trip on an A9-class HPS.
    bytes_per_s:
        Sustained bulk bandwidth once streaming.
    min_burst_bytes:
        Transfers below this size still pay one burst's worth of bus
        occupancy.
    """

    setup_s: float = 60e-6
    bytes_per_s: float = 1.2e9
    min_burst_bytes: int = 64

    def __post_init__(self):
        if self.setup_s < 0 or self.bytes_per_s <= 0 or self.min_burst_bytes <= 0:
            raise ValueError("invalid DMA parameters")

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move *n_bytes* one way."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        effective = max(n_bytes, self.min_burst_bytes)
        return self.setup_s + effective / self.bytes_per_s

    def frame_round_trip(self, n_in_words: int, n_out_words: int,
                         bytes_per_word: int = 2) -> float:
        """Input DMA + output DMA for one inference frame."""
        return (self.transfer_time(n_in_words * bytes_per_word)
                + self.transfer_time(n_out_words * bytes_per_word))
