"""Avalon memory-mapped bridge timing model.

The SoC has several HPS↔FPGA bridges; the design uses

* the 128-bit **HPS-to-FPGA** bridge for the bulk input/output buffer
  transfers (the user-space application performs word-by-word uncached
  MMIO accesses through ``/dev/mem``, so the per-word cost is dominated
  by the non-posted bus round trip, not by bridge bandwidth), and
* the **lightweight** bridge for control/status register pokes (trigger,
  IRQ acknowledge), which are single-beat and slower per access.

The paper chose this memory-mapped path over DMA precisely because the
transfers are small (260 in / 520 out words) and DMA setup costs dominate
at that size (Section II, Table I "Data Tran." column).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AvalonBridge", "HPS2FPGA_BRIDGE", "LIGHTWEIGHT_BRIDGE"]


@dataclass(frozen=True)
class AvalonBridge:
    """Per-access timing of one bridge.

    Parameters
    ----------
    name:
        Label used in traces.
    write_ns / read_ns:
        Cost of a single word access from the HPS side (uncached MMIO:
        full bus round trip).  Reads are costlier than writes because
    	writes can post while reads must wait for data.
    burst_ns:
        Incremental cost per additional word when the master issues a
        back-to-back sequential access pattern (the paper's sequential
        buffer layout enables this).
    """

    name: str
    write_ns: float = 180.0
    read_ns: float = 200.0
    burst_ns: float = 0.0

    def __post_init__(self):
        if min(self.write_ns, self.read_ns) <= 0:
            raise ValueError("access costs must be positive")
        if self.burst_ns < 0:
            raise ValueError("burst_ns must be >= 0")

    def write_time(self, n_words: int) -> float:
        """Seconds to write *n_words* sequentially."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        if n_words == 0:
            return 0.0
        extra = self.burst_ns * (n_words - 1)
        return (self.write_ns * n_words + extra) * 1e-9

    def read_time(self, n_words: int) -> float:
        """Seconds to read *n_words* sequentially."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        if n_words == 0:
            return 0.0
        extra = self.burst_ns * (n_words - 1)
        return (self.read_ns * n_words + extra) * 1e-9


#: Bulk data bridge (input/output buffer traffic).  Costs calibrated so
#: the step 1–8 overhead on top of the IP latency is ≈0.17 ms, matching
#: the paper's 1.74 ms (U-Net, 1.57 ms IP) and 0.31 ms (MLP) systems.
HPS2FPGA_BRIDGE = AvalonBridge("hps2fpga", write_ns=260.0, read_ns=300.0)

#: Control/status register bridge (trigger, IRQ acknowledge).
LIGHTWEIGHT_BRIDGE = AvalonBridge("lwhps2fpga", write_ns=350.0, read_ns=400.0)
