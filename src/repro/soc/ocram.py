"""Dual-port on-chip RAM buffers.

The design instantiates two on-chip RAMs as input and output buffers: a
16-bit port faces the U-Net IP and a 32-bit port faces the HPS bridge
(paper Section IV-D).  The simulator's RAMs hold real 16-bit raw words —
the quantized fixed-point bit patterns — so data corruption bugs
(overflow, wrong formats, partial writes) are observable, exactly what
the paper's in-system memory content editor was used to check.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DualPortRAM"]


class DualPortRAM:
    """A word-addressable RAM with bounds and width checking.

    Words are stored as int64 but constrained to ``width_bits`` two's-
    complement range; writing an out-of-range word raises, because on
    silicon it would silently truncate — the simulator turns that silent
    corruption into a loud error.
    """

    def __init__(self, n_words: int, width_bits: int = 16, name: str = "ocram"):
        if n_words <= 0:
            raise ValueError(f"n_words must be positive, got {n_words}")
        if not 1 <= width_bits <= 62:
            raise ValueError(f"width_bits must be in [1, 62], got {width_bits}")
        self.name = name
        self.n_words = int(n_words)
        self.width_bits = int(width_bits)
        self._lo = -(2 ** (width_bits - 1))
        self._hi = 2 ** (width_bits - 1) - 1
        self._data = np.zeros(self.n_words, dtype=np.int64)
        self.write_count = 0
        self.read_count = 0

    # ------------------------------------------------------------------
    def _check_span(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.n_words:
            raise IndexError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"[0, {self.n_words})"
            )

    def write(self, offset: int, words: np.ndarray) -> None:
        """Write a contiguous span of raw words."""
        words = np.asarray(words, dtype=np.int64)
        self._check_span(offset, words.size)
        if words.size and (words.min() < self._lo or words.max() > self._hi):
            raise OverflowError(
                f"{self.name}: word outside {self.width_bits}-bit range "
                f"[{self._lo}, {self._hi}]"
            )
        self._data[offset:offset + words.size] = words
        self.write_count += int(words.size)

    def read(self, offset: int, length: int) -> np.ndarray:
        """Read a contiguous span of raw words (copy)."""
        self._check_span(offset, length)
        self.read_count += int(length)
        return self._data[offset:offset + length].copy()

    def poke(self, offset: int, word: int) -> None:
        """Single-word write (the in-system memory content editor path)."""
        self.write(offset, np.array([word], dtype=np.int64))

    def peek(self, offset: int) -> int:
        """Single-word read."""
        return int(self.read(offset, 1)[0])

    def clear(self) -> None:
        """Zero the memory (power-on state)."""
        self._data[:] = 0
