"""Performance counters.

The paper integrates "performance counters to measure real latency"
into the platform-designer subsystem (Section IV-B).  This module is
that block: named timestamp counters latched against the simulator
clock, from which per-step durations are derived.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["PerformanceCounters"]


class PerformanceCounters:
    """Named start/stop interval counters with cycle resolution.

    Counters are keyed by step name (e.g. ``"step1_write_input"``); each
    ``start``/``stop`` pair appends one measured interval.  ``clock_hz``
    converts to cycle counts like the hardware counters would report.

    Besides intervals, the block carries plain *event counters*
    (``increment``/``count``) — the health/fault tallies the hardened
    runtime exposes through its :class:`~repro.soc.runtime.HealthReport`.
    """

    def __init__(self, clock_hz: float = 100e6):
        if clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self._open: Dict[str, List[float]] = {}
        self._intervals: Dict[str, List[Tuple[float, float]]] = {}
        self._events: Dict[str, int] = {}

    def start(self, name: str, now: float) -> None:
        """Latch a start timestamp of counter *name*.

        Re-entrant: starting an already-running counter pushes a nested
        start, and ``stop``/``cancel`` pair LIFO with the most recent
        one.  (Historically a nested ``start`` raised, which left the
        counter's bookkeeping half-updated in the caller's error path
        and silently corrupted later intervals; the tracer builds on
        these counters, so nesting had to become well-defined.)
        """
        self._open.setdefault(name, []).append(now)

    def stop(self, name: str, now: float) -> float:
        """Close the most recent open start; returns the interval in
        seconds.  Raises if the counter is not running."""
        stack = self._open.get(name)
        if not stack:
            raise RuntimeError(f"counter {name!r} was not started")
        begin = stack[-1]
        if now < begin:
            raise ValueError(f"counter {name!r}: stop before start")
        stack.pop()
        if not stack:
            del self._open[name]
        self._intervals.setdefault(name, []).append((begin, now))
        return now - begin

    def cancel(self, name: str) -> None:
        """Discard the most recent open start (watchdog-abandoned
        frame); a clean no-op if the counter is not running."""
        stack = self._open.get(name)
        if stack:
            stack.pop()
            if not stack:
                del self._open[name]

    def open_count(self, name: str) -> int:
        """Currently-open (nested) starts of counter *name*."""
        return len(self._open.get(name, ()))

    # ------------------------------------------------------------------
    # Event counters
    # ------------------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> int:
        """Bump event counter *name* by *n*; returns the new count."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._events[name] = self._events.get(name, 0) + n
        return self._events[name]

    def count(self, name: str) -> int:
        """Current value of event counter *name* (0 if never bumped)."""
        return self._events.get(name, 0)

    def counts(self) -> Dict[str, int]:
        """All event counters (copy)."""
        return dict(self._events)

    # ------------------------------------------------------------------
    def intervals(self, name: str) -> List[Tuple[float, float]]:
        """All recorded (start, stop) pairs of counter *name*."""
        return list(self._intervals.get(name, []))

    def durations(self, name: str) -> List[float]:
        """Recorded durations (seconds) of counter *name*."""
        return [b - a for a, b in self._intervals.get(name, [])]

    def total_cycles(self, name: str) -> int:
        """Sum of counter *name* in clock cycles."""
        return int(round(sum(self.durations(name)) * self.clock_hz))

    def names(self) -> List[str]:
        """All counters that recorded at least one interval."""
        return sorted(self._intervals)

    def reset(self) -> None:
        """Clear all state (intervals, open intervals, event counters)."""
        self._open.clear()
        self._intervals.clear()
        self._events.clear()
