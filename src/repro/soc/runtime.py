"""The operational control loop: hubs → board → controller → ACNET.

:class:`CentralNodeRuntime` is the library form of the deployment the
paper schedules for the Fermilab facility: it owns the hub network
(step 0), the Achilles board (steps 1–8), the trip controller and the
ACNET uplink (step 9), and advances frame by frame on the 3 ms digitizer
grid.

Beyond the happy path, the runtime is *hardened* — a machine-protection
node must degrade loudly, never silently:

* a **watchdog** times out a hung or over-budget frame and emits an
  explicit ``watchdog_timeout`` :class:`FrameRecord` (no trip issued)
  instead of blocking the digitizer grid,
* **last-known-good substitution** patches missing hub slices, bounded
  by a staleness limit after which the frame is declared
  ``stale_inputs`` and no trip is issued,
* **NaN/range guards** on the model output detect corrupted results
  (``corrupt_output``) rather than voting on garbage,
* **ACNET publish retry** with bounded backoff and a dead-letter count,
* a **degraded-mode fallback**: after enough consecutive deadline
  misses / watchdog trips the runtime switches from the primary board
  (the paper's 1.74 ms U-Net) to a fallback board (the 0.31 ms MLP,
  Table 3) and switches back after a healthy streak.

Faults are injected through a :class:`~repro.soc.faults.FaultInjector`;
with no injector and healthy hardware every guard is a pure observer and
the per-frame outputs are bit-identical to the unhardened loop.  The
:class:`HealthReport` summarises fault counts, degradation transitions
and miss/dead-letter rates, backed by the runtime's
:class:`~repro.soc.counters.PerformanceCounters` event counters.

With an injector attached the runtime does not abandon the batched fast
path: it runs a **speculative execution ladder** (``speculation=True``).
The block's raw outputs are precomputed up front anyway, each frame is
validated against the schedule's taint set
(:mod:`repro.soc.taint`), and only frames a fault actually touched —
input-tainted frames, the SEU hit and its propagation window, frames the
hysteresis ladder moved to the fallback engine — are invalidated and
replayed through the sequential reference path.  Timing faults (IP hang,
lost IRQ) and publish faults ride the speculative words: their raw
outputs are bit-identical by construction, only the surrounding
timing/publish behaviour differs.  Records stay bit-identical to the
sequential reference under every schedule (pinned by the chaos matrix in
``tests/test_degradation.py``).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.beamloss.acnet import ACNETLog, ACNETTransportError
from repro.beamloss.controller import TripController, TripDecision
from repro.beamloss.hubs import HubNetwork
from repro.obs import Observability
from repro.soc.board import FRAME_PERIOD_S, AchillesBoard, FrameTiming
from repro.soc.counters import PerformanceCounters
from repro.soc.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FrameFaults,
    FrameHangError,
    fold_health_counters,
)
from repro.soc.taint import (
    CAUSE_FALLBACK,
    CAUSE_INPUT,
    CAUSE_MODEL_STATE,
    classify_events,
    speculation_mask,
)
from repro.utils.rng import SeedLike, default_rng

__all__ = [
    "CentralNodeRuntime",
    "FrameRecord",
    "DegradationPolicy",
    "HealthReport",
    "derive_stream_seeds",
    "ENGINE_PRIMARY",
    "ENGINE_FALLBACK",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_WATCHDOG",
    "STATUS_CORRUPT",
    "STATUS_STALE",
]

#: Engine labels for :attr:`FrameRecord.engine`.
ENGINE_PRIMARY = "primary"
ENGINE_FALLBACK = "fallback"


def derive_stream_seeds(seed: SeedLike, start: int) -> Tuple[int, int]:
    """Derive the per-run ``(hub_seed, board_seed)`` pair.

    The starting frame index is folded into the derivation via a
    :class:`numpy.random.SeedSequence` spawn key, so two successive
    ``run()`` calls on one runtime (different ``start``) draw
    uncorrelated jitter/arrival streams, while re-running the same frame
    range with the same seed stays bit-reproducible.  (Before this
    existed the seeds came from ``seed`` alone and back-to-back calls
    replayed identical streams for different frame ranges.)

    A ``Generator`` is consumed directly — its state already advances
    across calls, which is exactly the caller-managed contract.
    """
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        if isinstance(seed, np.random.SeedSequence):
            child = np.random.SeedSequence(
                entropy=seed.entropy,
                spawn_key=tuple(seed.spawn_key) + (start,))
        else:
            # seed may be None (entropy-seeded): SeedSequence handles it.
            child = np.random.SeedSequence(entropy=seed, spawn_key=(start,))
        rng = default_rng(child)
    return int(rng.integers(0, 2**62)), int(rng.integers(0, 2**62))

#: Frame statuses, ordered from healthy to most degraded.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"          # decided, but on substituted inputs
                                      # or the fallback engine
STATUS_STALE = "stale_inputs"         # hub data too stale → no trip
STATUS_CORRUPT = "corrupt_output"     # NaN/range guard fired → no trip
STATUS_WATCHDOG = "watchdog_timeout"  # frame hung / over budget → no trip


@dataclass(frozen=True)
class FrameRecord:
    """Everything that happened to one digitizer frame.

    A record exists for *every* frame the runtime was handed — degraded,
    timed-out and corrupted frames are flagged, never dropped.
    """

    frame_index: int
    hub_delay_s: float       # step 0: last hub packet arrival
    node_latency_s: float    # steps 1–8
    decision: TripDecision   # step 9 payload (no-trip when abstained)
    status: str = STATUS_OK
    engine: str = ENGINE_PRIMARY
    fault_kinds: Tuple[str, ...] = ()       # injected faults hitting the frame
    substituted_hubs: Tuple[int, ...] = ()  # hubs patched from last-known-good
    publish_attempts: int = 1
    published: bool = True

    @property
    def total_latency_s(self) -> float:
        """Digitizer tick → decision available."""
        return self.hub_delay_s + self.node_latency_s

    @property
    def flagged(self) -> bool:
        """Whether anything other than clean full-path processing
        happened (degraded status, injected fault, fallback engine or a
        failed publish)."""
        return (self.status != STATUS_OK or bool(self.fault_kinds)
                or self.engine != ENGINE_PRIMARY or not self.published)


@dataclass(frozen=True)
class DegradationPolicy:
    """Tunables of the graceful-degradation ladder.

    Parameters
    ----------
    watchdog_s:
        Node-latency budget (steps 1–8) before a frame is declared hung;
        ``None`` uses the digitizer period.
    miss_threshold:
        Consecutive bad frames (deadline miss or watchdog trip) before
        switching to the fallback board.
    recovery_streak:
        Consecutive healthy frames on the fallback before switching back.
    staleness_limit:
        Consecutive frames a hub slice may be substituted from
        last-known-good before the frame is declared ``stale_inputs``.
    max_publish_attempts / publish_backoff_s:
        Bounded-backoff retry for ACNET publishes; exhausting the
        attempts dead-letters the message.
    output_low / output_high:
        Valid range for model outputs (sigmoid probabilities with
        quantization margin); values outside, or non-finite, trip the
        corruption guard.
    """

    watchdog_s: Optional[float] = None
    miss_threshold: int = 3
    recovery_streak: int = 12
    staleness_limit: int = 3
    max_publish_attempts: int = 3
    publish_backoff_s: float = 50e-6
    output_low: float = -0.05
    output_high: float = 1.05

    def __post_init__(self):
        if self.watchdog_s is not None and self.watchdog_s <= 0:
            raise ValueError("watchdog_s must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if self.recovery_streak < 1:
            raise ValueError("recovery_streak must be >= 1")
        if self.staleness_limit < 0:
            raise ValueError("staleness_limit must be >= 0")
        if self.max_publish_attempts < 1:
            raise ValueError("max_publish_attempts must be >= 1")
        if self.publish_backoff_s < 0:
            raise ValueError("publish_backoff_s must be >= 0")
        if self.output_low >= self.output_high:
            raise ValueError("output_low must be < output_high")


@dataclass(frozen=True)
class HealthReport:
    """Aggregated robustness telemetry of a runtime.

    Built from the runtime's :class:`PerformanceCounters` event counters
    plus the record stream; printable via :meth:`render` (the
    ``robustness`` experiment harness prints one).
    """

    frames_total: int
    status_counts: Dict[str, int]
    fault_counts: Dict[str, int]
    engine_frames: Dict[str, int]
    transitions: Tuple[Tuple[int, str, str], ...]
    deadline_miss_rate: float
    watchdog_trips: int
    substituted_slices: int
    publish_retries: int
    dead_letters: int
    dropped_out_of_order: int
    # Speculative-ladder telemetry (zero when speculation never engaged,
    # so pre-existing consumers see unchanged reports).
    frames_speculated: int = 0
    frames_replayed: int = 0
    invalidation_counts: Dict[str, int] = field(default_factory=dict)
    #: Control-quality summary (:class:`repro.plants.ControlQuality`)
    #: when a plant scored the run; ``None`` for plain frame blocks.
    control: Optional[Any] = None

    def render(self) -> str:
        """Multi-line printable summary."""
        lines = ["health report:"]
        lines.append(f"  frames: {self.frames_total}")
        for status in (STATUS_OK, STATUS_DEGRADED, STATUS_STALE,
                       STATUS_CORRUPT, STATUS_WATCHDOG):
            if self.status_counts.get(status):
                lines.append(f"    {status}: {self.status_counts[status]}")
        if self.fault_counts:
            lines.append("  injected faults:")
            for kind in sorted(self.fault_counts):
                lines.append(f"    {kind}: {self.fault_counts[kind]}")
        lines.append(f"  engines: " + ", ".join(
            f"{k}={v}" for k, v in sorted(self.engine_frames.items())))
        if self.transitions:
            lines.append("  degradation transitions:")
            for frame, src, dst in self.transitions:
                lines.append(f"    frame {frame}: {src} -> {dst}")
        if self.frames_speculated or self.frames_replayed:
            lines.append(f"  speculation: {self.frames_speculated} frames "
                         f"rode the fast path, {self.frames_replayed} "
                         f"replayed in-line")
            for cause in sorted(self.invalidation_counts):
                lines.append(
                    f"    invalidated.{cause}: "
                    f"{self.invalidation_counts[cause]}")
        lines.append(f"  deadline miss rate: {self.deadline_miss_rate:.2%}")
        lines.append(f"  watchdog trips: {self.watchdog_trips}")
        lines.append(f"  substituted hub slices: {self.substituted_slices}")
        lines.append(f"  publish retries: {self.publish_retries}, "
                     f"dead letters: {self.dead_letters}, "
                     f"dropped out-of-order: {self.dropped_out_of_order}")
        if self.control is not None:
            lines.extend("  " + line
                         for line in self.control.render().splitlines())
        return "\n".join(lines)


@dataclass
class CentralNodeRuntime:
    """The assembled central node plus its communication fabric.

    Parameters
    ----------
    board:
        The primary :class:`AchillesBoard` (the paper's U-Net design).
    hubs / controller / acnet:
        Substituted for customization; defaults match the facility.
    period_s:
        Digitizer frame period (3 ms).
    fallback_board:
        Optional degraded-mode board (the paper's MLP design, Table 3);
        engaged by the degradation policy, never required.
    injector:
        Optional :class:`FaultInjector`; ``None`` runs fault-free.
    policy:
        The :class:`DegradationPolicy` tunables.
    """

    board: AchillesBoard
    hubs: HubNetwork = field(default_factory=HubNetwork)
    controller: TripController = field(default_factory=TripController)
    acnet: ACNETLog = field(default_factory=ACNETLog)
    period_s: float = FRAME_PERIOD_S
    records: List[FrameRecord] = field(default_factory=list)
    fallback_board: Optional[AchillesBoard] = None
    injector: Optional[FaultInjector] = None
    policy: DegradationPolicy = field(default_factory=DegradationPolicy)
    counters: PerformanceCounters = field(default_factory=PerformanceCounters)
    #: Batched-inference fast path: with no injector attached and the
    #: primary engine active, the whole frame block runs through one
    #: batched ``predict`` and the per-frame ladder consumes precomputed
    #: output words (bit-identical; see docs/performance.md).  Disable to
    #: force the historical frame-at-a-time compute.  Orthogonal to the
    #: graph compiler: a board whose model carries a compiled plan
    #: (``HLSModel.compile``) uses it on both the batched and the
    #: frame-at-a-time path, again without changing a bit.
    batch_inference: bool = True
    #: Speculative fault-aware batching: with an injector attached, still
    #: precompute the block's raw outputs and consume them on every frame
    #: the schedule's taint set leaves clean, replaying only tainted
    #: frames through the in-line reference path (see
    #: :mod:`repro.soc.taint` and docs/robustness.md).  Disable to
    #: restore the historical behaviour — any active schedule forces the
    #: whole block sequential.  Only meaningful with ``batch_inference``;
    #: bit-identical either way.
    speculation: bool = True
    #: Observability bundle (:mod:`repro.obs`): tracer + metrics +
    #: flight recorder.  ``None`` (default) is the zero-cost no-op
    #: path; when attached, every frame emits a nested span tree, the
    #: latency histograms and health counters fill in, and the flight
    #: recorder keeps the last N frames for post-mortems.  Purely
    #: observational: outputs are bit-identical either way.
    obs: Optional[Observability] = None
    #: The :class:`~repro.plants.Plant` this runtime was built for
    #: (``None`` when assembled by hand).  Purely descriptive at this
    #: layer — the facade and the farm use it to drive closed-loop
    #: sessions and attach control-quality scoring.
    plant: Optional[Any] = None

    # Degradation state (persists across run() calls).
    engine: str = field(default=ENGINE_PRIMARY, init=False)
    transitions: List[Tuple[int, str, str]] = field(default_factory=list,
                                                    init=False)
    _consecutive_bad: int = field(default=0, init=False, repr=False)
    _healthy_streak: int = field(default=0, init=False, repr=False)
    _last_good: Optional[np.ndarray] = field(default=None, init=False,
                                             repr=False)
    _lkg_valid: Optional[np.ndarray] = field(default=None, init=False,
                                             repr=False)
    _hub_stale: Optional[np.ndarray] = field(default=None, init=False,
                                             repr=False)
    _last_sent_at: float = field(default=-np.inf, init=False, repr=False)
    # Model-state taint carried across frames (and run() calls): True
    # from an SEU hit until an in-line frame completes un-hung with no
    # new hit, fully rewriting both RAM spans (the scrub).
    _model_tainted: bool = field(default=False, init=False, repr=False)

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.obs is not None:
            self.attach_observability(self.obs)

    # ------------------------------------------------------------------
    def attach_observability(self, obs: Optional[Observability]) -> None:
        """Attach (or detach, with ``None``) an observability bundle.

        Threads the tracer into both boards and — when the config asks
        for kernel-level detail — into their HLS models, so the whole
        inference path reports into one span tree.

        The kernel tracer is *always* assigned (to the new tracer or to
        ``None``), never conditionally left alone: re-attaching a bundle
        with ``trace_kernels=False`` after one with ``trace_kernels=True``
        must clear the old bundle's tracer from the HLS models, or the
        detached bundle keeps silently receiving kernel spans.
        """
        self.obs = obs
        tracer = obs.tracer if obs is not None else None
        kernel_tracer = (tracer if (obs is not None
                                    and obs.config.trace_kernels) else None)
        boards = [self.board] + (
            [self.fallback_board] if self.fallback_board is not None else [])
        for board in boards:
            board.tracer = tracer
            board.ip.hls_model.tracer = kernel_tracer

    # ------------------------------------------------------------------
    @property
    def watchdog_s(self) -> float:
        """Resolved watchdog budget (policy override or frame period)."""
        return (self.policy.watchdog_s if self.policy.watchdog_s is not None
                else self.period_s)

    def _board_for(self, engine: str) -> AchillesBoard:
        if engine == ENGINE_FALLBACK and self.fallback_board is not None:
            return self.fallback_board
        return self.board

    def _switch_engine(self, frame_index: int, target: str) -> None:
        self.transitions.append((frame_index, self.engine, target))
        self.counters.increment("degrade.transition")
        self.engine = target
        self._consecutive_bad = 0
        self._healthy_streak = 0

    # ------------------------------------------------------------------
    # Hub-level fault resolution
    # ------------------------------------------------------------------
    def _resolve_hub(self, event: FaultEvent) -> int:
        """Map a hub-fault event to a concrete hub index."""
        if event.target >= 0:
            return event.target % self.hubs.n_hubs
        frac = event.value if event.kind is FaultKind.HUB_DROP else float(
            event.detail or 0.0)
        return min(int(frac * self.hubs.n_hubs), self.hubs.n_hubs - 1)

    def _hub_fault_arrays(self, schedule, start: int,
                          n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(frame, hub) extra delays and drop mask from a schedule."""
        extra = np.zeros((n, self.hubs.n_hubs))
        drops = np.zeros((n, self.hubs.n_hubs), dtype=bool)
        for i in range(n):
            for e in schedule.for_frame(start + i):
                if e.kind is FaultKind.HUB_DELAY:
                    extra[i, self._resolve_hub(e)] += e.value
                elif e.kind is FaultKind.HUB_DROP:
                    drops[i, self._resolve_hub(e)] = True
        return extra, drops

    # ------------------------------------------------------------------
    def run(self, frames: np.ndarray, seed: SeedLike = 0) -> List[FrameRecord]:
        """Process a stretch of frames on the digitizer grid.

        *frames* are standardized model inputs, one per 3 ms tick.
        Returns (and appends to :attr:`records`) one :class:`FrameRecord`
        per frame — every frame, including hung/degraded ones; decisions
        are published to ACNET in tick order with bounded retry.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got {frames.shape}")
        n = frames.shape[0]
        start = len(self.records)
        hub_seed, board_seed = derive_stream_seeds(seed, start)

        schedule = (self.injector.plan(start, n)
                    if self.injector is not None else None)
        if schedule is not None:
            extra_delay, drop_mask = self._hub_fault_arrays(schedule, start, n)
            arrivals = self.hubs.faulted_arrival_times(
                n, seed=hub_seed, extra_delay_s=extra_delay,
                drop_mask=drop_mask)
        else:
            arrivals = self.hubs.arrival_times(n, seed=hub_seed)
        # OS jitter is always drawn from the primary board's model so the
        # stream (and fault-free behaviour) is independent of fallback
        # engagement.
        jitters = self.board.jitter.sample(n, rng=board_seed)

        n_hubs = self.hubs.n_hubs
        if self._hub_stale is None:
            self._hub_stale = np.zeros(n_hubs, dtype=np.int64)
            self._lkg_valid = np.zeros(n_hubs, dtype=bool)
        spans = self.hubs.spans()
        # Pacing anchors: one per board, captured the first time the
        # board runs in this call (matches AchillesBoard.run(paced=True)).
        anchors: Dict[int, float] = {}

        # Batched fast path: with no fault schedule and the primary
        # engine active, one batched predict covers the whole block; the
        # per-frame ladder below then consumes precomputed output words.
        # Frames that land on the fallback engine (hysteresis can engage
        # mid-block even fault-free, e.g. on jitter-spike deadline
        # misses) drop back to in-line compute frame by frame.
        #
        # With a schedule active and ``speculation`` enabled the block is
        # precomputed *anyway*, masked by the schedule's static taint set
        # (rows a fault is known to invalidate are never computed); the
        # per-frame ladder then re-validates dynamically and replays only
        # tainted frames through the in-line reference.
        obs = self.obs
        precomputed: Optional[np.ndarray] = None
        speculative = False
        spec_valid: Optional[np.ndarray] = None
        if (self.batch_inference and n > 0
                and (self.fallback_board is None
                     or self.engine == ENGINE_PRIMARY)):
            if schedule is None:
                if obs is None:
                    precomputed = self.board.ip.precompute_raw_outputs(frames)
                else:
                    with obs.tracer.span("batch_precompute", frames=n):
                        precomputed = self.board.ip.precompute_raw_outputs(
                            frames)
            elif self.speculation:
                speculative = True
                spec_valid = speculation_mask(
                    schedule, start, n, model_tainted=self._model_tainted)
                if obs is None:
                    precomputed = self.board.ip.precompute_raw_outputs(
                        frames, valid_mask=spec_valid)
                else:
                    with obs.tracer.span(
                            "spec_precompute", frames=n,
                            masked=int(n - int(spec_valid.sum()))):
                        precomputed = self.board.ip.precompute_raw_outputs(
                            frames, valid_mask=spec_valid)

        new_records = []
        for i in range(n):
            fi = start + i
            events = schedule.for_frame(fi) if schedule is not None else ()
            for e in events:
                self.counters.increment(f"fault.{e.kind.value}")
            fault_kinds = tuple(sorted({e.kind.value for e in events}))

            # Frame validation ladder: decide whether this frame may
            # consume its precomputed raw row, and if not, why.  The
            # in-line replay is the unmodified sequential reference, so
            # an invalidated frame is bit-identical by construction; a
            # consuming frame is bit-identical because its input vector
            # is untouched (no input taint) and the board's timing and
            # RAM traffic are the same either way.
            use_batched = False
            invalidation_cause: Optional[str] = None
            if precomputed is not None:
                on_primary = (self.fallback_board is None
                              or self.engine == ENGINE_PRIMARY)
                if not speculative:
                    use_batched = not events and on_primary
                else:
                    taint = classify_events(events)
                    if not on_primary:
                        # Hysteresis moved us to the fallback engine: the
                        # precomputed rows are the primary model's words.
                        # Recovery mid-block re-engages speculation for
                        # free — rows are index-addressed and the mask
                        # never depended on engine state.
                        invalidation_cause = CAUSE_FALLBACK
                    elif self._model_tainted or taint.model_state:
                        invalidation_cause = CAUSE_MODEL_STATE
                    elif taint.input:
                        invalidation_cause = CAUSE_INPUT
                    elif not spec_valid[i]:
                        # Statically masked row (SEU propagation window
                        # whose dynamic taint already cleared): the row
                        # was never computed, so it cannot be consumed.
                        invalidation_cause = CAUSE_MODEL_STATE
                    else:
                        use_batched = True
            if use_batched:
                self.counters.increment("frame.batched")
                if speculative:
                    self.counters.increment("spec.speculated")
            elif speculative:
                self.counters.increment("spec.replayed")
                self.counters.increment(
                    f"spec.invalidated.{invalidation_cause}")
            raw_i = precomputed[i] if use_batched else None
            if obs is None:
                record = self._process_one(
                    fi, i, frames[i], arrivals[i], float(jitters[i]),
                    events, fault_kinds, spans, anchors,
                    precomputed_raw=raw_i,
                )
            else:
                tick0 = fi * self.period_s
                with obs.tracer.span("frame", frame=fi, sim_t0=tick0) as sp:
                    record = self._process_one(
                        fi, i, frames[i], arrivals[i], float(jitters[i]),
                        events, fault_kinds, spans, anchors,
                        precomputed_raw=raw_i,
                    )
                    sp.sim_t1 = tick0 + record.total_latency_s
                    sp.attrs["status"] = record.status
                    sp.attrs["engine"] = record.engine
            new_records.append(record)
            self.counters.increment(f"frame.{record.status}")

            # Model-state taint propagation: an SEU hit poisons the
            # on-chip RAMs from this frame forward; a later *in-line*
            # frame that completes un-hung rewrites both RAM spans in
            # full and scrubs the taint.  A consuming (batched) frame or
            # a watchdog-abandoned frame never scrubs — conservatively
            # keep the taint alive, which costs a replay, never a bit.
            if any(e.kind is FaultKind.SEU for e in events):
                self._model_tainted = True
            elif (self._model_tainted and not use_batched
                    and record.status != STATUS_WATCHDOG):
                self._model_tainted = False

            if obs is not None:
                self._observe_frame(record, obs)
        self.records.extend(new_records)
        return new_records

    # ------------------------------------------------------------------
    def _process_one(self, fi: int, i: int, frame: np.ndarray,
                     arrival_row: np.ndarray, jitter_s: float,
                     events: Tuple[FaultEvent, ...],
                     fault_kinds: Tuple[str, ...],
                     spans, anchors: Dict[int, float],
                     precomputed_raw: Optional[np.ndarray] = None
                     ) -> FrameRecord:
        """One frame through the full degradation ladder."""
        policy = self.policy
        arrived = np.isfinite(arrival_row)
        has_hub_faults = not arrived.all() or any(
            e.kind in (FaultKind.STUCK_MONITOR, FaultKind.NOISY_MONITOR)
            for e in events)

        fvec = frame
        if has_hub_faults:
            if frame.shape[-1] != self.hubs.n_monitors:
                raise ValueError(
                    f"hub/monitor faults need frames with "
                    f"{self.hubs.n_monitors} monitors, got {frame.shape[-1]}"
                )
            fvec = frame.copy()
            # Monitor faults corrupt the *received* data (the physical
            # channel is broken) before any substitution bookkeeping.
            for e in events:
                if e.kind is FaultKind.STUCK_MONITOR:
                    fvec[e.target % fvec.size] = e.value
                elif e.kind is FaultKind.NOISY_MONITOR:
                    fvec[e.target % fvec.size] += e.value

        # Last-known-good substitution for missing hub slices.  The
        # bookkeeping only runs under an injector so the fault-free path
        # stays allocation-free (and bit-identical to the plain loop).
        substituted: List[int] = []
        stale = False
        track_lkg = (self.injector is not None
                     and frame.shape[-1] == self.hubs.n_monitors)
        if not arrived.all():
            for h in np.nonzero(~arrived)[0]:
                self._hub_stale[h] += 1
                a, b = spans[h]
                if (track_lkg and self._lkg_valid[h]
                        and self._hub_stale[h] <= policy.staleness_limit):
                    fvec[a:b] = self._last_good[a:b]
                    substituted.append(int(h))
                    self.counters.increment("hub.substituted")
                else:
                    stale = True
                    self.counters.increment("hub.stale")
        if track_lkg:
            if self._last_good is None:
                self._last_good = np.zeros(self.hubs.n_monitors)
            for h in np.nonzero(arrived)[0]:
                self._hub_stale[h] = 0
                a, b = spans[h]
                self._last_good[a:b] = fvec[a:b]
                self._lkg_valid[h] = True
        else:
            self._hub_stale[arrived] = 0

        # Step 0 completion: the last *arrived* packet.  With every hub
        # lost the node has nothing to wait for — charge the period.
        if arrived.any():
            hub_delay = float(arrival_row[arrived].max())
        else:
            hub_delay = self.period_s
            stale = True
        obs = self.obs
        if obs is not None:
            tick0 = fi * self.period_s
            obs.tracer.record("hub_readout", frame=fi, sim_t0=tick0,
                              sim_t1=tick0 + hub_delay,
                              arrived=int(arrived.sum()),
                              substituted=len(substituted))

        # Steps 1–8 on the active engine, paced to the digitizer grid.
        engine = self.engine if self.fallback_board is not None else ENGINE_PRIMARY
        board = self._board_for(engine)
        base = anchors.setdefault(id(board), board.sim.now)
        tick = base + i * self.period_s
        if board.sim.now < tick:
            board.sim.advance(tick - board.sim.now)

        frame_faults = FrameFaults.from_events(events)
        hung = False
        output: Optional[np.ndarray] = None
        timing: Optional[FrameTiming] = None
        try:
            timing = board.process_frame(fvec, jitter_s=jitter_s,
                                         faults=frame_faults,
                                         precomputed_raw=precomputed_raw)
            node_latency = float(timing.total)
            if node_latency > self.watchdog_s:
                # Over-budget frame: the watchdog abandons it at the
                # budget boundary rather than blocking the grid.
                hung = True
                node_latency = self.watchdog_s
            else:
                output = board.last_output()
        except FrameHangError:
            board.recover()
            hung = True
            node_latency = self.watchdog_s
        if hung:
            self.counters.increment("watchdog.trip")

        if obs is not None and timing is not None and not hung:
            m = obs.metrics
            for stage, dur in (("preprocess", timing.preprocess),
                               ("write_input", timing.write_input),
                               ("trigger", timing.trigger),
                               ("ip_compute", timing.ip_compute),
                               ("irq", timing.irq),
                               ("read_output", timing.read_output),
                               ("postprocess", timing.postprocess),
                               ("jitter", timing.jitter)):
                m.observe(f"stage.{stage}_s", dur)

        total_latency = hub_delay + node_latency

        if obs is not None:
            _w_decide = _time.perf_counter()

        # Decision ladder: watchdog > stale inputs > corruption guard >
        # degraded > ok.
        if hung:
            status = STATUS_WATCHDOG
            decision = self.controller.abstain(frame_index=fi,
                                               latency_s=total_latency)
        elif stale:
            status = STATUS_STALE
            decision = self.controller.abstain(frame_index=fi,
                                               latency_s=total_latency)
        elif not self._output_valid(output):
            status = STATUS_CORRUPT
            self.counters.increment("guard.corrupt_output")
            decision = self.controller.abstain(frame_index=fi,
                                               latency_s=total_latency)
        else:
            status = (STATUS_DEGRADED
                      if substituted or engine != ENGINE_PRIMARY
                      else STATUS_OK)
            decision = self.controller.decide(output, latency_s=total_latency,
                                              frame_index=fi)

        if obs is not None:
            obs.tracer.record("decide", frame=fi, wall_t0=_w_decide,
                              status=status,
                              machine=decision.machine)
            _w_publish = _time.perf_counter()

        attempts, published = self._publish(decision, events,
                                            fi * self.period_s + total_latency)
        if obs is not None:
            obs.tracer.record("publish", frame=fi, wall_t0=_w_publish,
                              attempts=attempts, published=published)

        # Degradation ladder bookkeeping + hysteresis.
        bad = hung or not decision.deadline_met
        if bad:
            self._consecutive_bad += 1
            self._healthy_streak = 0
        else:
            self._healthy_streak += 1
            self._consecutive_bad = 0
        if self.fallback_board is not None:
            if (self.engine == ENGINE_PRIMARY
                    and self._consecutive_bad >= self.policy.miss_threshold):
                self._switch_engine(fi, ENGINE_FALLBACK)
            elif (self.engine == ENGINE_FALLBACK
                    and self._healthy_streak >= self.policy.recovery_streak):
                self._switch_engine(fi, ENGINE_PRIMARY)

        return FrameRecord(
            frame_index=fi,
            hub_delay_s=hub_delay,
            node_latency_s=node_latency,
            decision=decision,
            status=status,
            engine=engine,
            fault_kinds=fault_kinds,
            substituted_hubs=tuple(substituted),
            publish_attempts=attempts,
            published=published,
        )

    # ------------------------------------------------------------------
    def _observe_frame(self, record: FrameRecord, obs: Observability) -> None:
        """Fold one processed frame into the observability bundle.

        Pure observer: reads the record, the counters and the tracer's
        finished spans; never touches the datapath or any RNG stream.
        """
        m = obs.metrics
        m.inc("frames.total")
        m.inc(f"frames.status.{record.status}")
        m.inc(f"frames.engine.{record.engine}")
        if not record.decision.deadline_met:
            m.inc("frames.deadline_miss")
        m.observe("latency.total_s", record.total_latency_s)
        m.observe("latency.hub_s", record.hub_delay_s)
        m.observe("latency.node_s", record.node_latency_s)
        m.set_gauge("engine.fallback_active",
                    1.0 if self.engine == ENGINE_FALLBACK else 0.0)
        m.set_gauge("degrade.consecutive_bad", float(self._consecutive_bad))
        fold_health_counters(self.counters, m)

        entry = {
            "frame": record.frame_index,
            "status": record.status,
            "engine": record.engine,
            "hub_ms": round(record.hub_delay_s * 1e3, 6),
            "node_ms": round(record.node_latency_s * 1e3, 6),
            "total_ms": round(record.total_latency_s * 1e3, 6),
            "deadline_met": record.decision.deadline_met,
            "machine": record.decision.machine,
            "faults": list(record.fault_kinds),
            "substituted_hubs": [int(h) for h in record.substituted_hubs],
            "published": record.published,
            "publish_attempts": record.publish_attempts,
            "spans": [s.to_dict()
                      for s in obs.tracer.frame_spans(record.frame_index)],
        }
        obs.recorder.append(entry)
        if record.status in (STATUS_WATCHDOG, STATUS_CORRUPT):
            postmortem = obs.recorder.mark_trip(record.status,
                                                record.frame_index)
            if obs.config.dump_path:
                obs.recorder.dump(obs.config.dump_path, postmortem)

    # ------------------------------------------------------------------
    def _output_valid(self, output: Optional[np.ndarray]) -> bool:
        """NaN/range guard: sigmoid probabilities with margin."""
        if output is None:
            return False
        if not np.isfinite(output).all():
            return False
        return bool((output >= self.policy.output_low).all()
                    and (output <= self.policy.output_high).all())

    def _publish(self, decision: TripDecision,
                 events: Tuple[FaultEvent, ...],
                 sent_at_s: float) -> Tuple[int, bool]:
        """Publish with bounded-backoff retry; returns (attempts, ok)."""
        injected = sum(int(e.value) for e in events
                       if e.kind is FaultKind.ACNET_FAIL)
        if injected:
            self.acnet.inject_failures(injected)
        attempts = 0
        published = False
        sent_at = sent_at_s
        while attempts < self.policy.max_publish_attempts:
            attempts += 1
            try:
                # The uplink serializes messages: a decision computed
                # "before" the previous send (degraded timing) queues
                # behind it rather than violating ACNET ordering.
                self.acnet.publish(decision,
                                   sent_at_s=max(sent_at, self._last_sent_at))
                published = True
                break
            except ACNETTransportError:
                self.counters.increment("acnet.retry")
                sent_at += self.policy.publish_backoff_s * attempts
        if published:
            self._last_sent_at = max(sent_at, self._last_sent_at)
        else:
            self.counters.increment("acnet.dead_letter")
            # Clear any leftover injected failures so they cannot leak
            # into the next frame's publish.
            self.acnet.inject_failures(0)
        return attempts, published

    # ------------------------------------------------------------------
    def health_report(self) -> HealthReport:
        """Aggregate robustness telemetry over all processed frames."""
        status_counts: Dict[str, int] = {}
        engine_frames: Dict[str, int] = {}
        for r in self.records:
            status_counts[r.status] = status_counts.get(r.status, 0) + 1
            engine_frames[r.engine] = engine_frames.get(r.engine, 0) + 1
        fault_counts = {
            name[len("fault."):]: count
            for name, count in self.counters.counts().items()
            if name.startswith("fault.")
        }
        invalidation_counts = {
            name[len("spec.invalidated."):]: count
            for name, count in self.counters.counts().items()
            if name.startswith("spec.invalidated.")
        }
        misses = sum(1 for r in self.records if not r.decision.deadline_met)
        return HealthReport(
            frames_total=len(self.records),
            status_counts=status_counts,
            fault_counts=fault_counts,
            engine_frames=engine_frames,
            transitions=tuple(self.transitions),
            deadline_miss_rate=misses / max(len(self.records), 1),
            watchdog_trips=self.counters.count("watchdog.trip"),
            substituted_slices=self.counters.count("hub.substituted"),
            publish_retries=self.counters.count("acnet.retry"),
            dead_letters=self.counters.count("acnet.dead_letter"),
            dropped_out_of_order=self.acnet.dropped_out_of_order,
            frames_speculated=self.counters.count("spec.speculated"),
            frames_replayed=self.counters.count("spec.replayed"),
            invalidation_counts=invalidation_counts,
        )

    # ------------------------------------------------------------------
    @property
    def total_latencies_s(self) -> np.ndarray:
        """Tick-to-decision latency of every processed frame."""
        return np.array([r.total_latency_s for r in self.records])

    def deadline_compliance(self, deadline_s: Optional[float] = None) -> float:
        """Fraction of frames decided inside the deadline (default: the
        digitizer period)."""
        if not self.records:
            return 1.0
        deadline = deadline_s if deadline_s is not None else self.period_s
        return float((self.total_latencies_s <= deadline).mean())

    def decisions(self) -> List[TripDecision]:
        """All decisions in frame order."""
        return [r.decision for r in self.records]
