"""The operational control loop: hubs → board → controller → ACNET.

:class:`CentralNodeRuntime` is the library form of the deployment the
paper schedules for the Fermilab facility: it owns the hub network
(step 0), the Achilles board (steps 1–8), the trip controller and the
ACNET uplink (step 9), and advances frame by frame on the 3 ms digitizer
grid.  The examples and the controller-level tests drive this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.beamloss.acnet import ACNETLog
from repro.beamloss.controller import TripController, TripDecision
from repro.beamloss.hubs import HubNetwork
from repro.soc.board import FRAME_PERIOD_S, AchillesBoard
from repro.utils.rng import SeedLike, default_rng

__all__ = ["CentralNodeRuntime", "FrameRecord"]


@dataclass(frozen=True)
class FrameRecord:
    """Everything that happened to one digitizer frame."""

    frame_index: int
    hub_delay_s: float       # step 0: last hub packet arrival
    node_latency_s: float    # steps 1–8
    decision: TripDecision   # step 9 payload

    @property
    def total_latency_s(self) -> float:
        """Digitizer tick → decision available."""
        return self.hub_delay_s + self.node_latency_s


@dataclass
class CentralNodeRuntime:
    """The assembled central node plus its communication fabric.

    Parameters
    ----------
    board:
        An :class:`AchillesBoard` programmed with the de-blending IP.
    hubs / controller / acnet:
        Substituted for customization; defaults match the facility.
    period_s:
        Digitizer frame period (3 ms).
    """

    board: AchillesBoard
    hubs: HubNetwork = field(default_factory=HubNetwork)
    controller: TripController = field(default_factory=TripController)
    acnet: ACNETLog = field(default_factory=ACNETLog)
    period_s: float = FRAME_PERIOD_S
    records: List[FrameRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    # ------------------------------------------------------------------
    def run(self, frames: np.ndarray, seed: SeedLike = 0) -> List[FrameRecord]:
        """Process a stretch of frames on the digitizer grid.

        *frames* are standardized 260-value model inputs, one per 3 ms
        tick.  Returns (and appends to :attr:`records`) one
        :class:`FrameRecord` per frame; decisions are published to ACNET
        in tick order.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got {frames.shape}")
        rng = default_rng(seed)
        hub_delays = self.hubs.frame_complete_times(
            frames.shape[0], seed=int(rng.integers(0, 2**62))
        )
        result = self.board.run(frames, seed=int(rng.integers(0, 2**62)),
                                paced=True, period_s=self.period_s)
        start = len(self.records)
        new_records = []
        for i, timing in enumerate(result.timings):
            total = hub_delays[i] + timing.total
            decision = self.controller.decide(
                result.outputs[i], latency_s=total,
                frame_index=start + i,
            )
            self.acnet.publish(
                decision,
                sent_at_s=(start + i) * self.period_s + total,
            )
            record = FrameRecord(
                frame_index=start + i,
                hub_delay_s=float(hub_delays[i]),
                node_latency_s=float(timing.total),
                decision=decision,
            )
            new_records.append(record)
        self.records.extend(new_records)
        return new_records

    # ------------------------------------------------------------------
    @property
    def total_latencies_s(self) -> np.ndarray:
        """Tick-to-decision latency of every processed frame."""
        return np.array([r.total_latency_s for r in self.records])

    def deadline_compliance(self, deadline_s: Optional[float] = None) -> float:
        """Fraction of frames decided inside the deadline (default: the
        digitizer period)."""
        if not self.records:
            return 1.0
        deadline = deadline_s if deadline_s is not None else self.period_s
        return float((self.total_latencies_s <= deadline).mean())

    def decisions(self) -> List[TripDecision]:
        """All decisions in frame order."""
        return [r.decision for r in self.records]
