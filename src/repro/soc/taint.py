"""Fault-taint model: which state can each fault class corrupt?

The batched fast path exists because the raw output words of a frame are
a pure function of the frame's input vector and the model — so a whole
block can be precomputed up front.  A fault breaks that purity in one of
exactly four ways, and the speculative execution ladder
(:class:`~repro.soc.runtime.CentralNodeRuntime` with ``speculation=True``)
keys every invalidation decision off this classification:

=============  ====================================  =====================
taint class    fault kinds                           corrupted state
=============  ====================================  =====================
INPUT          hub drop/delay, stuck/noisy monitor   this frame's input
                                                     vector (drops engage
                                                     last-known-good
                                                     substitution, monitor
                                                     faults rewrite
                                                     channels) — the
                                                     precomputed raw words
                                                     no longer describe
                                                     what the IP would see
MODEL_STATE    RAM SEU                               the on-chip buffers:
                                                     every frame from the
                                                     hit onward is suspect
                                                     until an in-line
                                                     frame has rewritten
                                                     the full RAM span
                                                     (the scrub)
TIMING         IP hang, lost IRQ                     deadlines, watchdog
                                                     and IRQ behaviour —
                                                     but **not** the raw
                                                     output words, which
                                                     stay bit-identical
POST           ACNET publish failure                 the uplink only; raw
                                                     outputs remain valid
=============  ====================================  =====================

Only INPUT and MODEL_STATE taint invalidate a precomputed raw row:
TIMING-tainted frames ride the speculative words through the unchanged
event-driven timing simulation (an over-budget or IRQ-less frame hangs
identically either way), and POST-tainted frames are pure publish-path
events.  ``HubDelayFault`` is classified as INPUT taint even though the
current hub model delivers the same payload late — in a fielded readout
chain a delayed packet may carry a different digitizer snapshot, and the
conservative class keeps the taint model honest if the hub model grows
that behaviour.

The MODEL_STATE propagation horizon is grounded in the board's buffer
design: both on-chip RAMs are rewritten over their full frame span every
frame (``AchillesBoard.process_frame`` writes ``n_inputs`` words, the IP
writes ``n_outputs`` words), so one completed in-line frame *after* the
hit scrubs the upset.  The hit frame itself cannot scrub — its input
upset lands after the HPS write and its output upset after the compute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.soc.faults import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "TaintClass",
    "FrameTaint",
    "TAINT_OF",
    "CAUSE_INPUT",
    "CAUSE_MODEL_STATE",
    "CAUSE_FALLBACK",
    "INVALIDATION_CAUSES",
    "classify_events",
    "taint_of",
    "speculation_mask",
]


class TaintClass(enum.Enum):
    """What a fault can corrupt (see the module table)."""

    INPUT = "input"              # this frame's input vector
    MODEL_STATE = "model_state"  # on-chip RAM state, hit frame onward
    TIMING = "timing"            # deadlines/IRQ only; raw words valid
    POST = "post"                # publish path only; raw words valid


#: Every :class:`FaultKind` maps to exactly one taint class; the
#: exhaustiveness is pinned by ``tests/test_faults.py`` so a new fault
#: kind cannot silently default to "speculation-safe".
TAINT_OF: Dict[FaultKind, TaintClass] = {
    FaultKind.HUB_DROP: TaintClass.INPUT,
    FaultKind.HUB_DELAY: TaintClass.INPUT,
    FaultKind.STUCK_MONITOR: TaintClass.INPUT,
    FaultKind.NOISY_MONITOR: TaintClass.INPUT,
    FaultKind.SEU: TaintClass.MODEL_STATE,
    FaultKind.IP_HANG: TaintClass.TIMING,
    FaultKind.LOST_IRQ: TaintClass.TIMING,
    FaultKind.ACNET_FAIL: TaintClass.POST,
}

#: Invalidation-cause labels used in ``spec.invalidated.<cause>``
#: counters and :attr:`HealthReport.invalidation_counts`.  ``fallback``
#: is not a taint class: it marks frames the hysteresis ladder moved to
#: the fallback engine, whose precomputed (primary-model) rows are
#: therefore the wrong model's outputs.
CAUSE_INPUT = TaintClass.INPUT.value
CAUSE_MODEL_STATE = TaintClass.MODEL_STATE.value
CAUSE_FALLBACK = "fallback"
INVALIDATION_CAUSES: Tuple[str, ...] = (CAUSE_INPUT, CAUSE_MODEL_STATE,
                                        CAUSE_FALLBACK)


def taint_of(kind: FaultKind) -> TaintClass:
    """The taint class of one fault kind (raises on an unmapped kind)."""
    try:
        return TAINT_OF[kind]
    except KeyError:  # pragma: no cover - enum and map move together
        raise KeyError(f"fault kind {kind!r} has no taint classification; "
                       f"extend repro.soc.taint.TAINT_OF")


@dataclass(frozen=True)
class FrameTaint:
    """The taint set of one frame's fault events."""

    input: bool = False
    model_state: bool = False
    timing: bool = False
    post: bool = False

    @property
    def invalidates_raw(self) -> bool:
        """Whether the frame's precomputed raw row must be discarded
        (MODEL_STATE forward propagation is the runtime's job — this is
        the hit-frame view only)."""
        return self.input or self.model_state

    @property
    def clean(self) -> bool:
        return not (self.input or self.model_state or self.timing
                    or self.post)


def classify_events(events: Sequence[FaultEvent]) -> FrameTaint:
    """Fold one frame's fault events into its :class:`FrameTaint`."""
    if not events:
        return _CLEAN
    flags = {c: False for c in TaintClass}
    for e in events:
        flags[taint_of(e.kind)] = True
    return FrameTaint(
        input=flags[TaintClass.INPUT],
        model_state=flags[TaintClass.MODEL_STATE],
        timing=flags[TaintClass.TIMING],
        post=flags[TaintClass.POST],
    )


_CLEAN = FrameTaint()


def speculation_mask(schedule: FaultSchedule, start: int, n: int,
                     model_tainted: bool = False) -> np.ndarray:
    """Static raw-validity mask for a speculative block, shape ``(n,)``.

    ``mask[i]`` is True when frame ``start + i``'s precomputed raw row
    is *worth computing*: no INPUT or MODEL_STATE taint lands on the
    frame, and it is not inside the statically-known propagation window
    of an earlier SEU hit (the hit frame plus one — the first post-hit
    frame always replays in-line, and its completed pass is the scrub).
    ``model_tainted`` marks taint carried in from a previous block, which
    masks frame 0 (its in-line replay scrubs).

    The mask is an *optimization bound*, not the correctness gate: the
    runtime re-validates every frame dynamically (a scrub frame that
    hangs keeps the taint alive past the static window) and only ever
    consumes rows the mask requested — so a dynamically-extended taint
    costs a wasted precomputed row, never a corrupt one.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    mask = np.ones(n, dtype=bool)
    if model_tainted and n:
        mask[0] = False
    for i in range(n):
        taint = classify_events(schedule.for_frame(start + i))
        if taint.invalidates_raw:
            mask[i] = False
        if taint.model_state and i + 1 < n:
            mask[i + 1] = False  # the designated scrub frame
    return mask
