"""The neural-network IP core on the fabric.

Wraps a converted :class:`~repro.hls.model.HLSModel`: when triggered it
*actually reads* the raw 16-bit words from the input buffer, dequantizes
them onto the input stream grid, runs the bit-accurate fixed-point
forward pass, quantizes the results into the output buffer's words, and
reports a completion time from the cycle-accurate latency model.  The
simulated board therefore produces outputs bit-identical to the HLS
C-simulation — the equivalence the paper's on-board verification checks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fixed import FixedPointFormat, from_raw, to_raw
from repro.hls.latency import LatencyReport, estimate_latency
from repro.hls.model import HLSModel
from repro.soc.ocram import DualPortRAM

__all__ = ["NeuralIPCore", "BATCH_BLOCK_FRAMES"]

#: Frames per batched forward pass in :meth:`NeuralIPCore.precompute_raw_outputs`.
#: Chunking keeps the intermediate tensors cache-resident — one huge batch
#: is *slower* than a per-frame loop once the working set spills out of
#: LLC.  Chunk size does not affect the results: products and sums are
#: exact in float64, so any split is bit-identical (see
#: docs/performance.md).
BATCH_BLOCK_FRAMES = 32


class NeuralIPCore:
    """Memory-mapped-host neural IP (the paper's modified hls4ml IP).

    Parameters
    ----------
    hls_model:
        The converted fixed-point model to execute.
    input_ram / output_ram:
        The on-chip buffers the IP's Avalon MM host ports read/write.
    latency:
        Optional pre-computed latency report (estimated on demand).
    """

    def __init__(self, hls_model: HLSModel, input_ram: DualPortRAM,
                 output_ram: DualPortRAM,
                 latency: Optional[LatencyReport] = None,
                 name: str = "nn_ip"):
        self.name = name
        self.hls_model = hls_model
        self.input_ram = input_ram
        self.output_ram = output_ram
        self.latency = latency or estimate_latency(hls_model)
        self.runs = 0

        self._n_in = int(np.prod(hls_model.input_shape))
        self._n_out = int(np.prod(hls_model.output_shape))
        if input_ram.n_words < self._n_in:
            raise ValueError(
                f"input RAM too small: {input_ram.n_words} < {self._n_in}"
            )
        if output_ram.n_words < self._n_out:
            raise ValueError(
                f"output RAM too small: {output_ram.n_words} < {self._n_out}"
            )
        # Buffer word format = the model's input/output stream formats.
        self.input_format = self._stream_format(hls_model.kernels[0])
        self.output_format = self._stream_format(hls_model.kernels[-1])

    @staticmethod
    def _stream_format(kernel) -> FixedPointFormat:
        fmt = kernel.config.result
        if fmt.width > 16:
            # The buffers have 16-bit IP-side ports; wider stream formats
            # transfer their top 16 bits (width-preserving designs keep
            # result widths ≤ 16 on the boundary layers).
            fmt = fmt.with_(width=16, integer=min(fmt.integer, 16))
        return fmt

    # ------------------------------------------------------------------
    @property
    def compute_latency_s(self) -> float:
        """IP busy time per frame from the cycle model."""
        return self.latency.latency_s

    def run(self, extra_busy_s: float = 0.0,
            precomputed_raw: Optional[np.ndarray] = None) -> float:
        """Execute one frame: buffer → network → buffer.

        Returns the IP busy time in seconds (the caller schedules the
        done pulse after it).  ``extra_busy_s`` is the fault-injection
        hook: an :class:`~repro.soc.faults.IPHangFault` inflates the busy
        time past the watchdog budget without touching the datapath.

        ``precomputed_raw`` is the batched-inference fast path: raw
        output words already computed by :meth:`precompute_raw_outputs`
        for this frame.  The forward pass is skipped and the words are
        written straight to the output buffer — bit-identical to the
        in-line compute (asserted by the fast-path tests), with identical
        busy-time accounting.
        """
        if extra_busy_s < 0:
            raise ValueError(f"extra_busy_s must be >= 0, got {extra_busy_s}")
        if precomputed_raw is None:
            raw_in = self.input_ram.read(0, self._n_in)
            x = from_raw(raw_in, self.input_format)
            x = x.reshape((1,) + tuple(self.hls_model.input_shape))
            y = self.hls_model.predict(x)[0]
            raw_out = to_raw(y.ravel(), self.output_format)
        else:
            raw_out = np.asarray(precomputed_raw, dtype=np.int64)
            if raw_out.shape != (self._n_out,):
                raise ValueError(
                    f"precomputed_raw must have shape ({self._n_out},), "
                    f"got {raw_out.shape}"
                )
        self.output_ram.write(0, raw_out)
        self.runs += 1
        return self.compute_latency_s + extra_busy_s

    def precompute_raw_outputs(self, frames: np.ndarray,
                               valid_mask: Optional[np.ndarray] = None
                               ) -> np.ndarray:
        """Batched forward pass → per-frame raw output words.

        Runs the whole block through one :meth:`HLSModel.predict` call and
        returns the quantized output-buffer words, shape ``(n, n_outputs)``
        — row *i* is exactly what :meth:`run` would have produced in the
        output RAM for frame *i* (the float → raw → float round trip at
        the buffer boundary is applied identically).  When the model has
        a compiled plan installed (:meth:`HLSModel.compile`), ``predict``
        dispatches to it — bit-identical by the compiler's contract, so
        nothing here needs to care which executor ran.

        ``valid_mask`` (shape ``(n,)`` bool) is the speculative ladder's
        hook: only masked-True rows are computed, the rest stay zero.
        The caller promises never to consume an unmasked row, so zeros
        are safe placeholders.  Bit-identity of the computed rows does
        not depend on the mask shape: all sums are exact in float64, so
        batching any *subset* of frames yields the same words as batching
        all of them (the same invariance that makes
        :data:`BATCH_BLOCK_FRAMES` chunking safe).
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2 or frames.shape[1] != self._n_in:
            raise ValueError(
                f"frames must be (n, {self._n_in}), got {frames.shape}"
            )
        n = frames.shape[0]
        if valid_mask is not None:
            valid_mask = np.asarray(valid_mask, dtype=bool)
            if valid_mask.shape != (n,):
                raise ValueError(
                    f"valid_mask must have shape ({n},), got {valid_mask.shape}"
                )
            if not valid_mask.all():
                out = np.zeros((n, self._n_out), dtype=np.int64)
                idx = np.flatnonzero(valid_mask)
                if idx.size:
                    out[idx] = self.precompute_raw_outputs(frames[idx])
                return out
        raw_in = to_raw(frames, self.input_format)
        x = from_raw(raw_in, self.input_format)
        x = x.reshape((n,) + tuple(self.hls_model.input_shape))
        out = np.empty((n, self._n_out), dtype=np.int64)
        for i in range(0, n, BATCH_BLOCK_FRAMES):
            xb = x[i:i + BATCH_BLOCK_FRAMES]
            y = self.hls_model.predict(xb)
            to_raw(y.reshape(xb.shape[0], -1), self.output_format,
                   out=out[i:i + BATCH_BLOCK_FRAMES])
        return out

    # ------------------------------------------------------------------
    def quantize_input(self, frame: np.ndarray) -> np.ndarray:
        """Float frame → raw input-buffer words (what the HPS writes)."""
        frame = np.asarray(frame, dtype=np.float64).ravel()
        if frame.size != self._n_in:
            raise ValueError(f"frame must have {self._n_in} values, got {frame.size}")
        return to_raw(frame, self.input_format)

    def dequantize_output(self, raw: np.ndarray) -> np.ndarray:
        """Raw output-buffer words → float probabilities (HPS side)."""
        return from_raw(np.asarray(raw, dtype=np.int64), self.output_format)

    @property
    def n_inputs(self) -> int:
        """Input words per frame (260)."""
        return self._n_in

    @property
    def n_outputs(self) -> int:
        """Output words per frame (520 for the U-Net)."""
        return self._n_out
