"""Seeded, deterministic fault injection for the central-node loop.

The deployed system exists to trip a lossy machine quickly and *safely*;
the companion readout paper (Berlioz et al.) documents the failures a
fielded node actually sees: late or lost hub packets, stuck monitors,
wedged IP cores, lost interrupts and single-event upsets in the on-chip
RAMs.  This module models those as composable :class:`FaultSpec` objects
compiled by a :class:`FaultInjector` into a per-frame
:class:`FaultSchedule`.

Design rules:

* **Deterministic** — the schedule is a pure function of
  ``(seed, specs, frame_index)``.  Every per-frame draw uses its own
  generator seeded from that triple, so batch boundaries, fault-spec
  reordering of *other* frames, or component dimensions never perturb a
  frame's fault stream.  Two injectors built with the same seed and
  specs produce bit-identical schedules.
* **Hooks, not subclasses** — components stay fault-free by default and
  expose small injection points: :meth:`HubNetwork.faulted_arrival_times
  <repro.beamloss.hubs.HubNetwork.faulted_arrival_times>`,
  ``AchillesBoard.process_frame(..., faults=...)``,
  ``NeuralIPCore.run(extra_busy_s=...)`` and
  ``ACNETLog.inject_failures``.  The hardened
  :class:`~repro.soc.runtime.CentralNodeRuntime` is the orchestrator
  that routes schedule events into those hooks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import default_rng

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSpec",
    "HubDropFault",
    "HubDelayFault",
    "StuckMonitorFault",
    "NoisyMonitorFault",
    "IPHangFault",
    "LostIRQFault",
    "SEUFault",
    "ACNETFault",
    "FaultInjector",
    "FaultSchedule",
    "FrameFaults",
    "FrameHangError",
    "flip_bit",
    "fault_counter_name",
    "fault_counter_names",
    "fold_health_counters",
    "HEALTH_COUNTER_PREFIXES",
]


class FrameHangError(RuntimeError):
    """A frame never completed (the IP's interrupt was never observed).

    Subclasses :class:`RuntimeError` so pre-existing callers that treated
    a wedged board as a generic runtime failure keep working; the
    hardened runtime catches this specific type for watchdog recovery.
    """


class FaultKind(enum.Enum):
    """The fault taxonomy (see ``docs/robustness.md``)."""

    HUB_DROP = "hub_drop"           # a hub's Ethernet packet is lost
    HUB_DELAY = "hub_delay"         # a hub's packet arrives late
    STUCK_MONITOR = "stuck_monitor"  # a BLM channel reads a constant
    NOISY_MONITOR = "noisy_monitor"  # a BLM channel adds gross noise
    IP_HANG = "ip_hang"             # IP busy time exceeds the watchdog
    LOST_IRQ = "lost_irq"           # completion interrupt never delivered
    SEU = "seu"                     # bit flip in an on-chip RAM word
    ACNET_FAIL = "acnet_fail"       # transient publish transport failure


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault occurrence, bound to a frame.

    ``target``/``value``/``detail`` are kind-specific:

    =============  =======================  ==========================
    kind           target                   value / detail
    =============  =======================  ==========================
    HUB_DROP       hub index (-1: random)   uniform draw in [0, 1)
    HUB_DELAY      hub index (-1: random)   extra delay seconds
    STUCK_MONITOR  monitor index            stuck reading
    NOISY_MONITOR  monitor index            additive noise draw
    IP_HANG        —                        extra busy seconds
    LOST_IRQ       —                        —
    SEU            bit index (0..15)        word fraction / RAM name
    ACNET_FAIL     —                        failing attempt count
    =============  =======================  ==========================
    """

    frame_index: int
    kind: FaultKind
    target: int = 0
    value: float = 0.0
    detail: str = ""

    def key(self) -> Tuple:
        """Canonical tuple for signatures and bit-identity comparisons."""
        return (self.frame_index, self.kind.value, self.target,
                float(self.value), self.detail)


# ----------------------------------------------------------------------
# Fault specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Base class: when and how often a fault class fires.

    Parameters
    ----------
    rate:
        Per-frame firing probability within the active window (1.0 means
        every frame in the window).
    start / stop:
        Half-open frame-index window ``[start, stop)`` the spec is
        active in (``stop=None``: forever).
    """

    rate: float = 1.0
    start: int = 0
    stop: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be > start")

    def active(self, frame_index: int) -> bool:
        """Whether the spec's window covers *frame_index*."""
        return frame_index >= self.start and (
            self.stop is None or frame_index < self.stop
        )

    def events(self, frame_index: int, rng) -> List[FaultEvent]:
        """Concrete events for a frame the spec fired on."""
        raise NotImplementedError


@dataclass(frozen=True)
class HubDropFault(FaultSpec):
    """A hub's packet never arrives (``hub=None``: a random hub)."""

    hub: Optional[int] = None

    def events(self, frame_index, rng):
        if self.hub is None:
            return [FaultEvent(frame_index, FaultKind.HUB_DROP, target=-1,
                               value=float(rng.random()))]
        return [FaultEvent(frame_index, FaultKind.HUB_DROP, target=self.hub)]


@dataclass(frozen=True)
class HubDelayFault(FaultSpec):
    """A hub's packet arrives *delay_s* late (``hub=None``: random hub)."""

    hub: Optional[int] = None
    delay_s: float = 2e-3

    def __post_init__(self):
        super().__post_init__()
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def events(self, frame_index, rng):
        target = -1 if self.hub is None else self.hub
        # The random-hub draw is stored alongside the delay so the
        # resolver needs no extra randomness.
        frac = float(rng.random()) if self.hub is None else 0.0
        return [FaultEvent(frame_index, FaultKind.HUB_DELAY, target=target,
                           value=self.delay_s, detail=f"{frac:.17g}")]


@dataclass(frozen=True)
class StuckMonitorFault(FaultSpec):
    """One BLM channel reads a constant (stuck-at) value."""

    monitor: int = 0
    value: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.monitor < 0:
            raise ValueError("monitor must be >= 0")

    def events(self, frame_index, rng):
        return [FaultEvent(frame_index, FaultKind.STUCK_MONITOR,
                           target=self.monitor, value=self.value)]


@dataclass(frozen=True)
class NoisyMonitorFault(FaultSpec):
    """One BLM channel adds gross Gaussian noise (sigma in standardized
    input units)."""

    monitor: int = 0
    sigma: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if self.monitor < 0:
            raise ValueError("monitor must be >= 0")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")

    def events(self, frame_index, rng):
        noise = float(rng.normal(0.0, self.sigma))
        return [FaultEvent(frame_index, FaultKind.NOISY_MONITOR,
                           target=self.monitor, value=noise)]


@dataclass(frozen=True)
class IPHangFault(FaultSpec):
    """The IP's busy time is inflated by *extra_s* (enough to blow the
    watchdog budget by default)."""

    extra_s: float = 5e-3

    def __post_init__(self):
        super().__post_init__()
        if self.extra_s < 0:
            raise ValueError("extra_s must be >= 0")

    def events(self, frame_index, rng):
        return [FaultEvent(frame_index, FaultKind.IP_HANG,
                           value=self.extra_s)]


@dataclass(frozen=True)
class LostIRQFault(FaultSpec):
    """The completion interrupt is raised by the control IP but never
    reaches the HPS."""

    def events(self, frame_index, rng):
        return [FaultEvent(frame_index, FaultKind.LOST_IRQ)]


@dataclass(frozen=True)
class SEUFault(FaultSpec):
    """Single-event upset: one bit of one word flips in an on-chip RAM.

    ``ram`` selects the buffer (``"input"`` before compute, ``"output"``
    after compute); the word is picked uniformly inside the frame's live
    span, the bit uniformly in [0, 16) unless pinned.
    """

    ram: str = "output"
    bit: Optional[int] = None

    def __post_init__(self):
        super().__post_init__()
        if self.ram not in ("input", "output"):
            raise ValueError(f"ram must be 'input' or 'output', got {self.ram!r}")
        if self.bit is not None and not 0 <= self.bit < 16:
            raise ValueError("bit must be in [0, 16)")

    def events(self, frame_index, rng):
        frac = float(rng.random())
        bit = int(rng.integers(0, 16)) if self.bit is None else self.bit
        return [FaultEvent(frame_index, FaultKind.SEU, target=bit,
                           value=frac, detail=self.ram)]


@dataclass(frozen=True)
class ACNETFault(FaultSpec):
    """The next *failures* publish attempts of the frame's decision fail
    with a transient transport error."""

    failures: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.failures < 1:
            raise ValueError("failures must be >= 1")

    def events(self, frame_index, rng):
        return [FaultEvent(frame_index, FaultKind.ACNET_FAIL,
                           value=float(self.failures))]


# ----------------------------------------------------------------------
# Injector and schedule
# ----------------------------------------------------------------------
class FaultInjector:
    """Compiles fault specs into deterministic per-frame events.

    Parameters
    ----------
    specs:
        The composable fault specifications.
    seed:
        Integer root seed.  Each (spec, frame) draw is seeded from
        ``(seed, spec_index, frame_index)``, so schedules are
        reproducible regardless of how runs are batched.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        specs = tuple(specs)
        for s in specs:
            if not isinstance(s, FaultSpec):
                raise TypeError(f"not a FaultSpec: {s!r}")
        self.specs = specs
        self.seed = int(seed)

    def events_for_frame(self, frame_index: int) -> Tuple[FaultEvent, ...]:
        """All fault events hitting one frame (deterministic)."""
        if frame_index < 0:
            raise ValueError("frame_index must be >= 0")
        events: List[FaultEvent] = []
        for si, spec in enumerate(self.specs):
            if not spec.active(frame_index):
                continue
            rng = default_rng([self.seed, si, frame_index])
            if rng.random() >= spec.rate:
                continue
            events.extend(spec.events(frame_index, rng))
        return tuple(events)

    def plan(self, start: int, n_frames: int) -> "FaultSchedule":
        """The fault schedule for frames ``[start, start + n_frames)``."""
        if start < 0 or n_frames < 0:
            raise ValueError("start and n_frames must be >= 0")
        events: List[FaultEvent] = []
        for f in range(start, start + n_frames):
            events.extend(self.events_for_frame(f))
        return FaultSchedule(start=start, n_frames=n_frames,
                             events=tuple(events))


@dataclass(frozen=True)
class FaultSchedule:
    """The compiled fault plan for a contiguous frame range."""

    start: int
    n_frames: int
    events: Tuple[FaultEvent, ...]

    def __post_init__(self):
        by_frame: Dict[int, List[FaultEvent]] = {}
        for e in self.events:
            by_frame.setdefault(e.frame_index, []).append(e)
        frozen = {f: tuple(evs) for f, evs in by_frame.items()}
        # Dense per-frame index over the schedule's own window: the
        # speculative runtime calls for_frame twice per frame (mask
        # build + replay ladder), so the common case must be a plain
        # list index, not a hash probe.  The dict is kept only for
        # out-of-window queries, which hash mostly-empty frames anyway.
        dense: Tuple[Tuple[FaultEvent, ...], ...] = tuple(
            frozen.get(self.start + i, ()) for i in range(self.n_frames)
        )
        object.__setattr__(self, "_dense", dense)
        object.__setattr__(self, "_by_frame", frozen)

    def for_frame(self, frame_index: int) -> Tuple[FaultEvent, ...]:
        """Events hitting *frame_index* (empty tuple when clean).

        O(1): a dense tuple lookup inside the schedule's window, a dict
        fallback outside it.
        """
        i = frame_index - self.start
        if 0 <= i < self.n_frames:
            return self._dense[i]
        return self._by_frame.get(frame_index, ())

    def counts(self) -> Dict[str, int]:
        """Events per fault class."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind.value] = out.get(e.kind.value, 0) + 1
        return out

    def signature(self) -> Tuple[Tuple, ...]:
        """Canonical, hashable form — two schedules are bit-identical
        iff their signatures are equal."""
        return tuple(e.key() for e in self.events)

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# Board-side per-frame fault bundle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrameFaults:
    """The board-level faults active during one ``process_frame`` call.

    Built by the runtime from the schedule; ``AchillesBoard`` consumes it
    at its injection points (IP busy-time inflation, IRQ suppression,
    RAM bit flips).
    """

    ip_extra_s: float = 0.0
    lost_irq: bool = False
    seu: Tuple[FaultEvent, ...] = ()

    @classmethod
    def from_events(cls, events: Sequence[FaultEvent]) -> Optional["FrameFaults"]:
        """Extract the board-relevant subset; ``None`` when empty."""
        extra = 0.0
        lost = False
        seu: List[FaultEvent] = []
        for e in events:
            if e.kind is FaultKind.IP_HANG:
                extra += e.value
            elif e.kind is FaultKind.LOST_IRQ:
                lost = True
            elif e.kind is FaultKind.SEU:
                seu.append(e)
        if not extra and not lost and not seu:
            return None
        return cls(ip_extra_s=extra, lost_irq=lost, seu=tuple(seu))


# ----------------------------------------------------------------------
# Observability folding
# ----------------------------------------------------------------------

#: Canonical metric name of one fault kind's counter (the runtime bumps
#: the same name in its :class:`~repro.soc.counters.PerformanceCounters`
#: events; the observability layer mirrors them 1:1).
def fault_counter_name(kind: FaultKind) -> str:
    return f"fault.{kind.value}"


def fault_counter_names() -> Tuple[str, ...]:
    """Metric names of every fault-kind counter, in taxonomy order."""
    return tuple(fault_counter_name(k) for k in FaultKind)


#: Event-counter prefixes the runtime maintains that belong in a metrics
#: snapshot: injected faults plus the health tallies derived from them.
HEALTH_COUNTER_PREFIXES = ("fault.", "frame.", "watchdog.", "guard.",
                           "hub.", "acnet.", "degrade.", "spec.")


def fold_health_counters(counters, metrics) -> None:
    """Mirror the runtime's fault/health event counters into a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    *counters* is a :class:`~repro.soc.counters.PerformanceCounters`;
    only the :data:`HEALTH_COUNTER_PREFIXES` families are folded, and the
    mirror is idempotent (``set_count`` keeps counters monotone), so the
    fold can run per frame or once per snapshot.
    """
    for name, value in counters.counts().items():
        if name.startswith(HEALTH_COUNTER_PREFIXES):
            metrics.set_count(name, value)


def flip_bit(word: int, bit: int, width_bits: int = 16) -> int:
    """Flip one bit of a two's-complement *width_bits* word.

    Works on the unsigned bit pattern so flipping the sign bit of a
    positive word yields the corresponding negative word, exactly like
    an SEU in the physical RAM cell.
    """
    if not 1 <= width_bits <= 62:
        raise ValueError("width_bits must be in [1, 62]")
    mask = (1 << width_bits) - 1
    u = (int(word) & mask) ^ (1 << (bit % width_bits))
    if u >= 1 << (width_bits - 1):
        u -= 1 << width_bits
    return u
