"""The assembled central node: Achilles Arria 10 SoC board.

``AchillesBoard`` wires the HPS application, bridges, on-chip buffers,
control IP and the neural IP core together and executes the paper's
step 0–9 pipeline per frame:

====  ==========================================================
step  action (Fig 2)
====  ==========================================================
0     frame assembled in SDRAM (hub Ethernet arrival — optional)
1     HPS writes the input buffer through the bridge
2     HPS pokes the trigger; control IP starts the U-Net IP
3–6   IP reads the buffer, computes, writes the output buffer
7     control IP raises the interrupt; HPS wakes
8     HPS reads the results back to SDRAM
9     decision leaves over Ethernet (handled by the controller)
====  ==========================================================

Both on-chip RAMs use their 32-bit HPS-side port (two 16-bit samples per
bus beat) and their 16-bit IP-side port, as in the paper's buffer design.

Two execution modes:

* :meth:`run` — full functional simulation (real quantized data flows
  through the buffers; outputs are bit-identical to the HLS C-sim),
* :meth:`sample_latency_distribution` — vectorised timing-only sampling
  for population statistics (Fig 5c needs 10,000 frames; the functional
  path would recompute the same deterministic pipeline every time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hls.model import HLSModel
from repro.soc.avalon import AvalonBridge, HPS2FPGA_BRIDGE, LIGHTWEIGHT_BRIDGE
from repro.soc.control import ControlIP, ControlState
from repro.soc.counters import PerformanceCounters
from repro.soc.event import Simulator
from repro.soc.faults import FrameFaults, FrameHangError, flip_bit
from repro.soc.hps import HPSConfig, OSJitter
from repro.soc.ip_core import NeuralIPCore
from repro.soc.ocram import DualPortRAM
from repro.soc.trace import SignalTrace
from repro.utils.rng import SeedLike, default_rng

__all__ = ["AchillesBoard", "FrameTiming", "SystemRunResult"]

#: The digitizer hands the HPS a new frame every 3 ms.
FRAME_PERIOD_S = 3e-3


@dataclass(frozen=True)
class FrameTiming:
    """Per-step breakdown of one frame (all seconds)."""

    preprocess: float
    write_input: float       # step 1
    trigger: float           # step 2
    ip_compute: float        # steps 3–6
    irq: float               # step 7
    read_output: float       # step 8
    postprocess: float
    jitter: float

    @property
    def total(self) -> float:
        """End-to-end step 1–8 latency (what the paper's Fig 5c plots)."""
        return (self.preprocess + self.write_input + self.trigger
                + self.ip_compute + self.irq + self.read_output
                + self.postprocess + self.jitter)


@dataclass
class SystemRunResult:
    """Outputs and timing of a multi-frame run."""

    outputs: np.ndarray
    timings: List[FrameTiming]
    mode: str

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-frame step 1–8 latency."""
        return np.array([t.total for t in self.timings])

    @property
    def mean_latency_s(self) -> float:
        return float(self.latencies_s.mean())

    @property
    def throughput_fps(self) -> float:
        """Sustained frames per second in free-running mode."""
        return 1.0 / self.mean_latency_s

    def fraction_below(self, threshold_s: float) -> float:
        """Fraction of frames faster than *threshold_s* (Fig 5c metric)."""
        lat = self.latencies_s
        return float((lat < threshold_s).mean())


class AchillesBoard:
    """The central node with a neural IP programmed into the fabric."""

    def __init__(
        self,
        hls_model: HLSModel,
        hps: Optional[HPSConfig] = None,
        jitter: Optional[OSJitter] = None,
        data_bridge: AvalonBridge = HPS2FPGA_BRIDGE,
        csr_bridge: AvalonBridge = LIGHTWEIGHT_BRIDGE,
        trace: Optional[SignalTrace] = None,
        tracer=None,
    ):
        self.sim = Simulator()
        self.hps = hps or HPSConfig()
        self.jitter = jitter or OSJitter()
        self.data_bridge = data_bridge
        self.csr_bridge = csr_bridge
        self.trace = trace
        #: Optional :class:`~repro.obs.spans.Tracer`: when attached the
        #: board records one retroactive span per pipeline stage with
        #: exact simulated-clock timestamps.  ``None`` (default) is the
        #: zero-cost path; the tracer is a pure observer either way.
        self.tracer = tracer
        self.counters = PerformanceCounters()

        n_in = int(np.prod(hls_model.input_shape))
        n_out = int(np.prod(hls_model.output_shape))
        self.input_ram = DualPortRAM(max(n_in, 512), 16, "input_buffer")
        self.output_ram = DualPortRAM(max(n_out, 512), 16, "output_buffer")
        self.ip = NeuralIPCore(hls_model, self.input_ram, self.output_ram)
        self._irq_time: Optional[float] = None
        self._pending_faults: Optional[FrameFaults] = None
        self._pending_precomputed: Optional[np.ndarray] = None
        self.control = ControlIP(
            start_ip=self._start_ip,
            raise_irq=self._on_irq,
        )

    # ------------------------------------------------------------------
    # Fabric-side callbacks
    # ------------------------------------------------------------------
    def _start_ip(self) -> None:
        self._record("ip_busy", 1)
        faults = self._pending_faults
        extra = faults.ip_extra_s if faults is not None else 0.0
        pre = self._pending_precomputed
        # Plain call when nothing special is pending so test doubles that
        # stub `ip.run` with a zero-argument callable keep working.
        if pre is not None:
            busy = self.ip.run(extra_busy_s=extra, precomputed_raw=pre)
        elif extra:
            busy = self.ip.run(extra_busy_s=extra)
        else:
            busy = self.ip.run()
        self.sim.schedule(busy, self._ip_finished)

    def _ip_finished(self) -> None:
        self._record("ip_busy", 0)
        self.control.ip_done()

    def _on_irq(self) -> None:
        if self._pending_faults is not None and self._pending_faults.lost_irq:
            # The control IP asserted the line but the HPS never saw it
            # (injected LOST_IRQ fault): leave _irq_time unset so the
            # frame surfaces as a hang, not stale data.
            self._record("irq_lost", 1)
            return
        self._record("irq", 1)
        self._irq_time = self.sim.now

    def _record(self, signal: str, value) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, signal, value)

    # ------------------------------------------------------------------
    @staticmethod
    def _bus_words(samples: int) -> int:
        """16-bit samples → 32-bit bus beats on the HPS-side port."""
        return math.ceil(samples / 2)

    def process_frame(self, frame: np.ndarray,
                      jitter_s: float = 0.0,
                      faults: Optional[FrameFaults] = None,
                      precomputed_raw: Optional[np.ndarray] = None
                      ) -> FrameTiming:
        """Run one frame through steps 1–8; returns its timing breakdown.

        The frame's model output is left in the output RAM; read it with
        :meth:`last_output`.  ``faults`` is the injection hook: the
        board-level faults (IP busy-time inflation, IRQ suppression, SEU
        bit flips in the on-chip RAMs) active during this frame.  A
        suppressed interrupt raises :class:`FrameHangError`; call
        :meth:`recover` before processing further frames.

        ``precomputed_raw`` hands the IP this frame's raw output words
        from a batched :meth:`NeuralIPCore.precompute_raw_outputs` call:
        the event-driven timing simulation runs unchanged (bridge
        transfers, trigger, IRQ, reads), only the in-line forward pass is
        skipped.  Never combine it with datapath faults — the runtime
        falls back to in-line compute whenever faults are injected.
        """
        sim = self.sim
        tr = self.tracer
        self._pending_faults = faults
        self._pending_precomputed = precomputed_raw
        t_pre = self.hps.preprocess_s
        t0 = sim.now
        sim.advance(t_pre)
        if tr is not None:
            tr.record("preprocess", sim_t0=t0, sim_t1=sim.now)

        # Step 1: write the quantized frame through the data bridge.
        self.counters.start("step1_write_input", sim.now)
        t0 = sim.now
        raw = self.ip.quantize_input(frame)
        self.input_ram.write(0, raw)
        t_write = self.data_bridge.write_time(self._bus_words(raw.size))
        sim.advance(t_write)
        self.counters.stop("step1_write_input", sim.now)
        if tr is not None:
            tr.record("write_input", sim_t0=t0, sim_t1=sim.now,
                      words=self._bus_words(raw.size))
        self._apply_seu("input")

        # Step 2: trigger through the CSR bridge.  The IP starts when the
        # write lands, i.e. after the bus access completes.
        t_trig = self.hps.csr_access_s + self.csr_bridge.write_time(1)
        t0 = sim.now
        sim.advance(t_trig)
        if tr is not None:
            tr.record("trigger", sim_t0=t0, sim_t1=sim.now)
        self._record("trigger", 1)
        self.control.csr_write(ControlIP.TRIGGER, 1)

        # Steps 3–6: the IP completion event is already scheduled; run
        # the event queue until the IRQ fires.
        self.counters.start("ip_compute", sim.now)
        self._irq_time = None
        sim.run()  # drains the queue; `now` lands on the IRQ event time
        if self._irq_time is None:
            self.counters.cancel("ip_compute")
            raise FrameHangError(
                "IP never raised its interrupt (frame hung)"
            )
        t_ip = self.counters.stop("ip_compute", sim.now)
        if tr is not None:
            tr.record("ip_compute", sim_t0=sim.now - t_ip, sim_t1=sim.now,
                      precomputed=precomputed_raw is not None)
        self._apply_seu("output")

        # Step 7: interrupt delivery + context switch.
        t_irq = self.hps.irq_latency_s
        t0 = sim.now
        sim.advance(t_irq)
        if tr is not None:
            tr.record("irq", sim_t0=t0, sim_t1=sim.now)

        # Step 8: read results back over the data bridge, acknowledge.
        self.counters.start("step8_read_output", sim.now)
        t0 = sim.now
        t_read = self.data_bridge.read_time(self._bus_words(self.ip.n_outputs))
        sim.advance(t_read)
        self.counters.stop("step8_read_output", sim.now)
        self.control.csr_write(ControlIP.IRQ_ACK, 1)
        t_ack = self.hps.csr_access_s + self.csr_bridge.write_time(1)
        sim.advance(t_ack)
        if tr is not None:
            tr.record("read_output", sim_t0=t0, sim_t1=sim.now)
        self._record("irq", 0)

        t_post = self.hps.postprocess_s
        t0 = sim.now
        sim.advance(t_post)
        if tr is not None:
            tr.record("postprocess", sim_t0=t0, sim_t1=sim.now)
        if jitter_s:
            t0 = sim.now
            sim.advance(jitter_s)
            if tr is not None:
                tr.record("jitter", sim_t0=t0, sim_t1=sim.now)
        elif tr is not None:
            # Zero-jitter frames still report the stage so per-frame
            # stage sums always cover the full FrameTiming breakdown.
            tr.record("jitter", sim_t0=sim.now, sim_t1=sim.now)
        self._pending_faults = None
        self._pending_precomputed = None

        return FrameTiming(
            preprocess=t_pre,
            write_input=t_write,
            trigger=t_trig,
            ip_compute=t_ip,
            irq=t_irq,
            read_output=t_read + t_ack,
            postprocess=t_post,
            jitter=jitter_s,
        )

    def _apply_seu(self, ram_name: str) -> None:
        """Flip the scheduled SEU bits in one of the on-chip RAMs.

        Input-buffer upsets land after the HPS write (the IP computes on
        corrupted words); output-buffer upsets land after the compute
        (the HPS reads corrupted results).
        """
        if self._pending_faults is None:
            return
        ram = self.input_ram if ram_name == "input" else self.output_ram
        span = self.ip.n_inputs if ram_name == "input" else self.ip.n_outputs
        for e in self._pending_faults.seu:
            if e.detail != ram_name:
                continue
            word_index = min(int(e.value * span), span - 1)
            word = ram.peek(word_index)
            ram.poke(word_index, flip_bit(word, e.target, ram.width_bits))
            self._record(f"seu_{ram_name}", word_index)

    def recover(self) -> None:
        """Watchdog recovery after a hung frame (:class:`FrameHangError`).

        Drains any in-flight fabric events, pulls the control IP's hard
        reset line, clears the interrupt bookkeeping and drops pending
        fault state, leaving the board ready for the next frame.
        """
        self.sim.run()
        if self.control.state is not ControlState.IDLE:
            self.control.reset()
        self._irq_time = None
        self._pending_faults = None
        self._pending_precomputed = None
        self.counters.cancel("ip_compute")

    def last_output(self) -> np.ndarray:
        """Dequantized model output of the most recent frame."""
        raw = self.output_ram.read(0, self.ip.n_outputs)
        return self.ip.dequantize_output(raw)

    # ------------------------------------------------------------------
    def run(self, frames: Optional[np.ndarray] = None, seed: SeedLike = 0,
            paced: bool = False,
            period_s: float = FRAME_PERIOD_S, *,
            session=None, n_frames: Optional[int] = None) -> SystemRunResult:
        """Process a batch of frames functionally.

        ``paced=True`` aligns each frame's start to the 3 ms digitizer
        grid (deployment mode); otherwise frames run back-to-back
        (throughput-measurement mode, the paper's 575 fps figure).

        Instead of *frames*, a :class:`~repro.plants.PlantSession` may
        drive the board directly: pass ``session=`` and ``n_frames=``,
        and each tick synthesises its frame from the session, processes
        it, then feeds the raw model output back through
        ``session.step_output`` before the next frame — the closed loop
        at board level, without the runtime's hub/controller layers.
        """
        if session is not None:
            if frames is not None:
                raise ValueError("pass frames or session, not both")
            if n_frames is None or n_frames < 0:
                raise ValueError("session runs need n_frames >= 0")
            n = n_frames
        else:
            if frames is None:
                raise ValueError("pass frames (or session + n_frames)")
            frames = np.asarray(frames, dtype=np.float64)
            if frames.ndim != 2:
                raise ValueError(
                    f"frames must be (n, n_inputs), got {frames.shape}")
            n = frames.shape[0]
        jitters = self.jitter.sample(n, rng=seed)
        outputs = np.empty((n, self.ip.n_outputs))
        timings: List[FrameTiming] = []
        # Pacing is anchored at this run's start so consecutive paced
        # runs on one board stay on a periodic grid.
        base = self.sim.now
        for i in range(n):
            if paced:
                tick = base + i * period_s
                if self.sim.now < tick:
                    self.sim.advance(tick - self.sim.now)
            frame = (frames[i] if session is None else
                     np.asarray(session.next_frame(), dtype=np.float64))
            timing = self.process_frame(frame, jitter_s=float(jitters[i]))
            outputs[i] = self.last_output()
            timings.append(timing)
            if session is not None:
                session.step_output(outputs[i])
        return SystemRunResult(outputs=outputs, timings=timings,
                               mode="paced" if paced else "free")

    # ------------------------------------------------------------------
    def deterministic_latency_s(self) -> float:
        """Step 1–8 latency with zero OS jitter (closed form)."""
        t = self.hps.preprocess_s
        t += self.data_bridge.write_time(self._bus_words(self.ip.n_inputs))
        t += self.hps.csr_access_s + self.csr_bridge.write_time(1)
        t += self.ip.compute_latency_s
        t += self.hps.irq_latency_s
        t += self.data_bridge.read_time(self._bus_words(self.ip.n_outputs))
        t += self.hps.csr_access_s + self.csr_bridge.write_time(1)
        t += self.hps.postprocess_s
        return t

    def pipelined_throughput_fps(self) -> float:
        """Throughput with ping-pong (double) buffering — a future-work
        extension: with two input/output buffer pairs, the HPS transfers
        of frame *i+1* overlap the IP's compute of frame *i*, so the
        sustained rate is bounded by the slower of the two stages rather
        than their sum.  Per-frame latency is unchanged; only throughput
        improves.  (The deployed design processes sequentially — its
        575 fps already satisfies the 320 fps requirement.)
        """
        transfers = (
            self.hps.preprocess_s
            + self.data_bridge.write_time(self._bus_words(self.ip.n_inputs))
            + self.hps.irq_latency_s
            + self.data_bridge.read_time(self._bus_words(self.ip.n_outputs))
            + 2 * (self.hps.csr_access_s + self.csr_bridge.write_time(1))
            + self.hps.postprocess_s
        )
        bottleneck = max(transfers, self.ip.compute_latency_s)
        return 1.0 / bottleneck

    def sample_latency_distribution(self, n_frames: int,
                                    seed: SeedLike = 0) -> np.ndarray:
        """Vectorised per-frame latencies (deterministic base + jitter).

        Statistically identical to running :meth:`run` over *n_frames*
        (the functional pipeline is deterministic), but fast enough for
        the 10,000-frame population behind Fig 5(c).
        """
        if n_frames <= 0:
            raise ValueError(f"n_frames must be positive, got {n_frames}")
        base = self.deterministic_latency_s()
        return base + self.jitter.sample(n_frames, rng=seed)
