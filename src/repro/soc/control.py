"""The hand-written control IP.

The paper dedicates an HDL block to "handle the handshake between HPS
and the U-Net IP" (Section IV-B): the HPS pokes a trigger register, the
control IP starts the U-Net IP, watches for its done pulse, raises an
interrupt toward the HPS and clears state on acknowledge.  The FSM below
is that block; the verification tests drive it through every legal (and
several illegal) transition, mirroring the paper's ModelSim testbench
stage for component (1).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

__all__ = ["ControlIP", "ControlState"]


class ControlState(enum.Enum):
    """FSM states of the control IP."""

    IDLE = "idle"
    RUNNING = "running"
    DONE_IRQ = "done_irq"  # done, interrupt asserted, awaiting ack


class ControlIP:
    """Handshake FSM with CSR-style interface.

    Register map (word offsets on the lightweight bridge):

    * ``0x0 TRIGGER`` — write 1: start the IP (only legal in IDLE),
    * ``0x1 STATUS`` — read: 0 idle / 1 running / 2 done-irq,
    * ``0x2 IRQ_ACK`` — write 1: de-assert the interrupt, return to IDLE.

    Callbacks wire it to the rest of the board: ``start_ip`` launches the
    U-Net IP; ``raise_irq`` pokes the HPS interrupt controller.
    """

    TRIGGER = 0x0
    STATUS = 0x1
    IRQ_ACK = 0x2

    def __init__(self,
                 start_ip: Optional[Callable[[], None]] = None,
                 raise_irq: Optional[Callable[[], None]] = None,
                 name: str = "control_ip"):
        self.name = name
        self.state = ControlState.IDLE
        self._start_ip = start_ip
        self._raise_irq = raise_irq
        self.trigger_count = 0
        self.irq_count = 0

    # ------------------------------------------------------------------
    # CSR interface (what the HPS sees)
    # ------------------------------------------------------------------
    def csr_write(self, offset: int, value: int) -> None:
        """Register write from the HPS side."""
        if offset == self.TRIGGER:
            if value != 1:
                return  # writing 0 is a no-op, like on the real block
            if self.state is not ControlState.IDLE:
                raise RuntimeError(
                    f"{self.name}: trigger while {self.state.value} — the "
                    "HPS must wait for the previous frame's IRQ ack"
                )
            self.state = ControlState.RUNNING
            self.trigger_count += 1
            if self._start_ip is not None:
                self._start_ip()
        elif offset == self.IRQ_ACK:
            if value != 1:
                return
            if self.state is not ControlState.DONE_IRQ:
                raise RuntimeError(
                    f"{self.name}: IRQ ack while {self.state.value}"
                )
            self.state = ControlState.IDLE
        else:
            raise IndexError(f"{self.name}: no writable register at {offset:#x}")

    def csr_read(self, offset: int) -> int:
        """Register read from the HPS side."""
        if offset == self.STATUS:
            return {
                ControlState.IDLE: 0,
                ControlState.RUNNING: 1,
                ControlState.DONE_IRQ: 2,
            }[self.state]
        raise IndexError(f"{self.name}: no readable register at {offset:#x}")

    def reset(self) -> None:
        """Hard reset line: force the FSM back to IDLE from any state.

        Pulled by the watchdog recovery path after a hung frame (e.g. a
        lost interrupt left the block in DONE_IRQ with nobody to ack).
        """
        self.state = ControlState.IDLE

    # ------------------------------------------------------------------
    # Fabric side (what the U-Net IP sees)
    # ------------------------------------------------------------------
    def ip_done(self) -> None:
        """Done pulse from the U-Net IP: assert the interrupt."""
        if self.state is not ControlState.RUNNING:
            raise RuntimeError(
                f"{self.name}: done pulse while {self.state.value}"
            )
        self.state = ControlState.DONE_IRQ
        self.irq_count += 1
        if self._raise_irq is not None:
            self._raise_irq()
