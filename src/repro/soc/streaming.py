"""The stock hls4ml *streaming* interface, for comparison.

"With its default capabilities, hls4ml generates descriptions for IPs
with streaming interfaces, hence, the IP can only consume data
passively.  We modified this default hls4ml interface by customizing the
memory-mapped host interface" (Section IV-B).  This module models the
path the paper moved *away from*, so the benefit of that engineering can
be measured:

* the HPS must push every input word into the IP's Avalon-ST FIFO
  itself (one uncached CSR-style write per word),
* there is no completion interrupt — the HPS polls the output FIFO's
  fill level, paying a poll-interval penalty on average,
* every output word is popped individually.

The IP-core compute time is identical (the kernels don't change); only
the system wrapper differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.latency import LatencyReport

__all__ = ["StreamingInterfaceModel"]


@dataclass(frozen=True)
class StreamingInterfaceModel:
    """Timing model of the stock streaming wrapper.

    Parameters
    ----------
    word_push_s / word_pop_s:
        One FIFO write/read from HPS user space (uncached single-beat
        accesses on the lightweight bridge).
    poll_interval_s:
        Status-register polling period while waiting for output; on
        average half an interval of latency is added, plus one poll's bus
        read per check.
    preprocess_s / postprocess_s:
        Same user-space framing costs as the MM design.
    """

    word_push_s: float = 0.35e-6
    word_pop_s: float = 0.40e-6
    poll_interval_s: float = 20e-6
    preprocess_s: float = 4e-6
    postprocess_s: float = 5e-6

    def __post_init__(self):
        for name in ("word_push_s", "word_pop_s", "poll_interval_s",
                     "preprocess_s", "postprocess_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def system_latency_s(self, latency: LatencyReport,
                         n_inputs: int, n_outputs: int) -> float:
        """End-to-end frame latency under the streaming wrapper.

        The IP's host-interface transfer cycles are replaced by the
        HPS-side push/pop costs (the stream consumes as it is fed, so the
        compute pipeline still finishes ``compute_cycles`` after the last
        input word).
        """
        if n_inputs <= 0 or n_outputs <= 0:
            raise ValueError("word counts must be positive")
        compute_s = latency.compute_cycles / latency.clock_hz
        push = n_inputs * self.word_push_s
        pop = n_outputs * self.word_pop_s
        polling = self.poll_interval_s / 2
        return (self.preprocess_s + push + compute_s + polling + pop
                + self.postprocess_s)
