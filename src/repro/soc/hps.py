"""The Hard Processor System: Linux user-space application timing.

Steps 1, 2, 7 and 8 of the paper's Fig 2 run on the HPS under embedded
Linux: write the standardized frame into the input buffer over the
bridge, poke the trigger, block on the interrupt, read the results back
to SDRAM.  Two timing ingredients matter:

* deterministic per-word MMIO costs (the bridge model), and
* *operating-system scheduling jitter* — the paper attributes the rare
  latency excursions above 2 ms to "task scheduling in the operating
  system" (Section V).  :class:`OSJitter` models it as a small
  exponential per-frame perturbation plus rare heavy preemption spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, default_rng

__all__ = ["HPSConfig", "OSJitter"]


@dataclass(frozen=True)
class HPSConfig:
    """User-space application timing constants.

    The defaults were calibrated so that the full step 1–8 pipeline costs
    ≈0.17 ms on top of the IP latency, reproducing the paper's measured
    1.74 ms (U-Net, IP 1.57 ms) and 0.31 ms (MLP) system latencies.
    """

    #: standardize + pack the frame before writing (step 0→1 boundary)
    preprocess_s: float = 4e-6
    #: unpack + hand the probabilities to the controller (after step 8)
    postprocess_s: float = 5e-6
    #: interrupt delivery + context switch back into the user process
    irq_latency_s: float = 8e-6
    #: one CSR access on the lightweight bridge (trigger / ack)
    csr_access_s: float = 0.4e-6

    def __post_init__(self):
        for name in ("preprocess_s", "postprocess_s", "irq_latency_s",
                     "csr_access_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class OSJitter:
    """Linux scheduling noise on the user-space timeline.

    Per frame: ``Exp(scale)`` baseline jitter, plus with probability
    ``spike_rate`` a preemption spike ``Uniform(spike_min, spike_max)``.
    Defaults reproduce Fig 5(c): 99.97 % of U-Net frames below 1.9 ms,
    worst case ≈ 2.27 ms (spike ≈ 0.5 ms), and the paper's MLP worst case
    of 0.91 ms (0.31 ms mean + ≈ 0.6 ms spike headroom is never reached
    because spikes are capped at ``spike_max``).
    """

    scale_s: float = 12e-6
    spike_rate: float = 0.0004
    spike_min_s: float = 60e-6
    spike_max_s: float = 470e-6

    def __post_init__(self):
        if self.scale_s < 0:
            raise ValueError("scale_s must be >= 0")
        if not 0.0 <= self.spike_rate <= 1.0:
            raise ValueError("spike_rate must be in [0, 1]")
        if not 0 <= self.spike_min_s <= self.spike_max_s:
            raise ValueError("need 0 <= spike_min_s <= spike_max_s")

    def sample(self, n_frames: int, rng: SeedLike = 0) -> np.ndarray:
        """Per-frame jitter seconds, shape ``(n_frames,)``."""
        if n_frames < 0:
            raise ValueError(f"n_frames must be >= 0, got {n_frames}")
        gen = default_rng(rng)
        base = gen.exponential(self.scale_s, size=n_frames) if self.scale_s else (
            np.zeros(n_frames)
        )
        spikes = gen.random(n_frames) < self.spike_rate
        magnitudes = gen.uniform(self.spike_min_s, self.spike_max_s,
                                 size=n_frames)
        return base + np.where(spikes, magnitudes, 0.0)
