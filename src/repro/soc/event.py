"""Minimal discrete-event simulation core.

A priority queue of ``(time, sequence, callback)`` events.  Components
schedule callbacks at absolute or relative times; the simulator advances
time monotonically.  Deliberately tiny — the SoC model needs ordering,
timestamps and determinism, not a process algebra.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator"]


class Simulator:
    """Event queue with a monotonic clock (seconds as float64)."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._processed = 0

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* at ``now + delay`` (ties fire in schedule order)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute time *when* (>= now)."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule into the past (when={when}, now={self.now})"
            )
        heapq.heappush(self._queue, (when, next(self._seq), callback))

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, callback = heapq.heappop(self._queue)
        self.now = when
        self._processed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Drain the queue (optionally stopping at time *until*).

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return
            self.step()
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"event budget exceeded ({max_events}); "
                    "likely a self-rescheduling loop"
                )

    def advance(self, delay: float) -> float:
        """Move the clock forward *delay* seconds immediately (used by
        sequential component code between scheduled events); returns the
        new time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.now += delay
        return self.now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)
