"""The ML/HLS co-design optimizer (paper Section IV-D).

A *design point* is an :class:`~repro.hls.config.HLSConfig` (precision
strategy + reuse factors).  :class:`CodesignOptimizer` evaluates design
points against the three deployment constraints and implements the
paper's search order:

1. uniform 16-bit (cheap) — rejected for accuracy,
2. uniform 18-bit (accurate) — rejected for resources,
3. layer-based 16-bit from profiling — accepted,
4. reuse-factor fallback: if the accepted design misses latency or
   resources, walk the reuse ladder (paper: "As we manage resource usage
   while trading off latency, we need to increase the reuse factor of
   dense layers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.converter import convert
from repro.hls.device import ARRIA10_660, Device
from repro.hls.latency import LatencyReport, estimate_latency
from repro.hls.model import HLSModel
from repro.hls.precision import layer_based_config, uniform_config
from repro.hls.profiling import profile_model
from repro.hls.resources import ResourceReport, estimate_resources
from repro.nn.model import Model
from repro.verify.comparators import close_enough_accuracy

__all__ = ["DesignConstraints", "CodesignResult", "CodesignOptimizer"]


@dataclass(frozen=True)
class DesignConstraints:
    """The deployment envelope.

    Defaults are the paper's: 3 ms end-to-end (we budget the measured
    ≈0.15 ms system overhead on top of the IP), the within-0.20 accuracy
    floor, and a full Arria 10 fit.
    """

    latency_budget_s: float = 3e-3
    system_overhead_s: float = 0.15e-3
    accuracy_floor: float = 0.98
    device: Device = ARRIA10_660

    def __post_init__(self):
        if self.latency_budget_s <= 0 or self.system_overhead_s < 0:
            raise ValueError("invalid latency budget/overhead")
        if not 0.0 < self.accuracy_floor <= 1.0:
            raise ValueError("accuracy_floor must be in (0, 1]")


@dataclass
class CodesignResult:
    """One evaluated design point."""

    config: HLSConfig
    hls_model: HLSModel
    accuracy: Dict[str, float]
    latency: LatencyReport
    resources: ResourceReport
    constraints: DesignConstraints

    @property
    def accuracy_ok(self) -> bool:
        return all(v >= self.constraints.accuracy_floor
                   for v in self.accuracy.values())

    @property
    def latency_ok(self) -> bool:
        total = self.latency.latency_s + self.constraints.system_overhead_s
        return total <= self.constraints.latency_budget_s

    @property
    def resources_ok(self) -> bool:
        return self.resources.fits

    @property
    def feasible(self) -> bool:
        """All three constraints hold."""
        return self.accuracy_ok and self.latency_ok and self.resources_ok

    def describe(self) -> str:
        """One-line verdict for logs and reports."""
        acc = ", ".join(f"{k}={v:.1%}" for k, v in self.accuracy.items())
        return (
            f"{self.config.strategy}: acc[{acc}] "
            f"ip={self.latency.latency_s * 1e3:.2f}ms "
            f"alut={self.resources.alut_fraction:.0%} "
            f"=> {'FEASIBLE' if self.feasible else 'infeasible'}"
            f"{'' if self.accuracy_ok else ' (accuracy)'}"
            f"{'' if self.latency_ok else ' (latency)'}"
            f"{'' if self.resources_ok else ' (resources)'}"
        )


class CodesignOptimizer:
    """Search precision/reuse design points for one trained model.

    Parameters
    ----------
    model:
        The trained float network.
    x_profile:
        Profiling/evaluation inputs, already shaped for the model.
    constraints:
        The deployment envelope.
    eval_frames:
        How many profile frames to use for accuracy evaluation (the
        fixed-point forward pass is the expensive part of a design-point
        evaluation).
    """

    def __init__(self, model: Model, x_profile: np.ndarray,
                 constraints: Optional[DesignConstraints] = None,
                 eval_frames: int = 200):
        if eval_frames <= 0:
            raise ValueError("eval_frames must be positive")
        self.model = model
        self.x_profile = np.asarray(x_profile, dtype=np.float64)
        self.constraints = constraints or DesignConstraints()
        self.eval_frames = min(eval_frames, self.x_profile.shape[0])
        self._x_eval = self.x_profile[: self.eval_frames]
        self._y_float = model.forward(self._x_eval)
        #: profiles are reused across design points
        self.profiles = profile_model(model, self.x_profile)
        self.history: List[CodesignResult] = []

    # ------------------------------------------------------------------
    def evaluate(self, config: HLSConfig) -> CodesignResult:
        """Convert + measure one design point (recorded in history)."""
        hls_model = convert(self.model, config)
        y_fixed = hls_model.predict(self._x_eval)
        result = CodesignResult(
            config=config,
            hls_model=hls_model,
            accuracy=close_enough_accuracy(self._y_float, y_fixed),
            latency=estimate_latency(hls_model),
            resources=estimate_resources(hls_model, self.constraints.device),
            constraints=self.constraints,
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def candidate_configs(self) -> List[HLSConfig]:
        """The paper's strategy ladder (uniform16, uniform18, layer-based)."""
        return [
            uniform_config(16, 7, model=self.model),
            uniform_config(18, 10, model=self.model),
            layer_based_config(self.model, self.x_profile,
                               profiles=self.profiles),
        ]

    def optimize(self,
                 reuse_ladder: Sequence[int] = (32, 64, 128, 256)) -> CodesignResult:
        """Run the co-design search; returns the first feasible design.

        Tries the strategy ladder; if the layer-based design misses
        resources/latency, sweeps the default reuse factor up the ladder
        (more serial, smaller) or down (more parallel, faster).

        Raises ``RuntimeError`` when nothing feasible is found — the
        caller should revisit the constraints, as a hardware team would.
        """
        best: Optional[CodesignResult] = None
        for config in self.candidate_configs():
            result = self.evaluate(config)
            if result.feasible:
                return result
            if result.accuracy_ok:
                best = result
        if best is not None:
            # Accuracy is solved; walk the reuse ladder for fit/latency.
            for reuse in reuse_ladder:
                config = layer_based_config(
                    self.model, self.x_profile, profiles=self.profiles
                ).with_reuse_factor(reuse)
                result = self.evaluate(config)
                if result.feasible:
                    return result
        raise RuntimeError(
            "no feasible design point found; tried:\n"
            + "\n".join(r.describe() for r in self.history)
        )
