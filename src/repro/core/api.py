"""The one-stop facade: pretrained models → runtime → control loop.

Four calls cover the whole reproduction:

* :func:`load_pretrained` — the reference U-Net/MLP bundle + dataset,
* :func:`build_runtime` — convert/compile a model and place it on a
  hardened :class:`~repro.soc.runtime.CentralNodeRuntime`,
* :func:`run_control_loop` — drive frames through the loop and hand
  back records, health, and (optionally) the observability bundle,
* :func:`codesign_and_deploy` — the paper's co-design pipeline
  (Section IV-D) ending in a verified :class:`Deployment`.

Scale-out rides on the same facade: :func:`build_farm` /
:func:`serve_frames` wrap :mod:`repro.serve`'s deterministic sharded
serving front-end (N runtime replicas, micro-batching, spawn worker
pool) without changing any single-runtime call site.

Every entry point is **plant-generic**: the workload — frame
synthesis, hub topology, trip policy, actuation feedback,
control-quality scoring — lives behind a
:class:`~repro.plants.Plant` passed as ``plant=``.  The default is
:class:`~repro.plants.BeamLossPlant` (the paper's open-loop
de-blending workload), so every pre-plant call site behaves bit for
bit as before; pass :class:`~repro.plants.CartpolePlant` (or your
own plant) to run a closed-loop scenario through the same runtime,
chaos and serving layers.

Configuration travels in two keyword-only dataclasses —
:class:`RuntimeConfig` for the datapath and
:class:`~repro.obs.ObsConfig` for tracing/metrics/flight-recording —
so call sites read as named policy, not positional soup.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.codesign import CodesignOptimizer, CodesignResult, DesignConstraints
from repro.core.deployment import Deployment, deploy
from repro.hls.converter import convert
from repro.hls.model import HLSModel
from repro.hls.precision import layer_based_config, uniform_config
from repro.nn.model import Model
from repro.plants import (
    BeamLossPlant,
    ControlQuality,
    Plant,
    fold_control_metrics,
    run_closed_loop,
)
from repro.obs import ObsConfig, Observability
from repro.pretrained.bundle import ReferenceBundle, load_reference_bundle
from repro.soc.board import FRAME_PERIOD_S, AchillesBoard
from repro.soc.faults import FaultInjector
from repro.soc.runtime import (
    CentralNodeRuntime,
    DegradationPolicy,
    FrameRecord,
    HealthReport,
)

__all__ = [
    "RuntimeConfig",
    "ControlLoopResult",
    "load_pretrained",
    "build_runtime",
    "run_control_loop",
    "build_farm",
    "serve_frames",
    "start_daemon",
    "codesign_and_deploy",
]

ModelLike = Union[Model, HLSModel]
ObsLike = Union[ObsConfig, Observability, None]


@dataclass(frozen=True, kw_only=True)
class RuntimeConfig:
    """Datapath policy for :func:`build_runtime` (keyword-only).

    Parameters
    ----------
    period_s:
        Digitizer tick (the paper's 3 ms frame period).
    batch_inference:
        Engage the bit-exact batched fast path when eligible.
    speculation:
        With a fault injector attached, keep the batched fast path live
        speculatively — precompute the block, replay only frames the
        schedule's taint set invalidates (:mod:`repro.soc.taint`).
        ``False`` restores the historical whole-block disengage.
    compile_level:
        Graph-compiler level (0 = naive, 1 = local rewrites,
        2 = + BN folding and the static arena).
    precision:
        ``(width, integer)`` used when a float model must be converted
        and no profiling data is supplied (uniform ``ac_fixed``).
    profile_width:
        Total width for the layer-based strategy when ``x_profile`` IS
        supplied to :func:`build_runtime`.
    n_hubs:
        Deprecated — hub topology belongs to the plant; set
        ``BeamLossPlant(n_hubs=...)`` instead.  Non-``None`` values
        still override a beam-loss plant (with a
        ``DeprecationWarning``).
    min_votes:
        Deprecated — the vote floor belongs to the plant; set
        ``BeamLossPlant(min_votes=...)`` instead.  Non-``None``
        values still override a beam-loss plant (with a
        ``DeprecationWarning``).
    policy:
        Degradation ladder thresholds (watchdog, fallback, recovery).
    """

    period_s: float = FRAME_PERIOD_S
    batch_inference: bool = True
    speculation: bool = True
    compile_level: int = 0
    precision: Tuple[int, int] = (16, 7)
    profile_width: int = 16
    n_hubs: Optional[int] = None
    min_votes: Optional[int] = None
    policy: DegradationPolicy = field(default_factory=DegradationPolicy)

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.compile_level not in (0, 1, 2):
            raise ValueError("compile_level must be 0, 1 or 2")
        w, i = self.precision
        if w <= 0 or i < 0 or i > w:
            raise ValueError(f"invalid precision {self.precision}")
        # stacklevel=3: __post_init__ ← dataclass __init__ ← caller.
        if self.n_hubs is not None:
            warnings.warn(
                "RuntimeConfig.n_hubs is deprecated; hub topology is "
                "plant policy — pass plant=BeamLossPlant(n_hubs=...)",
                DeprecationWarning, stacklevel=3)
        if self.min_votes is not None:
            warnings.warn(
                "RuntimeConfig.min_votes is deprecated; the vote floor "
                "is plant policy — pass plant=BeamLossPlant(min_votes=...)",
                DeprecationWarning, stacklevel=3)


@dataclass
class ControlLoopResult:
    """Everything :func:`run_control_loop` produced, in one place."""

    records: List[FrameRecord]
    health: HealthReport
    runtime: CentralNodeRuntime
    obs: Optional[Observability] = None
    #: Control-quality summary for the run (also on ``health.control``).
    control: Optional[ControlQuality] = None
    #: The plant that drove the run (``runtime.plant``).
    plant: Optional[Plant] = None

    @property
    def total_latencies_s(self) -> np.ndarray:
        """Per-frame total latency (hub readout + node), frame order."""
        return np.array([r.total_latency_s for r in self.records])

    @property
    def latencies_s(self) -> np.ndarray:
        """Deprecated alias of :attr:`total_latencies_s`."""
        warnings.warn(
            "ControlLoopResult.latencies_s is deprecated; use "
            "total_latencies_s",
            DeprecationWarning, stacklevel=2)
        return self.total_latencies_s


def load_pretrained(*, include_bn: Optional[bool] = None,
                    train_if_missing: bool = True) -> ReferenceBundle:
    """The reference bundle: trained U-Net + MLP + deblending dataset.

    Thin facade over
    :func:`repro.pretrained.bundle.load_reference_bundle`; the only
    behavioural difference is that missing weights are trained by
    default (the quickstart should never dead-end on a fresh clone).

    The bundle is beam-loss-specific (its dataset is the plant's
    substrate); plant-generic code should take models from
    ``plant.default_model()`` instead.  *include_bn* is deprecated
    here — pass it to
    :func:`repro.pretrained.bundle.load_reference_bundle` directly.
    """
    if include_bn is not None:
        warnings.warn(
            "load_pretrained(include_bn=...) is deprecated; call "
            "repro.pretrained.bundle.load_reference_bundle for "
            "variant-specific bundles",
            DeprecationWarning, stacklevel=2)
    return load_reference_bundle(include_bn=bool(include_bn),
                                 train_if_missing=train_if_missing)


def _as_hls(model: ModelLike, x_profile: Optional[np.ndarray],
            config: RuntimeConfig) -> HLSModel:
    """Convert a float model (layer-based if profiled, else uniform)."""
    if isinstance(model, HLSModel):
        return model
    if not isinstance(model, Model):
        raise TypeError(f"expected Model or HLSModel, got {type(model)!r}")
    if x_profile is not None:
        cfg = layer_based_config(model, np.asarray(x_profile, np.float64),
                                 width=config.profile_width)
    else:
        width, integer = config.precision
        cfg = uniform_config(width, integer, model=model)
    return convert(model, cfg)


def _apply_deprecated_overrides(plant: Plant,
                                config: RuntimeConfig) -> Plant:
    """Honor deprecated ``RuntimeConfig`` plant fields on *plant*.

    Applied via :func:`dataclasses.replace` on the **plant** (never by
    rebuilding the config, which would re-fire the deprecation warning
    from inside the library).
    """
    overrides = {}
    if config.n_hubs is not None:
        overrides["n_hubs"] = config.n_hubs
    if config.min_votes is not None:
        overrides["min_votes"] = config.min_votes
    if not overrides:
        return plant
    if not isinstance(plant, BeamLossPlant):
        raise ValueError(
            f"deprecated RuntimeConfig fields {sorted(overrides)} only "
            f"apply to BeamLossPlant; set them on the "
            f"{type(plant).__name__} itself")
    return replace(plant, **overrides)


def build_runtime(model: ModelLike, *,
                  x_profile: Optional[np.ndarray] = None,
                  fallback: Optional[ModelLike] = None,
                  config: Optional[RuntimeConfig] = None,
                  obs: ObsLike = None,
                  injector: Optional[FaultInjector] = None,
                  plant: Optional[Plant] = None,
                  ) -> CentralNodeRuntime:
    """Place *model* on a hardened central-node runtime.

    *model* (and *fallback*) may be a trained float
    :class:`~repro.nn.Model` — converted here, layer-based when
    *x_profile* is given, uniform ``precision`` otherwise — or an
    already-converted :class:`~repro.hls.HLSModel`, used as-is.
    *obs* may be an :class:`~repro.obs.ObsConfig` (a bundle is built),
    a ready :class:`~repro.obs.Observability`, or None (zero-cost off).

    *plant* supplies the workload-specific wiring — hub topology and
    trip controller — and rides on the runtime for closed-loop driving
    and control-quality scoring downstream.  Default:
    :class:`~repro.plants.BeamLossPlant` (exactly the pre-plant
    wiring).
    """
    config = config or RuntimeConfig()
    plant = _apply_deprecated_overrides(plant or BeamLossPlant(), config)
    hls = _as_hls(model, x_profile, config)
    if config.compile_level and not hls.compiled:
        hls.compile(level=config.compile_level)

    fallback_board = None
    if fallback is not None:
        fb = _as_hls(fallback, None, config)
        if config.compile_level and not fb.compiled:
            fb.compile(level=config.compile_level)
        fallback_board = AchillesBoard(fb)

    if isinstance(obs, ObsConfig):
        obs = Observability.from_config(obs)
    elif not (obs is None or isinstance(obs, Observability)):
        raise TypeError(f"obs must be ObsConfig/Observability/None, "
                        f"got {type(obs)!r}")

    n_monitors = int(np.prod(hls.input_shape))
    expected = plant.expected_monitors
    if expected is not None and expected != n_monitors:
        raise ValueError(
            f"{type(plant).__name__} synthesises {expected}-monitor "
            f"frames but the model reads {n_monitors} monitors")
    return CentralNodeRuntime(
        board=AchillesBoard(hls),
        fallback_board=fallback_board,
        hubs=plant.hubs(n_monitors),
        controller=plant.controller(),
        period_s=config.period_s,
        batch_inference=config.batch_inference,
        speculation=config.speculation,
        policy=config.policy,
        injector=injector,
        obs=obs,
        plant=plant,
    )


def run_control_loop(model: Union[ModelLike, CentralNodeRuntime],
                     frames: Optional[np.ndarray] = None, *,
                     n_frames: Optional[int] = None,
                     seed: int = 0,
                     x_profile: Optional[np.ndarray] = None,
                     fallback: Optional[ModelLike] = None,
                     config: Optional[RuntimeConfig] = None,
                     obs: ObsLike = None,
                     injector: Optional[FaultInjector] = None,
                     plant: Optional[Plant] = None,
                     ) -> ControlLoopResult:
    """Drive the control loop and summarise the run.

    Accepts either something buildable (see :func:`build_runtime`) or a
    ready :class:`~repro.soc.runtime.CentralNodeRuntime` — the latter
    lets callers reuse one runtime across stretches of frames (passing
    any other build keyword alongside a ready runtime raises
    ``ValueError``; it used to be silently ignored).

    The workload comes from the runtime's plant:

    * **open-loop plant** (e.g. the default
      :class:`~repro.plants.BeamLossPlant`) — pass *frames* (exactly
      the historical behavior, bit for bit), or pass *n_frames* to
      let the plant synthesise them;
    * **closed-loop plant** (``plant.closed_loop``) — pass *n_frames*
      only; each published action feeds back through
      ``session.apply`` before the next frame is synthesised
      (:func:`repro.plants.run_closed_loop`).

    The run is scored into a :class:`~repro.plants.ControlQuality`
    (on ``result.control`` and ``result.health.control``, and folded
    into the observability metrics as ``control.*`` gauges).
    """
    if isinstance(model, CentralNodeRuntime):
        given = sorted(k for k, v in (("config", config),
                                      ("x_profile", x_profile),
                                      ("fallback", fallback),
                                      ("injector", injector),
                                      ("plant", plant)) if v is not None)
        if given:
            raise ValueError(
                f"run_control_loop got a ready runtime plus build "
                f"keywords {given}; configure them in build_runtime "
                f"instead")
        runtime = model
        if obs is not None:
            if isinstance(obs, ObsConfig):
                obs = Observability.from_config(obs)
            runtime.attach_observability(obs)
    else:
        runtime = build_runtime(model, x_profile=x_profile,
                                fallback=fallback, config=config,
                                obs=obs, injector=injector, plant=plant)

    plant_obj = runtime.plant
    session = None
    if plant_obj is not None and plant_obj.closed_loop:
        if frames is not None:
            raise ValueError(
                f"{type(plant_obj).__name__} is closed-loop: it "
                f"synthesises its own frames — pass n_frames, not "
                f"frames")
        if n_frames is None:
            raise ValueError("closed-loop runs need n_frames")
        session = plant_obj.session(seed)
        records = run_closed_loop(runtime, session, n_frames, seed=seed)
    else:
        if frames is None:
            if n_frames is None:
                raise ValueError("pass frames or n_frames")
            if plant_obj is None:
                raise ValueError(
                    "n_frames needs a plant to synthesise frames")
            session = plant_obj.session(seed)
            frames = np.stack([session.next_frame()
                               for _ in range(n_frames)])
        elif n_frames is not None:
            raise ValueError("pass frames or n_frames, not both")
        records = runtime.run(np.asarray(frames, dtype=np.float64),
                              seed=seed)

    if session is not None:
        control = session.quality(records)
    else:
        control = ControlQuality.from_records(records, runtime.period_s)
    health = replace(runtime.health_report(), control=control)
    if runtime.obs is not None:
        fold_control_metrics(runtime.obs.metrics, control)
    return ControlLoopResult(records=records,
                             health=health,
                             runtime=runtime,
                             obs=runtime.obs,
                             control=control,
                             plant=plant_obj)


def build_farm(model: ModelLike, *,
               fallback: Optional[ModelLike] = None,
               config: Optional[RuntimeConfig] = None,
               obs: Optional[ObsConfig] = None,
               injector: Optional[FaultInjector] = None,
               plant: Optional[Plant] = None,
               n_shards: int = 4,
               batching=None,
               seed: Optional[int] = 0,
               arrival_mode: str = "stream",
               hosts=()):
    """Build a :class:`~repro.serve.ShardedNodeFarm` over *model*.

    Each of the *n_shards* stream shards gets its own runtime replica
    (built exactly like :func:`build_runtime` would, per *config*) and
    an independent spawn-key-derived seed stream from *seed*.  *obs*
    must be an :class:`~repro.obs.ObsConfig` (or None): every replica
    owns a private observability bundle, and the farm merges the
    per-shard snapshots into one ``repro-obs/1`` export — a ready
    :class:`~repro.obs.Observability` instance cannot be shared across
    replicas, so it is rejected.

    *batching* is a :class:`~repro.serve.BatchingPolicy`;
    *arrival_mode* is ``"stream"`` (live 3 ms grids per shard) or
    ``"backlog"`` (replay/throughput: batches fill to ``max_batch``).

    *injector* arms every replica with the same fault specs + seed;
    fault schedules stay a pure function of (seed, spec, frame index)
    per shard, so worker count never perturbs the chaos (and the
    speculative ladder keeps the batched fast path live under it).

    *hosts* is a sequence of ``"host:port"`` addresses of running
    ``repro-hosts/1`` agents (``python -m repro.serve.remote``); when
    non-empty, ``serve()`` dispatches shard groups across those agents
    (plus any local workers) through a
    :class:`~repro.serve.remote.HostPool` — bit-identical to the
    single-machine run, with partition-aware crash recovery.

    *plant* rides the (picklable) spec to every replica.  Closed-loop
    plants serve via ``farm.serve_plant(n_frames)``: each shard runs
    its own ordered closed-loop session, so per-stream bit-identity
    extends to the farm.
    """
    from repro.serve import FarmSpec, ShardedNodeFarm

    if isinstance(obs, Observability):
        raise TypeError(
            "build_farm needs a per-replica ObsConfig (or None), not a "
            "ready Observability — replicas cannot share one bundle")
    if not (obs is None or isinstance(obs, ObsConfig)):
        raise TypeError(f"obs must be ObsConfig or None, got {type(obs)!r}")
    spec = FarmSpec(model=model, fallback=fallback,
                    config=config or RuntimeConfig(), obs=obs,
                    injector=injector, plant=plant)
    return ShardedNodeFarm(spec, n_shards=n_shards, batching=batching,
                           seed=seed, arrival_mode=arrival_mode,
                           hosts=hosts)


def serve_frames(model, frames: np.ndarray, *,
                 workers: int = 4,
                 fallback: Optional[ModelLike] = None,
                 config: Optional[RuntimeConfig] = None,
                 obs: Optional[ObsConfig] = None,
                 plant: Optional[Plant] = None,
                 n_shards: int = 4,
                 batching=None,
                 seed: Optional[int] = 0,
                 arrival_mode: str = "stream",
                 **serve_kwargs):
    """Serve *frames* through a sharded farm; returns a ``FarmResult``.

    *model* is anything :func:`build_farm` accepts, or a ready
    :class:`~repro.serve.ShardedNodeFarm` (the remaining build keywords
    are then rejected, mirroring :func:`run_control_loop`'s runtime
    reuse).  ``workers >= 1`` runs the spawn worker pool; ``workers ==
    0`` runs the identical plan sequentially in-process — the
    bit-identity reference the tests and the ``serve_throughput``
    gate compare against.
    """
    from repro.serve import ShardedNodeFarm

    if isinstance(model, ShardedNodeFarm):
        overrides = {"fallback": fallback, "config": config, "obs": obs,
                     "batching": batching, "plant": plant}
        given = sorted(k for k, v in overrides.items() if v is not None)
        if given:
            raise TypeError(
                f"serve_frames got a ready farm plus build keywords "
                f"{given}; configure them in build_farm instead")
        farm = model
    else:
        if plant is not None and plant.closed_loop:
            raise ValueError(
                f"{type(plant).__name__} is closed-loop: it synthesises "
                f"its own frames — use build_farm(...).serve_plant(...)")
        farm = build_farm(model, fallback=fallback, config=config,
                          obs=obs, plant=plant, n_shards=n_shards,
                          batching=batching, seed=seed,
                          arrival_mode=arrival_mode)
    return farm.serve(np.asarray(frames, dtype=np.float64),
                      workers=workers, **serve_kwargs)


def start_daemon(model: ModelLike, *,
                 fallback: Optional[ModelLike] = None,
                 config: Optional[RuntimeConfig] = None,
                 obs: Optional[ObsConfig] = None,
                 injector: Optional[FaultInjector] = None,
                 plant: Optional[Plant] = None,
                 workers: int = 4,
                 batching=None,
                 seed: Optional[int] = 0,
                 queue_limit: int = 64,
                 arrival_mode: str = "stream",
                 host: str = "127.0.0.1",
                 port: int = 0,
                 **daemon_kwargs):
    """Launch the persistent serving daemon; returns a ``DaemonHandle``.

    The daemon listens on ``(host, port)`` (port 0 picks a free one —
    read ``handle.address``), spawns *workers* persistent warm worker
    processes once, and serves any number of concurrent client streams
    over the length-prefixed ``repro-serve/1`` protocol
    (:mod:`repro.serve.protocol`).  Each stream runs on its own
    persistent runtime replica with micro-batching per *batching*,
    bit-identical to the sequential per-stream reference
    (:func:`repro.serve.daemon.serve_streams_reference`).

    *queue_limit* bounds each stream's accepted-but-uncompleted queue;
    frames beyond it are shed at admission (reported per frame to the
    client and counted in ``FarmHealth.frames_shed``).  Use
    ``handle.drain()`` for the end-of-epoch report, ``handle.reload()``
    to swap in fresh workers without dropping the listener, and
    ``handle.stop()`` (or a ``with`` block) to tear down.

    Model/obs validation matches :func:`build_farm`.
    """
    from repro.serve import FarmSpec
    from repro.serve.daemon import DaemonHandle

    if isinstance(obs, Observability):
        raise TypeError(
            "start_daemon needs a per-replica ObsConfig (or None), not a "
            "ready Observability — replicas cannot share one bundle")
    if not (obs is None or isinstance(obs, ObsConfig)):
        raise TypeError(f"obs must be ObsConfig or None, got {type(obs)!r}")
    if plant is not None and plant.closed_loop:
        raise ValueError(
            f"{type(plant).__name__} is closed-loop: the daemon's "
            f"stream protocol ships caller frames — run it through "
            f"build_farm(...).serve_plant(...) instead")
    spec = FarmSpec(model=model, fallback=fallback,
                    config=config or RuntimeConfig(), obs=obs,
                    injector=injector, plant=plant)
    return DaemonHandle.launch(spec, workers=workers, batching=batching,
                               seed=seed, queue_limit=queue_limit,
                               arrival_mode=arrival_mode, host=host,
                               port=port, **daemon_kwargs)


def codesign_and_deploy(
    model: Model,
    x_profile: np.ndarray,
    *legacy,
    constraints: Optional[DesignConstraints] = None,
    eval_frames: int = 100,
    verify_frames: int = 8,
    search=None,
) -> Tuple[CodesignResult, Deployment]:
    """Run the full paper pipeline for one trained model.

    Profiles → layer-based precision → reuse tuning → constraint checks →
    deployment on the simulated Achilles board → staged verification.
    Returns the chosen design point and the verified deployment.

    ``search`` engages the :mod:`repro.dse` autotuner instead of the
    paper's fixed strategy ladder: pass a mode string (``"random"`` /
    ``"grid"`` / ``"adaptive"``) or a ready
    :class:`~repro.dse.DSESettings`.  The DSE's recommended design is
    re-evaluated through the codesign optimizer (same accuracy/latency/
    fit verdicts as the ladder) and deployed; if the search finds no
    feasible design — or its recommendation fails the optimizer's
    checks — the pipeline falls back to the ladder, so ``search`` can
    only improve on the paper's design, never lose it.

    ``constraints``/``eval_frames``/``verify_frames`` are keyword-only;
    passing them positionally still works but is deprecated.
    """
    if legacy:
        warnings.warn(
            "positional constraints/eval_frames/verify_frames are "
            "deprecated; pass them as keywords to codesign_and_deploy",
            DeprecationWarning, stacklevel=2)
        if len(legacy) > 3:
            raise TypeError("codesign_and_deploy takes at most 5 "
                            "positional arguments")
        names = ("constraints", "eval_frames", "verify_frames")
        given = {"constraints": constraints, "eval_frames": eval_frames,
                 "verify_frames": verify_frames}
        for name, value in zip(names, legacy):
            given[name] = value
        constraints = given["constraints"]
        eval_frames = given["eval_frames"]
        verify_frames = given["verify_frames"]

    x_profile = np.asarray(x_profile, dtype=np.float64)
    optimizer = CodesignOptimizer(model, x_profile, constraints,
                                  eval_frames=eval_frames)
    design = None
    if search is not None:
        from repro.dse import DSESettings, open_loop_problem, run_dse
        from repro.dse.space import build_config

        settings = (DSESettings(mode=search) if isinstance(search, str)
                    else search)
        problem = open_loop_problem(
            model, x_profile, constraints=constraints,
            eval_frames=eval_frames, profiles=optimizer.profiles,
            name="codesign")
        dse_result = run_dse(problem, settings=settings)
        if dse_result.recommended is not None:
            config = build_config(dse_result.recommended.candidate,
                                  model, optimizer.profiles)
            candidate_design = optimizer.evaluate(config)
            if candidate_design.feasible:
                design = candidate_design
    if design is None:
        design = optimizer.optimize()
    flat = x_profile[:verify_frames].reshape(verify_frames, -1)
    deployment = deploy(model, design.hls_model, flat)
    return design, deployment
