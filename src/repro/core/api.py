"""One-call co-design + deployment (the quickstart path)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.codesign import CodesignOptimizer, CodesignResult, DesignConstraints
from repro.core.deployment import Deployment, deploy
from repro.nn.model import Model

__all__ = ["codesign_and_deploy"]


def codesign_and_deploy(
    model: Model,
    x_profile: np.ndarray,
    constraints: Optional[DesignConstraints] = None,
    eval_frames: int = 100,
    verify_frames: int = 8,
) -> Tuple[CodesignResult, Deployment]:
    """Run the full paper pipeline for one trained model.

    Profiles → layer-based precision → reuse tuning → constraint checks →
    deployment on the simulated Achilles board → staged verification.
    Returns the chosen design point and the verified deployment.
    """
    x_profile = np.asarray(x_profile, dtype=np.float64)
    optimizer = CodesignOptimizer(model, x_profile, constraints,
                                  eval_frames=eval_frames)
    design = optimizer.optimize()
    flat = x_profile[:verify_frames].reshape(verify_frames, -1)
    deployment = deploy(model, design.hls_model, flat)
    return design, deployment
