"""The paper's primary contribution as a library: ML/HLS co-design.

The methodology of Section IV-D, programmatically:

1. profile the trained float model on representative data,
2. derive layer-based ``ac_fixed<16, x>`` precision from the profiles,
3. tune reuse factors to trade latency for resources,
4. check the three constraints — accuracy (within-0.20 ≥ floor),
   resources (fits the Arria 10), latency (≤ 3 ms with system overhead) —
5. deploy the winning design onto the simulated SoC and run the staged
   verification flow.

Entry points:

* :class:`CodesignOptimizer` — evaluate/optimize design points,
* :func:`deploy` — place a converted model on an Achilles board and
  verify it,
* :func:`codesign_and_deploy` — the one-call happy path used by the
  quickstart example.
"""

from repro.core.codesign import CodesignOptimizer, CodesignResult, DesignConstraints
from repro.core.deployment import Deployment, deploy
from repro.core.api import codesign_and_deploy

__all__ = [
    "CodesignOptimizer",
    "CodesignResult",
    "DesignConstraints",
    "Deployment",
    "deploy",
    "codesign_and_deploy",
]
