"""The paper's primary contribution as a library: ML/HLS co-design.

The methodology of Section IV-D, programmatically:

1. profile the trained float model on representative data,
2. derive layer-based ``ac_fixed<16, x>`` precision from the profiles,
3. tune reuse factors to trade latency for resources,
4. check the three constraints — accuracy (within-0.20 ≥ floor),
   resources (fits the Arria 10), latency (≤ 3 ms with system overhead) —
5. deploy the winning design onto the simulated SoC and run the staged
   verification flow.

Entry points — the :mod:`repro.core.api` facade:

* :func:`load_pretrained` — reference U-Net/MLP bundle + dataset,
* :func:`build_runtime` — convert/compile a model onto a hardened
  central-node runtime (``RuntimeConfig`` + ``ObsConfig`` policy),
* :func:`run_control_loop` — drive frames, get records/health/obs,
* :func:`codesign_and_deploy` — the one-call co-design happy path,

plus the underlying :class:`CodesignOptimizer` and :func:`deploy`.
"""

from repro.core.codesign import CodesignOptimizer, CodesignResult, DesignConstraints
from repro.core.deployment import Deployment, deploy
from repro.core.api import (
    ControlLoopResult,
    RuntimeConfig,
    build_runtime,
    codesign_and_deploy,
    load_pretrained,
    run_control_loop,
)
from repro.obs import ObsConfig

__all__ = [
    "CodesignOptimizer",
    "CodesignResult",
    "DesignConstraints",
    "Deployment",
    "deploy",
    "RuntimeConfig",
    "ObsConfig",
    "ControlLoopResult",
    "load_pretrained",
    "build_runtime",
    "run_control_loop",
    "codesign_and_deploy",
]
