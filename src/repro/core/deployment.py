"""Deployment: place a design on the board and verify it."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hls.model import HLSModel
from repro.nn.model import Model
from repro.soc.board import AchillesBoard
from repro.soc.trace import SignalTrace
from repro.verify.flow import VerificationFlow
from repro.verify.stages import StageResult

__all__ = ["Deployment", "deploy"]


@dataclass
class Deployment:
    """A verified design running on the simulated central node."""

    model: Model
    hls_model: HLSModel
    board: AchillesBoard
    verification: List[StageResult]

    @property
    def verified(self) -> bool:
        """All verification stages passed."""
        return bool(self.verification) and all(r.passed for r in self.verification)

    @property
    def system_latency_s(self) -> float:
        """Deterministic step 1–8 latency (jitter excluded)."""
        return self.board.deterministic_latency_s()

    @property
    def throughput_fps(self) -> float:
        """Sustained free-running throughput (the paper's 575 fps metric)."""
        return 1.0 / self.system_latency_s

    def meets_requirement(self, deadline_s: float = 3e-3,
                          required_fps: float = 320.0) -> bool:
        """The deployment contract: 3 ms latency at 320 fps."""
        return (self.system_latency_s <= deadline_s
                and self.throughput_fps >= required_fps)


def deploy(model: Model, hls_model: HLSModel,
           x_verify: np.ndarray,
           board: Optional[AchillesBoard] = None,
           min_accuracy: float = 0.95) -> Deployment:
    """Program the board with *hls_model* and run the verification flow.

    Parameters
    ----------
    x_verify:
        Frames ``(n, n_inputs)`` for the verification stages (a handful
        of representative frames suffices; the paper's incremental flow
        uses the same vectors at every stage).
    """
    board = board or AchillesBoard(hls_model, trace=SignalTrace())
    flow = VerificationFlow(model, hls_model, board)
    results = flow.run_all(np.asarray(x_verify, dtype=np.float64),
                           min_accuracy=min_accuracy)
    return Deployment(model=model, hls_model=hls_model, board=board,
                      verification=results)
