"""Non-dominated filtering for the multi-objective scores."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

__all__ = ["pareto_front", "dominates"]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when *a* is at least as good as *b* everywhere and strictly
    better somewhere (all objectives maximised)."""
    if len(a) != len(b):
        raise ValueError(f"objective arity mismatch: {len(a)} vs {len(b)}")
    at_least = all(x >= y for x, y in zip(a, b))
    strictly = any(x > y for x, y in zip(a, b))
    return at_least and strictly


def pareto_front(items: Sequence[T],
                 objectives: Callable[[T], Tuple[float, ...]],
                 tie_break: Callable[[T], str] = repr) -> List[T]:
    """The non-dominated subset of *items*, sorted by *tie_break*.

    ``objectives(item)`` returns a tuple where **larger is better** on
    every axis (negate minimised quantities).  Duplicate objective
    vectors all survive (none dominates the other); the output order is
    the deterministic ``tie_break`` sort, independent of input order.
    """
    scored = [(objectives(item), item) for item in items]
    front = []
    for obj, item in scored:
        # An item never dominates itself (no strict improvement), so no
        # self-exclusion is needed.
        if not any(dominates(other, obj) for other, _ in scored):
            front.append(item)
    return sorted(front, key=tie_break)
