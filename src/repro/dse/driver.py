"""The search driver: random / grid / adaptive modes, one SeedSequence.

All three modes share the same shape:

1. inject the paper's anchor ladder (the search can only improve on the
   published design, never lose it),
2. generate a candidate pool (mode-specific),
3. pre-filter every candidate through the structural estimators (free),
4. simulate the fit-plausible survivors,
5. emit the Pareto front over (accuracy, fps, −node p99, −pressure) and
   a recommended config.

Determinism contract: every random draw comes from generators spawned
from ``SeedSequence(settings.seed)`` in a fixed order; scores are pure
functions of (candidate, problem seed); ties break on the candidate's
canonical key.  Same seed ⇒ byte-identical ``front_json()``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dse.pareto import pareto_front
from repro.dse.score import CandidateScore, DSEProblem, score_candidate
from repro.dse.space import Candidate, SearchSpace

__all__ = ["DSESettings", "DSEResult", "run_dse"]

MODES = ("random", "grid", "adaptive")


@dataclass(frozen=True)
class DSESettings:
    """Driver policy (keyword-friendly, hashable)."""

    mode: str = "adaptive"
    #: Simulation budget per search round: random/grid simulate at most
    #: this many candidates total (anchors included); adaptive
    #: short-screens up to ``budget`` candidates and then fully
    #: evaluates at most ``budget`` survivors + mutations.
    budget: int = 16
    seed: int = 0
    #: Adaptive mode: survivors kept per halving round, and how many
    #: seeded mutations each survivor spawns for the refinement round.
    survivors: int = 4
    mutations: int = 2
    #: Adaptive mode: short-simulation frame count for the first round
    #: (successive halving pays full frames only for survivors).
    screen_frames: int = 24

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, "
                             f"got {self.mode!r}")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.survivors < 1 or self.mutations < 0:
            raise ValueError("invalid survivors/mutations")


@dataclass
class DSEResult:
    """Everything one search produced."""

    problem: str
    mode: str
    seed: int
    #: Every candidate that was scored, pre-filtered rejects included,
    #: in deterministic evaluation order.
    evaluated: List[CandidateScore]
    #: Non-dominated feasible scores, sorted by candidate key.
    front: List[CandidateScore]
    recommended: Optional[CandidateScore]

    @property
    def n_simulated(self) -> int:
        return sum(1 for s in self.evaluated if s.simulated)

    @property
    def n_prefiltered(self) -> int:
        return sum(1 for s in self.evaluated if not s.simulated)

    def front_json(self) -> str:
        """Canonical JSON of the front — the byte-identity artefact."""
        return json.dumps([s.to_dict() for s in self.front],
                          sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> Dict[str, object]:
        return {
            "problem": self.problem,
            "mode": self.mode,
            "seed": self.seed,
            "n_evaluated": len(self.evaluated),
            "n_simulated": self.n_simulated,
            "n_prefiltered": self.n_prefiltered,
            "front": [s.to_dict() for s in self.front],
            "recommended": (self.recommended.to_dict()
                            if self.recommended else None),
        }


def _recommend(scores: List[CandidateScore]) -> Optional[CandidateScore]:
    """Deterministic pick: accuracy, then fps, then latency, then
    resource headroom, then candidate key."""
    feasible = [s for s in scores if s.feasible]
    if not feasible:
        return None
    return min(feasible, key=lambda s: (-s.accuracy, -s.fps,
                                        s.node_p99_ms, s.resource_pressure,
                                        s.candidate.key()))


def _dedup(candidates: List[Candidate]) -> List[Candidate]:
    seen: set = set()
    out: List[Candidate] = []
    for c in candidates:
        k = c.key()
        if k not in seen:
            seen.add(k)
            out.append(c)
    return out


def _pool(problem: DSEProblem, space: SearchSpace, settings: DSESettings,
          rng: np.random.Generator, size: int) -> List[Candidate]:
    """Anchors + mode-specific pool, deduplicated, deterministic order."""
    pool = list(space.anchors())
    if settings.mode == "grid":
        pool.extend(space.grid(size))
    else:
        attempts = 0
        while len(_dedup(pool)) < size and attempts < size * 20:
            pool.append(space.sample(rng))
            attempts += 1
    return _dedup(pool)[:max(size, len(space.anchors()))]


def run_dse(problem: DSEProblem,
            space: Optional[SearchSpace] = None,
            settings: Optional[DSESettings] = None) -> DSEResult:
    """Search *space* on *problem* under *settings*; see module doc."""
    settings = settings or DSESettings()
    if space is None:
        space = SearchSpace(
            layer_names=tuple(sorted(problem.profiles)),
        )
    ss = np.random.SeedSequence(settings.seed)
    rng_pool, rng_mut = (np.random.default_rng(c) for c in ss.spawn(2))

    #: Log of every scoring run (screening passes included), in order.
    evaluated: List[CandidateScore] = []
    #: Final score per candidate key — in adaptive mode only rejects and
    #: full-frame scores land here, so the front never mixes screening
    #: frame counts with full evaluations.
    scored: Dict[str, CandidateScore] = {}

    if settings.mode in ("random", "grid"):
        pool = _pool(problem, space, settings, rng_pool, settings.budget)
        for candidate in pool:
            score = score_candidate(problem, candidate)
            evaluated.append(score)
            scored[candidate.key()] = score
    else:  # adaptive: estimator rank → short sim → mutate survivors
        pool = _pool(problem, space, settings, rng_pool,
                     settings.budget * 3)
        anchor_keys = {c.key() for c in space.anchors()}
        # Round 0 (free): estimator screening of the whole pool.
        screened: List[CandidateScore] = []
        for candidate in pool:
            est = score_candidate(problem, candidate, eval_frames=0)
            evaluated.append(est)
            if est.reject_reason is not None:
                scored[candidate.key()] = est
            else:
                screened.append(est)
        # Round 1: short simulation of the best estimator ranks (anchors
        # always make the cut), cheapest-estimated-latency first.
        screened.sort(key=lambda s: (s.candidate.key() not in anchor_keys,
                                     s.est_ip_latency_ms,
                                     s.candidate.key()))
        # Closed-loop quality is not frame-separable (a pole cannot
        # stabilise inside a truncated episode), so screening only
        # shortens open-loop problems.
        short = (problem.eval_frames if problem.closed_loop
                 else min(settings.screen_frames, problem.eval_frames))
        round1_scores: List[CandidateScore] = []
        for s in screened[:settings.budget]:
            sc = score_candidate(problem, s.candidate, eval_frames=short)
            evaluated.append(sc)
            round1_scores.append(sc)
        # Round 2: full-frame evaluation of the survivors plus their
        # seeded mutations (mutations landing on already-settled keys —
        # estimator rejects — are skipped; their verdict stands).
        survivors = sorted(
            (s for s in round1_scores
             if s.simulated and s.reject_reason is None),
            key=lambda s: (-s.accuracy, -s.fps, s.node_p99_ms,
                           s.candidate.key()))[:settings.survivors]
        finalists: List[Candidate] = [s.candidate for s in survivors]
        for s in survivors:
            for _ in range(settings.mutations):
                finalists.append(space.mutate(s.candidate, rng_mut))
        for candidate in _dedup(finalists)[:settings.budget]:
            key = candidate.key()
            if key in scored:
                continue
            full = score_candidate(problem, candidate)
            evaluated.append(full)
            scored[key] = full

    feasible = [s for s in scored.values() if s.feasible]
    front = pareto_front(feasible, CandidateScore.objectives,
                         tie_break=lambda s: s.candidate.key())
    return DSEResult(
        problem=problem.name, mode=settings.mode, seed=settings.seed,
        evaluated=evaluated, front=front,
        recommended=_recommend(feasible),
    )
