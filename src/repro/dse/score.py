"""Candidate scoring: estimator pre-filter + deterministic simulation.

Scoring is two-staged, mirroring rule4ml's pre-fit estimator loop:

1. **Pre-filter** (microseconds): convert the candidate's config and
   run the structural :func:`~repro.hls.resources.estimate_resources` /
   :func:`~repro.hls.latency.estimate_latency` models.  Candidates that
   do not fit the device or blow the latency budget are rejected here
   and never pay for simulation.
2. **Simulation** (sub-second): fixed-point accuracy against the float
   reference (or closed-loop :class:`~repro.plants.ControlQuality`),
   plus simulated per-frame node latencies from the hardened runtime.

Every number is a pure function of (candidate, problem seed):

* accuracy — bit-exact fixed-point arithmetic;
* node latency — the board's *simulated* latency model (seeded jitter);
* throughput — an analytic service model over the deterministic
  micro-batch plans of :mod:`repro.serve.batching` (constants below,
  calibrated once against the measured bench fps ladder).

The wall clock never enters a score, so a seeded rerun reproduces the
Pareto front byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.codesign import DesignConstraints
from repro.dse.space import Candidate, build_config
from repro.hls.latency import estimate_latency
from repro.hls.model import HLSModel
from repro.hls.converter import convert
from repro.hls.profiling import profile_model
from repro.hls.resources import estimate_resources
from repro.plants import BeamLossPlant, Plant
from repro.serve.batching import (BatchingPolicy, backlog_arrivals,
                                  plan_microbatches, stream_arrivals)
from repro.verify.comparators import close_enough_accuracy

__all__ = ["ServiceModel", "CandidateScore", "DSEProblem",
           "score_candidate", "unet_problem", "open_loop_problem",
           "plant_problem"]


@dataclass(frozen=True)
class ServiceModel:
    """Calibrated wall-cost constants of the serving stack.

    Fitted once against the committed bench ladder (sequential ≈116 fps,
    batched level-0 ≈340 fps, compiled level-2 ≈550 fps on the reference
    runner); they parameterise an *analytic* throughput model — the DSE
    never times anything.
    """

    #: Fixed dispatch cost per micro-batch (plan + fast-path setup).
    dispatch_overhead_s: float = 6.0e-3
    #: Marginal per-frame cost inside a batch at compile level 0.
    marginal_frame_cost_s: float = 2.6e-3
    #: Speedup of the marginal cost at compile levels 0/1/2.
    level_speedup: Tuple[float, float, float] = (1.0, 1.35, 1.7)
    #: Relative marginal-cost factor of each forced conv formulation
    #: ("auto" lets the tuner pick, modelled as the best of the three).
    formulation_factor: Dict[str, float] = field(default_factory=lambda: {
        "auto": 0.93, "im2col": 1.0, "tapflat": 0.93, "tap3d": 0.96})
    #: Throughput scaling per extra busy worker (pool overheads).
    worker_efficiency: float = 0.85

    def marginal_cost_s(self, candidate: Candidate) -> float:
        speed = self.level_speedup[candidate.compile_level]
        factor = self.formulation_factor[candidate.conv_formulation]
        return self.marginal_frame_cost_s * factor / speed

    def throughput_fps(self, n_frames: int, candidate: Candidate) -> float:
        """Modeled backlog (replay) throughput of the sharded farm."""
        policy = BatchingPolicy(max_batch=candidate.batch_size)
        plan = plan_microbatches(backlog_arrivals(n_frames), policy)
        marginal = self.marginal_cost_s(candidate)
        shard_total = sum(self.dispatch_overhead_s + (stop - start) * marginal
                          for start, stop in plan)
        shard_fps = n_frames / shard_total
        busy = 1 if candidate.workers == 0 else min(candidate.n_shards,
                                                    candidate.workers)
        return shard_fps * (1.0 + (busy - 1) * self.worker_efficiency)

    def served_latency_s(self, node_latencies_s: np.ndarray,
                         candidate: Candidate) -> np.ndarray:
        """Per-frame served latency on a live per-shard 3 ms stream:
        micro-batch queueing wait + the frame's simulated node latency."""
        n = len(node_latencies_s)
        arrivals = stream_arrivals(n)
        policy = BatchingPolicy(max_batch=candidate.batch_size)
        waits = np.zeros(n)
        for start, stop in plan_microbatches(arrivals, policy):
            dispatch_t = arrivals[stop - 1]
            waits[start:stop] = dispatch_t - arrivals[start:stop]
        return waits + np.asarray(node_latencies_s, dtype=np.float64)


DEFAULT_SERVICE_MODEL = ServiceModel()


def _nearest_rank(values: np.ndarray, q: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if len(v) == 0:
        return math.nan
    rank = min(len(v) - 1, max(0, math.ceil(q * len(v)) - 1))
    return float(v[rank])


@dataclass
class CandidateScore:
    """Everything one candidate scored (estimators + simulation)."""

    candidate: Candidate
    fits: bool
    est_latency_ok: bool
    simulated: bool
    reject_reason: Optional[str] = None
    accuracy: float = 0.0
    accuracy_by_machine: Dict[str, float] = field(default_factory=dict)
    fps: float = 0.0
    node_p99_ms: float = math.nan
    served_p99_ms: float = math.nan
    est_ip_latency_ms: float = math.nan
    alut_fraction: float = math.nan
    register_fraction: float = math.nan
    dsp_fraction: float = math.nan
    m20k_fraction: float = math.nan
    memory_bits_fraction: float = math.nan
    control: Dict[str, float] = field(default_factory=dict)

    @property
    def resource_pressure(self) -> float:
        """Worst utilisation fraction (the binding resource)."""
        return max(self.alut_fraction, self.register_fraction,
                   self.dsp_fraction, self.m20k_fraction,
                   self.memory_bits_fraction)

    @property
    def feasible(self) -> bool:
        return (self.simulated and self.fits and self.est_latency_ok
                and self.reject_reason is None)

    def objectives(self) -> Tuple[float, float, float, float]:
        """Maximise: accuracy, fps, −node p99, −resource pressure."""
        return (round(self.accuracy, 9), round(self.fps, 6),
                round(-self.node_p99_ms, 6),
                round(-self.resource_pressure, 6))

    def to_dict(self) -> Dict[str, object]:
        def r(x: float) -> float:
            return round(float(x), 6) if not math.isnan(x) else float("nan")

        return {
            "candidate": self.candidate.to_dict(),
            "fits": self.fits,
            "feasible": self.feasible,
            "simulated": self.simulated,
            "reject_reason": self.reject_reason,
            "accuracy": r(self.accuracy),
            "accuracy_by_machine": {k: r(v) for k, v in
                                    sorted(self.accuracy_by_machine.items())},
            "fps": r(self.fps),
            "node_p99_ms": r(self.node_p99_ms),
            "served_p99_ms": r(self.served_p99_ms),
            "est_ip_latency_ms": r(self.est_ip_latency_ms),
            "alut_fraction": r(self.alut_fraction),
            "register_fraction": r(self.register_fraction),
            "dsp_fraction": r(self.dsp_fraction),
            "m20k_fraction": r(self.m20k_fraction),
            "memory_bits_fraction": r(self.memory_bits_fraction),
            "control": {k: r(v) for k, v in sorted(self.control.items())},
        }


@dataclass
class DSEProblem:
    """One scoring problem: a model + plant + deterministic workload.

    ``converted_lookup`` lets a problem reuse externally-cached
    converted models (the experiment harnesses plug
    :func:`repro.experiments.common.converted_at` in here) for
    candidates at the paper's reference precision points; any other
    candidate converts fresh.
    """

    name: str
    model: object
    plant: Plant
    profiles: Dict[str, object]
    constraints: DesignConstraints
    seed: int = 0
    eval_frames: int = 64
    #: Open-loop: raw 2-D monitor frames for the runtime + model-shaped
    #: eval inputs and the float reference outputs.  Closed-loop: None.
    frames: Optional[np.ndarray] = None
    x_eval: Optional[np.ndarray] = None
    y_float: Optional[np.ndarray] = None
    service: ServiceModel = field(default_factory=ServiceModel)
    converted_lookup: Optional[Callable[[Candidate], Optional[HLSModel]]] = None

    @property
    def closed_loop(self) -> bool:
        return self.plant.closed_loop


def _converted_for(problem: DSEProblem, candidate: Candidate) -> HLSModel:
    """A converted (not yet compiled) model for *candidate*."""
    if problem.converted_lookup is not None:
        cached = problem.converted_lookup(candidate)
        if cached is not None:
            return cached
    config = build_config(candidate, problem.model, problem.profiles)
    return convert(problem.model, config)


def _compile_for(hls: HLSModel, candidate: Candidate) -> None:
    """Bring *hls* to the candidate's compile level (idempotent for
    cached models already sitting at the right level)."""
    if candidate.conv_formulation == "auto":
        if hls.compile_level != candidate.compile_level:
            hls.compile(level=candidate.compile_level)
    else:
        hls.compile(level=candidate.compile_level,
                    conv_formulation=candidate.conv_formulation)


def score_candidate(problem: DSEProblem, candidate: Candidate,
                    eval_frames: Optional[int] = None) -> CandidateScore:
    """Score one candidate (pre-filter, then simulate if plausible)."""
    from repro.core.api import RuntimeConfig, build_runtime, run_control_loop

    hls = _converted_for(problem, candidate)
    resources = estimate_resources(hls, problem.constraints.device)
    latency = estimate_latency(hls)
    est_total = latency.latency_s + problem.constraints.system_overhead_s
    est_latency_ok = est_total <= problem.constraints.latency_budget_s
    score = CandidateScore(
        candidate=candidate,
        fits=resources.fits,
        est_latency_ok=est_latency_ok,
        simulated=False,
        est_ip_latency_ms=latency.latency_s * 1e3,
        alut_fraction=resources.alut_fraction,
        register_fraction=resources.register_fraction,
        dsp_fraction=resources.dsp_fraction,
        m20k_fraction=resources.m20k_fraction,
        memory_bits_fraction=resources.memory_bits_fraction,
    )
    if not resources.fits:
        score.reject_reason = "estimator: does not fit device"
        return score
    if not est_latency_ok:
        score.reject_reason = "estimator: over latency budget"
        return score
    if eval_frames == 0:
        # Estimator-only screening pass: fit-plausible, not simulated.
        return score

    # ------------------------------------------------------------ simulate
    n_eval = min(eval_frames if eval_frames is not None
                 else problem.eval_frames, problem.eval_frames)
    _compile_for(hls, candidate)
    config = RuntimeConfig(batch_inference=True)
    if problem.closed_loop:
        runtime = build_runtime(hls, config=config, plant=problem.plant)
        result = run_control_loop(runtime, n_frames=n_eval,
                                  seed=problem.seed)
        records, quality = result.records, result.control
        score.control = {
            "stabilization_time_s": quality.stabilization_time_s,
            "stabilized": float(quality.stabilized),
            "trip_precision": quality.trip_precision,
            "trip_recall": quality.trip_recall,
            "rms_state_error": quality.rms_state_error,
        }
        pr = [v for v in (quality.trip_precision, quality.trip_recall)
              if not math.isnan(v)]
        accuracy = min(pr) if pr else 1.0
        if not quality.stabilized:
            accuracy = 0.0
        score.accuracy = accuracy
        score.accuracy_by_machine = {problem.plant.name: accuracy}
    else:
        y_fixed = hls.predict(problem.x_eval[:n_eval])
        by_machine = close_enough_accuracy(
            problem.y_float[:n_eval], y_fixed,
            machine_names=problem.plant.machine_names)
        score.accuracy_by_machine = dict(by_machine)
        score.accuracy = min(by_machine.values())
        runtime = build_runtime(hls, config=config, plant=problem.plant)
        records = runtime.run(problem.frames[:n_eval], seed=problem.seed)

    node_lats = np.array([r.node_latency_s for r in records])
    score.node_p99_ms = _nearest_rank(node_lats, 0.99) * 1e3
    served = problem.service.served_latency_s(node_lats, candidate)
    score.served_p99_ms = _nearest_rank(served, 0.99) * 1e3
    score.fps = problem.service.throughput_fps(n_eval, candidate)
    score.simulated = True

    if score.accuracy < problem.constraints.accuracy_floor:
        score.reject_reason = "simulated: under accuracy floor"
    elif (score.node_p99_ms * 1e-3 + problem.constraints.system_overhead_s
          > problem.constraints.latency_budget_s):
        score.reject_reason = "simulated: node p99 over budget"
    return score


# ----------------------------------------------------------------------
# Problem constructors
# ----------------------------------------------------------------------
def open_loop_problem(model, x_profile: np.ndarray, *,
                      plant: Optional[Plant] = None,
                      constraints: Optional[DesignConstraints] = None,
                      eval_frames: int = 64, seed: int = 0,
                      profiles: Optional[dict] = None,
                      name: str = "open-loop") -> DSEProblem:
    """A generic open-loop problem from a float model + profile set.

    *x_profile* is model-shaped; the runtime sees the same frames
    flattened to raw monitor rows (hub ingestion is 2-D).
    """
    plant = plant or BeamLossPlant()
    x_profile = np.asarray(x_profile, dtype=np.float64)
    if profiles is None:
        profiles = profile_model(model, x_profile)
    n = min(eval_frames, x_profile.shape[0])
    x_eval = x_profile[:n]
    return DSEProblem(
        name=name, model=model, plant=plant, profiles=profiles,
        constraints=constraints or DesignConstraints(), seed=seed,
        eval_frames=n, frames=x_eval.reshape(n, -1), x_eval=x_eval,
        y_float=model.forward(x_eval),
    )


def unet_problem(*, fast: bool = False,
                 constraints: Optional[DesignConstraints] = None,
                 seed: int = 0,
                 eval_frames: Optional[int] = None) -> DSEProblem:
    """The paper's U-Net de-blending problem, wired to the experiment
    harnesses' shared bundle and per-level converted-model cache."""
    from repro.dse.space import REFERENCE_STRATEGIES
    from repro.experiments import common

    b = common.bundle()
    profiles = common.unet_profiles()
    n = eval_frames if eval_frames is not None else (48 if fast else 200)
    frames = np.asarray(b.dataset.x_eval[:n], dtype=np.float64)
    x_eval = b.dataset.unet_inputs(frames)
    titles = dict(zip(REFERENCE_STRATEGIES,
                      ["Uniform Precision ac_fixed<18, 10>",
                       "Uniform Precision ac_fixed<16, 7>",
                       "Layer-based Precision ac_fixed<16, x>"]))

    def lookup(candidate: Candidate) -> Optional[HLSModel]:
        # Reference precision points at the auto formulation ride the
        # shared (strategy, level) cache; compile levels are reconciled
        # by the scorer (cheap next to a reconvert).
        if not candidate.is_reference_precision:
            return None
        if candidate.conv_formulation != "auto":
            return None
        title = titles.get(candidate.strategy)
        if title is None:
            return None
        return common.converted_at(title, candidate.compile_level)

    return DSEProblem(
        name="unet-beamloss", model=b.unet, plant=BeamLossPlant(),
        profiles=profiles, constraints=constraints or DesignConstraints(),
        seed=seed, eval_frames=len(frames), frames=frames, x_eval=x_eval,
        y_float=b.unet.forward(x_eval), converted_lookup=lookup,
    )


def plant_problem(plant: Plant, *,
                  constraints: Optional[DesignConstraints] = None,
                  eval_frames: int = 96, profile_frames: int = 128,
                  seed: int = 0, name: Optional[str] = None) -> DSEProblem:
    """A closed-loop problem for *plant* (e.g. the cartpole scenario).

    Layer profiles come from driving the plant's float controller
    through a seeded episode (``session.step_output`` feedback), so the
    layer-based strategy sees realistic closed-loop activations.
    """
    model = plant.default_model()
    session = plant.session(seed)
    states: List[np.ndarray] = []
    for _ in range(profile_frames):
        frame = session.next_frame()
        states.append(frame)
        out = model.forward(frame[None])
        session.step_output(out[0])
    x_profile = np.stack(states)
    profiles = profile_model(model, x_profile)
    return DSEProblem(
        name=name or plant.name, model=model, plant=plant,
        profiles=profiles, constraints=constraints or DesignConstraints(),
        seed=seed, eval_frames=eval_frames,
    )
