"""Deterministic design-space exploration over the paper's knob space.

The paper tuned per-layer ``ac_fixed<16,x>`` integer bits and reuse
factors by hand against Quartus fit reports.  :mod:`repro.dse`
automates that loop over every knob this reproduction exposes —
precision strategy, per-layer integer bits, reuse factors, graph-
compile level, conv formulation, micro-batch size and shard/worker
counts — with the pre-fit estimators (:func:`~repro.hls.resources.
estimate_resources`, :func:`~repro.hls.latency.estimate_latency`)
filtering out fit-implausible candidates before any of them pays for
fixed-point simulation.

Everything is reproducible from a single :class:`numpy.random.
SeedSequence`: scores are pure functions of the candidate and the
problem seed (simulated node latencies, fixed-point accuracy, and an
analytic throughput model — never the wall clock), so a seeded rerun
emits a byte-identical Pareto front.
"""

from repro.dse.driver import DSEResult, DSESettings, run_dse
from repro.dse.pareto import pareto_front
from repro.dse.score import (CandidateScore, DSEProblem, score_candidate,
                             unet_problem, open_loop_problem, plant_problem)
from repro.dse.space import Candidate, SearchSpace, build_config

__all__ = [
    "Candidate",
    "SearchSpace",
    "build_config",
    "CandidateScore",
    "DSEProblem",
    "score_candidate",
    "unet_problem",
    "open_loop_problem",
    "plant_problem",
    "pareto_front",
    "DSESettings",
    "DSEResult",
    "run_dse",
]
