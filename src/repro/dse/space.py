"""The joint knob space: candidates, sampling, grids, mutations.

A :class:`Candidate` is one point in the joint space of every knob the
paper turns by hand (Section IV): precision strategy and per-layer
integer bits, reuse factors, plus the reproduction's serving knobs
(compile level, conv formulation, micro-batch size, shard and worker
counts).  :class:`SearchSpace` enumerates/samples candidates
deterministically — grids never touch an RNG, and random sampling
draws only from generators handed in by the driver (all spawned from
one ``SeedSequence``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hls.config import HLSConfig
from repro.hls.precision import (DENSE_SIGMOID_REUSE, apply_reference_reuse,
                                 layer_based_config, uniform_config)

__all__ = ["Candidate", "SearchSpace", "build_config",
           "REFERENCE_STRATEGIES"]

#: The paper's strategy ladder, in its Table II order.
REFERENCE_STRATEGIES = ("uniform<18,10>", "uniform<16,7>", "layer-based")


def _parse_strategy(strategy: str) -> Tuple[str, int, int]:
    """``"uniform<W,I>"`` → ("uniform", W, I); ``"layer-based"`` → 16-bit."""
    if strategy == "layer-based":
        return ("layer-based", 16, 0)
    if strategy.startswith("uniform<") and strategy.endswith(">"):
        w, i = strategy[len("uniform<"):-1].split(",")
        return ("uniform", int(w), int(i))
    raise ValueError(f"unknown strategy {strategy!r}; expected "
                     f"'layer-based' or 'uniform<W,I>'")


@dataclass(frozen=True)
class Candidate:
    """One point in the joint quantization/reuse/serving knob space.

    ``layer_deltas`` perturbs the layer-based strategy's profiled
    per-layer integer bits by ±1 — the resolution the paper's own
    margin-bit experiment (Fig 5b) works at — and is ignored (and
    canonicalised away) for uniform strategies, as is ``margin_bits``.
    """

    strategy: str = "layer-based"
    margin_bits: int = 0
    layer_deltas: Tuple[Tuple[str, int], ...] = ()
    default_reuse: int = 32
    dense_sigmoid_reuse: int = DENSE_SIGMOID_REUSE
    compile_level: int = 2
    conv_formulation: str = "auto"
    batch_size: int = 16
    n_shards: int = 4
    workers: int = 4

    def __post_init__(self) -> None:
        _parse_strategy(self.strategy)  # validate
        if self.strategy != "layer-based" and (
                self.margin_bits or self.layer_deltas):
            # Canonical form: precision perturbations only exist on the
            # layer-based strategy, so uniform candidates that differ
            # only in ignored fields collapse to one key.
            object.__setattr__(self, "margin_bits", 0)
            object.__setattr__(self, "layer_deltas", ())
        object.__setattr__(self, "layer_deltas",
                           tuple(sorted((str(n), int(d))
                                        for n, d in self.layer_deltas)))

    @property
    def is_reference_precision(self) -> bool:
        """Exactly one of the paper's ladder points (cache-eligible)."""
        return (self.margin_bits == 0 and not self.layer_deltas
                and self.default_reuse == 32
                and self.dense_sigmoid_reuse == DENSE_SIGMOID_REUSE)

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "margin_bits": self.margin_bits,
            "layer_deltas": [list(d) for d in self.layer_deltas],
            "default_reuse": self.default_reuse,
            "dense_sigmoid_reuse": self.dense_sigmoid_reuse,
            "compile_level": self.compile_level,
            "conv_formulation": self.conv_formulation,
            "batch_size": self.batch_size,
            "n_shards": self.n_shards,
            "workers": self.workers,
        }

    def key(self) -> str:
        """Canonical identity string (dedup + deterministic tie-breaks)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def build_config(candidate: Candidate, model,
                 profiles: Optional[dict] = None) -> HLSConfig:
    """Materialise a candidate into an :class:`~repro.hls.HLSConfig`."""
    kind, width, integer = _parse_strategy(candidate.strategy)
    if kind == "uniform":
        config = uniform_config(width, integer, model=model)
    else:
        config = layer_based_config(model, None, width=width,
                                    margin_bits=candidate.margin_bits,
                                    profiles=profiles)
    apply_reference_reuse(config, model,
                          default_reuse=candidate.default_reuse,
                          dense_sigmoid_reuse=candidate.dense_sigmoid_reuse)
    for name, delta in candidate.layer_deltas:
        current = config.for_layer(name)
        new_int = min(max(current.result.integer + delta, 1), width)
        config.set_layer(name, result=current.result.with_(integer=new_int))
    return config


@dataclass(frozen=True)
class SearchSpace:
    """Axis definitions of the joint space (all tuples are ordered)."""

    strategies: Tuple[str, ...] = REFERENCE_STRATEGIES
    margin_bits: Tuple[int, ...] = (0, 1)
    layer_delta_values: Tuple[int, ...] = (-1, 1)
    max_perturbed_layers: int = 2
    default_reuse: Tuple[int, ...] = (16, 32, 64, 128)
    dense_sigmoid_reuse: Tuple[int, ...] = (130, 260, 520)
    compile_levels: Tuple[int, ...] = (0, 1, 2)
    conv_formulations: Tuple[str, ...] = ("auto", "im2col", "tapflat",
                                          "tap3d")
    batch_sizes: Tuple[int, ...] = (8, 16, 32)
    n_shards: Tuple[int, ...] = (1, 2, 4)
    workers: Tuple[int, ...] = (0, 2, 4)
    #: Names of layers whose integer bits may be perturbed (layer-based
    #: strategy only); usually the profiled layers of the model.
    layer_names: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def anchors(self) -> List[Candidate]:
        """The paper's strategy ladder at its deployed serving point.

        Always injected first into every search mode, so the published
        Table II comparison is on every Pareto front and the search can
        only improve on the paper's hand-tuned design, never lose it.
        """
        level = max(self.compile_levels)
        mid = lambda axis: axis[len(axis) // 2]
        return [
            Candidate(strategy=s, default_reuse=32,
                      dense_sigmoid_reuse=DENSE_SIGMOID_REUSE,
                      compile_level=level, conv_formulation="auto",
                      batch_size=mid(self.batch_sizes),
                      n_shards=mid(self.n_shards),
                      workers=mid(self.workers))
            for s in self.strategies
        ]

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Candidate:
        """One uniformly-sampled candidate (index draws only, so the
        stream is stable across numpy versions)."""
        pick = lambda axis: axis[int(rng.integers(len(axis)))]
        strategy = pick(self.strategies)
        margin = 0
        deltas: Tuple[Tuple[str, int], ...] = ()
        if strategy == "layer-based":
            margin = pick(self.margin_bits)
            if self.layer_names and self.max_perturbed_layers:
                n_perturb = int(rng.integers(self.max_perturbed_layers + 1))
                if n_perturb:
                    idx = rng.choice(len(self.layer_names),
                                     size=min(n_perturb,
                                              len(self.layer_names)),
                                     replace=False)
                    deltas = tuple(
                        (self.layer_names[int(i)],
                         pick(self.layer_delta_values))
                        for i in sorted(int(j) for j in idx))
        return Candidate(
            strategy=strategy, margin_bits=margin, layer_deltas=deltas,
            default_reuse=pick(self.default_reuse),
            dense_sigmoid_reuse=pick(self.dense_sigmoid_reuse),
            compile_level=pick(self.compile_levels),
            conv_formulation=pick(self.conv_formulations),
            batch_size=pick(self.batch_sizes),
            n_shards=pick(self.n_shards),
            workers=pick(self.workers),
        )

    # ------------------------------------------------------------------
    def grid(self, max_candidates: int) -> List[Candidate]:
        """Deterministic lattice subsample of the full product grid.

        Enumerates the mixed-radix product of every axis (precision
        perturbations excluded — grids stay on the profiled bits) and
        takes ``max_candidates`` evenly-strided points.  No RNG.
        """
        axes: List[Tuple] = [self.strategies, self.margin_bits,
                             self.default_reuse, self.dense_sigmoid_reuse,
                             self.compile_levels, self.conv_formulations,
                             self.batch_sizes, self.n_shards, self.workers]
        total = 1
        for axis in axes:
            total *= len(axis)
        n = min(max_candidates, total)
        out: List[Candidate] = []
        seen = set()
        for j in range(n):
            flat = (j * (total - 1)) // max(n - 1, 1)
            coords = []
            for axis in reversed(axes):
                flat, r = divmod(flat, len(axis))
                coords.append(axis[r])
            (wk, sh, bs, cf, lvl, dr2, dr, mb, st) = coords
            cand = Candidate(strategy=st, margin_bits=mb,
                             default_reuse=dr, dense_sigmoid_reuse=dr2,
                             compile_level=lvl, conv_formulation=cf,
                             batch_size=bs, n_shards=sh, workers=wk)
            if cand.key() not in seen:
                seen.add(cand.key())
                out.append(cand)
        return out

    # ------------------------------------------------------------------
    def mutate(self, candidate: Candidate,
               rng: np.random.Generator) -> Candidate:
        """Perturb one knob of *candidate* (adaptive-mode neighborhood)."""
        knobs = ["default_reuse", "dense_sigmoid_reuse", "compile_level",
                 "conv_formulation", "batch_size", "n_shards", "workers"]
        if candidate.strategy == "layer-based":
            knobs.append("margin_bits")
            if self.layer_names:
                knobs.append("layer_delta")
        knob = knobs[int(rng.integers(len(knobs)))]
        pick = lambda axis: axis[int(rng.integers(len(axis)))]
        if knob == "layer_delta":
            name = self.layer_names[int(rng.integers(len(self.layer_names)))]
            delta = pick(self.layer_delta_values)
            deltas = dict(candidate.layer_deltas)
            deltas[name] = delta
            items = sorted(deltas.items())[-self.max_perturbed_layers:] \
                if self.max_perturbed_layers else []
            return replace(candidate, layer_deltas=tuple(items))
        axis = {"default_reuse": self.default_reuse,
                "dense_sigmoid_reuse": self.dense_sigmoid_reuse,
                "compile_level": self.compile_levels,
                "conv_formulation": self.conv_formulations,
                "batch_size": self.batch_sizes,
                "n_shards": self.n_shards,
                "workers": self.workers,
                "margin_bits": self.margin_bits}[knob]
        return replace(candidate, **{knob: pick(axis)})
