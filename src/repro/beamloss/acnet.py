"""ACNET sink — the facility control system receiving trip commands.

Step 9 in the paper's Fig 2 is "Ethernet communication off of the central
node": decisions leave the SoC toward ACNET.  For the reproduction this
is an in-memory log with transport timing, letting integration tests
assert end-to-end ordering and timestamping without a network.

Robustness semantics:

* ``order_policy`` governs out-of-order publishes.  The default
  ``"strict"`` raises (a plain runtime must never reorder); ``"drop"``
  silently rejects the message and counts it in
  :attr:`ACNETLog.dropped_out_of_order` — the right policy behind a
  retrying/degraded runtime that can legitimately produce late
  timestamps.
* :meth:`ACNETLog.inject_failures` is the fault-injection hook: the next
  *n* publish attempts raise :class:`ACNETTransportError`, exercising
  the runtime's bounded-backoff retry and dead-letter accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.beamloss.controller import TripDecision

__all__ = ["ACNETLog", "ACNETRecord", "ACNETTransportError"]

#: Valid out-of-order policies.
ORDER_POLICIES = ("strict", "drop")


class ACNETTransportError(RuntimeError):
    """Transient publish failure (the Ethernet uplink dropped the send)."""


@dataclass(frozen=True)
class ACNETRecord:
    """One delivered control message."""

    decision: TripDecision
    sent_at_s: float
    delivered_at_s: float


@dataclass
class ACNETLog:
    """Ordered, timestamped record of control messages.

    Parameters
    ----------
    transport_latency_s:
        One-way Ethernet latency from the central node to ACNET.
    order_policy:
        ``"strict"`` (default): an out-of-order timestamp raises
        ``ValueError``.  ``"drop"``: the message is rejected, counted in
        :attr:`dropped_out_of_order`, and ``publish`` returns ``None``.
    """

    transport_latency_s: float = 150e-6
    order_policy: str = "strict"
    records: List[ACNETRecord] = field(default_factory=list)
    dropped_out_of_order: int = field(default=0, init=False)
    _pending_failures: int = field(default=0, init=False, repr=False)

    def __post_init__(self):
        if self.transport_latency_s < 0:
            raise ValueError("transport_latency_s must be >= 0")
        if self.order_policy not in ORDER_POLICIES:
            raise ValueError(
                f"order_policy must be one of {ORDER_POLICIES}, "
                f"got {self.order_policy!r}"
            )

    def inject_failures(self, n: int) -> None:
        """Fault-injection hook: fail the next *n* publish attempts."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._pending_failures = int(n)

    def publish(self, decision: TripDecision,
                sent_at_s: float) -> Optional[ACNETRecord]:
        """Deliver *decision*; returns the record with delivery time.

        Raises :class:`ACNETTransportError` on an injected transient
        failure (retryable).  Out-of-order timestamps follow
        ``order_policy``: raise in ``"strict"`` mode, return ``None``
        (and count) in ``"drop"`` mode.
        """
        if self._pending_failures > 0:
            self._pending_failures -= 1
            raise ACNETTransportError("transient uplink failure (injected)")
        if self.records and sent_at_s < self.records[-1].sent_at_s:
            if self.order_policy == "drop":
                self.dropped_out_of_order += 1
                return None
            raise ValueError(
                "messages must be published in non-decreasing time order"
            )
        record = ACNETRecord(
            decision=decision,
            sent_at_s=float(sent_at_s),
            delivered_at_s=float(sent_at_s) + self.transport_latency_s,
        )
        self.records.append(record)
        return record

    def trips(self) -> List[ACNETRecord]:
        """Records that actually tripped a machine."""
        return [r for r in self.records if r.decision.machine is not None]

    def __len__(self) -> int:
        return len(self.records)
