"""ACNET sink — the facility control system receiving trip commands.

Step 9 in the paper's Fig 2 is "Ethernet communication off of the central
node": decisions leave the SoC toward ACNET.  For the reproduction this
is an in-memory log with transport timing, letting integration tests
assert end-to-end ordering and timestamping without a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.beamloss.controller import TripDecision

__all__ = ["ACNETLog"]


@dataclass(frozen=True)
class ACNETRecord:
    """One delivered control message."""

    decision: TripDecision
    sent_at_s: float
    delivered_at_s: float


@dataclass
class ACNETLog:
    """Ordered, timestamped record of control messages.

    Parameters
    ----------
    transport_latency_s:
        One-way Ethernet latency from the central node to ACNET.
    """

    transport_latency_s: float = 150e-6
    records: List[ACNETRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.transport_latency_s < 0:
            raise ValueError("transport_latency_s must be >= 0")

    def publish(self, decision: TripDecision, sent_at_s: float) -> ACNETRecord:
        """Deliver *decision*; returns the record with delivery time."""
        if self.records and sent_at_s < self.records[-1].sent_at_s:
            raise ValueError(
                "messages must be published in non-decreasing time order"
            )
        record = ACNETRecord(
            decision=decision,
            sent_at_s=float(sent_at_s),
            delivered_at_s=float(sent_at_s) + self.transport_latency_s,
        )
        self.records.append(record)
        return record

    def trips(self) -> List[ACNETRecord]:
        """Records that actually tripped a machine."""
        return [r for r in self.records if r.decision.machine is not None]

    def __len__(self) -> int:
        return len(self.records)
