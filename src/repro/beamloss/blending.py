"""Loss superposition and ground-truth attribution.

A monitor sees the *sum* of MI and RR losses (plus detector effects added
later by :mod:`repro.beamloss.blm`).  The de-blending ground truth
follows the semantic-regression formulation the paper cites ([16]):
for each monitor the target pair is the fractional attribution of the
observed loss to each machine, gated by a significance threshold so that
monitors seeing only background have (0, 0) targets — this gating is what
lets the two sigmoid outputs have different means (paper: 0.17 for MI,
0.42 for RR) instead of summing to one everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.beamloss.geometry import TunnelGeometry
from repro.beamloss.machines import Machine
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["BlendedFrame", "blend"]


@dataclass(frozen=True)
class BlendedFrame:
    """A batch of blended frames with ground truth.

    Attributes
    ----------
    total:
        Observed physical loss per monitor, shape ``(n_frames, n_monitors)``.
    per_machine:
        Stacked machine contributions, shape
        ``(n_machines, n_frames, n_monitors)``.
    targets:
        Attribution targets in [0, 1], shape
        ``(n_frames, n_monitors, n_machines)`` — the U-Net's training
        labels before flattening to 520 values.
    machine_names:
        Names aligned with the last target axis (``("MI", "RR")``).
    """

    total: np.ndarray
    per_machine: np.ndarray
    targets: np.ndarray
    machine_names: tuple

    @property
    def n_frames(self) -> int:
        return self.total.shape[0]

    @property
    def n_monitors(self) -> int:
        return self.total.shape[1]

    def flat_targets(self) -> np.ndarray:
        """Targets flattened to ``(n_frames, n_monitors * n_machines)`` —
        the 520-wide output array layout of the IP core (monitor-major,
        machine-minor: ``[m0_MI, m0_RR, m1_MI, ...]``)."""
        return self.targets.reshape(self.n_frames, -1)


def blend(
    machines,
    geometry: TunnelGeometry,
    n_frames: int,
    seed: SeedLike = 0,
    significance_quantile: float = 0.28,
) -> BlendedFrame:
    """Generate blended loss frames with per-monitor attribution targets.

    Parameters
    ----------
    machines:
        Sequence of :class:`~repro.beamloss.machines.Machine` (the paper
        has exactly MI and RR, but the substrate is generic).
    significance_quantile:
        Monitors whose total loss falls below this quantile of the batch's
        loss distribution get zero targets (background gating).  The
        gating is *soft* near the threshold to keep targets trainable.
    """
    if n_frames <= 0:
        raise ValueError(f"n_frames must be positive, got {n_frames}")
    machines = list(machines)
    if len(machines) < 2:
        raise ValueError("need at least two machines to de-blend")
    if not 0.0 <= significance_quantile < 1.0:
        raise ValueError(
            f"significance_quantile must be in [0,1), got {significance_quantile}"
        )
    rngs = spawn_rngs(seed, len(machines))
    contributions = np.stack(
        [m.losses(geometry, n_frames, seed=r) for m, r in zip(machines, rngs)]
    )  # (n_machines, n_frames, n_monitors)
    total = contributions.sum(axis=0)

    threshold = np.quantile(total, significance_quantile)
    frac = contributions / np.maximum(total[None, :, :], 1e-12)
    # Soft significance gate: ramps 0→1 over [threshold, 2*threshold].
    gate = np.clip((total - threshold) / max(threshold, 1e-12), 0.0, 1.0)
    targets = np.transpose(frac * gate[None, :, :], (1, 2, 0))
    return BlendedFrame(
        total=total,
        per_machine=contributions,
        targets=targets,
        machine_names=tuple(m.name for m in machines),
    )
