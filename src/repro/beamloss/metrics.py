"""De-blending decision quality metrics.

The paper evaluates quantization fidelity (Table II, Fig 5); an operator
additionally cares about *control* quality: does the system trip the
right machine?  This module scores decision sequences against the
substrate's ground truth: confusion matrix over {MI, RR, no-trip},
per-machine precision/recall, and false-trip rate (tripping a healthy
machine is the expensive failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.beamloss.controller import TripDecision

__all__ = ["DecisionScore", "ground_truth_machines", "score_decisions"]


def ground_truth_machines(
    targets: np.ndarray,
    machine_names: Sequence[str] = ("MI", "RR"),
    threshold: float = 0.5,
    min_monitors: int = 3,
) -> List[Optional[str]]:
    """Derive the true primary source per frame from substrate targets.

    *targets* is ``(n_frames, n_monitors, n_machines)``.  A machine is
    the true source when it holds the larger attributed mass and at least
    ``min_monitors`` monitors attribute more than *threshold* to it;
    otherwise the frame is healthy (``None``).
    """
    targets = np.asarray(targets, dtype=np.float64)
    if targets.ndim != 3 or targets.shape[2] != len(machine_names):
        raise ValueError(
            f"targets must be (frames, monitors, {len(machine_names)}), "
            f"got {targets.shape}"
        )
    truth: List[Optional[str]] = []
    for frame in targets:
        strong = (frame > threshold).sum(axis=0)
        mass = frame.sum(axis=0)
        winner = int(np.argmax(mass))
        if strong[winner] >= min_monitors:
            truth.append(machine_names[winner])
        else:
            truth.append(None)
    return truth


@dataclass(frozen=True)
class DecisionScore:
    """Aggregate decision quality.

    ``confusion[(truth, decided)]`` counts frames (``None`` = no trip).
    """

    confusion: Dict[Tuple[Optional[str], Optional[str]], int]
    accuracy: float
    precision: Dict[str, float]
    recall: Dict[str, float]
    false_trip_rate: float

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        per = ", ".join(
            f"{m}: P={self.precision[m]:.2f}/R={self.recall[m]:.2f}"
            for m in sorted(self.precision)
        )
        return (
            f"accuracy {self.accuracy:.1%}; {per}; "
            f"false-trip rate {self.false_trip_rate:.1%}"
        )


def score_decisions(decisions: Sequence[TripDecision],
                    truth: Sequence[Optional[str]]) -> DecisionScore:
    """Score *decisions* against ground-truth primary sources."""
    if len(decisions) != len(truth):
        raise ValueError(
            f"{len(decisions)} decisions vs {len(truth)} truth labels"
        )
    confusion: Dict[Tuple[Optional[str], Optional[str]], int] = {}
    machines = sorted({m for m in truth if m is not None}
                      | {d.machine for d in decisions if d.machine})
    for d, t in zip(decisions, truth):
        key = (t, d.machine)
        confusion[key] = confusion.get(key, 0) + 1
    n = len(decisions)
    hits = sum(c for (t, d), c in confusion.items() if t == d)
    precision = {}
    recall = {}
    for m in machines:
        decided_m = sum(c for (t, d), c in confusion.items() if d == m)
        true_m = sum(c for (t, d), c in confusion.items() if t == m)
        correct_m = confusion.get((m, m), 0)
        precision[m] = correct_m / decided_m if decided_m else 1.0
        recall[m] = correct_m / true_m if true_m else 1.0
    healthy = sum(c for (t, _d), c in confusion.items() if t is None)
    false_trips = sum(
        c for (t, d), c in confusion.items() if t is None and d is not None
    )
    return DecisionScore(
        confusion=confusion,
        accuracy=hits / n if n else 1.0,
        precision=precision,
        recall=recall,
        false_trip_rate=false_trips / healthy if healthy else 0.0,
    )
