"""Tunnel geometry and monitor placement.

The Main Injector and Recycler Ring share one 3.3 km tunnel (the RR is
mounted above the MI), which is why a monitor cannot tell which machine
caused the ionising radiation it measures — the de-blending problem.
We model the tunnel as a ring parameterised by ``s ∈ [0, circumference)``
with 260 equally-spaced BLMs (Fig 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TunnelGeometry"]


@dataclass(frozen=True)
class TunnelGeometry:
    """Ring tunnel with equally spaced beam-loss monitors.

    Parameters
    ----------
    n_monitors:
        Number of BLMs (paper: 260).
    circumference_m:
        Tunnel length; the real MI ring is ≈ 3,319 m.
    """

    n_monitors: int = 260
    circumference_m: float = 3319.0

    def __post_init__(self):
        if self.n_monitors <= 0:
            raise ValueError(f"n_monitors must be positive, got {self.n_monitors}")
        if self.circumference_m <= 0:
            raise ValueError(
                f"circumference_m must be positive, got {self.circumference_m}"
            )

    @property
    def monitor_positions(self) -> np.ndarray:
        """``s`` coordinate (metres) of each monitor, shape ``(n_monitors,)``."""
        return np.arange(self.n_monitors) * self.monitor_spacing

    @property
    def monitor_spacing(self) -> float:
        """Distance between adjacent monitors in metres."""
        return self.circumference_m / self.n_monitors

    def ring_distance(self, s_a: np.ndarray, s_b: np.ndarray) -> np.ndarray:
        """Shortest distance along the ring between coordinates (broadcasts)."""
        d = np.abs(np.asarray(s_a, dtype=np.float64) - np.asarray(s_b, dtype=np.float64))
        return np.minimum(d, self.circumference_m - d)

    def monitor_index_distance(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Shortest distance in *monitor index* units around the ring."""
        d = np.abs(np.asarray(i, dtype=np.float64) - np.asarray(j, dtype=np.float64))
        return np.minimum(d, self.n_monitors - d)
