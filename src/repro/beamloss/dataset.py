"""Dataset synthesis, standardisation and reference-model training.

This module glues the substrate together into the exact artefacts the
paper's experiments need:

* :func:`make_dataset` — raw digitizer frames + flat 520-value targets,
  split into train/validation/evaluation,
* :class:`Standardizer` — the "standardize the data before training"
  preprocessing the paper adopts after the in-model batch-norm attempt
  failed to quantize well (Section IV-D),
* :func:`train_reference_unet` / :func:`train_reference_mlp` — train the
  zoo models on the substrate (deterministic given the seed), used by
  every table/figure harness.

Evaluation frames default to 1,000 — the population size behind the
paper's Fig 5(a) ("across 1,000 datasets, each dataset corresponds to one
260-input array").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.beamloss.blending import BlendedFrame, blend
from repro.beamloss.blm import BLMArray
from repro.beamloss.geometry import TunnelGeometry
from repro.beamloss.machines import Machine, default_mi, default_rr
from repro.nn.losses import BinaryCrossentropy
from repro.nn.model import Model
from repro.nn.optimizers import Adam
from repro.nn.training import History, fit
from repro.nn.zoo import build_mlp, build_unet
from repro.utils.rng import SeedLike, default_rng

__all__ = [
    "Standardizer",
    "DeblendingDataset",
    "make_dataset",
    "train_reference_unet",
    "train_reference_mlp",
]


@dataclass(frozen=True)
class Standardizer:
    """Per-monitor standardisation against the electronics noise floor.

    ``transform(x) = (x - mean) / std`` channelwise, where ``mean`` is the
    channel median (the pedestal) and ``std`` is the *noise floor*: the
    robust scale of consecutive-frame differences, which isolates the
    fast electronics noise from the slow beam-loss dynamics.  This is the
    operationally meaningful unit for a loss monitor — "how many sigma of
    read noise above pedestal" — and it is what makes the fixed-point
    story of the paper's Table II emerge: genuine loss signals sit at
    many tens of noise sigmas, so a uniform ``ac_fixed<16,7>`` datapath
    (range ±64) wraps around on most active monitors, while the ADC
    ceiling keeps the standardized range inside the ±512 of
    ``ac_fixed<18,10>`` and inside the profiled per-layer formats.
    """

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, x: np.ndarray) -> "Standardizer":
        """Fit the *global* pedestal + noise floor on raw frames
        ``(n, monitors)`` (needs at least two frames for differences).

        Global (not per-channel) statistics are deliberate: the facility
        standardizes whole frames with one scaler, so each monitor's
        pedestal offset survives into the model inputs at ±60–110 noise
        sigmas and the network learns to cancel it with its own biases.
        That is what produces the "much wider" trained parameter ranges
        the paper reports, and with them the uniform-16-bit failure.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D (frames, monitors), got {x.shape}")
        if x.shape[0] < 2:
            raise ValueError("need at least two frames to estimate the noise floor")
        med = float(np.median(x))
        diff = np.diff(x, axis=0)
        # MAD of first differences ≈ σ_noise·√2 for white read noise;
        # robust against the sparse burst jumps.
        noise_per_channel = 1.4826 * np.median(
            np.abs(diff - np.median(diff, axis=0)), axis=0
        ) / np.sqrt(2.0)
        # The quietest monitors see pure electronics noise; busier ones
        # fold in beam-loss dynamics.  The low quantile isolates the
        # instrument floor.
        noise = float(np.quantile(noise_per_channel, 0.05))
        if noise <= 0:
            raise ValueError("degenerate data with zero noise floor")
        n_ch = x.shape[1]
        return cls(mean=np.full(n_ch, med), std=np.full(n_ch, noise))

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize raw frames."""
        return (np.asarray(x, dtype=np.float64) - self.mean) / self.std

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        return np.asarray(z, dtype=np.float64) * self.std + self.mean


@dataclass
class DeblendingDataset:
    """Frames and targets for the de-blending task.

    ``raw_*`` are digitizer counts (105k–120k magnitudes); ``x_*`` are
    standardized model inputs; ``y_*`` are flat 520-value targets
    (monitor-major, machine-minor).  ``blended_eval`` keeps the full
    ground truth of the evaluation split for the controller experiments.
    """

    raw_train: np.ndarray
    raw_val: np.ndarray
    raw_eval: np.ndarray
    y_train: np.ndarray
    y_val: np.ndarray
    y_eval: np.ndarray
    standardizer: Standardizer
    blended_eval: BlendedFrame
    machine_names: Tuple[str, ...]

    @property
    def x_train(self) -> np.ndarray:
        return self.standardizer.transform(self.raw_train)

    @property
    def x_val(self) -> np.ndarray:
        return self.standardizer.transform(self.raw_val)

    @property
    def x_eval(self) -> np.ndarray:
        return self.standardizer.transform(self.raw_eval)

    @property
    def n_monitors(self) -> int:
        return self.raw_train.shape[1]

    @property
    def output_size(self) -> int:
        return self.y_train.shape[1]

    def unet_inputs(self, x: np.ndarray) -> np.ndarray:
        """Reshape flat frames to the U-Net's ``(n, monitors, 1)`` layout."""
        return np.asarray(x)[:, :, None]


def make_dataset(
    n_train: int = 1500,
    n_val: int = 300,
    n_eval: int = 1000,
    geometry: Optional[TunnelGeometry] = None,
    mi: Optional[Machine] = None,
    rr: Optional[Machine] = None,
    blm: Optional[BLMArray] = None,
    seed: SeedLike = 0,
) -> DeblendingDataset:
    """Synthesize a complete de-blending dataset.

    The three splits come from independently-seeded stretches of the same
    machines so that evaluation frames are statistically fresh.  The
    standardizer is fitted on the training split only.
    """
    geometry = geometry or TunnelGeometry()
    mi = mi or default_mi()
    rr = rr or default_rr()
    blm = blm or BLMArray(n_monitors=geometry.n_monitors)
    rng = default_rng(seed)
    seeds = rng.integers(0, 2**62, size=6)

    def make_split(n: int, blend_seed: int, noise_seed: int):
        frames = blend([mi, rr], geometry, n, seed=int(blend_seed))
        raw = blm.digitize(frames.total, rng=default_rng(int(noise_seed)))
        return raw, frames

    raw_train, blended_train = make_split(n_train, seeds[0], seeds[1])
    raw_val, blended_val = make_split(n_val, seeds[2], seeds[3])
    raw_eval, blended_eval = make_split(n_eval, seeds[4], seeds[5])

    return DeblendingDataset(
        raw_train=raw_train,
        raw_val=raw_val,
        raw_eval=raw_eval,
        y_train=blended_train.flat_targets(),
        y_val=blended_val.flat_targets(),
        y_eval=blended_eval.flat_targets(),
        standardizer=Standardizer.fit(raw_train),
        blended_eval=blended_eval,
        machine_names=blended_eval.machine_names,
    )


def train_reference_unet(
    dataset: DeblendingDataset,
    epochs: int = 30,
    batch_size: int = 32,
    learning_rate: float = 2e-3,
    seed: SeedLike = 0,
    batchnorm_standardizer: bool = False,
    verbose: bool = False,
) -> Tuple[Model, History]:
    """Train the reference U-Net on the substrate.

    With ``batchnorm_standardizer=True`` the model is instead trained on
    *raw* counts with an in-model BatchNormalization — the paper's first,
    poorly-quantizing configuration.
    """
    from repro.nn.zoo.unet import REFERENCE_UNET_CONFIG, UNetConfig

    if batchnorm_standardizer:
        config = UNetConfig(batchnorm_standardizer=True)
        x_train = dataset.unet_inputs(dataset.raw_train)
        x_val = dataset.unet_inputs(dataset.raw_val)
    else:
        config = REFERENCE_UNET_CONFIG
        x_train = dataset.unet_inputs(dataset.x_train)
        x_val = dataset.unet_inputs(dataset.x_val)
    model = build_unet(config, seed=seed)
    history = fit(
        model,
        x_train,
        dataset.y_train,
        BinaryCrossentropy(),
        Adam(learning_rate),
        epochs=epochs,
        batch_size=batch_size,
        validation_data=(x_val, dataset.y_val),
        seed=seed,
        verbose=verbose,
    )
    return model, history


def train_reference_mlp(
    dataset: DeblendingDataset,
    epochs: int = 30,
    batch_size: int = 32,
    learning_rate: float = 2e-3,
    seed: SeedLike = 0,
    verbose: bool = False,
) -> Tuple[Model, History]:
    """Train the verification MLP (flat standardized inputs).

    The MLP predicts 518 of the 520 outputs (the paper's printed layer
    sizes; see DESIGN.md) so its targets drop the last two values.
    """
    model = build_mlp(seed=seed)
    out = model.outputs[0].shape[0]
    history = fit(
        model,
        dataset.x_train,
        dataset.y_train[:, :out],
        BinaryCrossentropy(),
        Adam(learning_rate),
        epochs=epochs,
        batch_size=batch_size,
        validation_data=(dataset.x_val, dataset.y_val[:, :out]),
        seed=seed,
        verbose=verbose,
    )
    return model, history
