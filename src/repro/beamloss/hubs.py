"""BLM hub aggregation.

The central node "receives inputs from seven BLM hubs distributed around
the accelerator complex" (paper, Section III-A).  Each hub serves a
contiguous arc of monitors and forwards its slice of the frame over
Ethernet; the central node must wait for the *last* hub before it can
assemble the 260-value input array.  The per-hub arrival jitter modelled
here feeds the SoC simulator's step-0 timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, default_rng

__all__ = ["HubNetwork"]


@dataclass(frozen=True)
class HubNetwork:
    """Seven hubs covering 260 monitors in contiguous arcs.

    Parameters
    ----------
    n_monitors, n_hubs:
        Defaults match the facility (260 monitors, 7 hubs).
    mean_latency_s / jitter_s:
        Per-hub Ethernet forwarding latency model (mean + half-normal
        jitter), used by :meth:`arrival_times`.
    """

    n_monitors: int = 260
    n_hubs: int = 7
    mean_latency_s: float = 120e-6
    jitter_s: float = 25e-6

    def __post_init__(self):
        if self.n_hubs <= 0 or self.n_monitors <= 0:
            raise ValueError("n_hubs and n_monitors must be positive")
        if self.n_hubs > self.n_monitors:
            raise ValueError("more hubs than monitors")
        if self.mean_latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latencies must be non-negative")

    def spans(self) -> List[Tuple[int, int]]:
        """Half-open monitor index ranges ``[(start, stop), ...]`` per hub.

        Monitors are split as evenly as possible (260 / 7 → five hubs of
        37 monitors and two of 38… precisely, remainder spread over the
        first hubs).
        """
        base = self.n_monitors // self.n_hubs
        rem = self.n_monitors % self.n_hubs
        spans = []
        start = 0
        for h in range(self.n_hubs):
            size = base + (1 if h < rem else 0)
            spans.append((start, start + size))
            start += size
        return spans

    def split_frame(self, frame: np.ndarray) -> List[np.ndarray]:
        """Slice one 260-value frame into per-hub packets (views)."""
        frame = np.asarray(frame)
        if frame.shape[-1] != self.n_monitors:
            raise ValueError(
                f"frame must have {self.n_monitors} monitors, got {frame.shape}"
            )
        return [frame[..., a:b] for a, b in self.spans()]

    def assemble(self, packets: List[np.ndarray]) -> np.ndarray:
        """Reassemble per-hub packets into the full frame."""
        if len(packets) != self.n_hubs:
            raise ValueError(f"expected {self.n_hubs} packets, got {len(packets)}")
        sizes = [b - a for a, b in self.spans()]
        for p, size in zip(packets, sizes):
            if p.shape[-1] != size:
                raise ValueError("packet sizes do not match hub spans")
        return np.concatenate(packets, axis=-1)

    def arrival_times(self, n_frames: int, seed: SeedLike = 0) -> np.ndarray:
        """Per-hub packet arrival offsets, shape ``(n_frames, n_hubs)``.

        Offsets are relative to the digitizer tick; the frame is complete
        at ``arrival_times(...).max(axis=1)``.
        """
        if n_frames <= 0:
            raise ValueError(f"n_frames must be positive, got {n_frames}")
        rng = default_rng(seed)
        jitter = np.abs(rng.normal(0.0, self.jitter_s, size=(n_frames, self.n_hubs)))
        return self.mean_latency_s + jitter

    def frame_complete_times(self, n_frames: int, seed: SeedLike = 0) -> np.ndarray:
        """Time (s after the tick) when the last hub packet has arrived."""
        return self.arrival_times(n_frames, seed).max(axis=1)

    # ------------------------------------------------------------------
    # Fault-injection hook
    # ------------------------------------------------------------------
    def faulted_arrival_times(self, n_frames: int, seed: SeedLike = 0,
                              *, extra_delay_s: np.ndarray = None,
                              drop_mask: np.ndarray = None) -> np.ndarray:
        """Per-hub arrivals under injected network faults.

        The healthy arrival stream is drawn exactly as
        :meth:`arrival_times` (same seed → same base jitter), then
        ``extra_delay_s`` (per ``(frame, hub)`` seconds) is added and
        hubs masked by ``drop_mask`` become ``+inf`` — the packet never
        arrives.  Callers decide completion/staleness from the result;
        :func:`numpy.isfinite` recovers the arrived-hub mask.
        """
        times = self.arrival_times(n_frames, seed)
        if extra_delay_s is not None:
            extra = np.asarray(extra_delay_s, dtype=np.float64)
            if extra.shape != times.shape:
                raise ValueError(
                    f"extra_delay_s must have shape {times.shape}, "
                    f"got {extra.shape}"
                )
            if extra.size and extra.min() < 0:
                raise ValueError("extra_delay_s must be non-negative")
            times = times + extra
        if drop_mask is not None:
            mask = np.asarray(drop_mask, dtype=bool)
            if mask.shape != times.shape:
                raise ValueError(
                    f"drop_mask must have shape {times.shape}, got {mask.shape}"
                )
            times = np.where(mask, np.inf, times)
        return times
