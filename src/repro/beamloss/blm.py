"""Beam Loss Monitor detector and digitizer model.

The BLM hardware ([11] in the paper) integrates ionisation current and
digitises it every 3 ms.  The paper notes the raw training data has
"magnitudes ranging from 105,000 to 120,000" — i.e. the loss signal rides
on a large per-channel pedestal.  This module converts physical loss into
exactly that kind of raw digitizer count stream:

``counts = pedestal + gain * loss + noise``, clipped to the ADC range and
rounded to integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, default_rng

__all__ = ["BLMArray"]

#: Digitizer poll period (paper: "3ms per decision").
DIGITIZER_PERIOD_S = 3e-3


@dataclass
class BLMArray:
    """An array of beam-loss monitors with per-channel response.

    Parameters
    ----------
    n_monitors:
        Channel count (260).
    pedestal_range:
        Per-channel baseline counts drawn uniformly from this interval;
        defaults reproduce the paper's 105k–120k raw magnitude window
        (pedestals in [105k, 112k] leave headroom for signal).
    gain_range:
        Per-channel counts per unit physical loss.
    noise_counts:
        Gaussian read-noise sigma in counts.
    adc_max:
        Saturation ceiling of the digitizer.
    seed:
        Seed for the fixed per-channel pedestal/gain draws.
    """

    n_monitors: int = 260
    pedestal_range: tuple = (105_000.0, 117_000.0)
    gain_range: tuple = (2_000.0, 3_000.0)
    noise_counts: float = 55.0
    adc_max: float = 2**17 - 1  # 131071: keeps 120k readable, saturates huge bursts
    seed: SeedLike = 7
    pedestal: np.ndarray = field(init=False, repr=False)
    gain: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.n_monitors <= 0:
            raise ValueError(f"n_monitors must be positive, got {self.n_monitors}")
        lo, hi = self.pedestal_range
        glo, ghi = self.gain_range
        if lo > hi or glo > ghi:
            raise ValueError("ranges must be (low, high) with low <= high")
        if self.noise_counts < 0:
            raise ValueError("noise_counts must be >= 0")
        rng = default_rng(self.seed)
        self.pedestal = rng.uniform(lo, hi, size=self.n_monitors)
        self.gain = rng.uniform(glo, ghi, size=self.n_monitors)

    def digitize(self, loss: np.ndarray,
                 rng: Optional[np.random.Generator] = None,
                 seed: SeedLike = 0) -> np.ndarray:
        """Convert physical loss ``(n_frames, n_monitors)`` to raw counts.

        Returns float64 integer-valued counts (kept float for downstream
        standardisation math, exactly as the facility's float frames).
        """
        loss = np.asarray(loss, dtype=np.float64)
        if loss.ndim != 2 or loss.shape[1] != self.n_monitors:
            raise ValueError(
                f"loss must be (n_frames, {self.n_monitors}), got {loss.shape}"
            )
        if rng is None:
            rng = default_rng(seed)
        counts = self.pedestal + self.gain * loss
        if self.noise_counts:
            counts = counts + rng.normal(0.0, self.noise_counts, size=loss.shape)
        np.clip(counts, 0.0, self.adc_max, out=counts)
        return np.rint(counts)
