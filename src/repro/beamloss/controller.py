"""The de-blending trip controller.

"Based on the output, the source with higher probability will be
mitigated for that given time frame" (paper, Section III-A), and "the
lossy machine can be tripped off as soon as possible in order to control
radioactivity".  This module turns a 520-value model output into a trip
decision and tracks deadline compliance against the 3 ms digitizer
period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TripDecision", "TripController"]

#: Hard real-time budget per frame (paper: 3 ms poll rate).
FRAME_DEADLINE_S = 3e-3


@dataclass(frozen=True)
class TripDecision:
    """Outcome of one frame.

    Attributes
    ----------
    frame_index:
        Sequence number of the digitizer frame.
    machine:
        Name of the machine to trip, or ``None`` when no monitor exceeded
        the loss-probability threshold (healthy frame).
    score:
        The winning machine's aggregate probability mass.
    latency_s:
        End-to-end decision latency for this frame.
    deadline_met:
        ``latency_s <= deadline`` for the controlling deadline.
    """

    frame_index: int
    machine: Optional[str]
    score: float
    latency_s: float
    deadline_met: bool


@dataclass
class TripController:
    """Aggregates per-monitor probabilities into machine-level decisions.

    Parameters
    ----------
    machine_names:
        Output channel order, e.g. ``("MI", "RR")``.
    probability_threshold:
        A monitor "votes" for a machine when that machine's probability
        exceeds this value.
    min_votes:
        Minimum number of voting monitors before tripping anything — a
        single noisy monitor must not take down an accelerator.
    deadline_s:
        Real-time budget (default: the 3 ms digitizer period).
    """

    machine_names: Tuple[str, ...] = ("MI", "RR")
    probability_threshold: float = 0.5
    min_votes: int = 3
    deadline_s: float = FRAME_DEADLINE_S
    decisions: List[TripDecision] = field(default_factory=list)

    def __post_init__(self):
        if len(self.machine_names) < 2:
            raise ValueError("need at least two machines")
        if not 0.0 < self.probability_threshold < 1.0:
            raise ValueError("probability_threshold must be in (0, 1)")
        if self.min_votes < 1:
            raise ValueError("min_votes must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    # ------------------------------------------------------------------
    def decide(self, output: np.ndarray, latency_s: float = 0.0,
               frame_index: Optional[int] = None) -> TripDecision:
        """Decide on one flat model output (520 values, monitor-major).

        The machine with the larger probability mass over above-threshold
        monitors is tripped, provided it collected ``min_votes`` votes.
        """
        output = np.asarray(output, dtype=np.float64).ravel()
        n_machines = len(self.machine_names)
        if output.size % n_machines:
            raise ValueError(
                f"output size {output.size} not divisible by "
                f"{n_machines} machines"
            )
        probs = output.reshape(-1, n_machines)  # (monitors, machines)
        votes = probs > self.probability_threshold
        vote_counts = votes.sum(axis=0)
        masses = np.where(votes, probs, 0.0).sum(axis=0)
        winner = int(np.argmax(masses))
        if vote_counts[winner] >= self.min_votes:
            machine = self.machine_names[winner]
            score = float(masses[winner])
        else:
            machine, score = None, 0.0
        decision = TripDecision(
            frame_index=len(self.decisions) if frame_index is None else frame_index,
            machine=machine,
            score=score,
            latency_s=float(latency_s),
            deadline_met=latency_s <= self.deadline_s,
        )
        self.decisions.append(decision)
        return decision

    def abstain(self, frame_index: Optional[int] = None,
                latency_s: float = 0.0) -> TripDecision:
        """Record an explicit no-trip decision *without* voting.

        The degraded runtime calls this when a frame cannot be trusted
        (watchdog timeout, corrupted output, stale inputs): no machine is
        tripped, but the frame still produces a decision record — faults
        must never silently disappear from the decision stream.
        """
        decision = TripDecision(
            frame_index=len(self.decisions) if frame_index is None else frame_index,
            machine=None,
            score=0.0,
            latency_s=float(latency_s),
            deadline_met=latency_s <= self.deadline_s,
        )
        self.decisions.append(decision)
        return decision

    def decide_batch(self, outputs: np.ndarray,
                     latencies_s: Optional[Sequence[float]] = None,
                     start_index: Optional[int] = None) -> List[TripDecision]:
        """Run :meth:`decide` over a batch of frames.

        ``start_index`` numbers the batch's frames ``start_index + i``;
        without it each decision falls back to :meth:`decide`'s default
        (the controller's running decision count), which keeps lone
        batches compatible but misnumbers mixed batch/single-frame use —
        pass an explicit start index in that case.
        """
        outputs = np.asarray(outputs, dtype=np.float64)
        if outputs.ndim != 2:
            raise ValueError(f"outputs must be 2-D, got {outputs.shape}")
        if latencies_s is None:
            latencies_s = np.zeros(outputs.shape[0])
        if len(latencies_s) != outputs.shape[0]:
            raise ValueError("latencies length must match frame count")
        return [
            self.decide(
                out, lat,
                frame_index=None if start_index is None else start_index + i,
            )
            for i, (out, lat) in enumerate(zip(outputs, latencies_s))
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def trip_counts(self) -> dict:
        """Trips per machine plus healthy-frame count (key ``None``)."""
        counts = {name: 0 for name in self.machine_names}
        counts[None] = 0
        for d in self.decisions:
            counts[d.machine] += 1
        return counts

    def deadline_miss_rate(self) -> float:
        """Fraction of frames that blew the real-time budget."""
        if not self.decisions:
            return 0.0
        misses = sum(1 for d in self.decisions if not d.deadline_met)
        return misses / len(self.decisions)

    def accuracy_against(self, true_machines: Sequence[Optional[str]]) -> float:
        """Fraction of decisions matching ground-truth primary sources."""
        if len(true_machines) != len(self.decisions):
            raise ValueError(
                f"got {len(true_machines)} truths for {len(self.decisions)} decisions"
            )
        hits = sum(
            1 for d, t in zip(self.decisions, true_machines) if d.machine == t
        )
        return hits / max(len(self.decisions), 1)
