"""Synthetic beam-loss substrate: the accelerator the paper monitors.

The paper's data source is proprietary (260 Beam Loss Monitors around the
Fermilab Main Injector / Recycler Ring tunnel, read out every 3 ms).  This
package provides a physically-motivated synthetic equivalent:

* :mod:`~repro.beamloss.geometry` — the tunnel and BLM placement,
* :mod:`~repro.beamloss.machines` — per-machine loss-source models (MI and
  RR): localised loss sites with bursty stochastic intensities,
* :mod:`~repro.beamloss.blending` — superposition of machine losses into
  the observed per-monitor signal plus ground-truth attribution,
* :mod:`~repro.beamloss.blm` — detector response and 3 ms digitizer
  (raw magnitudes in the paper's reported 105,000–120,000 range),
* :mod:`~repro.beamloss.hubs` — the seven BLM hub aggregators,
* :mod:`~repro.beamloss.dataset` — training/evaluation dataset synthesis,
  standardisation (the paper's "standardize before training"), and the
  reference-model training entry point,
* :mod:`~repro.beamloss.controller` — the de-blending trip controller,
* :mod:`~repro.beamloss.acnet` — the facility control-system sink.

Key reproduced facts: raw readings in [105k, 120k]; sharp MI loss sites
vs broad RR sites so that the trained model's mean outputs land near the
paper's 0.17 (MI) / 0.42 (RR); heavy-tailed bursts so early network
layers see large activations — the reason uniform ``ac_fixed<16,7>``
overflows (Table II).
"""

from repro.beamloss.geometry import TunnelGeometry
from repro.beamloss.machines import BurstDynamics, LossSite, Machine, default_mi, default_rr
from repro.beamloss.blending import BlendedFrame, blend
from repro.beamloss.blm import BLMArray
from repro.beamloss.hubs import HubNetwork
from repro.beamloss.dataset import DeblendingDataset, Standardizer, make_dataset
from repro.beamloss.controller import TripController, TripDecision
from repro.beamloss.acnet import ACNETLog, ACNETTransportError
from repro.beamloss.metrics import DecisionScore, ground_truth_machines, score_decisions

__all__ = [
    "TunnelGeometry",
    "LossSite",
    "BurstDynamics",
    "Machine",
    "default_mi",
    "default_rr",
    "BlendedFrame",
    "blend",
    "BLMArray",
    "HubNetwork",
    "DeblendingDataset",
    "Standardizer",
    "make_dataset",
    "TripController",
    "TripDecision",
    "ACNETLog",
    "ACNETTransportError",
    "DecisionScore",
    "ground_truth_machines",
    "score_decisions",
]
