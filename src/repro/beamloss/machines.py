"""Per-machine loss-source models.

Each accelerator (Main Injector, Recycler Ring) deposits loss at a set of
characteristic :class:`LossSite` locations — aperture restrictions,
injection/extraction points, collimators.  A site's instantaneous
intensity follows :class:`BurstDynamics`: a positive AR(1) baseline with
Poisson-arriving exponential-decay bursts.  The bursts are the essential
heavy-tail ingredient: they make the trained network's early activations
occasionally large, which is what breaks uniform ``ac_fixed<16,7>``
quantization in the paper's Table II.

The default machines are shaped so that the de-blending targets have the
asymmetry the paper reports (mean model output ≈ 0.17 for MI vs ≈ 0.42
for RR): RR sites are broader and more continuously active, so RR is the
primary source at more monitors more of the time; MI sites are sharp and
burst-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.beamloss.geometry import TunnelGeometry
from repro.utils.rng import SeedLike, default_rng

__all__ = ["LossSite", "BurstDynamics", "Machine", "default_mi", "default_rr"]


@dataclass(frozen=True)
class LossSite:
    """A localised loss region.

    Parameters
    ----------
    center:
        Location in monitor-index units (fractional allowed), in
        ``[0, n_monitors)``.
    width:
        Gaussian footprint width in monitor-index units; sharp MI sites
        use ~1.5–4, broad RR regions ~6–18.
    strength:
        Relative site strength multiplying the machine's dynamics.
    """

    center: float
    width: float
    strength: float = 1.0

    def __post_init__(self):
        if self.width <= 0:
            raise ValueError(f"width must be positive, got {self.width}")
        if self.strength < 0:
            raise ValueError(f"strength must be >= 0, got {self.strength}")


@dataclass(frozen=True)
class BurstDynamics:
    """Stochastic intensity process for a machine's loss sites.

    The per-site intensity at frame ``t`` is

    ``a[t] = baseline_level * ar[t] + burst[t]``

    where ``ar`` is a positive AR(1) process (mean 1) with coefficient
    ``ar_coeff`` and relative noise ``ar_noise``, and ``burst`` is a
    shot-noise process: bursts arrive as a Bernoulli(``burst_rate``) per
    frame per site, draw an amplitude ~ Exp(``burst_scale``) and decay
    with per-frame factor ``burst_decay``.
    """

    baseline_level: float = 1.0
    ar_coeff: float = 0.98
    ar_noise: float = 0.05
    burst_rate: float = 0.01
    burst_scale: float = 8.0
    burst_decay: float = 0.7

    def __post_init__(self):
        if not 0.0 <= self.ar_coeff < 1.0:
            raise ValueError(f"ar_coeff must be in [0,1), got {self.ar_coeff}")
        if not 0.0 <= self.burst_rate <= 1.0:
            raise ValueError(f"burst_rate must be in [0,1], got {self.burst_rate}")
        if not 0.0 <= self.burst_decay < 1.0:
            raise ValueError(f"burst_decay must be in [0,1), got {self.burst_decay}")
        if self.baseline_level < 0 or self.ar_noise < 0 or self.burst_scale < 0:
            raise ValueError("levels/noise/scale must be non-negative")

    def sample(self, n_frames: int, n_sites: int,
               rng: np.random.Generator) -> np.ndarray:
        """Draw intensities, shape ``(n_frames, n_sites)`` (non-negative).

        The AR recursion is sequential in time but vectorised across
        sites; the burst shot-noise is generated fully vectorised via an
        exponential-decay convolution (``lfilter``-style cumulative
        recursion done with a scan over frames would be O(T); instead we
        exploit that decayed shot noise is a linear filter and use a
        per-frame recursion in one tight numpy loop over frames only).
        """
        if n_frames <= 0 or n_sites <= 0:
            raise ValueError("n_frames and n_sites must be positive")
        # AR(1) around 1.0, clipped positive.
        ar = np.empty((n_frames, n_sites))
        noise = rng.normal(0.0, self.ar_noise, size=(n_frames, n_sites))
        level = 1.0 + noise[0]
        ar[0] = level
        c = self.ar_coeff
        for t in range(1, n_frames):
            level = 1.0 + c * (level - 1.0) + noise[t]
            ar[t] = level
        np.clip(ar, 0.0, None, out=ar)

        # Shot noise: arrivals and amplitudes, then exponential decay.
        arrivals = rng.random((n_frames, n_sites)) < self.burst_rate
        amps = rng.exponential(self.burst_scale, size=(n_frames, n_sites))
        shots = np.where(arrivals, amps, 0.0)
        burst = np.empty_like(shots)
        acc = shots[0].copy()
        burst[0] = acc
        d = self.burst_decay
        for t in range(1, n_frames):
            acc = acc * d + shots[t]
            burst[t] = acc
        return self.baseline_level * ar + burst


@dataclass(frozen=True)
class Machine:
    """An accelerator: a named set of loss sites plus their dynamics."""

    name: str
    sites: Tuple[LossSite, ...]
    dynamics: BurstDynamics = field(default_factory=BurstDynamics)

    def __post_init__(self):
        if not self.sites:
            raise ValueError(f"machine {self.name!r} needs at least one loss site")

    def footprint(self, geometry: TunnelGeometry) -> np.ndarray:
        """Spatial kernel, shape ``(n_sites, n_monitors)``.

        Entry ``(s, i)`` is site *s*'s relative contribution at monitor
        *i*: a periodic Gaussian on the ring scaled by site strength.
        """
        idx = np.arange(geometry.n_monitors, dtype=np.float64)
        centers = np.array([s.center for s in self.sites])[:, None]
        widths = np.array([s.width for s in self.sites])[:, None]
        strengths = np.array([s.strength for s in self.sites])[:, None]
        dist = geometry.monitor_index_distance(centers, idx[None, :])
        return strengths * np.exp(-0.5 * (dist / widths) ** 2)

    def losses(self, geometry: TunnelGeometry, n_frames: int,
               seed: SeedLike = 0) -> np.ndarray:
        """Per-monitor loss time series, shape ``(n_frames, n_monitors)``.

        The superposition of every site's footprint weighted by its
        sampled intensity — one matrix product per machine.
        """
        rng = default_rng(seed)
        intensities = self.dynamics.sample(n_frames, len(self.sites), rng)
        return intensities @ self.footprint(geometry)


def default_mi(seed: SeedLike = 101) -> Machine:
    """The Main Injector model: sharp, burst-dominated loss sites."""
    rng = default_rng(seed)
    n_sites = 12
    centers = np.sort(rng.uniform(0, 260, size=n_sites))
    widths = rng.uniform(1.5, 5.5, size=n_sites)
    strengths = rng.uniform(0.5, 1.5, size=n_sites)
    sites = tuple(
        LossSite(float(c), float(w), float(s))
        for c, w, s in zip(centers, widths, strengths)
    )
    # Calibrated jointly with default_rr and the blending gate so the
    # de-blending targets average ≈ 0.19 (MI) / 0.41 (RR), bracketing the
    # paper's reported mean model outputs of 0.17 / 0.42.
    dynamics = BurstDynamics(
        baseline_level=0.8,
        ar_coeff=0.97,
        ar_noise=0.08,
        burst_rate=0.05,
        burst_scale=14.0,
        burst_decay=0.72,
    )
    return Machine("MI", sites, dynamics)


def default_rr(seed: SeedLike = 202) -> Machine:
    """The Recycler Ring model: broad, continuously active loss regions."""
    rng = default_rng(seed)
    n_sites = 9
    centers = np.sort(rng.uniform(0, 260, size=n_sites))
    widths = rng.uniform(6.0, 18.0, size=n_sites)
    strengths = rng.uniform(0.8, 1.6, size=n_sites)
    sites = tuple(
        LossSite(float(c), float(w), float(s))
        for c, w, s in zip(centers, widths, strengths)
    )
    dynamics = BurstDynamics(
        baseline_level=1.0,
        ar_coeff=0.985,
        ar_noise=0.06,
        burst_rate=0.015,
        burst_scale=6.0,
        burst_decay=0.8,
    )
    return Machine("RR", sites, dynamics)
