"""`ShardedNodeFarm`: one central node per BLM stream shard.

The paper deploys a single central node; its deployment sketch (and the
distributed-readout companion paper) feed *many* synchronous BLM
streams into the accelerator complex.  The farm is that scale-out: N
:class:`~repro.soc.runtime.CentralNodeRuntime` replicas, one per
stream shard, each with an independent spawn-key-derived seed stream,
fed through a deadline-aware micro-batching scheduler and executed
either

* **in-process, sequentially** — the reference semantics, or
* **on a spawn-based worker pool** with shared-memory frame/output
  buffers, crash detection, worker restart and task requeue.

The determinism contract (asserted by ``tests/test_serve.py`` and the
``serve_throughput`` gate in ``tools/bench_report.py``): both execution
modes produce **bit-identical** :class:`FrameRecord` streams for every
worker count, because

1. sharding and micro-batch planning are pure arithmetic over frame
   indices and simulated arrival times (:mod:`repro.serve.sharding`,
   :mod:`repro.serve.batching`),
2. every shard task is self-contained and pure — a fresh replica, a
   shard-local seed, the task's own frames — so execution order across
   shards (or re-execution after a crash) cannot change any output,
3. both modes run the *same* :func:`execute_shard_task` code path on
   replicas built from the same pickled spec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.batching import (
    BatchingPolicy,
    backlog_arrivals,
    plan_microbatches,
    stream_arrivals,
)
from repro.serve.health import FarmHealth, merge_shard_health
from repro.serve.merge import merge_obs_snapshots
from repro.serve.sharding import ShardPlan
from repro.serve.workers import (
    OUTPUT_COLUMNS,
    FarmSpec,
    PlantTask,
    ShardTask,
    TaskResult,
    WorkerPool,
    execute_plant_task,
    execute_shard_task,
)
from repro.soc.board import FRAME_PERIOD_S
from repro.soc.runtime import FrameRecord

__all__ = ["ShardedNodeFarm", "FarmPlan", "FarmResult"]

#: Recognised arrival models for :meth:`ShardedNodeFarm.serve`.
ARRIVAL_MODES = ("stream", "backlog")


@dataclass(frozen=True)
class FarmPlan:
    """The deterministic execution plan for one frame block.

    ``tasks`` are :class:`ShardTask`\\ s for a frame block
    (:meth:`ShardedNodeFarm.plan`) or :class:`PlantTask`\\ s for a
    closed-loop run (:meth:`ShardedNodeFarm.plan_plant`).
    """

    shard_plan: ShardPlan
    tasks: Tuple[Any, ...]

    @property
    def n_batches(self) -> int:
        return sum(len(t.batches) for t in self.tasks)


@dataclass
class FarmResult:
    """Everything one :meth:`ShardedNodeFarm.serve` call produced."""

    records: List[FrameRecord]          # global submission order
    by_shard: List[List[FrameRecord]]   # shard → local-order records
    outputs: np.ndarray                 # (n, len(OUTPUT_COLUMNS))
    health: FarmHealth
    plan: FarmPlan
    obs: Optional[Dict[str, Any]] = None  # merged repro-obs/1 snapshot
    wall_s: float = 0.0
    workers: int = 0

    @property
    def throughput_fps(self) -> float:
        """Aggregate frames per wall-clock second of the serve call."""
        return len(self.records) / self.wall_s if self.wall_s > 0 else 0.0

    def signature(self) -> list:
        """The full per-frame output stream, for bit-identity asserts."""
        return self.records


class ShardedNodeFarm:
    """A deterministic multi-stream serving front-end.

    Parameters
    ----------
    spec:
        The :class:`~repro.serve.workers.FarmSpec` replica recipe
        (model, fallback, runtime config, per-shard obs config).
    n_shards:
        Stream shards = runtime replicas.  Each shard is its own
        digitizer stream with an independent seed stream.
    batching:
        Micro-batching policy (deadline slack, max batch, cost model).
    seed:
        Farm seed; shard ``s`` derives its streams via
        :func:`~repro.serve.sharding.shard_seed`.
    arrival_mode:
        ``"stream"`` — each shard's frames arrive on its own 3 ms grid
        (live serving; batch sizes follow the slack window).
        ``"backlog"`` — all frames are already queued (replay /
        throughput benchmarking; batches fill to ``max_batch``).
    hosts:
        ``"host:port"`` addresses of running
        :class:`~repro.serve.remote.HostAgent` processes.  When given,
        every pooled :meth:`serve` dispatches shard tasks uniformly
        across the in-process workers (``workers`` of them; 0 = fully
        remote) *and* the remote hosts through a
        :class:`~repro.serve.remote.HostPool` — with partition-aware
        crash recovery and the same bit-identity contract.
    """

    def __init__(self, spec: FarmSpec, *, n_shards: int = 4,
                 batching: Optional[BatchingPolicy] = None,
                 seed: Optional[int] = 0,
                 arrival_mode: str = "stream",
                 hosts: Sequence[Any] = ()):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if arrival_mode not in ARRIVAL_MODES:
            raise ValueError(f"arrival_mode must be one of {ARRIVAL_MODES}, "
                             f"got {arrival_mode!r}")
        self.spec = spec
        self.n_shards = n_shards
        self.batching = batching or BatchingPolicy()
        self.seed = seed
        self.arrival_mode = arrival_mode
        self.hosts = tuple(hosts)
        self._pool = None            # WorkerPool or HostPool

    # ------------------------------------------------------------------
    def _make_pool(self, workers: int, **pool_kwargs):
        if self.hosts:
            from repro.serve.remote import HostPool

            return HostPool(self.spec, self.hosts, local_workers=workers,
                            **pool_kwargs)
        return WorkerPool(self.spec, min(workers, self.n_shards),
                          **pool_kwargs)

    def start_pool(self, workers: int = 4, **pool_kwargs):
        """Spawn a persistent warm pool reused by every later serve().

        Spawn + replica cold-start then happen once instead of once per
        :meth:`serve` call — the steady-state serving mode.  Restart and
        requeue budgets are cumulative over the pool's lifetime; the
        per-call ``FarmHealth`` still reports per-call deltas.  Close
        with :meth:`close` (or use the farm as a context manager).
        With ``hosts`` configured this is a
        :class:`~repro.serve.remote.HostPool` (*workers* = local
        slots beside the remote hosts); otherwise a plain
        :class:`WorkerPool`.
        """
        if self._pool is not None:
            raise RuntimeError("farm already holds a started pool")
        pool = self._make_pool(workers, **pool_kwargs)
        pool.start()
        self._pool = pool
        return pool

    @property
    def pool(self):
        """The persistent pool, when :meth:`start_pool` was called."""
        return self._pool

    def close(self) -> None:
        """Tear down the persistent pool (no-op without one)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedNodeFarm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def period_s(self) -> float:
        cfg = self.spec.config
        return cfg.period_s if cfg is not None else FRAME_PERIOD_S

    def plan(self, n_frames: int,
             chaos_crash_shards: Sequence[int] = ()) -> FarmPlan:
        """The deterministic shard/batch plan for *n_frames* frames."""
        shard_plan = ShardPlan(n_frames=n_frames, n_shards=self.n_shards)
        crash_set = set(chaos_crash_shards)
        unknown = crash_set - set(range(self.n_shards))
        if unknown:
            raise ValueError(f"chaos_crash_shards {sorted(unknown)} outside "
                             f"[0, {self.n_shards})")
        tasks = []
        for s in range(self.n_shards):
            globals_ = shard_plan.shard_globals(s)
            if self.arrival_mode == "backlog":
                arrivals = backlog_arrivals(len(globals_))
            else:
                arrivals = stream_arrivals(len(globals_), self.period_s)
            batches = tuple(plan_microbatches(arrivals, self.batching))
            tasks.append(ShardTask(
                task_id=s,
                shard=s,
                seed_entropy=self.seed,
                global_indices=globals_,
                batches=batches,
                crash=s in crash_set,
            ))
        return FarmPlan(shard_plan=shard_plan, tasks=tuple(tasks))

    # ------------------------------------------------------------------
    def serve(self, frames: np.ndarray, *, workers: int = 4,
              chaos_crash_shards: Sequence[int] = (),
              **pool_kwargs) -> FarmResult:
        """Run a frame block through the farm.

        ``workers >= 1`` uses the spawn worker pool — the persistent
        one when :meth:`start_pool` was called (warm, no spawn or
        replica cold-start in the call), else a pool built and torn
        down inside the call; ``workers == 0`` executes the same plan
        sequentially in-process (the bit-identity reference).  Warm
        and cold runs are bit-identical: the warm replica template is
        the deterministic product of the same spec (see
        :class:`~repro.serve.workers.ReplicaSource`).
        *chaos_crash_shards* hard-kills the
        worker first claiming each listed shard's task (test hook;
        requires ``workers >= 1``); the supervisor restarts and
        requeues, and the results must still be bit-identical.
        """
        plant = self.spec.plant
        if plant is not None and getattr(plant, "closed_loop", False):
            raise ValueError(
                f"{type(plant).__name__} is closed-loop: it synthesises "
                f"its own frames — use serve_plant(n_frames)")
        frames = np.ascontiguousarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got {frames.shape}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chaos_crash_shards and workers < 1 and not self.hosts:
            raise ValueError("chaos_crash_shards requires workers >= 1")
        plan = self.plan(frames.shape[0], chaos_crash_shards)

        t0 = time.perf_counter()
        if workers >= 1 or self.hosts:
            # With remote hosts configured even workers == 0 is a pool
            # run (entirely remote); the in-process sequential
            # reference stays reachable via serve_reference().
            if self._pool is not None:
                # Warm path: reuse the persistent pool's live workers.
                if pool_kwargs:
                    raise ValueError(
                        "pool kwargs are fixed at start_pool() time")
                pool = self._pool
            else:
                pool = self._make_pool(workers, **pool_kwargs)
            results, outputs, stats = pool.run(frames, list(plan.tasks))
            restarts, requeued = stats.worker_restarts, stats.requeued_tasks
            host_failures = stats.host_failures
            # Cold runs tear the pool down inside run(); the stats
            # snapshot still carries the live worker/slot count.
            n_workers = stats.workers or pool.n_workers
        else:
            outputs = np.full((frames.shape[0], len(OUTPUT_COLUMNS)), np.nan)
            results = [execute_shard_task(self.spec, t, frames, outputs)
                       for t in plan.tasks]
            restarts = requeued = host_failures = 0
            n_workers = 0
        wall = time.perf_counter() - t0

        return self._assemble(plan, results, outputs, wall,
                              workers=n_workers,
                              worker_restarts=restarts,
                              requeued_tasks=requeued,
                              host_failures=host_failures)

    def serve_reference(self, frames: np.ndarray) -> FarmResult:
        """The sequential in-process reference.

        Always executes the plan inline in this process — even on a
        farm configured with remote ``hosts`` — because this is the
        stream every other execution mode is asserted bit-identical
        against.
        """
        plant = self.spec.plant
        if plant is not None and getattr(plant, "closed_loop", False):
            raise ValueError(
                f"{type(plant).__name__} is closed-loop: it synthesises "
                f"its own frames — use serve_plant_reference(n_frames)")
        frames = np.ascontiguousarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got {frames.shape}")
        plan = self.plan(frames.shape[0])
        t0 = time.perf_counter()
        outputs = np.full((frames.shape[0], len(OUTPUT_COLUMNS)), np.nan)
        results = [execute_shard_task(self.spec, t, frames, outputs)
                   for t in plan.tasks]
        wall = time.perf_counter() - t0
        return self._assemble(plan, results, outputs, wall, workers=0,
                              worker_restarts=0, requeued_tasks=0,
                              host_failures=0)

    # ------------------------------------------------------------------
    def plan_plant(self, n_frames: int,
                   chaos_crash_shards: Sequence[int] = ()) -> FarmPlan:
        """The deterministic closed-loop plan for *n_frames* frames.

        One :class:`~repro.serve.workers.PlantTask` per shard: each
        shard runs a complete, ordered closed-loop session over its
        interleaved slice of the global frame order, seeded exactly
        like the open-loop shards (``shard_seed(seed, s)``).
        """
        plant = self.spec.plant
        if plant is None or not getattr(plant, "closed_loop", False):
            raise ValueError(
                "plan_plant needs a closed-loop plant on the farm spec "
                "(build_farm(..., plant=...))")
        shard_plan = ShardPlan(n_frames=n_frames, n_shards=self.n_shards)
        crash_set = set(chaos_crash_shards)
        unknown = crash_set - set(range(self.n_shards))
        if unknown:
            raise ValueError(f"chaos_crash_shards {sorted(unknown)} outside "
                             f"[0, {self.n_shards})")
        tasks = tuple(PlantTask(
            task_id=s,
            shard=s,
            seed_entropy=self.seed,
            global_indices=shard_plan.shard_globals(s),
            crash=s in crash_set,
        ) for s in range(self.n_shards))
        return FarmPlan(shard_plan=shard_plan, tasks=tasks)

    def serve_plant(self, n_frames: int, *, workers: int = 4,
                    chaos_crash_shards: Sequence[int] = (),
                    **pool_kwargs) -> FarmResult:
        """Run *n_frames* of closed-loop sessions through the farm.

        No frames travel: each shard's worker synthesises its stream
        from the spec's plant and feeds every published action back
        before the next frame, so actuation order within a shard is
        total and the run is bit-identical to
        :meth:`serve_plant_reference` for every worker count —
        including under *chaos_crash_shards* (plant tasks are pure, so
        the supervisor requeues a crashed shard's whole session).
        Single-machine only: the host transport ships frame blocks,
        not sessions.
        """
        if self.hosts:
            raise ValueError(
                "closed-loop plant serving is single-machine: the host "
                "transport ships frame blocks, not plant sessions")
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chaos_crash_shards and workers < 1:
            raise ValueError("chaos_crash_shards requires workers >= 1")
        plan = self.plan_plant(n_frames, chaos_crash_shards)

        t0 = time.perf_counter()
        if workers >= 1:
            if self._pool is not None:
                if pool_kwargs:
                    raise ValueError(
                        "pool kwargs are fixed at start_pool() time")
                pool = self._pool
            else:
                pool = self._make_pool(workers, **pool_kwargs)
            # Placeholder frame buffer: plant workers synthesise their
            # own frames; the output matrix still spans all rows.
            results, outputs, stats = pool.run(np.zeros((1, 1)),
                                               list(plan.tasks))
            restarts, requeued = stats.worker_restarts, stats.requeued_tasks
            host_failures = stats.host_failures
            n_workers = stats.workers or pool.n_workers
        else:
            outputs = np.full((n_frames, len(OUTPUT_COLUMNS)), np.nan)
            results = [execute_plant_task(self.spec, t, out=outputs)
                       for t in plan.tasks]
            restarts = requeued = host_failures = 0
            n_workers = 0
        wall = time.perf_counter() - t0

        return self._assemble(plan, results, outputs, wall,
                              workers=n_workers,
                              worker_restarts=restarts,
                              requeued_tasks=requeued,
                              host_failures=host_failures)

    def serve_plant_reference(self, n_frames: int) -> FarmResult:
        """The sequential in-process closed-loop reference."""
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        plan = self.plan_plant(n_frames)
        t0 = time.perf_counter()
        outputs = np.full((n_frames, len(OUTPUT_COLUMNS)), np.nan)
        results = [execute_plant_task(self.spec, t, out=outputs)
                   for t in plan.tasks]
        wall = time.perf_counter() - t0
        return self._assemble(plan, results, outputs, wall, workers=0,
                              worker_restarts=0, requeued_tasks=0,
                              host_failures=0)

    # ------------------------------------------------------------------
    def _assemble(self, plan: FarmPlan, results: List[TaskResult],
                  outputs: np.ndarray, wall_s: float, *, workers: int,
                  worker_restarts: int, requeued_tasks: int,
                  host_failures: int = 0) -> FarmResult:
        by_shard = [r.records for r in results]
        records = plan.shard_plan.gather(by_shard)
        health = merge_shard_health(
            [r.health for r in results],
            n_shards=self.n_shards,
            workers=workers,
            batches=plan.n_batches,
            worker_restarts=worker_restarts,
            requeued_tasks=requeued_tasks,
            host_failures=host_failures,
        )
        obs = None
        snaps = [r.obs_snapshot for r in results]
        if any(s is not None for s in snaps):
            obs = merge_obs_snapshots(
                [s for s in snaps if s is not None],
                extra_meta={"n_shards": self.n_shards, "workers": workers})
        return FarmResult(records=records, by_shard=by_shard,
                          outputs=outputs, health=health, plan=plan,
                          obs=obs, wall_s=wall_s, workers=workers)
