"""Merging per-shard observability snapshots into one export.

Every shard replica owns a private :class:`~repro.obs.MetricsRegistry`
and :class:`~repro.obs.spans.Tracer` (worker processes cannot share
Python objects), so a farm run produces N ``repro-obs/1`` snapshots.
This module folds them into a single ``repro-obs/1`` document:

* **counters** — summed (event tallies are additive across shards),
* **gauges** — the maximum (gauges are last-values; the merged export
  reports the *worst* shard, e.g. ``engine.fallback_active`` is 1.0 if
  any shard fell back),
* **histograms** — bucket counts summed edge-by-edge, percentiles
  recomputed from the merged sparse buckets with the same deterministic
  upper-edge rule :class:`~repro.obs.metrics.Histogram` uses (overflow
  reports the merged exact max),
* **span stage stats** — counts summed, means count-weighted, maxima
  maxed.  Exact per-shard percentiles cannot be merged without the raw
  samples, so the merged stage stats carry ``count``/``mean_s``/
  ``max_s`` only; the full per-shard snapshots ride along under
  ``"shards"`` for drill-down.

The merge is pure dict arithmetic — deterministic for a given snapshot
list, regardless of which worker produced which shard.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import OBS_FORMAT

__all__ = ["merge_metrics_snapshots", "merge_obs_snapshots",
           "merge_histogram_summaries"]


def _sum_counters(snaps: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for snap in snaps:
        for name, value in snap.items():
            out[name] = out.get(name, 0) + int(value)
    return dict(sorted(out.items()))


def _max_gauges(snaps: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for snap in snaps:
        for name, value in snap.items():
            v = float(value)
            out[name] = max(out.get(name, -math.inf), v)
    return dict(sorted(out.items()))


def merge_histogram_summaries(summaries: Sequence[Dict[str, Any]],
                              ) -> Dict[str, Any]:
    """Fold N snapshot-form histograms (same metric) into one.

    Each input is the ``{"count", "mean", "p50", ..., "max",
    "buckets": [[edge, count], ...]}`` form
    :meth:`MetricsRegistry.snapshot` emits (``edge`` is ``None`` for
    the overflow bucket).  Percentiles are recomputed from the merged
    buckets with the upper-edge rule, so the result is exactly what a
    single registry observing every shard's samples would report —
    provided the shards used identical bucket boundaries (they do: all
    replicas are built from one spec).
    """
    total = sum(int(s.get("count", 0)) for s in summaries)
    if total == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0, "max": 0.0, "buckets": []}
    mean = sum(float(s.get("mean", 0.0)) * int(s.get("count", 0))
               for s in summaries) / total
    max_value = max(float(s.get("max", 0.0)) for s in summaries
                    if int(s.get("count", 0)))

    merged: Dict[Optional[float], int] = {}
    for s in summaries:
        for edge, count in s.get("buckets", []):
            key = None if edge is None else float(edge)
            merged[key] = merged.get(key, 0) + int(count)
    edges = sorted(k for k in merged if k is not None)
    ordered = [(e, merged[e]) for e in edges]
    if None in merged:
        ordered.append((None, merged[None]))

    def percentile(q: float) -> float:
        rank = math.ceil(q / 100.0 * total)
        cumulative = 0
        for edge, count in ordered:
            cumulative += count
            if cumulative >= rank:
                return max_value if edge is None else edge
        return max_value  # pragma: no cover - rank <= total always hits

    return {
        "count": total,
        "mean": mean,
        "p50": percentile(50),
        "p90": percentile(90),
        "p99": percentile(99),
        "max": max_value,
        "buckets": [[edge, count] for edge, count in ordered],
    }


def merge_metrics_snapshots(snaps: Sequence[Dict[str, Any]],
                            ) -> Dict[str, Any]:
    """Merge N :meth:`MetricsRegistry.snapshot` payloads."""
    hist_names = sorted({name for s in snaps
                         for name in s.get("histograms", {})})
    return {
        "counters": _sum_counters([s.get("counters", {}) for s in snaps]),
        "gauges": _max_gauges([s.get("gauges", {}) for s in snaps]),
        "histograms": {
            name: merge_histogram_summaries(
                [s["histograms"][name] for s in snaps
                 if name in s.get("histograms", {})])
            for name in hist_names
        },
    }


def _merge_stage_stats(stages: Sequence[Dict[str, Dict[str, float]]],
                       ) -> Dict[str, Dict[str, float]]:
    names = sorted({name for s in stages for name in s})
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        rows = [s[name] for s in stages if name in s]
        count = sum(int(r.get("count", 0)) for r in rows)
        if count == 0:
            out[name] = {"count": 0, "mean_s": 0.0, "max_s": 0.0}
            continue
        mean = sum(float(r.get("mean_s", 0.0)) * int(r.get("count", 0))
                   for r in rows) / count
        out[name] = {
            "count": count,
            "mean_s": mean,
            "max_s": max(float(r.get("max_s", 0.0)) for r in rows),
        }
    return out


def merge_obs_snapshots(snaps: Sequence[Dict[str, Any]], *,
                        include_shards: bool = True,
                        extra_meta: Optional[Dict[str, Any]] = None,
                        ) -> Dict[str, Any]:
    """Fold N per-shard ``repro-obs/1`` snapshots into one.

    The result is itself a ``repro-obs/1`` document whose ``meta``
    carries ``merged_shards``; with *include_shards* the untouched
    per-shard snapshots are kept under ``"shards"``.
    """
    snaps = list(snaps)
    merged: Dict[str, Any] = {
        "meta": {"format": OBS_FORMAT, "merged_shards": len(snaps),
                 **(extra_meta or {})},
        "metrics": merge_metrics_snapshots(
            [s.get("metrics", {}) for s in snaps]),
        "spans": {
            "count": sum(int(s.get("spans", {}).get("count", 0))
                         for s in snaps),
            "dropped": sum(int(s.get("spans", {}).get("dropped", 0))
                           for s in snaps),
            "stages_sim": _merge_stage_stats(
                [s.get("spans", {}).get("stages_sim", {}) for s in snaps]),
            "stages_wall": _merge_stage_stats(
                [s.get("spans", {}).get("stages_wall", {}) for s in snaps]),
        },
        "recorder": {
            "capacity": sum(int(s.get("recorder", {}).get("capacity", 0))
                            for s in snaps),
            "frames_seen": sum(
                int(s.get("recorder", {}).get("frames_seen", 0))
                for s in snaps),
            "retained": sum(int(s.get("recorder", {}).get("retained", 0))
                            for s in snaps),
            "trips": sum(int(s.get("recorder", {}).get("trips", 0))
                         for s in snaps),
        },
    }
    if include_shards:
        merged["shards"] = snaps
    return merged
