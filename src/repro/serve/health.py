"""Farm-level health aggregation.

The single-runtime :class:`~repro.soc.runtime.HealthReport` answers
"how did *this* node fare"; a farm needs the same answer across N
replicas **plus** the serving layer's own failure domain — worker
crashes, restarts, requeued shard tasks.  :class:`FarmHealth` folds the
per-shard reports (as plain dicts, the picklable form the workers ship
back) and the pool statistics into one renderable summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.plants import merge_control_dicts

__all__ = ["FarmHealth", "merge_shard_health"]


def _sum_dicts(dicts) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0) + int(v)
    return out


@dataclass(frozen=True)
class FarmHealth:
    """Aggregated robustness + serving telemetry of one farm run."""

    frames_total: int
    n_shards: int
    workers: int
    batches: int
    worker_restarts: int
    requeued_tasks: int
    status_counts: Dict[str, int]
    fault_counts: Dict[str, int]
    engine_frames: Dict[str, int]
    deadline_miss_rate: float
    watchdog_trips: int
    substituted_slices: int
    publish_retries: int
    dead_letters: int
    shard_health: Tuple[Dict[str, Any], ...]
    # Speculative-ladder telemetry summed over shards (zero / empty when
    # no replica ever speculated, keeping older payloads mergeable).
    frames_speculated: int = 0
    frames_replayed: int = 0
    invalidation_counts: Dict[str, int] = field(default_factory=dict)
    # Frames refused by daemon admission control (bounded per-stream
    # queues).  Always 0 for pre-planned farm runs, which admit
    # everything by construction.
    frames_shed: int = 0
    # Remote host-agent connections lost mid-run (cross-host serving);
    # each loss requeued the host's in-flight shards.  Always 0 on a
    # single-machine farm.
    host_failures: int = 0
    # Farm-level control-quality summary (dict form of
    # :class:`repro.plants.ControlQuality`, merged across shards); None
    # when no shard scored its run.
    control: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        """Multi-line printable summary (farm first, then per shard)."""
        lines = ["farm health:"]
        lines.append(f"  frames: {self.frames_total} over "
                     f"{self.n_shards} shards "
                     f"({self.batches} micro-batches, "
                     f"{self.workers} workers)")
        if self.worker_restarts or self.requeued_tasks:
            lines.append(f"  worker restarts: {self.worker_restarts}, "
                         f"requeued shard tasks: {self.requeued_tasks}")
        if self.host_failures:
            lines.append(f"  host partitions survived: "
                         f"{self.host_failures}")
        if self.frames_shed:
            lines.append(f"  frames shed (admission control): "
                         f"{self.frames_shed}")
        for status, count in sorted(self.status_counts.items()):
            lines.append(f"    {status}: {count}")
        if self.fault_counts:
            lines.append("  injected faults:")
            for kind in sorted(self.fault_counts):
                lines.append(f"    {kind}: {self.fault_counts[kind]}")
        lines.append("  engines: " + ", ".join(
            f"{k}={v}" for k, v in sorted(self.engine_frames.items())))
        if self.frames_speculated or self.frames_replayed:
            lines.append(f"  speculation: {self.frames_speculated} frames "
                         f"rode the fast path, {self.frames_replayed} "
                         f"replayed in-line")
            for cause in sorted(self.invalidation_counts):
                lines.append(f"    invalidated.{cause}: "
                             f"{self.invalidation_counts[cause]}")
        lines.append(f"  deadline miss rate: {self.deadline_miss_rate:.2%}")
        lines.append(f"  watchdog trips: {self.watchdog_trips}, "
                     f"substituted hub slices: {self.substituted_slices}")
        lines.append(f"  publish retries: {self.publish_retries}, "
                     f"dead letters: {self.dead_letters}")
        if self.control is not None:
            c = self.control
            lines.append(f"  control: {c.get('trips', 0)} trips over "
                         f"{c.get('frames', 0)} frames, "
                         f"stabilized={c.get('stabilized', False)}")
        for i, h in enumerate(self.shard_health):
            miss = h.get("deadline_miss_rate", 0.0)
            lines.append(f"  shard {i}: {h.get('frames_total', 0)} frames, "
                         f"miss {miss:.2%}, "
                         f"watchdog {h.get('watchdog_trips', 0)}")
        return "\n".join(lines)


def merge_shard_health(shard_health, *, n_shards: int, workers: int,
                       batches: int, worker_restarts: int = 0,
                       requeued_tasks: int = 0,
                       frames_shed: int = 0,
                       host_failures: int = 0) -> FarmHealth:
    """Fold per-shard :class:`HealthReport` dicts into a FarmHealth.

    *shard_health* is a sequence of ``dataclasses.asdict(HealthReport)``
    payloads, one per shard, in shard order.
    """
    shard_health = tuple(dict(h) for h in shard_health)
    frames_total = sum(h.get("frames_total", 0) for h in shard_health)
    misses = sum(h.get("deadline_miss_rate", 0.0)
                 * h.get("frames_total", 0) for h in shard_health)
    return FarmHealth(
        frames_total=frames_total,
        n_shards=n_shards,
        workers=workers,
        batches=batches,
        worker_restarts=worker_restarts,
        requeued_tasks=requeued_tasks,
        status_counts=_sum_dicts(h.get("status_counts", {})
                                 for h in shard_health),
        fault_counts=_sum_dicts(h.get("fault_counts", {})
                                for h in shard_health),
        engine_frames=_sum_dicts(h.get("engine_frames", {})
                                 for h in shard_health),
        deadline_miss_rate=(misses / frames_total) if frames_total else 0.0,
        watchdog_trips=sum(h.get("watchdog_trips", 0)
                           for h in shard_health),
        substituted_slices=sum(h.get("substituted_slices", 0)
                               for h in shard_health),
        publish_retries=sum(h.get("publish_retries", 0)
                            for h in shard_health),
        dead_letters=sum(h.get("dead_letters", 0) for h in shard_health),
        shard_health=shard_health,
        frames_speculated=sum(h.get("frames_speculated", 0)
                              for h in shard_health),
        frames_replayed=sum(h.get("frames_replayed", 0)
                            for h in shard_health),
        invalidation_counts=_sum_dicts(h.get("invalidation_counts", {})
                                       for h in shard_health),
        frames_shed=frames_shed,
        host_failures=host_failures,
        control=merge_control_dicts([h.get("control")
                                     for h in shard_health]),
    )
