"""Deadline-aware micro-batching for the serving farm.

A shard's frames arrive on its own 3 ms digitizer grid.  Dispatching
every frame alone wastes the bit-exact batched/compiled predict path
(one chunked ``precompute_raw_outputs`` per block amortizes the Python
dispatch overhead, see docs/performance.md); waiting forever violates
the real-time contract.  The :class:`MicroBatcher` accumulates frames
and flushes a batch when

* the batch is full (``max_batch`` frames), or
* admitting the next frame would push the *oldest* queued frame past
  its dispatch deadline ``t_arrival + slack_s``, accounting for the
  predicted dispatch cost ``est_cost_per_frame_s * (len + 1)``.

Everything is computed on the **simulated** arrival clock — pure
arithmetic over arrival timestamps — so a batch plan is a deterministic
function of (arrival times, policy).  That determinism is what lets the
farm prove worker-pool runs bit-identical to the sequential in-process
reference: both execute the *same* plan, and the runtime folds each
batch's start index into its seed derivation identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.soc.board import FRAME_PERIOD_S

__all__ = ["BatchingPolicy", "MicroBatcher", "plan_microbatches",
           "stream_arrivals", "backlog_arrivals"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Tunables of the micro-batching scheduler.

    Parameters
    ----------
    max_batch:
        Hard batch-size cap (default: the fast path's shm/cache block).
    slack_s:
        How long a queued frame may wait before its batch must
        dispatch (default: one 3 ms digitizer period).
    est_cost_per_frame_s:
        Predicted per-frame dispatch cost, subtracted from the oldest
        frame's remaining slack when deciding whether one more frame
        still fits (0 disables the cost model).
    """

    max_batch: int = 32
    slack_s: float = FRAME_PERIOD_S
    est_cost_per_frame_s: float = 0.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.slack_s < 0:
            raise ValueError(f"slack_s must be >= 0, got {self.slack_s}")
        if self.est_cost_per_frame_s < 0:
            raise ValueError(f"est_cost_per_frame_s must be >= 0, "
                             f"got {self.est_cost_per_frame_s}")


class MicroBatcher:
    """Streaming accumulator producing deterministic batch boundaries.

    ``push`` frames in arrival order; whenever admitting a frame would
    violate the policy, the pending batch is returned (flushed) and the
    new frame starts the next one.  Call :meth:`flush` at end of stream
    for the tail batch.  Batches are half-open ``(start, stop)`` ranges
    over push order — frames are never reordered.
    """

    def __init__(self, policy: Optional[BatchingPolicy] = None):
        self.policy = policy or BatchingPolicy()
        self._start: Optional[int] = None   # first position of open batch
        self._count = 0                     # frames in the open batch
        self._t_first = 0.0                 # arrival of the oldest frame
        self._next_pos = 0

    # ------------------------------------------------------------------
    def _would_miss(self, t_arrival: float) -> bool:
        """Would the oldest queued frame miss its dispatch deadline if
        this frame joined the batch?"""
        p = self.policy
        dispatch_at = t_arrival + p.est_cost_per_frame_s * (self._count + 1)
        return dispatch_at > self._t_first + p.slack_s

    def push(self, t_arrival: float) -> Optional[Tuple[int, int]]:
        """Admit the next frame (arriving at *t_arrival*).

        Returns the flushed ``(start, stop)`` batch when admitting the
        frame closed the previous batch, else ``None``.
        """
        flushed = None
        if self._count and (self._count >= self.policy.max_batch
                            or self._would_miss(t_arrival)):
            flushed = (self._start, self._start + self._count)
            self._start, self._count = None, 0
        if self._count == 0:
            self._start = self._next_pos
            self._t_first = float(t_arrival)
        self._count += 1
        self._next_pos += 1
        return flushed

    def flush(self) -> Optional[Tuple[int, int]]:
        """Close the pending batch (end of stream)."""
        if not self._count:
            return None
        batch = (self._start, self._start + self._count)
        self._start, self._count = None, 0
        return batch


def plan_microbatches(arrivals_s: Sequence[float],
                      policy: Optional[BatchingPolicy] = None,
                      ) -> List[Tuple[int, int]]:
    """Batch plan for a known arrival sequence (ascending timestamps).

    Returns contiguous half-open ``(start, stop)`` ranges covering
    ``0..len(arrivals)-1`` exactly once, in order.
    """
    arrivals = np.asarray(arrivals_s, dtype=np.float64)
    if np.any(np.isnan(arrivals)):
        # NaN compares false against everything, so it would sail
        # through the monotonicity check below and then poison every
        # deadline comparison downstream (batch boundaries — and hence
        # seeds and records — would silently depend on NaN semantics).
        raise ValueError("arrival times must not contain NaN")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be non-decreasing")
    mb = MicroBatcher(policy)
    plan: List[Tuple[int, int]] = []
    for t in arrivals:
        b = mb.push(float(t))
        if b is not None:
            plan.append(b)
    tail = mb.flush()
    if tail is not None:
        plan.append(tail)
    return plan


def stream_arrivals(n: int, period_s: float = FRAME_PERIOD_S) -> np.ndarray:
    """Arrival times of a live synchronous stream: one frame per tick."""
    return np.arange(n, dtype=np.float64) * period_s


def backlog_arrivals(n: int) -> np.ndarray:
    """Arrival times of a replayed backlog: everything queued at t=0.

    With the cost model off (``est_cost_per_frame_s == 0``, the
    default) the batcher fills every batch to ``max_batch``.  With a
    positive cost estimate the deadline check still applies at t=0 —
    the oldest queued frame's dispatch deadline is ``slack_s`` after
    arrival regardless of when it arrived — so backlogs split as soon
    as ``est_cost_per_frame_s * (len + 1) > slack_s``, which may be
    well before ``max_batch``.  That is deliberate: a backlog must not
    be allowed to blow the per-frame latency budget just because it is
    a backlog.
    """
    return np.zeros(n, dtype=np.float64)
