"""Deterministic bursty traffic replay (``repro.serve.replay``).

The scale-out claims of the serving stack need load that looks like
the deployment story — many synchronous BLM streams, arriving in
bursts, competing for admission — and they need it **reproducibly**,
so a benchmark number or a shed count can be pinned in CI.  This
module synthesises that load on the simulated clock:

1. :func:`synth_schedule` draws per-stream arrival times from a
   seeded **on-off (Poisson-burst) process**: bursts of
   geometrically-distributed length at the stream's frame period,
   separated by exponential quiet gaps.  Same seed → byte-identical
   schedule (each stream draws from its own
   ``SeedSequence(seed, spawn_key=(REPLAY_SPAWN_TAG, stream))``).
2. :func:`simulate_admission` replays those arrivals through the
   daemon's **own admission path** — one
   :class:`~repro.serve.daemon.StreamIngress` per stream, the same
   queue-depth shedding and micro-batch planning the socket front
   uses — against a deterministic service model (``workers`` parallel
   batch slots, affine batch cost).  The event loop is pure
   arithmetic: same schedule + same knobs → same accepted sets, same
   shed decisions, same simulated queueing latencies.
3. :func:`replay_streams` then drives the *accepted* frame sequences
   through a live :class:`~repro.serve.daemon.DaemonHandle` over real
   sockets (or any farm/host pool via its serve path) to measure wall
   throughput, while the per-frame node latencies it reports stay
   deterministic (they come from the simulated board clock inside the
   records, never from wall time).

The deterministic/measured split is deliberate: **decisions** (admit
or shed, batch boundaries) are fixed by the simulation so they can be
asserted bit-exactly, while **wall throughput** is measured on the
real execution path those decisions feed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.batching import BatchingPolicy
from repro.soc.board import FRAME_PERIOD_S

__all__ = [
    "REPLAY_SPAWN_TAG",
    "BurstModel",
    "ReplaySchedule",
    "StreamSim",
    "ReplaySim",
    "ReplayReport",
    "synth_schedule",
    "simulate_admission",
    "accepted_frames",
    "replay_streams",
]

#: Spawn-key tag namespacing replay RNG streams away from the serving
#: seeds (``SERVE_SPAWN_TAG``) — ASCII "RPLY".
REPLAY_SPAWN_TAG = 0x52504C59


@dataclass(frozen=True)
class BurstModel:
    """On-off (Poisson-burst) arrival process for one BLM stream.

    A stream alternates between ON bursts — ``burst_mean`` frames on
    average (geometric), spaced ``period_s`` apart (the digitizer
    grid) — and OFF gaps with mean ``gap_mean_s`` (exponential).
    ``burst_mean = inf`` degenerates to a steady synchronous stream.
    """

    period_s: float = FRAME_PERIOD_S
    burst_mean: float = 8.0
    gap_mean_s: float = 4 * FRAME_PERIOD_S

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if self.burst_mean < 1:
            raise ValueError(f"burst_mean must be >= 1, "
                             f"got {self.burst_mean}")
        if self.gap_mean_s < 0:
            raise ValueError(f"gap_mean_s must be >= 0, "
                             f"got {self.gap_mean_s}")


@dataclass(frozen=True)
class ReplaySchedule:
    """Per-stream arrival times (seconds, non-decreasing) for one replay."""

    seed: int
    model: BurstModel
    arrivals: Tuple[Tuple[float, ...], ...]     # stream -> arrival times

    @property
    def n_streams(self) -> int:
        return len(self.arrivals)

    @property
    def n_frames(self) -> int:
        return sum(len(a) for a in self.arrivals)

    def signature(self) -> Tuple:
        """Hashable identity of the full schedule (determinism pins)."""
        return (self.seed, self.model, self.arrivals)


def synth_schedule(n_streams: int, frames_per_stream: int, *,
                   seed: int = 0,
                   model: Optional[BurstModel] = None) -> ReplaySchedule:
    """Draw a seeded bursty arrival schedule for *n_streams* streams."""
    if n_streams < 1:
        raise ValueError(f"n_streams must be >= 1, got {n_streams}")
    if frames_per_stream < 1:
        raise ValueError(f"frames_per_stream must be >= 1, "
                         f"got {frames_per_stream}")
    model = model or BurstModel()
    streams: List[Tuple[float, ...]] = []
    for s in range(n_streams):
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=seed, spawn_key=(REPLAY_SPAWN_TAG, s)))
        times: List[float] = []
        t = float(rng.exponential(model.gap_mean_s)) if model.gap_mean_s \
            else 0.0
        while len(times) < frames_per_stream:
            burst = int(rng.geometric(1.0 / model.burst_mean)) \
                if model.burst_mean > 1 else 1
            for i in range(burst):
                if len(times) >= frames_per_stream:
                    break
                times.append(t + i * model.period_s)
            t = times[-1] + model.period_s
            if model.gap_mean_s:
                t += float(rng.exponential(model.gap_mean_s))
        streams.append(tuple(times))
    return ReplaySchedule(seed=seed, model=model,
                          arrivals=tuple(streams))


# ----------------------------------------------------------------------
# Deterministic admission + service simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamSim:
    """One stream's deterministic replay outcome."""

    stream: int
    offered: int
    accepted: Tuple[int, ...]       # offered-order indices admitted
    shed: Tuple[int, ...]           # offered-order indices refused
    n_batches: int
    sim_latency_s: Tuple[float, ...]  # per accepted frame: done - arrival

    def latency_percentile(self, q: float) -> float:
        if not self.sim_latency_s:
            return 0.0
        return float(np.percentile(np.asarray(self.sim_latency_s), q))


@dataclass(frozen=True)
class ReplaySim:
    """The full deterministic outcome of one simulated replay."""

    schedule: ReplaySchedule
    queue_limit: int
    workers: int
    service_per_frame_s: float
    service_base_s: float
    streams: Tuple[StreamSim, ...]

    @property
    def total_offered(self) -> int:
        return sum(s.offered for s in self.streams)

    @property
    def total_accepted(self) -> int:
        return sum(len(s.accepted) for s in self.streams)

    @property
    def total_shed(self) -> int:
        return sum(len(s.shed) for s in self.streams)

    def signature(self) -> Tuple:
        """Every admission decision, hashable (determinism pins)."""
        return tuple((s.stream, s.accepted, s.shed, s.n_batches)
                     for s in self.streams)


def simulate_admission(schedule: ReplaySchedule, *,
                       batching: Optional[BatchingPolicy] = None,
                       queue_limit: int = 64,
                       workers: int = 4,
                       period_s: float = FRAME_PERIOD_S,
                       arrival_mode: str = "stream",
                       service_per_frame_s: Optional[float] = None,
                       service_base_s: float = 2e-4) -> ReplaySim:
    """Replay *schedule* through the daemon's admission path, offline.

    One :class:`~repro.serve.daemon.StreamIngress` per stream (the
    exact class the socket daemon admits through) fed in global
    arrival order; ready micro-batches execute on a deterministic
    server model — ``workers`` parallel slots, one in-flight batch per
    stream (the daemon's dispatch rule), batch cost
    ``service_base_s + service_per_frame_s × len`` (the per-frame cost
    defaults to the batching policy's own estimate).  Everything is
    integer/float arithmetic on the simulated clock: same inputs,
    same shed decisions, bit for bit.
    """
    from repro.serve.daemon import StreamIngress

    batching = batching or BatchingPolicy()
    if service_per_frame_s is None:
        # The batching policy's own cost estimate when it has one;
        # otherwise a nominal per-frame cost so bursts actually queue.
        service_per_frame_s = batching.est_cost_per_frame_s or 2.5e-4
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    n = schedule.n_streams
    ingress = [StreamIngress(s, policy=batching, period_s=period_s,
                             queue_limit=queue_limit,
                             arrival_mode=arrival_mode)
               for s in range(n)]
    placeholder = np.zeros(1)
    accepted: List[List[int]] = [[] for _ in range(n)]
    shed: List[List[int]] = [[] for _ in range(n)]
    arrival_t: List[List[float]] = [[] for _ in range(n)]   # per accepted
    done_t: List[List[float]] = [[] for _ in range(n)]
    n_batches = [0] * n
    in_flight = [False] * n
    free_slots = workers
    backlog: List[Tuple[int, Tuple[int, int]]] = []   # FIFO submissions

    # Event heap: (time, seq, kind, stream, payload).  Kinds sort
    # within a timestamp by insertion order (seq), which is itself
    # deterministic — arrivals in offered order, then each stream's
    # EOS, completions as they are scheduled.
    seq = 0
    heap: List[Tuple[float, int, str, int, Any]] = []
    for s in range(n):
        for i, t in enumerate(schedule.arrivals[s]):
            heapq.heappush(heap, (float(t), seq, "arrival", s, i))
            seq += 1
        heapq.heappush(heap, (float(schedule.arrivals[s][-1]), seq,
                              "end", s, None))
        seq += 1

    def service_s(batch: Tuple[int, int]) -> float:
        return service_base_s + service_per_frame_s * (batch[1] - batch[0])

    def start_batch(s: int, batch: Tuple[int, int], t: float) -> None:
        nonlocal seq
        heapq.heappush(heap, (t + service_s(batch), seq,
                              "complete", s, batch))
        seq += 1

    def maybe_dispatch(s: int, t: float) -> None:
        nonlocal free_slots
        if in_flight[s]:
            return
        batch = ingress[s].next_ready()
        if batch is None:
            return
        in_flight[s] = True
        n_batches[s] += 1
        if free_slots > 0:
            free_slots -= 1
            start_batch(s, batch, t)
        else:
            backlog.append((s, batch))

    while heap:
        t, _, kind, s, payload = heapq.heappop(heap)
        ing = ingress[s]
        if kind == "arrival":
            if ing.offer(placeholder):
                accepted[s].append(payload)
                arrival_t[s].append(t)
            else:
                shed[s].append(payload)
            maybe_dispatch(s, t)
        elif kind == "end":
            ing.end()
            maybe_dispatch(s, t)
        else:  # complete
            a, b = payload
            ing.mark_completed(b - a)
            done_t[s].extend([t] * (b - a))
            in_flight[s] = False
            if backlog:
                s2, batch2 = backlog.pop(0)
                start_batch(s2, batch2, t)
            else:
                free_slots += 1
            maybe_dispatch(s, t)

    streams = []
    for s in range(n):
        if len(done_t[s]) != len(accepted[s]):  # pragma: no cover
            raise AssertionError(
                f"stream {s}: {len(done_t[s])} completions for "
                f"{len(accepted[s])} accepted frames")
        lat = tuple(d - a for d, a in zip(done_t[s], arrival_t[s]))
        streams.append(StreamSim(
            stream=s,
            offered=len(schedule.arrivals[s]),
            accepted=tuple(accepted[s]),
            shed=tuple(shed[s]),
            n_batches=n_batches[s],
            sim_latency_s=lat,
        ))
    return ReplaySim(schedule=schedule, queue_limit=queue_limit,
                     workers=workers,
                     service_per_frame_s=service_per_frame_s,
                     service_base_s=service_base_s,
                     streams=tuple(streams))


def accepted_frames(sim: ReplaySim,
                    stream_frames: Sequence[np.ndarray],
                    ) -> Dict[int, np.ndarray]:
    """Each stream's admitted frame subsequence, ready to execute."""
    if len(stream_frames) != len(sim.streams):
        raise ValueError(f"{len(stream_frames)} frame blocks for "
                         f"{len(sim.streams)} simulated streams")
    out: Dict[int, np.ndarray] = {}
    for s, ssim in enumerate(sim.streams):
        frames = np.ascontiguousarray(stream_frames[s], dtype=np.float64)
        if len(frames) < ssim.offered:
            raise ValueError(f"stream {s}: schedule offers {ssim.offered} "
                             f"frames but only {len(frames)} provided")
        out[s] = frames[np.asarray(ssim.accepted, dtype=np.intp)] \
            if ssim.accepted else frames[:0]
    return out


# ----------------------------------------------------------------------
# Live replay against a running daemon
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """What one live replay run measured (plus the deterministic part)."""

    sim: ReplaySim
    wall_s: float
    frames_executed: int
    rows: Dict[int, Dict[int, np.ndarray]]      # stream -> seq -> row
    node_latency_s: Dict[int, np.ndarray]       # stream -> per-frame

    @property
    def aggregate_fps(self) -> float:
        return self.frames_executed / self.wall_s if self.wall_s > 0 \
            else 0.0

    def node_p(self, stream: int, q: float) -> float:
        lat = self.node_latency_s[stream]
        return float(np.percentile(lat, q)) if len(lat) else 0.0

    def worst_node_p99_ms(self) -> float:
        return max((self.node_p(s, 99) for s in self.node_latency_s),
                   default=0.0) * 1e3


def replay_streams(handle, sim: ReplaySim,
                   stream_frames: Sequence[np.ndarray], *,
                   chunk: int = 8,
                   timeout_s: float = 300.0) -> ReplayReport:
    """Drive the admitted frames through a live daemon, interleaved.

    *handle* is a started :class:`~repro.serve.daemon.DaemonHandle`
    whose ``queue_limit`` is large enough to admit every frame the
    simulation already admitted (the deterministic shed decisions were
    made by :func:`simulate_admission`; a second, racy shed here would
    break the contract, so any daemon-side shed raises).
    """
    from repro.serve.workers import OUTPUT_COLUMNS

    node_col = OUTPUT_COLUMNS.index("node_latency_s")
    admitted = accepted_frames(sim, stream_frames)
    clients = {}
    t0 = time.perf_counter()
    try:
        for s in sorted(admitted):
            clients[s] = handle.client(stream_id=s)
        live = {s: 0 for s in clients}
        while live:
            for s in list(live):
                client, frames = clients[s], admitted[s]
                sent = live[s]
                stop = min(sent + chunk, len(frames))
                for i in range(sent, stop):
                    client.send(frames[i])
                client.pump()
                if stop >= len(frames):
                    del live[s]
                else:
                    live[s] = stop
        for s, client in clients.items():
            client.finish(timeout_s=timeout_s)
        wall = time.perf_counter() - t0
        for s, client in clients.items():
            if client.shed:
                raise AssertionError(
                    f"stream {s}: daemon shed {len(client.shed)} frames "
                    f"the simulation admitted — raise the daemon's "
                    f"queue_limit to keep replay deterministic")
        rows = {s: dict(clients[s].results) for s in clients}
        node = {
            s: np.array([rows[s][i][node_col]
                         for i in range(len(admitted[s]))])
            for s in clients
        }
    finally:
        for client in clients.values():
            client.close()
    return ReplayReport(
        sim=sim,
        wall_s=wall,
        frames_executed=sum(len(f) for f in admitted.values()),
        rows=rows,
        node_latency_s=node,
    )
