"""Cross-host shard transport (``repro-hosts/1``): agents + host pool.

The farm's execution layer so far assumed one machine: spawn workers
sharing :class:`~multiprocessing.shared_memory.SharedMemory` blocks
with the supervisor.  This module extends the same contract across a
network boundary with nothing but the stdlib:

* :class:`HostAgent` — a process listening on a TCP socket.  It
  receives a pickled :class:`~repro.serve.workers.FarmSpec` once
  (``HOST_SPEC``), starts its own local
  :class:`~repro.serve.workers.WorkerPool` (each worker holding the
  warm :class:`~repro.serve.workers.ReplicaSource` byte template, so
  the cold conversion/compilation is paid once per host), and then
  executes self-contained :class:`~repro.serve.workers.ShardTask`\\ s
  shipped as ``HOST_TASK`` messages, answering each with a
  ``HOST_RESULT`` carrying the pickled
  :class:`~repro.serve.workers.TaskResult` (records, health, and the
  per-shard ``repro-obs/1`` snapshot) plus the output rows.
* :class:`HostPool` — the farm-side front-end.  It presents the same
  ``start/submit/pump/wait/close/run`` surface as
  :class:`~repro.serve.workers.WorkerPool` but dispatches each shard
  task to whichever executor has a free slot — an optional in-process
  worker pool or any connected host agent — so local and remote
  capacity are used uniformly.

**Bit-identity across the wire.**  A shard task is pure: fresh
replica, spawn-key shard seed, its own frames.  The transport ships
each task with exactly its shard's frame slice
(:func:`~repro.serve.workers.localize_shard_task` rewrites the global
indices to the contiguous slice — same frames, same seed, same batch
boundaries), and every payload is a pickle of the same float64 arrays
and :class:`FrameRecord` dataclasses the in-process path produces, so
a remote shard's records are byte-identical to the local ones.

**Partition-aware crash recovery.**  A host connection that dies
(EOF, reset, SIGKILLed agent) is treated exactly like a dead worker:
every shard task in flight on that host is requeued at the front of
the pending queue and lands on a surviving executor; the casualty is
counted in ``PoolStats.host_failures`` against the restart budget.
Requeue is provably safe for the same reason it is locally — the
tasks are pure.  Host agents guard the other direction too: a worker
orphaned by a SIGKILLed agent notices its parent vanished and exits
instead of lingering.
"""

from __future__ import annotations

import argparse
import os
import pickle
import selectors
import socket
import subprocess
import sys
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.protocol import (
    HOST_MAX_PAYLOAD,
    HOSTS_PROTO_VERSION,
    MessageDecoder,
    MsgKind,
    ProtocolError,
    pack,
    pack_error,
    pack_host_hello,
    pack_host_welcome,
    unpack_host_hello,
    unpack_host_welcome,
)
from repro.serve.workers import (
    OUTPUT_COLUMNS,
    BlockHandle,
    FarmSpec,
    PoolStats,
    ShardTask,
    WorkerCrashError,
    WorkerPool,
    localize_shard_task,
)

__all__ = [
    "HostAgent",
    "HostPool",
    "AgentProcess",
    "spawn_agent",
    "parse_host",
]

#: How long a blocking protocol send may stall before the peer is
#: declared dead (both sides always drain their sockets, so a healthy
#: peer never gets near this).
_SEND_TIMEOUT_S = 60.0


def parse_host(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"host address must be 'host:port', "
                         f"got {address!r}")
    return host, int(port)


def _send_msg(sock: socket.socket, data: bytes) -> None:
    """Blocking send with a liveness bound, restoring non-blocking mode."""
    sock.settimeout(_SEND_TIMEOUT_S)
    try:
        sock.sendall(data)
    finally:
        sock.setblocking(False)


# ----------------------------------------------------------------------
# The agent (server side)
# ----------------------------------------------------------------------
#: Selector key sentinel marking a worker result pipe (vs a farm
#: connection); readiness means "pump the pool", never "read here".
_POOL_PIPE = object()


class _AgentConn:
    """One accepted farm connection and its in-flight bookkeeping."""

    __slots__ = ("sock", "decoder", "greeted", "closed")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = MessageDecoder(max_payload=HOST_MAX_PAYLOAD)
        self.greeted = False
        self.closed = False


class HostAgent:
    """A ``repro-hosts/1`` execution agent for one machine.

    Listens on ``host:port`` (port 0 = ephemeral), serves any number
    of farm connections, and executes the tasks they ship on an
    internal :class:`WorkerPool` of ``workers`` spawn processes.  The
    pool is created when the first ``HOST_SPEC`` arrives and reused
    for every task after that — replica cold-start is paid once per
    host, warm builds thereafter.  A later ``HOST_SPEC`` with
    different bytes is refused (one agent serves one spec; restart the
    agent to change models).

    Run it as a process: ``python -m repro.serve.remote --port 0
    --workers 2`` (announces ``repro-hosts/1 listening <host> <port>``
    on stdout), or programmatically via :func:`spawn_agent`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, max_restarts: int = 8,
                 start_method: str = "spawn",
                 stall_timeout_s: float = 300.0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.max_restarts = max_restarts
        self.start_method = start_method
        self.stall_timeout_s = stall_timeout_s
        self.address: Optional[Tuple[str, int]] = None
        self._sel: Optional[selectors.DefaultSelector] = None
        self._lsock: Optional[socket.socket] = None
        self._pool: Optional[WorkerPool] = None
        self._spec_payload: Optional[bytes] = None
        self._conns: List[_AgentConn] = []
        # task_id -> (conn, handle, task)
        self._inflight: Dict[int, Tuple[_AgentConn, BlockHandle, Any]] = {}
        # fd -> worker result pipe currently registered in the selector
        self._pool_pipes: Dict[int, Any] = {}
        self._stop = False

    # -- lifecycle -----------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        """Open the listening socket; returns the bound ``(host, port)``."""
        if self._lsock is not None:
            return self.address
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind((self.host, self.port))
        lsock.listen(16)
        lsock.setblocking(False)
        self._lsock = lsock
        self._sel = selectors.DefaultSelector()
        self._sel.register(lsock, selectors.EVENT_READ, None)
        self.address = lsock.getsockname()[:2]
        return self.address

    def stop(self) -> None:
        self._stop = True

    def close(self) -> None:
        for conn in list(self._conns):
            self._close_conn(conn)
        if self._sel is not None:
            self._sel.close()
            self._sel = None
        if self._lsock is not None:
            self._lsock.close()
            self._lsock = None
        self._inflight.clear()
        self._pool_pipes.clear()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._spec_payload = None

    def serve_forever(self, announce: bool = False) -> None:
        """Accept and serve farm connections until :meth:`stop`."""
        host, port = self.bind()
        if announce:
            print(f"repro-hosts/1 listening {host} {port}", flush=True)
        try:
            while not self._stop:
                self._step()
        finally:
            self.close()

    # -- event loop ----------------------------------------------------
    def _step(self) -> None:
        # The worker result pipes sit in the selector beside the farm
        # sockets (see WorkerPool.result_connections), so the agent
        # sleeps until either a message or a result is actually ready —
        # no poll interval to tune, and no idle burn stealing CPU from
        # the workers on small machines.  Pool events (a result, or a
        # dead worker's EOF) are never read here; they mean "pump now".
        self._sync_pool_pipes()
        pool_event = False
        for key, _ in self._sel.select(0.2):
            if key.data is None:
                self._accept()
            elif key.data is _POOL_PIPE:
                pool_event = True
            else:
                self._service_conn(key.data)
        if self._pool is not None and (pool_event or self._inflight):
            try:
                self._pool.pump(0.0)
            except WorkerCrashError as exc:
                self._fail_everything(f"host pool failed: {exc}")
                return
            self._collect_done()

    def _sync_pool_pipes(self) -> None:
        """Mirror the pool's live result pipes into the selector."""
        current: Dict[int, Any] = {}
        if self._pool is not None:
            for conn in self._pool.result_connections():
                try:
                    current[conn.fileno()] = conn
                except (OSError, ValueError):  # pragma: no cover - closing
                    continue
        if current.keys() == self._pool_pipes.keys():
            return
        for fd, conn in self._pool_pipes.items():
            if fd not in current:
                try:
                    self._sel.unregister(conn)
                except (KeyError, ValueError, OSError):
                    pass
        for fd, conn in current.items():
            if fd not in self._pool_pipes:
                self._sel.register(conn, selectors.EVENT_READ, _POOL_PIPE)
        self._pool_pipes = current

    def _accept(self) -> None:
        try:
            sock, _ = self._lsock.accept()
        except OSError:  # pragma: no cover - accept raced a reset
            return
        sock.setblocking(False)
        # Nagle holds a small write behind an unACKed tail segment for
        # up to a delayed-ACK interval (~40 ms) — fatal for a
        # request/response protocol that ships several back-to-back
        # pickles per round.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _AgentConn(sock)
        self._conns.append(conn)
        self._sel.register(sock, selectors.EVENT_READ, conn)

    def _close_conn(self, conn: _AgentConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn in self._conns:
            self._conns.remove(conn)
        try:
            if self._sel is not None:
                self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def _refuse(self, conn: _AgentConn, text: str) -> None:
        try:
            _send_msg(conn.sock, pack_error(text))
        except OSError:
            pass
        self._close_conn(conn)

    def _service_conn(self, conn: _AgentConn) -> None:
        while not conn.closed:
            try:
                data = conn.sock.recv(1 << 18)
            except BlockingIOError:
                return
            except OSError:
                data = b""
            if not data:
                self._close_conn(conn)
                return
            try:
                conn.decoder.feed(data)
                msgs = list(conn.decoder)
            except ProtocolError as exc:
                self._refuse(conn, f"protocol error: {exc}")
                return
            for kind, payload in msgs:
                self._handle_msg(conn, kind, payload)
                if conn.closed:
                    return

    def _handle_msg(self, conn: _AgentConn, kind: MsgKind,
                    payload: bytes) -> None:
        if kind == MsgKind.HOST_HELLO:
            try:
                version = unpack_host_hello(payload)
            except ProtocolError as exc:
                self._refuse(conn, str(exc))
                return
            if version != HOSTS_PROTO_VERSION:
                # Clean application-level refusal (no decoder poison):
                # a farm speaking a different repro-hosts version gets
                # told so and the connection closes in good order.
                self._refuse(conn,
                             f"unsupported repro-hosts protocol version "
                             f"{version} (agent speaks "
                             f"{HOSTS_PROTO_VERSION})")
                return
            conn.greeted = True
            _send_msg(conn.sock, pack_host_welcome(self.workers))
            return
        if not conn.greeted:
            self._refuse(conn, "HOST_HELLO required first")
            return
        if kind == MsgKind.HOST_SPEC:
            if self._spec_payload is None:
                try:
                    spec = pickle.loads(payload)
                except Exception as exc:
                    self._refuse(conn, f"bad HOST_SPEC payload: {exc}")
                    return
                if not isinstance(spec, FarmSpec):
                    self._refuse(conn, "HOST_SPEC payload must be a "
                                       "pickled FarmSpec")
                    return
                pool = WorkerPool(spec, self.workers,
                                  start_method=self.start_method,
                                  max_restarts=self.max_restarts,
                                  stall_timeout_s=self.stall_timeout_s)
                pool.start()
                self._pool = pool
                self._spec_payload = payload
            elif payload != self._spec_payload:
                self._refuse(conn, "agent already serves a different "
                                   "FarmSpec (one spec per agent)")
                return
            _send_msg(conn.sock, pack(MsgKind.HOST_SPEC_OK))
            return
        if kind == MsgKind.HOST_TASK:
            if self._pool is None:
                self._refuse(conn, "HOST_SPEC required before HOST_TASK")
                return
            try:
                task_kind, task, frames = pickle.loads(payload)
                if task_kind != "shard":
                    raise ValueError(f"unsupported task kind "
                                     f"{task_kind!r} (repro-hosts/1 "
                                     f"ships shard tasks)")
                handle = self._pool.submit(
                    np.asarray(frames, dtype=np.float64), [task])
            except Exception as exc:
                self._refuse(conn, f"bad HOST_TASK: {exc}")
                return
            self._inflight[task.task_id] = (conn, handle, task)
            return
        if kind == MsgKind.ERROR:  # pragma: no cover - client courtesy
            self._close_conn(conn)
            return
        self._refuse(conn, f"unexpected message kind {kind.name} "
                           f"on a repro-hosts/1 connection")

    # -- completion ----------------------------------------------------
    def _collect_done(self) -> None:
        for tid in [t for t, (_, h, _) in self._inflight.items() if h.done]:
            conn, handle, task = self._inflight.pop(tid)
            if conn.closed:
                continue            # farm gone; result has no audience
            result = handle.results.get(tid)
            if result is None:
                self._refuse(conn, f"task {tid} failed unrecoverably "
                                   f"on the agent")
                continue
            payload = pickle.dumps((tid, result, handle.outputs))
            try:
                _send_msg(conn.sock, pack(MsgKind.HOST_RESULT, payload,
                                          max_payload=HOST_MAX_PAYLOAD))
            except OSError:
                self._close_conn(conn)

    def _fail_everything(self, text: str) -> None:
        """The internal pool is beyond repair: tell every client, reset."""
        for conn, _, _ in self._inflight.values():
            self._refuse(conn, text)
        self._inflight.clear()
        if self._pool is not None:
            try:
                self._pool.close()
            except Exception:  # pragma: no cover - defensive
                pass
            self._pool = None
        self._spec_payload = None


# ----------------------------------------------------------------------
# Agent process management (tests, benchmarks, CI)
# ----------------------------------------------------------------------
class AgentProcess:
    """A spawned :class:`HostAgent` subprocess and its address."""

    def __init__(self, proc: subprocess.Popen, address: Tuple[str, int]):
        self.proc = proc
        self.address = address

    @property
    def pid(self) -> int:
        return self.proc.pid

    def kill(self) -> None:
        """SIGKILL — the partition every recovery test wants."""
        self.proc.kill()

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            self.proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            self.proc.kill()
            self.proc.wait(timeout=5.0)
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def __enter__(self) -> "AgentProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def spawn_agent(workers: int = 2, *, host: str = "127.0.0.1",
                max_restarts: int = 8,
                timeout_s: float = 60.0) -> AgentProcess:
    """Launch a localhost :class:`HostAgent` subprocess, wait for its
    announcement line, and return the running :class:`AgentProcess`."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.serve.remote",
         "--host", host, "--port", "0",
         "--workers", str(workers), "--max-restarts", str(max_restarts)],
        stdout=subprocess.PIPE, env=env, text=True)
    os.set_blocking(proc.stdout.fileno(), False)
    deadline = time.monotonic() + timeout_s
    line = ""
    while True:
        chunk = proc.stdout.readline()
        if chunk:
            line += chunk
            if line.endswith("\n"):
                break
        if proc.poll() is not None:
            raise RuntimeError(
                f"host agent exited with {proc.returncode} before "
                f"announcing its address")
        if time.monotonic() > deadline:
            proc.kill()
            raise TimeoutError("host agent did not announce its address")
        time.sleep(0.01)
    parts = line.split()
    if len(parts) != 4 or parts[0] != "repro-hosts/1":
        proc.kill()
        raise RuntimeError(f"unexpected agent announcement: {line!r}")
    return AgentProcess(proc, (parts[2], int(parts[3])))


# ----------------------------------------------------------------------
# The host pool (farm side)
# ----------------------------------------------------------------------
class _RemoteEntry:
    """One shard task with its localized payload and routing state."""

    __slots__ = ("task", "localized", "frames", "block", "completed")

    def __init__(self, task: ShardTask, localized: ShardTask,
                 frames: np.ndarray, block: BlockHandle):
        self.task = task
        self.localized = localized
        self.frames = frames
        self.block = block
        self.completed = False


class _HostLink:
    """One live connection to a :class:`HostAgent`."""

    def __init__(self, address: Tuple[str, int], spec_payload: bytes,
                 connect_timeout_s: float):
        self.address = address
        self.sock = socket.create_connection(address,
                                             timeout=connect_timeout_s)
        # See HostAgent._accept: back-to-back task pickles must not
        # queue behind Nagle waiting on a delayed ACK.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = MessageDecoder(max_payload=HOST_MAX_PAYLOAD)
        self.inflight: Dict[int, _RemoteEntry] = {}
        self.sock.sendall(pack_host_hello())
        kind, payload = self._await(MsgKind.HOST_WELCOME, connect_timeout_s)
        version, self.slots = unpack_host_welcome(payload)
        if version != HOSTS_PROTO_VERSION:
            self.sock.close()
            raise ProtocolError(
                f"host {address[0]}:{address[1]} speaks repro-hosts "
                f"version {version}, this farm speaks "
                f"{HOSTS_PROTO_VERSION}")
        self.sock.sendall(pack(MsgKind.HOST_SPEC, spec_payload,
                               max_payload=HOST_MAX_PAYLOAD))
        self._await(MsgKind.HOST_SPEC_OK, connect_timeout_s)
        self.sock.setblocking(False)

    def _await(self, want: MsgKind,
               timeout_s: float) -> Tuple[MsgKind, bytes]:
        """Blockingly read the next message; it must be *want*."""
        self.sock.settimeout(timeout_s)
        while True:
            msg = self.decoder.next_message()
            if msg is not None:
                kind, payload = msg
                if kind == MsgKind.ERROR:
                    raise ProtocolError(
                        f"host {self.address[0]}:{self.address[1]}: "
                        f"{payload.decode('utf-8', 'replace')}")
                if kind != want:
                    raise ProtocolError(f"expected {want.name}, host sent "
                                        f"{kind.name}")
                return msg
            data = self.sock.recv(1 << 18)
            if not data:
                raise ConnectionError(
                    f"host {self.address[0]}:{self.address[1]} closed "
                    f"during the handshake")
            self.decoder.feed(data)

    def send_task(self, entry: _RemoteEntry) -> None:
        payload = pickle.dumps(("shard", entry.localized, entry.frames))
        _send_msg(self.sock, pack(MsgKind.HOST_TASK, payload,
                                  max_payload=HOST_MAX_PAYLOAD))
        self.inflight[entry.task.task_id] = entry

    def poll(self) -> List[Tuple[int, Any, np.ndarray]]:
        """Drain buffered results (non-blocking).

        Raises :class:`ConnectionError` on EOF/reset (partition) and
        :class:`WorkerCrashError` on an agent-reported task failure.
        """
        out: List[Tuple[int, Any, np.ndarray]] = []
        while True:
            try:
                data = self.sock.recv(1 << 18)
            except BlockingIOError:
                break
            except OSError as exc:
                raise ConnectionError(str(exc)) from exc
            if not data:
                raise ConnectionError("host connection closed")
            try:
                self.decoder.feed(data)
                msgs = list(self.decoder)
            except ProtocolError as exc:
                raise ConnectionError(f"framing error from host: {exc}") \
                    from exc
            for kind, payload in msgs:
                if kind == MsgKind.HOST_RESULT:
                    out.append(pickle.loads(payload))
                elif kind == MsgKind.ERROR:
                    raise WorkerCrashError(
                        f"host {self.address[0]}:{self.address[1]}: "
                        f"{payload.decode('utf-8', 'replace')}")
        return out

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class HostPool:
    """Uniform dispatch of shard tasks over local workers + host agents.

    The cross-host sibling of :class:`WorkerPool`, with the same
    lifecycle (``start``/``submit``/``pump``/``wait``/``close``, plus
    one-shot ``run``) and the same failure semantics extended to
    partitions: a lost host connection requeues every shard it held
    (pure tasks — requeue is bit-identical), counts against the
    restart budget as a ``host_failure``, and the work lands on the
    surviving executors.  Losing the last executor raises
    :class:`WorkerCrashError`.

    ``hosts`` are ``"host:port"`` strings (or ``(host, port)`` pairs)
    of running :class:`HostAgent`\\ s; ``local_workers`` adds an
    in-process spawn pool beside them (0 = serve entirely remotely).
    Only :class:`ShardTask`\\ s are routable — stream affinity does not
    survive a partition, so the daemon keeps streams on its local
    pool.
    """

    def __init__(self, spec: FarmSpec,
                 hosts: Sequence[Union[str, Tuple[str, int]]], *,
                 local_workers: int = 0, max_restarts: int = 8,
                 start_method: str = "spawn",
                 stall_timeout_s: float = 300.0,
                 connect_timeout_s: float = 120.0):
        if not hosts:
            raise ValueError("HostPool needs at least one host "
                             "(use WorkerPool for purely local serving)")
        if local_workers < 0:
            raise ValueError(f"local_workers must be >= 0, "
                             f"got {local_workers}")
        self.spec = spec
        self.host_addresses = [parse_host(h) for h in hosts]
        self.local_workers = local_workers
        self.max_restarts = max_restarts
        self.start_method = start_method
        self.stall_timeout_s = stall_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.stats = PoolStats()
        self._local: Optional[WorkerPool] = None
        self._links: List[_HostLink] = []
        self._pending: deque = deque()
        self._active: Dict[int, _RemoteEntry] = {}
        self._local_handles: Dict[int, Tuple[BlockHandle, _RemoteEntry]] = {}
        self._outs: Dict[int, np.ndarray] = {}      # block_id -> out matrix
        self._started = False
        self._next_block = 0
        self._rotation = 0
        self._last_progress = time.monotonic()

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def n_workers(self) -> int:
        """Total worker slots: local + every connected host's."""
        return self.local_workers + sum(l.slots for l in self._links)

    def alive_hosts(self) -> int:
        return len(self._links)

    def start(self) -> "HostPool":
        if self._started:
            return self
        spec_payload = pickle.dumps(self.spec)
        for address in self.host_addresses:
            self._links.append(_HostLink(address, spec_payload,
                                         self.connect_timeout_s))
        if self.local_workers:
            self._local = WorkerPool(self.spec, self.local_workers,
                                     start_method=self.start_method,
                                     max_restarts=self.max_restarts,
                                     stall_timeout_s=self.stall_timeout_s)
            self._local.start()
        self.stats.workers = self.n_workers
        self._started = True
        self._last_progress = time.monotonic()
        return self

    def close(self) -> None:
        for link in self._links:
            link.close()
        self._links.clear()
        if self._local is not None:
            self._local.close()
            self._local = None
        self._pending.clear()
        self._active.clear()
        self._local_handles.clear()
        self._outs.clear()
        self._started = False

    def __enter__(self) -> "HostPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------
    def submit(self, frames: np.ndarray,
               tasks: Sequence[ShardTask]) -> BlockHandle:
        """Ship a frame block's shard tasks to the executors."""
        if not self._started:
            raise RuntimeError("host pool is not started")
        if not tasks:
            raise ValueError("submit needs at least one task")
        for t in tasks:
            if not isinstance(t, ShardTask):
                raise TypeError(
                    f"HostPool routes ShardTasks only, got "
                    f"{type(t).__name__} (streams stay on their local "
                    f"pool: affinity does not survive a partition)")
            if t.task_id in self._active:
                raise ValueError(f"task_id {t.task_id} is already in flight")
        frames = np.ascontiguousarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            frames = frames.reshape(len(frames), -1)
        handle = BlockHandle(
            block_id=self._next_block,
            tasks=tuple(tasks),
            _out_shape=(frames.shape[0], len(OUTPUT_COLUMNS)),
            _remaining=len(tasks),
            _stats0=(self.stats.worker_restarts, self.stats.requeued_tasks,
                     self.stats.host_failures),
        )
        self._next_block += 1
        self._outs[handle.block_id] = np.full(handle._out_shape, np.nan)
        for t in tasks:
            localized, local_frames = localize_shard_task(t, frames)
            entry = _RemoteEntry(t, localized, local_frames, handle)
            self._pending.append(entry)
            self._active[t.task_id] = entry
        self._last_progress = time.monotonic()
        return handle

    # -- supervision ---------------------------------------------------
    def pump(self, timeout_s: float = 0.05) -> bool:
        """One supervision step: dispatch, drain local + remote, repair."""
        if not self._started:
            raise RuntimeError("host pool is not started")
        self._dispatch()
        progressed = self._drain_remote()
        progressed |= self._drain_local(0.0 if progressed else timeout_s)
        if progressed:
            self._last_progress = time.monotonic()
            return True
        if self._local is None:
            self._wait_sockets(timeout_s)
        if (self._outstanding()
                and time.monotonic() - self._last_progress
                > self.stall_timeout_s):
            raise WorkerCrashError(
                f"no host-pool progress for {self.stall_timeout_s:.0f}s "
                f"({self._outstanding()} tasks outstanding)")
        return False

    def wait(self, handle: BlockHandle,
             timeout_s: Optional[float] = None) -> BlockHandle:
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while not handle.done:
            self.pump()
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"block {handle.block_id} incomplete after "
                    f"{timeout_s:.0f}s")
        return handle

    def _outstanding(self) -> int:
        return len(self._active)

    def _local_inflight(self) -> int:
        return len(self._local_handles)

    def _dispatch(self) -> None:
        # Round-robin over executors (each host link, then the local
        # pool), one task per free slot per pass, so remote and local
        # capacity fill uniformly.
        executors: List[Any] = list(self._links)
        if self._local is not None:
            executors.append("local")
        if not executors:
            return
        idle_passes = 0
        n = len(executors)
        while self._pending and idle_passes < n:
            executor = executors[self._rotation % n]
            self._rotation += 1
            entry = None
            while self._pending:
                head = self._pending[0]
                if head.completed:
                    self._pending.popleft()
                    continue
                entry = head
                break
            if entry is None:
                return
            if executor == "local":
                if self._local_inflight() >= self.local_workers:
                    idle_passes += 1
                    continue
                self._pending.popleft()
                inner = self._local.submit(entry.frames, [entry.localized])
                self._local_handles[entry.task.task_id] = (inner, entry)
            else:
                if len(executor.inflight) >= executor.slots:
                    idle_passes += 1
                    continue
                self._pending.popleft()
                try:
                    executor.send_task(entry)
                except (ConnectionError, OSError) as exc:
                    self._pending.appendleft(entry)
                    self._lose_link(executor, str(exc))
                    return
            idle_passes = 0

    def _drain_remote(self) -> bool:
        progressed = False
        for link in list(self._links):
            try:
                results = link.poll()
            except ConnectionError as exc:
                self._lose_link(link, str(exc))
                continue
            for tid, result, rows in results:
                link.inflight.pop(tid, None)
                self._complete(tid, result, rows)
                progressed = True
        return progressed

    def _drain_local(self, timeout_s: float) -> bool:
        if self._local is None:
            return False
        self._local.pump(timeout_s)
        self.stats.worker_restarts = self._local.stats.worker_restarts
        progressed = False
        for tid in [t for t, (h, _) in self._local_handles.items()
                    if h.done]:
            inner, entry = self._local_handles.pop(tid)
            if inner.failed:  # pragma: no cover - shard tasks requeue
                raise WorkerCrashError(
                    f"local execution of task {tid} failed unrecoverably")
            self._complete(tid, inner.results[tid], inner.outputs)
            progressed = True
        return progressed

    def _wait_sockets(self, timeout_s: float) -> None:
        """Idle wait on the host sockets (readiness, not a sleep poll)."""
        if not self._links:
            time.sleep(min(max(timeout_s, 0.0), 0.05))
            return
        sel = selectors.DefaultSelector()
        try:
            for link in self._links:
                sel.register(link.sock, selectors.EVENT_READ, link)
            sel.select(max(timeout_s, 0.0))
        finally:
            sel.close()

    def _lose_link(self, link: _HostLink, reason: str) -> None:
        """Partition: requeue everything the host held, spend budget."""
        if link not in self._links:
            return
        self._links.remove(link)
        link.close()
        self.stats.workers = self.n_workers
        requeued = [e for e in link.inflight.values() if not e.completed]
        link.inflight.clear()
        for entry in reversed(requeued):
            self._pending.appendleft(entry)
        self.stats.requeued_tasks += len(requeued)
        self.stats.host_failures += 1
        if self.stats.host_failures > self.max_restarts:
            raise WorkerCrashError(
                f"host failure budget exhausted ({self.max_restarts}); "
                f"last partition was {link.address[0]}:{link.address[1]} "
                f"({reason})")
        if not self._links and self._local is None:
            raise WorkerCrashError(
                f"all host connections lost and no local workers remain "
                f"(last: {link.address[0]}:{link.address[1]}, {reason})")

    def _complete(self, tid: int, result: Any, rows: np.ndarray) -> None:
        entry = self._active.pop(tid, None)
        if entry is None or entry.completed:
            return
        entry.completed = True
        block = entry.block
        block.results[tid] = result
        out = self._outs[block.block_id]
        idx = np.asarray(entry.task.global_indices, dtype=np.intp)
        out[idx, :] = np.asarray(rows, dtype=np.float64)
        block._remaining -= 1
        if block._remaining == 0:
            block.outputs = self._outs.pop(block.block_id)
            r0, q0, h0 = block._stats0
            block.stats = PoolStats(
                workers=self.n_workers,
                worker_restarts=self.stats.worker_restarts - r0,
                requeued_tasks=self.stats.requeued_tasks - q0,
                host_failures=self.stats.host_failures - h0,
            )
            block.done = True

    # -- one-shot compatibility path -----------------------------------
    def run(self, frames: np.ndarray, tasks: List[ShardTask],
            ) -> Tuple[List[Any], np.ndarray, PoolStats]:
        """Execute *tasks* over *frames*; returns (results, outputs, stats).

        Mirrors :meth:`WorkerPool.run`: a cold pool connects/spawns for
        the call and tears down after; a started pool runs warm and
        reports the per-call stats delta.
        """
        owns = not self._started
        if owns:
            self.start()
        try:
            handle = self.submit(frames, list(tasks))
            self.wait(handle)
            ordered = [handle.results[t.task_id] for t in tasks]
            return ordered, handle.outputs, handle.stats
        finally:
            if owns:
                self.close()


# ----------------------------------------------------------------------
# CLI: run one agent
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.remote",
        description="Run a repro-hosts/1 host agent: executes shard "
                    "tasks shipped by a remote ShardedNodeFarm on a "
                    "local worker pool.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (0 = ephemeral, announced "
                             "on stdout)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes on this host (default: 2)")
    parser.add_argument("--max-restarts", type=int, default=8,
                        help="worker crash budget (default: 8)")
    args = parser.parse_args(argv)
    agent = HostAgent(host=args.host, port=args.port,
                      workers=args.workers,
                      max_restarts=args.max_restarts)
    try:
        agent.serve_forever(announce=True)
    except KeyboardInterrupt:  # pragma: no cover - operator stop
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
